//! The forward-migration story that motivates the paper: **one binary,
//! every accelerator generation**. A single Liquid SIMD binary runs
//! unchanged on a scalar-only core, then on 2/4/8/16-lane accelerators,
//! getting faster each time — no recompilation, no new instruction set.
//!
//! ```text
//! cargo run --release --example width_migration
//! ```

use liquid_simd::{build_liquid, build_plain, gold, run, verify_against_gold, MachineConfig};

fn main() {
    let w = liquid_simd_workloads::swim();
    let liquid = build_liquid(&w).expect("liquid build");
    let plain = build_plain(&w).expect("plain build");
    let gold_env = gold::run_gold(&w).expect("gold");

    println!(
        "benchmark: {} ({} hot loops outlined)",
        w.name,
        liquid.outlined.len()
    );
    println!(
        "one binary: {} bytes of code\n",
        liquid.program.code_bytes()
    );

    let base = run(&plain.program, MachineConfig::scalar_only()).expect("baseline");
    println!(
        "{:<34} {:>12} {:>9}",
        "machine generation", "cycles", "speedup"
    );
    println!(
        "{:<34} {:>12} {:>9.2}",
        "scalar reference (no outlining)", base.report.cycles, 1.0
    );

    // Generation 0: no SIMD hardware at all. The same Liquid binary simply
    // executes its scalar representation.
    let out = run(&liquid.program, MachineConfig::scalar_only()).expect("scalar run");
    verify_against_gold("scalar", &liquid.program, &out.memory, &gold_env).expect("verified");
    println!(
        "{:<34} {:>12} {:>9.2}",
        "liquid on scalar-only core",
        out.report.cycles,
        base.report.cycles as f64 / out.report.cycles as f64
    );

    // Generations 1..4: each wider accelerator picks the binary up as-is.
    for lanes in [2usize, 4, 8, 16] {
        let out = run(&liquid.program, MachineConfig::liquid(lanes)).expect("liquid run");
        verify_against_gold(
            &format!("liquid@{lanes}"),
            &liquid.program,
            &out.memory,
            &gold_env,
        )
        .expect("verified");
        println!(
            "{:<34} {:>12} {:>9.2}",
            format!("liquid on {lanes}-lane accelerator"),
            out.report.cycles,
            base.report.cycles as f64 / out.report.cycles as f64
        );
    }

    println!("\nsame binary, same outputs (verified against gold at every width),");
    println!("four accelerator generations — no ISA change, no recompile.");
}
