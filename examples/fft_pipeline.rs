//! The paper's Figures 2–4 walkthrough at working scale: an FFT-style
//! butterfly loop is shown in its three lives — native SIMD code, the
//! Liquid scalar representation (offset arrays and all), and the SIMD
//! microcode the dynamic translator regenerates at runtime.
//!
//! ```text
//! cargo run --release --example fft_pipeline
//! ```

use liquid_simd::{build_liquid, build_native, Machine, MachineConfig};
use liquid_simd_isa::{asm, Program};

fn main() {
    let w = liquid_simd_workloads::fft();
    println!(
        "FFT workload: {} stage kernels, {} repetitions\n",
        w.kernels.len(),
        w.reps
    );

    // ---- native SIMD code for stage 3 (block-8 butterfly, Figure 4A) ----
    let native = build_native(&w, 8).expect("native build");
    let stage = native
        .outlined
        .iter()
        .find(|f| f.name == "fft_stage3")
        .expect("stage 3 exists");
    println!("Native SIMD code (8-wide) for {}:", stage.name);
    print_fn(&native.program, stage.entry, stage.instrs);

    // ---- the Liquid scalar representation (Figure 4B) --------------------
    let liquid = build_liquid(&w).expect("liquid build");
    let stage = liquid
        .outlined
        .iter()
        .find(|f| f.name == "fft_stage3")
        .expect("stage 3 exists");
    println!(
        "\nLiquid scalar representation of {} (note the offset-array",
        stage.name
    );
    println!("loads feeding the butterflied accesses, paper Table 1 cat. 7):");
    print_fn(&liquid.program, stage.entry, stage.instrs);

    // ---- dynamic translation back to SIMD (Table 4) -----------------------
    let mut machine = Machine::new(&liquid.program, MachineConfig::liquid(8));
    machine.run().expect("liquid run");
    let microcode = machine.microcode_snapshot();
    let (_, code) = microcode
        .iter()
        .find(|(pc, _)| *pc == stage.entry)
        .expect("stage 3 translated");
    println!("\nMicrocode the translator regenerated for an 8-lane accelerator");
    println!("(offset-array loads collapsed into vbfly, paper Table 4):");
    print!("{}", asm::disassemble_microcode(code, &liquid.program));

    // ---- the width-crossover behaviour -----------------------------------
    println!("\nTranslation per width (stages use butterfly blocks 2/4/8/16;");
    println!("a block wider than the accelerator misses in the CAM and the");
    println!("stage legitimately stays scalar — the paper's abort rule):");
    for lanes in [2usize, 4, 8, 16] {
        let mut m = Machine::new(&liquid.program, MachineConfig::liquid(lanes));
        let report = m.run().expect("run");
        println!(
            "  @{lanes:>2} lanes: {} of 4 stages translated, aborts: {:?}",
            report.translator.successes, report.translator.aborts
        );
    }
}

fn print_fn(p: &Program, entry: u32, len: usize) {
    print!("{}", asm::disassemble_range(p, entry, len));
}
