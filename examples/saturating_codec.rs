//! Saturating-arithmetic idioms end-to-end (paper §3.2): the MPEG2-style
//! pixel clamp is expressed in scalar code as `add; cmp; movgt` and
//! recognised by the dynamic translator as a single `vqaddu` — "no
//! efficiency is lost" in the translated code.
//!
//! ```text
//! cargo run --release --example saturating_codec
//! ```

use liquid_simd::{build_liquid, run, Machine, MachineConfig};
use liquid_simd_compiler::ArrayData;

fn main() {
    let w = liquid_simd_workloads::mpeg2dec();
    let liquid = build_liquid(&w).expect("liquid build");

    let clamp = liquid
        .outlined
        .iter()
        .find(|f| f.name == "mc_clamp")
        .expect("clamp loop exists");
    println!("Scalar representation of the motion-compensation clamp");
    println!("(the 3-instruction saturating idioms are the paper's Table 1 example):");
    print!(
        "{}",
        liquid_simd_isa::asm::disassemble_range(&liquid.program, clamp.entry, clamp.instrs)
    );

    let mut machine = Machine::new(&liquid.program, MachineConfig::liquid(8));
    machine.run().expect("run");
    let micro = machine.microcode_snapshot();
    let (_, code) = micro
        .iter()
        .find(|(pc, _)| *pc == clamp.entry)
        .expect("clamp translated");
    println!("\nTranslated microcode — each idiom collapsed to one instruction:");
    print!(
        "{}",
        liquid_simd_isa::asm::disassemble_microcode(code, &liquid.program)
    );

    // Show the clamp doing its job on the actual data.
    let out = run(&liquid.program, MachineConfig::liquid(8)).expect("run");
    let gold_env = liquid_simd::gold::run_gold(&w).expect("gold");
    let (_, ArrayData::Int(pixels)) = gold_env.get("pixels").expect("pixels array") else {
        panic!("pixels is integer data");
    };
    let clamped = pixels.iter().filter(|&&p| p == 0 || p == 255 - 16).count();
    println!(
        "\n{} of {} output pixels sit on a saturation rail; all outputs in [0, 255]: {}",
        clamped,
        pixels.len(),
        pixels.iter().all(|&p| (0..=255).contains(&p))
    );
    liquid_simd::verify_against_gold("mpeg2dec@8", &liquid.program, &out.memory, &gold_env)
        .expect("bit-exact against gold");
    println!("verified bit-exact against the reference evaluator ✓");
}
