//! Quickstart: define a hot loop once, then watch the Liquid SIMD pipeline
//! carry it from scalar code to dynamically translated SIMD microcode.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use liquid_simd::{
    build_liquid, build_native, build_plain, gold, run, verify_against_gold, MachineConfig,
    Workload,
};
use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, ReduceInit};
use liquid_simd_isa::{ElemType, RedOp, VAluOp};

fn main() {
    // ---- 1. Write the hot loop once, as a vector kernel -----------------
    // y[i] = (x[i] * 3 + 16) >> 2, plus the running maximum.
    let mut k = KernelBuilder::new("scale_bias", 256);
    let x = k.load("x", ElemType::I32);
    let t = k.bin_imm(VAluOp::Mul, x, 3);
    let t = k.bin_imm(VAluOp::Add, t, 16);
    let y = k.bin_imm(VAluOp::Asr, t, 2);
    k.store("y", y);
    k.reduce(RedOp::Max, y, "peak", ReduceInit::Int(i32::MIN));
    let kernel = k.build().expect("kernel validates");

    let data = ArrayBuilder::new()
        .int(
            "x",
            ElemType::I32,
            (0..256).map(|i| i * 7 - 300).collect::<Vec<i64>>(),
        )
        .zeroed("y", ElemType::I32, 256)
        .zeroed("peak", ElemType::I32, 1)
        .build();
    let w = Workload::new("quickstart", vec![kernel], data, 50);

    // ---- 2. Compile three ways ------------------------------------------
    let plain = build_plain(&w).expect("plain build");
    let liquid = build_liquid(&w).expect("liquid build");
    let native = build_native(&w, 8).expect("native build");

    println!(
        "binaries: plain {} B, liquid {} B (+{:.2}%), native {} B",
        plain.program.code_bytes(),
        liquid.program.code_bytes(),
        100.0 * (liquid.program.code_bytes() as f64 - plain.program.code_bytes() as f64)
            / plain.program.code_bytes() as f64,
        native.program.code_bytes()
    );

    println!("\nThe outlined scalar representation of the hot loop:");
    let f = &liquid.outlined[0];
    print!(
        "{}",
        liquid_simd_isa::asm::disassemble_range(&liquid.program, f.entry, f.instrs)
    );

    // ---- 3. Run: scalar baseline, then Liquid at several widths ---------
    let base = run(&plain.program, MachineConfig::scalar_only()).expect("baseline run");
    println!("\nscalar baseline: {} cycles", base.report.cycles);
    for lanes in [2usize, 4, 8, 16] {
        let out = run(&liquid.program, MachineConfig::liquid(lanes)).expect("liquid run");
        println!(
            "  liquid @{lanes:>2} lanes: {:>9} cycles  speedup {:>5.2}x  ({} translation(s), {} microcode hits)",
            out.report.cycles,
            base.report.cycles as f64 / out.report.cycles as f64,
            out.report.translator.successes,
            out.report.mcache.hits
        );
    }

    // ---- 4. Verify against the reference evaluator ----------------------
    let gold_env = gold::run_gold(&w).expect("gold evaluation");
    let out = run(&liquid.program, MachineConfig::liquid(8)).expect("verified run");
    verify_against_gold("quickstart@8", &liquid.program, &out.memory, &gold_env)
        .expect("bit-exact against gold");
    println!("\nall outputs verified against the gold evaluator ✓");
}
