//! Root shim for the Liquid SIMD reproduction workspace.
//!
//! All functionality lives in the `crates/*` members; this package exists so
//! the workspace-level `./tests` integration suite and `./examples` binaries
//! have a home. It re-exports the public facade for convenience.

pub use liquid_simd as facade;
pub use liquid_simd_compiler as compiler;
pub use liquid_simd_conform as conform;
pub use liquid_simd_isa as isa;
pub use liquid_simd_kernelgen as kernelgen;
pub use liquid_simd_ledger as ledger;
pub use liquid_simd_mem as mem;
pub use liquid_simd_perfhist as perfhist;
pub use liquid_simd_serve as serve;
pub use liquid_simd_sim as sim;
pub use liquid_simd_trace as trace;
pub use liquid_simd_translator as translator;
pub use liquid_simd_workloads as workloads;
