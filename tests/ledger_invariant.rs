//! The cycle-ledger invariant, property-tested end to end: every
//! simulated cycle lands in exactly one (PC, region, category) bucket, so
//! the ledger's bucket sum must equal the run's `PhaseBreakdown` total
//! bit-exactly, on both execution backends, for every workload at every
//! width — and the ledgers themselves must be byte-identical across
//! backends and across harness parallelism (`--jobs 1` vs `--jobs 8`).
//!
//! The suite also pins the ledger's first payoff: the machine-checked
//! explanation of the `179.art` width inversion (w16 slower than w8),
//! byte-compared against the committed `bench/diff_179art_w8_w16.json`
//! fixture.

use std::collections::BTreeMap;

use liquid_simd_repro::facade as liquid;
use liquid_simd_repro::isa::Program;
use liquid_simd_repro::kernelgen::{expand_corpus, Payload};
use liquid_simd_repro::ledger::{diff, Snapshot, TOP_REGION};
use liquid_simd_repro::perfhist::counters::ledger_snapshot;
use liquid_simd_repro::sim::{BackendKind, MachineConfig};

const WIDTHS: [usize; 4] = [2, 4, 8, 16];

/// Runs `program` with the ledger on and asserts the sum invariant; the
/// caller gets the report back for cross-backend comparisons.
fn run_with_ledger(
    what: &str,
    program: &Program,
    width: usize,
    backend: BackendKind,
) -> liquid::RunReport {
    let cfg = MachineConfig::liquid(width)
        .with_backend(backend)
        .with_ledger(true);
    let report = liquid::run(program, cfg)
        .unwrap_or_else(|e| panic!("{what} w{width} {}: {e}", backend.name()))
        .report;
    let ledger = report
        .ledger
        .as_ref()
        .unwrap_or_else(|| panic!("{what} w{width}: ledger requested but absent"));
    assert_eq!(
        ledger.total_cycles(),
        report.phases.total(),
        "{what} w{width} {}: ledger bucket sum != PhaseBreakdown total",
        backend.name()
    );
    assert_eq!(
        ledger.total_cycles(),
        report.cycles,
        "{what} w{width} {}: ledger bucket sum != report cycles",
        backend.name()
    );
    report
}

/// Asserts both backends produce the same cycles and *byte-identical*
/// ledgers (structural equality plus the rendered JSON, which is what the
/// history records and diff fixtures pin).
fn assert_cross_backend(what: &str, program: &Program, width: usize) {
    let ri = run_with_ledger(what, program, width, BackendKind::Interp);
    let rs = run_with_ledger(what, program, width, BackendKind::Superblock);
    assert_eq!(ri.cycles, rs.cycles, "{what} w{width}: cycles");
    assert_eq!(ri.ledger, rs.ledger, "{what} w{width}: ledger buckets");
    assert_eq!(
        ri.ledger.as_ref().map(|l| l.to_json()),
        rs.ledger.as_ref().map(|l| l.to_json()),
        "{what} w{width}: ledger JSON"
    );
}

#[test]
fn ledger_sum_matches_phase_totals_on_both_backends_all_workloads() {
    let workloads = liquid_simd_workloads::all();
    assert_eq!(workloads.len(), 15, "the fixed suite is 15 workloads");
    // One task per workload: build once, sweep every width on both
    // backends. The harness parallelizes across workloads.
    let jobs = liquid::default_jobs();
    liquid::run_tasks(jobs, workloads.len(), |i| -> Result<(), String> {
        let w = &workloads[i];
        let b = liquid::build_liquid(w).map_err(|e| format!("{}: {e}", w.name))?;
        for width in WIDTHS {
            assert_cross_backend(&w.name, &b.program, width);
        }
        Ok(())
    })
    .expect("suite sweep");
}

#[test]
fn ledger_sum_holds_on_generated_family_sample() {
    // A deterministic sample of the kernelgen corpus: the CI-sized cut
    // (short trips, shallow unrolls), strided down to a handful of kernel
    // variants so the sweep stays cheap.
    let sample: Vec<_> = expand_corpus()
        .expect("corpus expands")
        .into_iter()
        .filter(|v| v.trip <= 64 && v.unroll <= 2)
        .filter(|v| matches!(v.payload, Payload::Kernel(_)))
        .step_by(5)
        .take(6)
        .collect();
    assert!(sample.len() >= 3, "sample should cover several families");
    for v in &sample {
        let Payload::Kernel(w) = &v.payload else {
            unreachable!("filtered to kernels");
        };
        let b = liquid::build_liquid(w).unwrap_or_else(|e| panic!("{}: {e}", v.name));
        for width in WIDTHS {
            assert_cross_backend(&v.name, &b.program, width);
        }
    }
}

#[test]
fn ledger_snapshots_identical_at_jobs_1_and_jobs_8() {
    // The smoke suite across two widths, once serial and once on 8
    // workers: the rendered per-run snapshots must be byte-identical,
    // i.e. the ledger never observes scheduling.
    let workloads = liquid_simd_workloads::smoke();
    let widths = [2usize, 8];
    let builds: Vec<_> = workloads
        .iter()
        .map(|w| liquid::build_liquid(w).unwrap_or_else(|e| panic!("{}: {e}", w.name)))
        .collect();
    let sweep = |jobs: usize| -> Vec<String> {
        liquid::run_tasks(
            jobs,
            workloads.len() * widths.len(),
            |i| -> Result<String, String> {
                let (wi, si) = (i / widths.len(), i % widths.len());
                let (w, width) = (&workloads[wi], widths[si]);
                let report =
                    run_with_ledger(&w.name, &builds[wi].program, width, BackendKind::Interp);
                let names = region_labels(&builds[wi].program, &report);
                Ok(ledger_snapshot(&format!("{}@w{width}", w.name), &report, &names).to_json())
            },
        )
        .expect("smoke sweep")
    };
    let serial = sweep(1);
    let parallel = sweep(8);
    assert_eq!(serial, parallel, "ledger snapshots must not observe --jobs");
    assert!(serial.iter().all(|s| s.contains("\"total_cycles\":")));
}

/// The same region-naming rule the CLI uses for its snapshots: the
/// program label at each charged region's entry PC.
fn region_labels(program: &Program, report: &liquid::RunReport) -> BTreeMap<u32, String> {
    report
        .ledger
        .as_ref()
        .map(|led| {
            led.region_totals()
                .keys()
                .filter(|&&pc| pc != TOP_REGION)
                .filter_map(|&pc| program.label_at(pc).map(|l| (pc, l.to_string())))
                .collect()
        })
        .unwrap_or_default()
}

/// The committed fixture is exactly what `liquid-simd diff 179.art@w8
/// 179.art@w16 --json` emits: regenerate it through the same library path
/// and byte-compare, then assert the explanation names a concrete
/// dominant cost category for the paper suite's one width inversion
/// (ROADMAP item 4: `179.art` w16 > w8).
#[test]
fn pinned_179art_width_inversion_fixture_names_the_dominant_category() {
    let w = liquid_simd_workloads::all()
        .into_iter()
        .find(|w| w.name == "179.art")
        .expect("179.art in the fixed suite");
    let b = liquid::build_liquid(&w).expect("build 179.art");
    let snap_at = |width: usize| -> Snapshot {
        let report = run_with_ledger("179.art", &b.program, width, BackendKind::Interp);
        let names = region_labels(&b.program, &report);
        ledger_snapshot(&format!("179.art@w{width}"), &report, &names)
    };
    let d = diff::diff(&snap_at(8), &snap_at(16));

    // The inversion is real and the ledger explains it: the wide machine
    // spends its extra cycles executing scalar code (the strip-mined
    // remainder and scalar fallback at w16 outweigh the vector savings).
    assert!(d.total_delta > 0, "w16 must cost more than w8");
    assert_eq!(d.a_total, 2_380_481, "w8 cycles are pinned");
    assert_eq!(d.b_total, 2_482_896, "w16 cycles are pinned");
    assert_eq!(
        d.dominant_category.as_deref(),
        Some("scalar-execute"),
        "the diff must name the dominant cost category"
    );
    let scalar = d
        .categories
        .iter()
        .find(|c| c.name == "scalar-execute")
        .expect("scalar-execute bucket present");
    assert!(
        scalar.delta > 0 && scalar.delta.unsigned_abs() > d.total_delta.unsigned_abs() / 2,
        "scalar-execute must carry the bulk of the delta"
    );
    assert!(
        d.narrative.iter().any(|l| l.contains("scalar-execute")),
        "the narrative names the dominant category"
    );

    // Byte-for-byte the committed fixture: `diff --json` is deterministic
    // and the repo carries the explanation, not just the warning.
    let rendered = diff::render_json(&d);
    let fixture = std::fs::read_to_string("bench/diff_179art_w8_w16.json")
        .expect("bench/diff_179art_w8_w16.json committed");
    assert_eq!(
        rendered, fixture,
        "regenerated diff must match the pinned fixture byte-for-byte \
         (regenerate with: liquid-simd diff 179.art@w8 179.art@w16 --json \
         --out bench/diff_179art_w8_w16.json)"
    );
}
