//! Property-based differential testing: randomly generated kernels must
//! produce identical results through every pipeline (plain scalar, Liquid
//! untranslated, Liquid dynamically translated, native SIMD) at a randomly
//! chosen accelerator width.

use liquid_simd_repro::compiler::{
    build_liquid, build_native, build_plain, gold, ArrayBuilder, DataEnv, Kernel, KernelBuilder,
    ReduceInit, Workload,
};
use liquid_simd_repro::facade::{run, verify_against_gold, MachineConfig};
use liquid_simd_repro::isa::{ElemType, PermKind, RedOp, VAluOp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRIP: u32 = 32;

/// Builds a random but valid kernel + data environment from a seed.
fn random_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let elem = *[ElemType::I8, ElemType::I16, ElemType::I32, ElemType::F32]
        .iter()
        .filter(|_| true)
        .nth(rng.random_range(0..4))
        .unwrap();
    let float = elem == ElemType::F32;

    let mut k = KernelBuilder::new("prop", TRIP);
    let mut data = ArrayBuilder::new();
    let mut values = Vec::new();

    // 1-3 input arrays.
    let inputs = rng.random_range(1..=3);
    for i in 0..inputs {
        let name = format!("in{i}");
        let perm = if rng.random_bool(0.3) {
            let block = *[2u8, 4, 8, 16].get(rng.random_range(0..4)).unwrap();
            Some(match rng.random_range(0..3) {
                0 => PermKind::Bfly { block },
                1 => PermKind::Rev { block },
                _ => PermKind::Rot {
                    block,
                    amt: rng.random_range(1..block),
                },
            })
        } else {
            None
        };
        let id = match perm {
            Some(p) => k.load_perm(&name, elem, p),
            None if rng.random_bool(0.5) && !float => k.load_u(&name, elem),
            None => k.load(&name, elem),
        };
        values.push(id);
        data = if float {
            let v: Vec<f32> = (0..TRIP).map(|_| rng.random_range(-8.0..8.0)).collect();
            data.f32(&name, v)
        } else {
            let hi = match elem {
                ElemType::I8 => 127,
                ElemType::I16 => 2000,
                _ => 100_000,
            };
            let v: Vec<i64> = (0..TRIP).map(|_| rng.random_range(-hi..hi)).collect();
            data.int(&name, elem, v)
        };
    }

    // A chain of 2-8 random ops.
    let int_ops = [VAluOp::Add, VAluOp::Sub, VAluOp::Mul, VAluOp::And, VAluOp::Orr,
                   VAluOp::Eor, VAluOp::Min, VAluOp::Max, VAluOp::Lsr, VAluOp::Asr];
    let sat_ops = [VAluOp::SatAdd, VAluOp::SatSub, VAluOp::SSatAdd, VAluOp::SSatSub];
    let fp_ops = [VAluOp::Add, VAluOp::Sub, VAluOp::Mul, VAluOp::Min, VAluOp::Max];
    for _ in 0..rng.random_range(2..=8) {
        let a = values[rng.random_range(0..values.len())];
        let op = if float {
            fp_ops[rng.random_range(0..fp_ops.len())]
        } else if matches!(elem, ElemType::I8 | ElemType::I16) && rng.random_bool(0.25) {
            sat_ops[rng.random_range(0..sat_ops.len())]
        } else {
            int_ops[rng.random_range(0..int_ops.len())]
        };
        let id = match rng.random_range(0..3) {
            0 if !float => k.bin_imm(op, a, rng.random_range(-100..100)),
            1 => {
                let pattern_len = [1usize, 2, 4][rng.random_range(0..3)];
                let c = if float {
                    let pat: Vec<f32> =
                        (0..pattern_len).map(|_| rng.random_range(-2.0..2.0)).collect();
                    k.constf(pat)
                } else {
                    let pat: Vec<i64> =
                        (0..pattern_len).map(|_| rng.random_range(-60..60)).collect();
                    k.constv(elem, pat)
                };
                k.bin(op, a, c)
            }
            _ => {
                let b = values[rng.random_range(0..values.len())];
                k.bin(op, a, b)
            }
        };
        values.push(id);
    }

    // Occasionally a mid-dataflow permutation (forces fission).
    if rng.random_bool(0.3) {
        let a = *values.last().unwrap();
        let id = k.perm(PermKind::Bfly { block: 4 }, a);
        values.push(id);
    }

    // Outputs: always a store, sometimes a reduction.
    let out_val = *values.last().unwrap();
    k.store("out", out_val);
    data = data.zeroed("out", elem, TRIP as usize);
    if rng.random_bool(0.5) {
        let red = [RedOp::Min, RedOp::Max, RedOp::Sum][rng.random_range(0..3)];
        let target = values[rng.random_range(0..values.len())];
        if float {
            k.reduce(red, target, "racc", ReduceInit::F32(0.0));
        } else {
            k.reduce(red, target, "racc", ReduceInit::Int(0));
        }
        data = data.zeroed("racc", if float { ElemType::F32 } else { ElemType::I32 }, 1);
    }

    let kernel: Kernel = k.build().expect("generated kernel is valid by construction");
    let env: DataEnv = data.build();
    Workload::new(&format!("prop_{seed}"), vec![kernel], env, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heavyweight end-to-end property: all pipelines agree with gold.
    #[test]
    fn random_kernels_verify_everywhere(seed in 0u64..1_000_000, width_idx in 0usize..4) {
        let w = random_workload(seed);
        let width = [2usize, 4, 8, 16][width_idx];
        let gold_env = gold::run_gold(&w).expect("gold evaluates");

        let plain = build_plain(&w).expect("plain builds");
        let out = run(&plain.program, MachineConfig::scalar_only()).expect("plain runs");
        verify_against_gold("plain", &plain.program, &out.memory, &gold_env)
            .expect("plain matches gold");

        let liquid = build_liquid(&w).expect("liquid builds");
        let out = run(&liquid.program, MachineConfig::scalar_only()).expect("liquid-scalar runs");
        verify_against_gold("liquid/scalar", &liquid.program, &out.memory, &gold_env)
            .expect("untranslated liquid matches gold");

        let out = run(&liquid.program, MachineConfig::liquid(width)).expect("liquid runs");
        verify_against_gold("liquid/translated", &liquid.program, &out.memory, &gold_env)
            .expect("translated liquid matches gold");

        let native = build_native(&w, width).expect("native builds");
        let out = run(&native.program, MachineConfig::native(width)).expect("native runs");
        verify_against_gold("native", &native.program, &out.memory, &gold_env)
            .expect("native matches gold");
    }
}
