//! Property-based differential testing: randomly generated kernels must
//! produce identical results through every pipeline (plain scalar, Liquid
//! untranslated, Liquid dynamically translated, native SIMD) at a randomly
//! chosen accelerator width.
//!
//! Inputs come from the in-repo xorshift generator (no registry deps);
//! every case is reproducible from its printed seed. The default run keeps
//! the case count small enough for tier-1; build with `--features fuzz`
//! for a deeper sweep.

use liquid_simd_repro::compiler::{
    build_liquid, build_native, build_plain, gold, ArrayBuilder, DataEnv, Kernel, KernelBuilder,
    ReduceInit, Workload,
};
use liquid_simd_repro::facade::{run, verify_against_gold, MachineConfig};
use liquid_simd_repro::isa::{ElemType, PermKind, RedOp, VAluOp};
use liquid_simd_repro::workloads::util::XorShift64;

const TRIP: u32 = 32;

const CASES: u64 = if cfg!(feature = "fuzz") { 256 } else { 48 };

/// `true` with probability `p`.
fn chance(rng: &mut XorShift64, p: f64) -> bool {
    rng.next_f64() < p
}

/// Builds a random but valid kernel + data environment from a seed.
fn random_workload(seed: u64) -> Workload {
    let mut rng = XorShift64::new(seed);
    let elem = [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::F32][rng.range_usize(0, 4)];
    let float = elem == ElemType::F32;

    let mut k = KernelBuilder::new("prop", TRIP);
    let mut data = ArrayBuilder::new();
    let mut values = Vec::new();

    // 1-3 input arrays.
    let inputs = rng.range_usize(1, 4);
    for i in 0..inputs {
        let name = format!("in{i}");
        let perm = if chance(&mut rng, 0.3) {
            let block = [2u8, 4, 8, 16][rng.range_usize(0, 4)];
            Some(match rng.range_usize(0, 3) {
                0 => PermKind::Bfly { block },
                1 => PermKind::Rev { block },
                _ => PermKind::Rot {
                    block,
                    amt: rng.range_i64(1, i64::from(block)) as u8,
                },
            })
        } else {
            None
        };
        let id = match perm {
            Some(p) => k.load_perm(&name, elem, p),
            None if chance(&mut rng, 0.5) && !float => k.load_u(&name, elem),
            None => k.load(&name, elem),
        };
        values.push(id);
        data = if float {
            let v: Vec<f32> = (0..TRIP).map(|_| rng.range_f32(-8.0, 8.0)).collect();
            data.f32(&name, v)
        } else {
            let hi = match elem {
                ElemType::I8 => 127,
                ElemType::I16 => 2000,
                _ => 100_000,
            };
            let v: Vec<i64> = (0..TRIP).map(|_| rng.range_i64(-hi, hi)).collect();
            data.int(&name, elem, v)
        };
    }

    // A chain of 2-8 random ops.
    let int_ops = [
        VAluOp::Add,
        VAluOp::Sub,
        VAluOp::Mul,
        VAluOp::And,
        VAluOp::Orr,
        VAluOp::Eor,
        VAluOp::Min,
        VAluOp::Max,
        VAluOp::Lsr,
        VAluOp::Asr,
    ];
    let sat_ops = [
        VAluOp::SatAdd,
        VAluOp::SatSub,
        VAluOp::SSatAdd,
        VAluOp::SSatSub,
    ];
    let fp_ops = [
        VAluOp::Add,
        VAluOp::Sub,
        VAluOp::Mul,
        VAluOp::Min,
        VAluOp::Max,
    ];
    for _ in 0..rng.range_usize(2, 9) {
        let a = values[rng.range_usize(0, values.len())];
        let op = if float {
            fp_ops[rng.range_usize(0, fp_ops.len())]
        } else if matches!(elem, ElemType::I8 | ElemType::I16) && chance(&mut rng, 0.25) {
            sat_ops[rng.range_usize(0, sat_ops.len())]
        } else {
            int_ops[rng.range_usize(0, int_ops.len())]
        };
        let id = match rng.range_usize(0, 3) {
            0 if !float => k.bin_imm(op, a, rng.range_i64(-100, 100) as i32),
            1 => {
                let pattern_len = [1usize, 2, 4][rng.range_usize(0, 3)];
                let c = if float {
                    let pat: Vec<f32> =
                        (0..pattern_len).map(|_| rng.range_f32(-2.0, 2.0)).collect();
                    k.constf(pat)
                } else {
                    let pat: Vec<i64> = (0..pattern_len).map(|_| rng.range_i64(-60, 60)).collect();
                    k.constv(elem, pat)
                };
                k.bin(op, a, c)
            }
            _ => {
                let b = values[rng.range_usize(0, values.len())];
                k.bin(op, a, b)
            }
        };
        values.push(id);
    }

    // Occasionally a mid-dataflow permutation (forces fission).
    if chance(&mut rng, 0.3) {
        let a = *values.last().unwrap();
        let id = k.perm(PermKind::Bfly { block: 4 }, a);
        values.push(id);
    }

    // Outputs: always a store, sometimes a reduction.
    let out_val = *values.last().unwrap();
    k.store("out", out_val);
    data = data.zeroed("out", elem, TRIP as usize);
    if chance(&mut rng, 0.5) {
        let red = [RedOp::Min, RedOp::Max, RedOp::Sum][rng.range_usize(0, 3)];
        let target = values[rng.range_usize(0, values.len())];
        if float {
            k.reduce(red, target, "racc", ReduceInit::F32(0.0));
        } else {
            k.reduce(red, target, "racc", ReduceInit::Int(0));
        }
        data = data.zeroed("racc", if float { ElemType::F32 } else { ElemType::I32 }, 1);
    }

    let kernel: Kernel = k
        .build()
        .expect("generated kernel is valid by construction");
    let env: DataEnv = data.build();
    Workload::new(&format!("prop_{seed}"), vec![kernel], env, 2)
}

/// The heavyweight end-to-end property: all pipelines agree with gold.
#[test]
fn random_kernels_verify_everywhere() {
    for case in 0..CASES {
        // Decorrelate the seed and derive an accelerator width from it.
        let seed = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
        let width = [2usize, 4, 8, 16][(case % 4) as usize];
        let w = random_workload(seed);
        let ctx = format!("case {case} (seed {seed}, width {width})");
        let gold_env = gold::run_gold(&w).expect("gold evaluates");

        let plain = build_plain(&w).expect("plain builds");
        let out = run(&plain.program, MachineConfig::scalar_only()).expect("plain runs");
        verify_against_gold("plain", &plain.program, &out.memory, &gold_env)
            .unwrap_or_else(|e| panic!("{ctx}: plain vs gold: {e}"));

        let liquid = build_liquid(&w).expect("liquid builds");
        let out = run(&liquid.program, MachineConfig::scalar_only()).expect("liquid-scalar runs");
        verify_against_gold("liquid/scalar", &liquid.program, &out.memory, &gold_env)
            .unwrap_or_else(|e| panic!("{ctx}: untranslated liquid vs gold: {e}"));

        let out = run(&liquid.program, MachineConfig::liquid(width)).expect("liquid runs");
        verify_against_gold("liquid/translated", &liquid.program, &out.memory, &gold_env)
            .unwrap_or_else(|e| panic!("{ctx}: translated liquid vs gold: {e}"));

        let native = build_native(&w, width).expect("native builds");
        let out = run(&native.program, MachineConfig::native(width)).expect("native runs");
        verify_against_gold("native", &native.program, &out.memory, &gold_env)
            .unwrap_or_else(|e| panic!("{ctx}: native vs gold: {e}"));
    }
}
