//! Workspace-level integration tests for the kernelgen subsystem: the
//! seeded `bench/families/` corpus must expand deterministically at any
//! parallelism, every expanded variant must pass the conformance
//! oracle, the corpus run must witness every reachable abort tag, and
//! the generated workload frontier `workloads::generated()` must be the
//! corpus's translatable cut exactly.

use liquid_simd_repro::conform::families::{check_corpus, check_variants};
use liquid_simd_repro::kernelgen::{corpus_specs, expand_corpus, Payload, Variant};
use liquid_simd_repro::workloads;

/// The smoke cut the CI job benches: short trips, shallow unrolls.
fn smoke(variants: &[Variant]) -> Vec<Variant> {
    variants
        .iter()
        .filter(|v| v.trip <= 64 && v.unroll <= 2)
        .cloned()
        .collect()
}

#[test]
fn corpus_expansion_is_deterministic_and_exceeds_the_floor() {
    let a = expand_corpus().unwrap();
    let b = expand_corpus().unwrap();
    assert!(a.len() >= 100, "corpus yields {} variants", a.len());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.family, y.family);
        assert_eq!(
            (x.trip, x.unroll, x.data_seed),
            (y.trip, y.unroll, y.data_seed)
        );
        match (&x.payload, &y.payload) {
            (Payload::Asm { src: s1, .. }, Payload::Asm { src: s2, .. }) => assert_eq!(s1, s2),
            (Payload::Kernel(w1), Payload::Kernel(w2)) => {
                assert_eq!(w1.name, w2.name);
                assert_eq!(w1.data, w2.data, "{}: expanded data differs", x.name);
            }
            _ => panic!("payload kind mismatch for {}", x.name),
        }
    }
}

#[test]
fn corpus_specs_survive_print_parse_round_trip() {
    for spec in corpus_specs().unwrap() {
        let text = liquid_simd_repro::kernelgen::print(&spec);
        let back = liquid_simd_repro::kernelgen::parse(&spec.family, &text).unwrap();
        assert_eq!(back, spec, "{}: print→parse identity", spec.family);
    }
}

#[test]
fn oracle_outcomes_are_identical_at_any_jobs() {
    // The smoke cut keeps two full oracle sweeps affordable; `gen
    // --check` and CI run the whole corpus.
    let variants = smoke(&expand_corpus().unwrap());
    assert!(variants.len() >= 40, "smoke cut: {}", variants.len());
    let render = |outcomes: &[liquid_simd_repro::conform::oracle::CaseOutcome]| -> Vec<String> {
        outcomes
            .iter()
            .map(|o| {
                format!(
                    "{} {} {} {} {:?}",
                    o.name, o.family, o.passed, o.translated, o.abort_tags
                )
            })
            .collect()
    };
    let serial = render(&check_variants(&variants, 1));
    let parallel = render(&check_variants(&variants, 4));
    assert_eq!(serial, parallel, "oracle outcomes depend on --jobs");
}

#[test]
fn full_corpus_passes_the_oracle_with_no_uncovered_abort_tags() {
    let (outcomes, coverage) = check_corpus(4);
    for o in &outcomes {
        assert!(o.passed, "{}: {}", o.name, o.detail);
    }
    assert!(
        coverage.uncovered.is_empty(),
        "abort tags with no corpus witness: {:?}",
        coverage.uncovered
    );
    // Untranslatable variants hit exactly their pinned tag.
    let by_name: std::collections::BTreeMap<
        &str,
        &liquid_simd_repro::conform::oracle::CaseOutcome,
    > = outcomes.iter().map(|o| (o.name.as_str(), o)).collect();
    for v in &expand_corpus().unwrap() {
        if let Payload::Asm { expected_tag, .. } = &v.payload {
            let o = by_name[v.name.as_str()];
            assert!(
                o.abort_tags.iter().any(|t| t == expected_tag),
                "{}: expected tag {expected_tag}, saw {:?}",
                v.name,
                o.abort_tags
            );
        }
    }
}

#[test]
fn generated_frontier_is_exactly_the_translatable_cut() {
    let variants = expand_corpus().unwrap();
    let kernel_names: Vec<&str> = variants
        .iter()
        .filter(|v| matches!(v.payload, Payload::Kernel(_)))
        .map(|v| v.name.as_str())
        .collect();
    let generated = workloads::generated();
    assert_eq!(
        generated
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>(),
        kernel_names,
        "workloads::generated() must mirror the corpus kernel set in order"
    );
}
