//! End-to-end smoke of the flight recorder: a real daemon on a loopback
//! socket, a forced worker panic that must land as a schema-valid
//! `flight-v1` black-box dump carrying the failing request's full
//! lifecycle, the budget-burst auto-dump trigger, and the ISSUE's
//! headline acceptance check — scrubbed `metrics-v1` snapshots that are
//! byte-identical at 1 and N shards under fixed load.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use liquid_simd_repro::perfhist::Json;
use liquid_simd_repro::serve::{inspect, ServeOptions};
use liquid_simd_repro::trace::flight::FLIGHT_SCHEMA;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flight-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(opts: ServeOptions) -> liquid_simd_repro::serve::ServerHandle {
    liquid_simd_repro::serve::spawn(opts).expect("daemon binds loopback")
}

/// Sends `lines` on one connection and reads exactly one response per line.
fn talk(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    for line in lines {
        writeln!(stream, "{line}").unwrap();
    }
    stream.flush().unwrap();
    let got: Vec<String> = BufReader::new(stream)
        .lines()
        .take(lines.len())
        .map(|l| l.expect("response line"))
        .collect();
    assert_eq!(got.len(), lines.len(), "one response per request");
    got
}

/// Validates one `flight-v1` dump file: header schema/reason, every event
/// line well-formed with a known stage, and seq strictly increasing.
/// Returns the parsed event lines.
fn validate_dump(path: &std::path::Path, want_reason: &str) -> Vec<Json> {
    const STAGES: [&str; 8] = [
        "accept",
        "parse",
        "probe",
        "build",
        "translate",
        "execute",
        "respond",
        "panic",
    ];
    let text = std::fs::read_to_string(path).expect("dump readable");
    let mut lines = text.lines();
    let header = Json::parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("schema").and_then(Json::as_str),
        Some(FLIGHT_SCHEMA)
    );
    assert_eq!(
        header.get("reason").and_then(Json::as_str),
        Some(want_reason)
    );
    for key in [
        "backend",
        "shards",
        "capacity",
        "events",
        "dropped",
        "contended",
    ] {
        assert!(header.get(key).is_some(), "header carries `{key}`");
    }
    let mut events = Vec::new();
    let mut last_seq = None;
    for line in lines {
        let ev = Json::parse(line).expect("event line parses");
        for key in ["seq", "wall_us", "shard", "id", "op", "stage", "ok"] {
            assert!(ev.get(key).is_some(), "event carries `{key}`: {line}");
        }
        let stage = ev.get("stage").and_then(Json::as_str).unwrap();
        assert!(STAGES.contains(&stage), "known stage, got `{stage}`");
        let seq = ev.get("seq").and_then(Json::as_u64).unwrap();
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq strictly increasing ({prev} then {seq})");
        }
        last_seq = Some(seq);
        events.push(ev);
    }
    assert!(!events.is_empty(), "dump holds events");
    events
}

#[test]
fn forced_panic_dumps_the_failing_requests_full_lifecycle() {
    let dir = tmpdir("panic");
    let handle = spawn_daemon(ServeOptions {
        shards: 2,
        flight_dir: Some(dir.clone()),
        inject_faults: true,
        ..ServeOptions::default()
    });
    let addr = handle.addr;
    let responses = talk(
        addr,
        &[
            r#"{"op":"run","workload":"fir","id":"warm-1"}"#,
            r#"{"op":"translate","workload":"fft","id":"warm-2"}"#,
            r#"{"op":"run","workload":"fir","inject":"panic","id":"boom"}"#,
            r#"{"op":"run","workload":"fir","id":"after"}"#,
        ],
    );
    // The panic is contained: the failing request gets a serve-err-v1
    // response and the daemon keeps serving.
    let boom = Json::parse(&responses[2]).unwrap();
    assert_eq!(boom.get("ok").and_then(Json::as_str), None);
    assert_eq!(
        boom.get("schema").and_then(Json::as_str),
        Some("serve-err-v1")
    );
    let after = Json::parse(&responses[3]).unwrap();
    assert_eq!(after.get("schema").and_then(Json::as_str), Some("serve-v1"));

    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!(summary.dumps, 1, "exactly one black-box dump");

    let dump = dir.join("flight-000-worker-panic.jsonl");
    let events = validate_dump(&dump, "worker-panic");
    // The failing request's full lifecycle is in the box: accepted,
    // parsed, built, cache-probed, translated, and the panic itself.
    let boom_stages: Vec<&str> = events
        .iter()
        .filter(|e| e.get("id").and_then(Json::as_str) == Some("boom"))
        .map(|e| e.get("stage").and_then(Json::as_str).unwrap())
        .collect();
    for stage in ["accept", "parse", "build", "probe", "translate", "panic"] {
        assert!(
            boom_stages.contains(&stage),
            "boom lifecycle has `{stage}`: {boom_stages:?}"
        );
    }
    // Healthy neighbours are in the same box (context for the crash).
    assert!(events
        .iter()
        .any(|e| e.get("id").and_then(Json::as_str) == Some("warm-1")));
    // And the folded-stacks sidecar ships next to the JSONL.
    let folded = std::fs::read_to_string(dump.with_extension("folded")).unwrap();
    assert!(folded.contains("serve;run;panic 1"), "{folded}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_burst_triggers_an_automatic_dump() {
    let dir = tmpdir("burst");
    let handle = spawn_daemon(ServeOptions {
        shards: 1,
        flight_dir: Some(dir.clone()),
        burst_threshold: 3,
        ..ServeOptions::default()
    });
    let addr = handle.addr;
    let burst = r#"{"op":"run","workload":"fir","budget_cycles":10,"id":"b"}"#;
    let responses = talk(addr, &[burst, burst, burst]);
    for r in &responses {
        let doc = Json::parse(r).unwrap();
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("budget-exceeded"),
            "{r}"
        );
    }
    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!(summary.dumps, 1, "burst of 3 rejections tripped the dump");
    validate_dump(&dir.join("flight-000-budget-burst.jsonl"), "budget-burst");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance bar from the ISSUE: under a fixed request load, the
/// `inspect` snapshot — after `inspect::scrub` removes wall-clock and
/// schedule-dependent fields — is byte-identical at 1 shard and N shards.
#[test]
fn scrubbed_inspect_is_byte_identical_across_shard_counts() {
    let load = [
        r#"{"op":"run","workload":"fir","id":"a"}"#,
        r#"{"op":"run","workload":"fft","id":"b"}"#,
        r#"{"op":"translate","workload":"fir","id":"c"}"#,
        r#"{"op":"run","workload":"fir","id":"d"}"#,
        r#"{"op":"run","workload":"no-such-workload","id":"e"}"#,
        r#"{"op":"run","workload":"fft","id":"f"}"#,
    ];
    let snapshot_at = |shards: usize| {
        let handle = spawn_daemon(ServeOptions {
            shards,
            ..ServeOptions::default()
        });
        let addr = handle.addr;
        // All load responses are read back before `inspect` is sent, so
        // every lifecycle has been fully tallied into the registries.
        talk(addr, &load);
        let resp = talk(addr, &[r#"{"op":"inspect"}"#]);
        let doc = Json::parse(&resp[0]).unwrap();
        let metrics = doc.get("metrics").expect("metrics field").clone();
        handle.shutdown();
        handle.join().unwrap();
        inspect::scrub(&metrics).write()
    };
    let one = snapshot_at(1);
    let four = snapshot_at(4);
    assert_eq!(one, four, "scrubbed metrics-v1 identical at 1 vs 4 shards");
    // Sanity: the scrubbed form still carries the load we sent.
    let doc = Json::parse(&one).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(inspect::METRICS_SCHEMA)
    );
    assert_eq!(
        doc.get("requests")
            .and_then(|r| r.get("total"))
            .and_then(Json::as_u64),
        Some(6),
        "all 6 load requests, not the inspect itself"
    );
}
