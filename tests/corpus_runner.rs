//! Replays every minimized conformance case under `tests/corpus/` through
//! the full differential oracle. Corpus files are permanent regression
//! tests: each one captures a shape that either once failed or pins a
//! boundary behaviour (saturation clamps, reduction epilogues, permuted
//! loads, loop fission, abort at the final retired instruction), so this
//! suite is tier-1 — it runs on every `cargo test`, no fuzzing involved.

use std::path::Path;

use liquid_simd_repro::conform::{corpus, oracle};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_is_present_and_parses() {
    let cases = corpus::load_dir(&corpus_dir()).expect("corpus parses");
    assert!(
        cases.len() >= 5,
        "expected the seeded corpus (5+ cases), found {}",
        cases.len()
    );
    for (file, case) in &cases {
        let stem = file.trim_end_matches(".case");
        assert_eq!(
            case.name(),
            stem,
            "{file}: case name must match the file name"
        );
    }
}

#[test]
fn corpus_round_trips_through_the_text_format() {
    for (file, case) in corpus::load_dir(&corpus_dir()).expect("corpus parses") {
        let text = corpus::to_text(&case);
        let back = corpus::parse(&file, &text).expect("re-parse");
        assert_eq!(back, case, "{file}: corpus round-trip changed the case");
    }
}

#[test]
fn every_corpus_case_passes_the_oracle() {
    let cases = corpus::load_dir(&corpus_dir()).expect("corpus parses");
    for (file, case) in &cases {
        let outcome = oracle::check_case(case);
        assert!(
            outcome.passed,
            "{file} ({}) regressed: {}",
            outcome.name, outcome.detail
        );
    }
}

#[test]
fn corpus_covers_the_required_shapes() {
    let cases = corpus::load_dir(&corpus_dir()).expect("corpus parses");
    let has = |pred: &dyn Fn(&liquid_simd_repro::conform::gen::CaseSpec) -> bool| {
        cases.iter().any(|(_, c)| pred(c))
    };
    use liquid_simd_repro::conform::gen::CaseSpec;
    use liquid_simd_repro::isa::VAluOp;
    assert!(
        has(
            &|c| matches!(c, CaseSpec::Legal(l) if l.ops.iter().any(|o| matches!(
                o.op,
                VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub
            )))
        ),
        "corpus must keep a saturation case"
    );
    assert!(
        has(&|c| matches!(c, CaseSpec::Legal(l) if l.reduce.is_some())),
        "corpus must keep a reduction case"
    );
    assert!(
        has(&|c| matches!(c, CaseSpec::Legal(l)
            if l.inputs.iter().any(|i| i.perm.is_some()))),
        "corpus must keep a permuted-load case"
    );
    assert!(
        has(&|c| matches!(c, CaseSpec::Legal(l) if l.mid_perm.is_some())),
        "corpus must keep a fission-forcing case"
    );
    assert!(
        has(&|c| matches!(c, CaseSpec::Legal(l) if l.inject_last)),
        "corpus must keep an abort-at-last-instruction case"
    );
}
