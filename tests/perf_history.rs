//! End-to-end coverage of the performance-history subsystem: real
//! simulator runs become `perfhist-v1` records, identical code passes the
//! sentinel, a perturbed cycle count fails it (in both the library verdict
//! and the CLI's exit-code semantics), the wall-clock scrub makes records
//! from differently-parallel runs byte-identical, and the dashboard is a
//! genuinely self-contained single file.

use std::collections::BTreeMap;
use std::path::PathBuf;

use liquid_simd_repro::facade::trace::export;
use liquid_simd_repro::facade::{build_liquid, profile, run, MachineConfig};
use liquid_simd_repro::perfhist::{self, Json, RecordMeta, WorkloadRow};

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfhist-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn meta() -> RecordMeta {
    RecordMeta {
        commit: "test-commit".to_string(),
        timestamp: 1_700_000_000,
        host: "test-host".to_string(),
        config_hash: format!("{:016x}", MachineConfig::liquid(8).fingerprint()),
        smoke: true,
        widths: vec![2, 8],
        backend: "interp".to_string(),
    }
}

/// Measures the smoke workloads for real and builds one record: scalar
/// baseline, liquid cycles at 2 and 8 lanes, merged counter snapshot.
fn measure(wall_s: f64) -> Json {
    let mut rows = Vec::new();
    let mut counters = BTreeMap::new();
    for w in liquid_simd_repro::workloads::smoke() {
        let plain = liquid_simd_repro::compiler::build_plain(&w).unwrap();
        let base = run(&plain.program, MachineConfig::scalar_only()).unwrap();
        let b = build_liquid(&w).unwrap();
        let mut by_width = Vec::new();
        let mut headline = 0;
        for width in [2usize, 8] {
            let out = run(&b.program, MachineConfig::liquid(width)).unwrap();
            if width == 8 {
                headline = out.report.cycles;
                perfhist::counters::merge(
                    &mut counters,
                    &perfhist::counters::snapshot(&out.report),
                );
            }
            by_width.push((width, out.report.cycles));
        }
        rows.push(WorkloadRow {
            name: w.name.clone(),
            baseline_cycles: base.report.cycles,
            sim_cycles: headline,
            cycles_by_width: by_width,
            wall_s,
            cycles_per_sec: headline as f64 / wall_s,
            ledger: None,
        });
    }
    perfhist::record::build(&meta(), &rows, &counters, &[])
}

#[test]
fn same_code_passes_perturbed_cycles_fail() {
    let baseline = measure(0.5);
    let rerun = measure(0.25); // different wall clock, same simulated work

    // Two real measurements of the same code: deterministic fields agree,
    // so the sentinel passes.
    let ok = perfhist::sentinel::check(
        &[baseline.clone(), rerun.clone()],
        &perfhist::SentinelOptions::default(),
    );
    assert!(!ok.failed, "identical code must pass: {}", ok.json.write());
    assert_eq!(ok.json.get("status").and_then(Json::as_str), Some("pass"));

    // Perturb one workload's sim_cycles by a single cycle: that is drift,
    // and drift fails — improvements included.
    let mut perturbed = rerun.clone();
    let mut rows = perturbed
        .get("workloads")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap();
    let old = rows[0].get("sim_cycles").and_then(Json::as_u64).unwrap();
    rows[0].set("sim_cycles", Json::u64(old - 1));
    perturbed.set("workloads", Json::Arr(rows));
    let bad = perfhist::sentinel::check(
        &[baseline, perturbed],
        &perfhist::SentinelOptions::default(),
    );
    assert!(bad.failed, "a one-cycle improvement is still drift");
    let drift = bad.json.get("cycle_drift").and_then(Json::as_arr).unwrap();
    assert!(!drift.is_empty());
    assert_eq!(
        drift[0].get("metric").and_then(Json::as_str),
        Some("sim_cycles")
    );
}

#[test]
fn scrubbed_records_are_byte_identical_across_wall_clock() {
    // The `--jobs 1` vs `--jobs 8` contract: parallelism only moves wall
    // clock, and scrub_wall removes exactly the wall-clock fields, so two
    // measurements of the same code serialize identically after the scrub.
    let mut a = measure(0.5);
    let mut b = measure(0.125);
    assert_ne!(a.write(), b.write(), "wall fields differ before the scrub");
    perfhist::record::scrub_wall(&mut a);
    perfhist::record::scrub_wall(&mut b);
    assert_eq!(a.write(), b.write(), "scrubbed records are byte-identical");
}

#[test]
fn history_file_round_trips_and_sentinel_reads_it() {
    let path = tmpfile("history.jsonl");
    let _ = std::fs::remove_file(&path);
    perfhist::store::append(&path, &measure(0.5)).unwrap();
    perfhist::store::append(&path, &measure(0.25)).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    let records = perfhist::store::load(&path).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(perfhist::store::serialize(&records), on_disk);
    let v = perfhist::sentinel::check(&records, &perfhist::SentinelOptions::default());
    assert!(!v.failed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dashboard_is_single_file_with_real_data() {
    let mut history = vec![measure(0.5), measure(0.25)];
    // Nudge one counter so the delta table has a row to show (identical
    // code produces identical counters, which would hide the section).
    let mut counters = history[1]
        .get("counters")
        .and_then(Json::as_obj)
        .map(<[(String, Json)]>::to_vec)
        .unwrap();
    if let Some((_, v)) = counters.first_mut() {
        let bumped = v.as_u64().unwrap_or(0) + 1;
        *v = Json::u64(bumped);
    }
    history[1].set("counters", Json::Obj(counters));
    // Real span records from a traced run feed the flamegraph.
    let w = &liquid_simd_repro::workloads::smoke()[0];
    let b = build_liquid(w).unwrap();
    let prof = profile(&b.program, &w.name, 8).unwrap();
    let folded = export::folded_stacks(&prof.spans);
    assert!(!folded.is_empty(), "traced run produced folded stacks");

    let html = perfhist::dashboard::render(&history, &folded);
    assert!(html.starts_with("<!DOCTYPE html>"));
    // Self-contained: no scripts, no external fetches of any kind.
    for needle in [
        "<script", "http://", "https://", "src=", "href=", "@import", "url(",
    ] {
        assert!(!html.contains(needle), "external reference `{needle}`");
    }
    for section in ["Cycle trend", "Figure 6", "Counter deltas", "flamegraph"] {
        assert!(html.contains(section), "missing section `{section}`");
    }
    // Every smoke workload appears.
    for w in liquid_simd_repro::workloads::smoke() {
        assert!(html.contains(&w.name), "missing workload {}", w.name);
    }
}
