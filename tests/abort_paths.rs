//! Legality-check coverage: every abort path of the dynamic translator is
//! exercised with hand-written assembly, and in each case the program
//! still produces correct results by falling back to scalar execution —
//! the paper's central safety property.

use liquid_simd_repro::facade::{Machine, MachineConfig};
use liquid_simd_repro::isa::asm;

fn run_and_expect_abort(src: &str, tag: &str) -> liquid_simd_repro::facade::RunReport {
    let p = asm::assemble(src).unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert_eq!(report.translator.successes, 0, "should not translate");
    assert!(
        report.translator.aborts.contains_key(tag),
        "expected abort `{tag}`, got {:?}",
        report.translator.aborts
    );
    report
}

#[test]
fn runtime_indexed_permute_aborts() {
    // The VTBL class (paper §3.3): the memory index comes from *data*, not
    // from a compile-time offset array combined with the induction
    // variable. The data load's value is unknown until runtime, so the
    // translator must refuse.
    let src = r"
.data
.i32 idx: 3, 1, 2, 0, 7, 5, 6, 4, 11, 9, 10, 8, 15, 13, 14, 12
.i32 A: 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
.i32 B: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v gather
    halt
gather:
    mov r0, #0
top:
    ldw r1, [idx + r0]
    ldw r2, [A + r1]
    stw [B + r0], r2
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";
    // `r1` is a vector (loaded data) used directly as an index, without
    // the add-to-induction step that marks offset arrays.
    let report = run_and_expect_abort(src, "runtime-indexed-permute");
    assert!(report.halted);
}

#[test]
fn data_dependent_exit_aborts() {
    // A while-style loop whose exit depends on loaded data: iteration
    // verification or bound checks must reject it.
    let src = r"
.data
.i32 A: 5, 4, 3, 2, 1, 0, 7, 9, 5, 4, 3, 2, 1, 0, 7, 9

.text
main:
    bl.v findzero
    halt
findzero:
    mov r0, #0
top:
    ldw r1, [A + r0]
    add r0, r0, #1
    cmp r1, #0
    blt top
    cmp r0, #16
    blt top
    ret
";
    let p = asm::assemble(src).unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert_eq!(report.translator.successes, 0);
}

#[test]
fn loop_exceeding_microcode_buffer_aborts() {
    // A 70-instruction straight-line body exceeds the 64-entry buffer.
    let mut body = String::new();
    for _ in 0..70 {
        body.push_str("    add r1, r1, #1\n");
    }
    let src = format!(
        r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v huge
    halt
huge:
    mov r0, #0
top:
    ldw r1, [A + r0]
{body}    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
"
    );
    run_and_expect_abort(&src, "too-many-uops");
}

#[test]
fn nested_call_aborts() {
    let src = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8

.text
main:
    bl.v outer
    halt
outer:
    mov r13, r14        # no stack: preserve the link register by hand
    mov r0, #0
top:
    bl helper
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    mov r14, r13
    ret
helper:
    ldw r1, [A + r0]
    add r1, r1, #1
    ret
";
    // The nested bl arrives while translation of `outer` is active.
    let p = asm::assemble(src).unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert!(report.translator.aborts.contains_key("nested-call"));
    // And the program still computed the right thing through scalar code.
    let (_, sym) = p.symbol_by_name("A").unwrap();
    assert_eq!(m.memory().read(sym.addr, 4).unwrap(), 2);
}

#[test]
fn unknown_offset_pattern_misses_the_cam() {
    // Offsets that are not any blocked permutation: loaded, added to the
    // induction variable, used as an index — structure matches the
    // permutation idiom, but the CAM lookup fails at finalisation.
    let src = r"
.data
.i32 off: 0, 2, -1, -1, 0, 2, -1, -1, 0, 2, -1, -1, 0, 2, -1, -1
.i32 A: 9, 8, 7, 6, 5, 4, 3, 2, 9, 8, 7, 6, 5, 4, 3, 2
.i32 B: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v weird
    halt
weird:
    mov r0, #0
top:
    ldw r1, [off + r0]
    add r1, r0, r1
    ldw r2, [A + r1]
    stw [B + r0], r2
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";
    run_and_expect_abort(src, "cam-miss");
}

#[test]
fn scalar_store_in_loop_aborts() {
    let src = r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v splat
    halt
splat:
    mov r1, #42
    mov r0, #0
top:
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";
    run_and_expect_abort(src, "scalar-store");
}

#[test]
fn induction_step_other_than_one_aborts() {
    let src = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8

.text
main:
    bl.v strided
    halt
strided:
    mov r0, #0
top:
    ldw r1, [A + r0]
    add r1, r1, #1
    stw [A + r0], r1
    add r0, r0, #2
    cmp r0, #16
    blt top
    ret
";
    run_and_expect_abort(src, "unsupported-shape");
}

#[test]
fn failed_function_is_not_retried() {
    // A deterministic abort is remembered: the translator attempts the
    // function once, not on every call.
    let src = r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    mov r5, #0
again:
    bl.v splat
    add r5, r5, #1
    cmp r5, #5
    blt again
    halt
splat:
    mov r1, #42
    mov r0, #0
top:
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";
    let p = asm::assemble(src).unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert_eq!(report.translator.attempts, 1);
    assert_eq!(report.calls.len(), 5);
}
