//! A golden test of the paper's own worked example: the FFT loop of
//! Figures 2–4 and Table 4. We transcribe the scalar representation of
//! Figure 4(B) (adapted to this ISA: float/int register banks are not
//! mixed, so the mask-merge uses the fissioned two-loop form the paper
//! describes in §3.4), run it through the dynamic translator, and check
//! the regenerated SIMD stream matches Table 4's structure: butterflied
//! loads collapse to `vld + vbfly`, the offset-array loads disappear, the
//! induction increment is rewritten to the accelerator width, and the
//! loop-carried structure survives.

use liquid_simd_repro::facade::{Machine, MachineConfig};
use liquid_simd_repro::isa::{asm, Inst, PermKind, ScalarInst, VectorInst};

/// Figure 4(B), lines 1–23 (first fissioned loop), in our syntax. The
/// butterfly reorders 8-element blocks; `ar`/`ai` are the twiddle planes.
const FIGURE_4B: &str = r"
.data
.i32 bfly: 4, 4, 4, 4, -4, -4, -4, -4, 4, 4, 4, 4, -4, -4, -4, -4,
           4, 4, 4, 4, -4, -4, -4, -4, 4, 4, 4, 4, -4, -4, -4, -4
.f32 RealOut: 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0,
              1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5,
              -1.0, -2.0, -3.0, -4.0, -5.0, -6.0, -7.0, -8.0,
              0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0
.f32 ImagOut: 2.0, 1.0, 0.5, 0.25, 2.0, 1.0, 0.5, 0.25,
              1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0,
              0.5, 0.5, 0.5, 0.5, 3.0, 3.0, 3.0, 3.0,
              1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0
.f32 ar: 1.0, 0.92, 0.71, 0.38, 0.0, -0.38, -0.71, -0.92,
         1.0, 0.92, 0.71, 0.38, 0.0, -0.38, -0.71, -0.92,
         1.0, 0.92, 0.71, 0.38, 0.0, -0.38, -0.71, -0.92,
         1.0, 0.92, 0.71, 0.38, 0.0, -0.38, -0.71, -0.92
.f32 ai: 0.0, 0.38, 0.71, 0.92, 1.0, 0.92, 0.71, 0.38,
         0.0, 0.38, 0.71, 0.92, 1.0, 0.92, 0.71, 0.38,
         0.0, 0.38, 0.71, 0.92, 1.0, 0.92, 0.71, 0.38,
         0.0, 0.38, 0.71, 0.92, 1.0, 0.92, 0.71, 0.38
.zero tmp0: 32 x 4
.zero tmp1: 32 x 4

.text
main:
    mov r5, #0
again:
    bl.v fft_loop1
    add r5, r5, #1
    cmp r5, #4
    blt again
    halt

# Figure 4(B): scalar representation of the SIMD FFT loop. Lines 2-5 of
# the paper load the butterflied planes through the bfly offset array.
fft_loop1:
    mov r0, #0
top1:
    ldw r1, [bfly + r0]          # load offset for butterfly
    add r1, r0, r1
    ldf f0, [RealOut + r1]       # load the shuffled vectors
    ldf f1, [ImagOut + r1]
    ldf f2, [ar + r0]            # load ar and ai
    ldf f3, [ai + r0]
    fmul f2, f2, f0              # compute tr
    fmul f3, f3, f1
    fsub f6, f2, f3
    ldf f5, [RealOut + r0]
    fsub f3, f5, f6              # sub RealOut and tr
    fadd f4, f5, f6              # add RealOut and tr
    stf [tmp0 + r0], f3          # first fission output
    stf [tmp1 + r0], f4          # second fission output
    add r0, r0, #1               # increment i
    cmp r0, #32
    blt top1
    ret
";

#[test]
fn paper_figure4_translates_like_table4() {
    let p = asm::assemble(FIGURE_4B).expect("figure 4(B) assembles");
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().expect("runs");
    assert_eq!(
        report.translator.successes, 1,
        "the paper's loop must translate: {:?}",
        report.translator.aborts
    );

    let micro = m.microcode_snapshot();
    let (_, code) = &micro[0];

    // Table 4 structure, instruction by instruction (paper rows condensed):
    // the two butterflied loads become vld+vbfly pairs; the bfly offset
    // load is removed by the alignment network.
    let vperms: Vec<_> = code
        .iter()
        .filter_map(|i| match i {
            Inst::V(VectorInst::VPerm { kind, .. }) => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(
        vperms,
        vec![PermKind::Bfly { block: 8 }, PermKind::Bfly { block: 8 }],
        "exactly the two vbfly of Table 4 rows 4-5"
    );

    // The offsets vector load (`v1 = vld [bfly + r0]`, Table 4 row 2) was
    // removed: no remaining load references the bfly symbol.
    let (bfly_id, _) = p.symbol_by_name("bfly").unwrap();
    let bfly_loads = code
        .iter()
        .filter(|i| matches!(i, Inst::V(VectorInst::VLd { base: liquid_simd_repro::isa::Base::Sym(s), .. }) if *s == bfly_id))
        .count();
    assert_eq!(bfly_loads, 0, "offset-array load must be collapsed");

    // Rule 10: the induction increment is rewritten from #1 to #8.
    assert!(
        code.iter().any(|i| matches!(
            i,
            Inst::S(ScalarInst::Alu {
                op: liquid_simd_repro::isa::AluOp::Add,
                op2: liquid_simd_repro::isa::Operand2::Imm(8),
                ..
            })
        )),
        "induction increment rewritten to the accelerator width"
    );

    // The microcode ends with the loop branch + ret, and fits the paper's
    // 64-entry buffer with room to spare.
    assert!(matches!(code[code.len() - 1], Inst::S(ScalarInst::Ret)));
    assert!(code.len() <= 64);

    // Four fp multiplies/adds/subs of the tr computation survive 1:1.
    let fp_dp = code
        .iter()
        .filter(|i| {
            matches!(
                i,
                Inst::V(VectorInst::VAlu {
                    elem: liquid_simd_repro::isa::ElemType::F32,
                    ..
                })
            )
        })
        .count();
    assert_eq!(fp_dp, 5, "fmul x2, fsub x2, fadd x1 translate one-to-one");
}

#[test]
fn paper_figure4_microcode_matches_scalar_results() {
    let p = asm::assemble(FIGURE_4B).expect("assembles");

    // Scalar-only run (no accelerator): the fallback semantics.
    let mut scalar = Machine::new(&p, MachineConfig::scalar_only());
    scalar.run().unwrap();

    // Liquid run: calls 2-4 execute translated microcode.
    let mut liquid = Machine::new(&p, MachineConfig::liquid(8));
    let report = liquid.run().unwrap();
    assert!(report.mcache.hits >= 2);

    for name in ["tmp0", "tmp1"] {
        let (_, sym) = p.symbol_by_name(name).unwrap();
        for i in 0..32 {
            let a = scalar.memory().read_f32(sym.addr + i * 4).unwrap();
            let b = liquid.memory().read_f32(sym.addr + i * 4).unwrap();
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "{name}[{i}]: scalar {a} vs translated {b}"
            );
        }
    }
}
