//! Execution-backend equivalence: the superblock backend is a simulator
//! implementation detail, so every observable of a run — cycle counts,
//! retire counts, cache statistics, phase accounting, final registers and
//! the full memory image — must be bit-identical to the interpreter, on
//! real benchmark workloads and on generated random programs alike. (The
//! conform oracle carries the same check as a per-case column; this suite
//! pins it on the named workloads the paper's tables are built from.)

use liquid_simd_repro::conform::gen::generate_case;
use liquid_simd_repro::conform::oracle::{check_case, run_full};
use liquid_simd_repro::facade::{build_liquid, build_plain, BackendKind, MachineConfig};

/// Runs a program under both backends and asserts every deterministic
/// observable matches. Returns the superblock run's block statistics so
/// callers can assert lowering actually happened.
fn assert_equivalent(
    what: &str,
    program: &liquid_simd_repro::isa::Program,
    config: &MachineConfig,
) -> liquid_simd_repro::sim::BlockStats {
    let (ri, mem_i, regs_i) =
        run_full(program, config.clone().with_backend(BackendKind::Interp)).expect("interp run");
    let (rs, mem_s, regs_s) = run_full(
        program,
        config.clone().with_backend(BackendKind::Superblock),
    )
    .expect("superblock run");
    assert_eq!(ri.cycles, rs.cycles, "{what}: cycles");
    assert_eq!(ri.retired, rs.retired, "{what}: retired");
    assert_eq!(
        ri.scalar_retired, rs.scalar_retired,
        "{what}: scalar retired"
    );
    assert_eq!(
        ri.vector_retired, rs.vector_retired,
        "{what}: vector retired"
    );
    assert_eq!(ri.lane_ops, rs.lane_ops, "{what}: lane ops");
    assert_eq!(ri.icache, rs.icache, "{what}: icache stats");
    assert_eq!(ri.dcache, rs.dcache, "{what}: dcache stats");
    assert_eq!(ri.mcache, rs.mcache, "{what}: mcache stats");
    assert_eq!(ri.phases, rs.phases, "{what}: phase accounting");
    assert_eq!(
        ri.translator.successes, rs.translator.successes,
        "{what}: translation successes"
    );
    assert_eq!(
        ri.translator.aborts, rs.translator.aborts,
        "{what}: abort tags"
    );
    assert_eq!(regs_i, regs_s, "{what}: register file");
    let (base, len) = (mem_i.base(), mem_i.size());
    assert_eq!(
        mem_i.slice(base, len).ok(),
        mem_s.slice(base, len).ok(),
        "{what}: memory image"
    );
    // The interpreter never lowers; the superblock run reports what it did.
    assert_eq!(ri.blocks, liquid_simd_repro::sim::BlockStats::default());
    rs.blocks
}

#[test]
fn smoke_workloads_are_bit_identical_at_every_width() {
    for w in liquid_simd_repro::workloads::smoke() {
        let plain = build_plain(&w).expect("plain build");
        let blocks = assert_equivalent(
            &format!("{}/plain", w.name),
            &plain.program,
            &MachineConfig::scalar_only(),
        );
        assert!(blocks.lowered > 0, "{}: scalar run lowered nothing", w.name);

        let liquid = build_liquid(&w).expect("liquid build");
        for width in [2usize, 8] {
            let blocks = assert_equivalent(
                &format!("{}/liquid@{width}", w.name),
                &liquid.program,
                &MachineConfig::liquid(width),
            );
            assert!(blocks.lowered > 0, "{}@{width}: lowered nothing", w.name);
            assert!(
                blocks.hits > blocks.misses,
                "{}@{width}: hot loops must re-dispatch lowered blocks: {blocks:?}",
                w.name
            );
        }
    }
}

#[test]
fn random_cases_pass_the_oracle_backend_column() {
    // The conform oracle now re-runs every pipeline stage on the
    // superblock backend (including abort injection mid-block); a dozen
    // generated cases exercise that column from a different seed than CI.
    for i in 0..12 {
        let spec = generate_case(0x0B5E_55ED, i);
        let outcome = check_case(&spec);
        assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
    }
}
