//! End-to-end coverage of the tracing subsystem: every translator abort
//! path surfaces as a `TranslationAbort` event with the right reason tag,
//! the microcode-cache lifecycle (hit/miss/insert/evict/invalidate) is
//! visible in the event stream and never disagrees with the aggregate
//! counters, the Chrome-trace export shows translation committing before
//! the first SIMD-mode call, and attaching a tracer does not perturb
//! simulated time.

use liquid_simd_repro::compiler::{build_liquid, ArrayBuilder, KernelBuilder, Workload};
use liquid_simd_repro::facade::trace::export;
use liquid_simd_repro::facade::{run, CallMode, Machine, MachineConfig, TraceEvent, Tracer};
use liquid_simd_repro::isa::{asm, ElemType, VAluOp};

// ---------------------------------------------------------------------------
// Abort paths as trace events
// ---------------------------------------------------------------------------

/// Runs the source on a traced 8-lane Liquid machine and asserts that a
/// `TranslationAbort` with the expected reason tag was recorded, and that
/// the event tallies agree with the translator's aggregate abort counts.
fn expect_abort_event(src: &str, tag: &str) {
    let p = asm::assemble(src).unwrap();
    let tracer = Tracer::new();
    let cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
    let mut m = Machine::new(&p, cfg);
    let report = m.run().unwrap();

    let aborts: Vec<&'static str> = tracer
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::TranslationAbort { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect();
    assert!(
        aborts.contains(&tag),
        "expected a TranslationAbort with reason `{tag}`, recorded {aborts:?}"
    );
    // Aggregates and trace must never disagree.
    let stat_aborts: u64 = report.translator.aborts.values().sum();
    assert_eq!(
        tracer.kind_count("translation-abort"),
        stat_aborts,
        "abort event tally vs TranslatorStats"
    );
    assert_eq!(
        tracer.metrics().counter(&format!("translator.abort.{tag}")),
        report.translator.aborts.get(tag).copied().unwrap_or(0),
        "per-reason abort counter vs TranslatorStats"
    );
    assert_eq!(
        tracer.kind_count("translation-begin"),
        report.translator.attempts,
        "begin event tally vs attempts"
    );
}

#[test]
fn illegal_input_abort_is_traced() {
    // Runtime-indexed permute (VTBL class): the index is loaded data.
    expect_abort_event(
        r"
.data
.i32 idx: 3, 1, 2, 0, 7, 5, 6, 4, 11, 9, 10, 8, 15, 13, 14, 12
.i32 A: 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
.i32 B: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v gather
    halt
gather:
    mov r0, #0
top:
    ldw r1, [idx + r0]
    ldw r2, [A + r1]
    stw [B + r0], r2
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
",
        "runtime-indexed-permute",
    );
}

#[test]
fn aperiodic_offset_pattern_abort_is_traced() {
    // The offsets form no blocked permutation (the aperiodic-`cnst` case):
    // the structure matches the permutation idiom but the CAM lookup fails.
    expect_abort_event(
        r"
.data
.i32 off: 0, 2, -1, -1, 0, 2, -1, -1, 0, 2, -1, -1, 0, 2, -1, -1
.i32 A: 9, 8, 7, 6, 5, 4, 3, 2, 9, 8, 7, 6, 5, 4, 3, 2
.i32 B: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v weird
    halt
weird:
    mov r0, #0
top:
    ldw r1, [off + r0]
    add r1, r0, r1
    ldw r2, [A + r1]
    stw [B + r0], r2
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
",
        "cam-miss",
    );
}

#[test]
fn non_dividing_permutation_block_abort_is_traced() {
    // A cyclic shift of period 3 over a 16-element loop: 3 divides neither
    // the lane count nor the trip, so no blocked permutation matches.
    expect_abort_event(
        r"
.data
.i32 off: 1, 1, -2, 1, 1, -2, 1, 1, -2, 1, 1, -2, 1, 1, -2, 1
.i32 A: 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
.i32 B: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v rot3
    halt
rot3:
    mov r0, #0
top:
    ldw r1, [off + r0]
    add r1, r0, r1
    ldw r2, [A + r1]
    stw [B + r0], r2
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
",
        "cam-miss",
    );
}

#[test]
fn scalar_store_abort_is_traced() {
    expect_abort_event(
        r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    bl.v splat
    halt
splat:
    mov r1, #42
    mov r0, #0
top:
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
",
        "scalar-store",
    );
}

#[test]
fn interrupt_abort_is_traced() {
    // An interrupt every 20 retired instructions lands inside the first
    // translation window and aborts it externally.
    let src = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8

.text
main:
    mov r5, #0
again:
    bl.v incr
    add r5, r5, #1
    cmp r5, #4
    blt again
    halt
incr:
    mov r0, #0
top:
    ldw r1, [A + r0]
    add r1, r1, #1
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";
    let p = asm::assemble(src).unwrap();
    let tracer = Tracer::new();
    let mut cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
    cfg.interrupt_every = 20;
    let mut m = Machine::new(&p, cfg);
    let report = m.run().unwrap();

    assert!(
        tracer.kind_count("interrupt") > 0,
        "interrupts should have been injected"
    );
    let external_aborts = tracer
        .records()
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::TranslationAbort {
                    reason: "external",
                    ..
                }
            )
        })
        .count() as u64;
    assert!(
        external_aborts > 0,
        "an interrupt during translation must abort it externally"
    );
    assert_eq!(
        external_aborts,
        report
            .translator
            .aborts
            .get("external")
            .copied()
            .unwrap_or(0),
        "external abort events vs TranslatorStats"
    );
}

// ---------------------------------------------------------------------------
// Microcode-cache lifecycle
// ---------------------------------------------------------------------------

fn many_loop_workload(n: usize) -> Workload {
    let mut kernels = Vec::new();
    let mut data = ArrayBuilder::new();
    for i in 0..n {
        let name = format!("k{i}");
        let mut k = KernelBuilder::new(&name, 32);
        let a = k.load(&format!("in{i}"), ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, i as i32 + 1);
        let c = k.bin_imm(VAluOp::Eor, b, 21);
        k.store(&format!("out{i}"), c);
        kernels.push(k.build().unwrap());
        data = data
            .int(
                &format!("in{i}"),
                ElemType::I32,
                (0..32).map(|x| x * 3 + i as i64).collect::<Vec<i64>>(),
            )
            .zeroed(&format!("out{i}"), ElemType::I32, 32);
    }
    Workload::new("many", kernels, data.build(), 12)
}

#[test]
fn mcache_lifecycle_events_match_stats() {
    // Twelve distinct hot loops against the paper's 8-entry cache: the
    // working set does not fit, so the event stream must show evictions.
    let w = many_loop_workload(12);
    let b = build_liquid(&w).unwrap();
    let tracer = Tracer::new();
    let cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
    let out = run(&b.program, cfg).unwrap();
    let stats = out.report.mcache;

    assert!(stats.evictions > 0, "12 loops must not fit 8 entries");

    // Aggregates and trace must never disagree, event kind by event kind.
    assert_eq!(tracer.kind_count("mcache-hit"), stats.hits);
    assert_eq!(tracer.kind_count("mcache-pending"), stats.pending);
    assert_eq!(tracer.kind_count("mcache-insert"), stats.inserts);
    assert_eq!(tracer.kind_count("mcache-evict"), stats.evictions);
    let misses = tracer.kind_count("mcache-miss");
    assert_eq!(stats.hits + stats.pending + misses, stats.lookups);

    // Every eviction names a function that was inserted earlier.
    let mut inserted = std::collections::HashSet::new();
    for r in tracer.records() {
        match r.event {
            TraceEvent::McacheInsert { func_pc, .. } => {
                inserted.insert(func_pc);
            }
            TraceEvent::McacheEvict { func_pc } => {
                assert!(
                    inserted.contains(&func_pc),
                    "evicted @{func_pc} without a prior insert"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn mcache_invalidate_is_traced() {
    let w = many_loop_workload(4);
    let b = build_liquid(&w).unwrap();
    let tracer = Tracer::new();
    let cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
    let mut m = Machine::new(&b.program, cfg);
    m.run().unwrap();
    let resident = tracer.kind_count("mcache-insert") - tracer.kind_count("mcache-evict");
    assert!(resident > 0, "expected resident microcode after the run");

    m.flush_microcode();
    let invalidates: Vec<u64> = tracer
        .records()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::McacheInvalidate { entries } => Some(entries),
            _ => None,
        })
        .collect();
    assert_eq!(invalidates, vec![resident], "one invalidate, all entries");
}

// ---------------------------------------------------------------------------
// FIR: commit-before-first-SIMD-call, Chrome export, timing invariance
// ---------------------------------------------------------------------------

#[test]
fn fir_commit_precedes_first_simd_call() {
    let w = liquid_simd_repro::workloads::fir();
    let b = build_liquid(&w).unwrap();
    let tracer = Tracer::new();
    let cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
    let out = run(&b.program, cfg).unwrap();
    let simd_calls = out
        .report
        .calls
        .iter()
        .filter(|c| c.mode == CallMode::Microcode)
        .count();
    assert!(simd_calls > 0, "FIR should go SIMD after translation");

    let records = tracer.records();
    let commit_seq = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::TranslationCommit { .. }))
        .map(|r| r.seq)
        .expect("FIR must commit a translation");
    let first_simd_seq = records
        .iter()
        .find(|r| {
            matches!(
                r.event,
                TraceEvent::CallEnter {
                    mode: liquid_simd_repro::facade::trace::CallMode::Simd,
                    ..
                }
            )
        })
        .map(|r| r.seq)
        .expect("FIR must make SIMD-mode calls");
    assert!(
        commit_seq < first_simd_seq,
        "translation must commit (seq {commit_seq}) before the first \
         SIMD call (seq {first_simd_seq})"
    );

    // The same ordering must be visible in the Chrome-trace export.
    let chrome = export::chrome_trace(&records);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    let commit_pos = chrome
        .find("\"cat\":\"translation-commit\"")
        .expect("commit event exported");
    let simd_call_pos = chrome.find("(simd)").expect("SIMD call event exported");
    assert!(commit_pos < simd_call_pos);

    // And the scalar warm-up calls are on record too.
    assert!(tracer.metrics().counter("calls.scalar") > 0);
    assert!(tracer.metrics().counter("calls.simd") > 0);
}

#[test]
fn tracing_does_not_perturb_cycles() {
    // The tracer is an observer: cycle-for-cycle identical simulations
    // with and without it, for both call events and cache events.
    let w = many_loop_workload(3);
    let b = build_liquid(&w).unwrap();

    let plain = run(&b.program, MachineConfig::liquid(8)).unwrap();
    let tracer = Tracer::new();
    let traced = run(
        &b.program,
        MachineConfig::liquid(8).with_tracer(tracer.clone()),
    )
    .unwrap();

    assert_eq!(plain.report.cycles, traced.report.cycles);
    assert_eq!(plain.report.retired, traced.report.retired);
    assert_eq!(plain.report.mcache, traced.report.mcache);
    assert_eq!(plain.report.icache, traced.report.icache);
    assert_eq!(plain.report.dcache, traced.report.dcache);
    assert!(tracer.emitted() > 0);

    // Retired-instruction tallies are kept even though the ring (by
    // default) does not record the per-instruction events.
    assert_eq!(
        tracer.metrics().counter("instr.retired"),
        traced.report.retired
    );

    // Call events mirror the report's call log exactly.
    assert_eq!(
        tracer.kind_count("call-enter"),
        traced.report.calls.len() as u64
    );
    let simd_calls = traced
        .report
        .calls
        .iter()
        .filter(|c| c.mode == CallMode::Microcode)
        .count() as u64;
    assert_eq!(tracer.metrics().counter("calls.simd"), simd_calls);
}
