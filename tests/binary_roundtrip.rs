//! Binary-format fidelity on realistic programs: every benchmark's Liquid
//! and native binaries are encoded to their 32-bit machine words, decoded
//! back, and the decoded program must (a) be structurally identical and
//! (b) execute to the same cycle count and memory as the original.

use liquid_simd_repro::compiler::{build_liquid, build_native};
use liquid_simd_repro::facade::{run, MachineConfig};
use liquid_simd_repro::isa::encode::{decode_code, encode_code};
use liquid_simd_repro::isa::Program;
use liquid_simd_repro::workloads;

fn roundtrip_program(p: &Program) -> Program {
    let words = encode_code(&p.code).expect("encodes");
    assert_eq!(words.len(), p.code.len());
    let code = decode_code(&words).expect("decodes");
    assert_eq!(code, p.code, "decode(encode(p)) differs");
    Program { code, ..p.clone() }
}

#[test]
fn liquid_binaries_roundtrip_through_machine_words() {
    for w in workloads::smoke() {
        let b = build_liquid(&w).unwrap();
        let decoded = roundtrip_program(&b.program);
        let a = run(&b.program, MachineConfig::liquid(8)).unwrap();
        let c = run(&decoded, MachineConfig::liquid(8)).unwrap();
        assert_eq!(a.report.cycles, c.report.cycles, "{}", w.name);
        assert_eq!(
            a.memory.slice(b.program.data_base, b.program.data.len()),
            c.memory.slice(b.program.data_base, b.program.data.len()),
            "{}",
            w.name
        );
    }
}

#[test]
fn native_binaries_roundtrip_through_machine_words() {
    for w in workloads::smoke() {
        for lanes in [2usize, 16] {
            let b = build_native(&w, lanes).unwrap();
            let decoded = roundtrip_program(&b.program);
            let a = run(&b.program, MachineConfig::native(lanes)).unwrap();
            let c = run(&decoded, MachineConfig::native(lanes)).unwrap();
            assert_eq!(a.report.cycles, c.report.cycles, "{} @{lanes}", w.name);
        }
    }
}

#[test]
fn all_benchmark_binaries_encode() {
    // Every instruction of every build of every benchmark fits the fixed
    // 32-bit encoding (immediates, symbol ids, branch offsets).
    for w in workloads::all() {
        let b = build_liquid(&w).unwrap();
        encode_code(&b.program.code).unwrap_or_else(|e| panic!("{} liquid: {e}", w.name));
        for lanes in [2usize, 4, 8, 16] {
            let n = build_native(&w, lanes).unwrap();
            encode_code(&n.program.code)
                .unwrap_or_else(|e| panic!("{} native@{lanes}: {e}", w.name));
        }
    }
}

#[test]
fn translated_microcode_encodes_to_machine_words() {
    // The microcode cache stores 32 bits per instruction (paper §4.1);
    // everything the translator emits must honour that encoding.
    use liquid_simd_repro::facade::Machine;
    for w in workloads::smoke() {
        let b = build_liquid(&w).unwrap();
        let mut m = Machine::new(&b.program, MachineConfig::liquid(8));
        m.run().unwrap();
        for (pc, code) in m.microcode_snapshot() {
            encode_code(&code).unwrap_or_else(|e| panic!("{} microcode @{pc}: {e}", w.name));
        }
    }
}
