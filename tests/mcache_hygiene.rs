//! Microcode-cache hygiene across external aborts.
//!
//! The paper's Figure 5 pipeline only commits a translation to the
//! microcode cache when the *whole* region has been observed; an abort —
//! interrupt, context switch — at any earlier point must leave the cache
//! untouched. These tests pin that contract end to end: an abort injected
//! mid-translation leaves no entry for the region, a later call to the
//! same region re-translates cleanly, and the results stay gold-correct
//! throughout.

use liquid_simd_repro::conform::gen::LegalSpec;
use liquid_simd_repro::conform::oracle::saw_injected_abort;
use liquid_simd_repro::facade::{build_liquid, gold, verify_against_gold, Machine, MachineConfig};

/// The sweep-sat workload with two driver reps: the region is called
/// twice, so an abort on the first call leaves a second call to observe
/// the retry.
fn two_rep_workload() -> liquid_simd_repro::facade::Workload {
    let spec = LegalSpec {
        reps: 2,
        ..LegalSpec::sweep_sat()
    };
    spec.to_workload().expect("sweep spec builds")
}

#[test]
fn external_abort_leaves_no_partial_entry_and_retry_translates() {
    let w = two_rep_workload();
    let gold_env = gold::run_gold(&w).expect("gold");
    let build = build_liquid(&w).expect("build");

    // Clean run: learn the first translation window.
    let mut clean = Machine::new(&build.program, MachineConfig::liquid(8));
    let clean_report = clean.run().expect("clean run");
    let window = clean_report
        .windows
        .iter()
        .find(|win| win.completed)
        .expect("the region translates cleanly");
    assert!(window.end_retired > window.begin_retired + 1);

    // Abort mid-window (injection at begin_retired is a no-op: translation
    // begins in the control-flow phase *after* that step's injection
    // point, so the first effective index is begin_retired + 1).
    let mid = (window.begin_retired + 1 + window.end_retired) / 2;
    let mut cfg = MachineConfig::liquid(8);
    cfg.interrupt_at = vec![mid];
    let mut m = Machine::new(&build.program, cfg);
    let report = m.run().expect("injected run");

    assert!(
        saw_injected_abort(&report),
        "the injection must surface as an external abort: {:?}",
        report.translator.aborts
    );
    // First attempt aborted, second call re-translated from scratch.
    assert_eq!(report.translator.attempts, 2, "abort then retry");
    assert_eq!(report.translator.successes, 1, "only the retry commits");
    assert_eq!(
        report.mcache.inserts, 1,
        "exactly one cache insert: no partial entry was ever committed"
    );

    // The window log mirrors the story: one aborted window, one completed.
    assert_eq!(report.windows.len(), 2);
    assert!(!report.windows[0].completed);
    assert_eq!(report.windows[0].end_retired, mid);
    assert!(report.windows[1].completed);

    // And the cache now holds the retry's (complete) entry for the region.
    let entries: Vec<u32> = m.microcode_snapshot().iter().map(|(pc, _)| *pc).collect();
    assert_eq!(entries, vec![window.func_pc]);

    verify_against_gold("post-abort", &build.program, m.memory(), &gold_env)
        .expect("scalar fallback plus retry must stay gold-correct");
}

#[test]
fn single_rep_abort_leaves_the_cache_empty() {
    // With one rep there is no second call: after the abort the cache must
    // hold nothing at all for the region.
    let spec = LegalSpec::sweep_sat();
    let w = spec.to_workload().expect("builds");
    let gold_env = gold::run_gold(&w).expect("gold");
    let build = build_liquid(&w).expect("build");

    let mut clean = Machine::new(&build.program, MachineConfig::liquid(8));
    let clean_report = clean.run().expect("clean run");
    let window = clean_report
        .windows
        .iter()
        .find(|win| win.completed)
        .expect("translates cleanly");

    let mid = (window.begin_retired + 1 + window.end_retired) / 2;
    let mut cfg = MachineConfig::liquid(8);
    cfg.interrupt_at = vec![mid];
    let mut m = Machine::new(&build.program, cfg);
    let report = m.run().expect("injected run");

    assert!(saw_injected_abort(&report));
    assert_eq!(report.translator.successes, 0);
    assert_eq!(report.mcache.inserts, 0, "no partial entry");
    assert!(m.microcode_snapshot().is_empty());
    verify_against_gold("aborted", &build.program, m.memory(), &gold_env)
        .expect("scalar fallback must stay gold-correct");
}

#[test]
fn superblock_blocks_are_invalidated_by_evictions_under_tag_pressure() {
    // The superblock hygiene case: `f0` runs hot (its microcode gets
    // lowered into blocks), a sweep of eight other functions then evicts
    // `f0`'s entry under genuine tag pressure (nine entries, the paper's
    // 8-entry geometry), and `f0` retranslates on its next call. The
    // eviction and the overwrite each bump the mcache epoch, which must
    // drop every lowered block keyed on the dead generations — a stale
    // block would replay the evicted microcode. The whole run is diffed
    // byte-for-byte against the interpreter.
    use liquid_simd_repro::facade::BackendKind;
    use liquid_simd_repro::isa::asm;

    let mut data = String::from(".data\n");
    let mut text = String::from(
        ".text\nmain:\n    mov r5, #0\nphase1:\n    bl.v f0\n    add r5, r5, #1\n\
         \x20   cmp r5, #6\n    blt phase1\n",
    );
    for i in 1..9 {
        text.push_str(&format!("    bl.v f{i}\n"));
    }
    text.push_str(
        "    mov r5, #0\nphase3:\n    bl.v f0\n    add r5, r5, #1\n    cmp r5, #4\n\
         \x20   blt phase3\n    halt\n",
    );
    for i in 0..9 {
        let vals: Vec<String> = (0..16).map(|x| (x * 5 + i * 7).to_string()).collect();
        data.push_str(&format!(
            ".i32 A{i}: {}\n.zero B{i}: 16 x 4\n",
            vals.join(", ")
        ));
        text.push_str(&format!(
            "\nf{i}:\n    mov r0, #0\nt{i}:\n    ldw r2, [A{i} + r0]\n    add r2, r2, #{}\n\
             \x20   stw [B{i} + r0], r2\n    add r0, r0, #1\n    cmp r0, #16\n    blt t{i}\n    ret\n",
            i + 1
        ));
    }
    let program = asm::assemble(&format!("{data}\n{text}")).expect("assembles");

    let mut interp = Machine::new(&program, MachineConfig::liquid(8));
    let interp_report = interp.run().expect("interp run");
    let mut sb = Machine::new(
        &program,
        MachineConfig::liquid(8).with_backend(BackendKind::Superblock),
    );
    let sb_report = sb.run().expect("superblock run");

    // The story happened, identically on both backends: nine functions
    // translated, f0 evicted by the sweep and translated a second time.
    assert_eq!(interp_report.translator.successes, 10, "9 + f0's retry");
    assert!(interp_report.mcache.evictions > 0, "no tag pressure");
    assert_eq!(interp_report.mcache, sb_report.mcache);
    assert_eq!(
        interp_report.translator.successes,
        sb_report.translator.successes
    );

    // The hygiene contract: f0's microcode ran hot enough to be lowered,
    // and the eviction dropped those blocks instead of replaying them.
    assert!(sb_report.blocks.lowered > 0, "nothing was lowered");
    assert!(
        sb_report.blocks.invalidations > 0,
        "evictions must invalidate dependent lowered blocks: {:?}",
        sb_report.blocks
    );

    // Byte-for-byte: cycles, registers, the whole memory image.
    assert_eq!(interp_report.cycles, sb_report.cycles);
    assert_eq!(interp.regs().r, sb.regs().r);
    let (base, len) = (interp.memory().base(), interp.memory().size());
    assert_eq!(
        interp.memory().slice(base, len).ok(),
        sb.memory().slice(base, len).ok(),
        "memory images diverged"
    );
}

#[test]
fn every_injection_index_is_clean_on_the_sweep_workloads() {
    // The full exhaustive sweep (every retire index of every window) on
    // both standard workloads — the in-tree version of `liquid-simd
    // conform`'s abort_sweep section.
    for outcome in liquid_simd_repro::conform::abort::run_standard_sweeps(8) {
        assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
        assert!(outcome.points > 0, "{} swept nothing", outcome.name);
    }
}
