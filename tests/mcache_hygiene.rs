//! Microcode-cache hygiene across external aborts.
//!
//! The paper's Figure 5 pipeline only commits a translation to the
//! microcode cache when the *whole* region has been observed; an abort —
//! interrupt, context switch — at any earlier point must leave the cache
//! untouched. These tests pin that contract end to end: an abort injected
//! mid-translation leaves no entry for the region, a later call to the
//! same region re-translates cleanly, and the results stay gold-correct
//! throughout.

use liquid_simd_repro::conform::gen::LegalSpec;
use liquid_simd_repro::conform::oracle::saw_injected_abort;
use liquid_simd_repro::facade::{build_liquid, gold, verify_against_gold, Machine, MachineConfig};

/// The sweep-sat workload with two driver reps: the region is called
/// twice, so an abort on the first call leaves a second call to observe
/// the retry.
fn two_rep_workload() -> liquid_simd_repro::facade::Workload {
    let spec = LegalSpec {
        reps: 2,
        ..LegalSpec::sweep_sat()
    };
    spec.to_workload().expect("sweep spec builds")
}

#[test]
fn external_abort_leaves_no_partial_entry_and_retry_translates() {
    let w = two_rep_workload();
    let gold_env = gold::run_gold(&w).expect("gold");
    let build = build_liquid(&w).expect("build");

    // Clean run: learn the first translation window.
    let mut clean = Machine::new(&build.program, MachineConfig::liquid(8));
    let clean_report = clean.run().expect("clean run");
    let window = clean_report
        .windows
        .iter()
        .find(|win| win.completed)
        .expect("the region translates cleanly");
    assert!(window.end_retired > window.begin_retired + 1);

    // Abort mid-window (injection at begin_retired is a no-op: translation
    // begins in the control-flow phase *after* that step's injection
    // point, so the first effective index is begin_retired + 1).
    let mid = (window.begin_retired + 1 + window.end_retired) / 2;
    let mut cfg = MachineConfig::liquid(8);
    cfg.interrupt_at = vec![mid];
    let mut m = Machine::new(&build.program, cfg);
    let report = m.run().expect("injected run");

    assert!(
        saw_injected_abort(&report),
        "the injection must surface as an external abort: {:?}",
        report.translator.aborts
    );
    // First attempt aborted, second call re-translated from scratch.
    assert_eq!(report.translator.attempts, 2, "abort then retry");
    assert_eq!(report.translator.successes, 1, "only the retry commits");
    assert_eq!(
        report.mcache.inserts, 1,
        "exactly one cache insert: no partial entry was ever committed"
    );

    // The window log mirrors the story: one aborted window, one completed.
    assert_eq!(report.windows.len(), 2);
    assert!(!report.windows[0].completed);
    assert_eq!(report.windows[0].end_retired, mid);
    assert!(report.windows[1].completed);

    // And the cache now holds the retry's (complete) entry for the region.
    let entries: Vec<u32> = m.microcode_snapshot().iter().map(|(pc, _)| *pc).collect();
    assert_eq!(entries, vec![window.func_pc]);

    verify_against_gold("post-abort", &build.program, m.memory(), &gold_env)
        .expect("scalar fallback plus retry must stay gold-correct");
}

#[test]
fn single_rep_abort_leaves_the_cache_empty() {
    // With one rep there is no second call: after the abort the cache must
    // hold nothing at all for the region.
    let spec = LegalSpec::sweep_sat();
    let w = spec.to_workload().expect("builds");
    let gold_env = gold::run_gold(&w).expect("gold");
    let build = build_liquid(&w).expect("build");

    let mut clean = Machine::new(&build.program, MachineConfig::liquid(8));
    let clean_report = clean.run().expect("clean run");
    let window = clean_report
        .windows
        .iter()
        .find(|win| win.completed)
        .expect("translates cleanly");

    let mid = (window.begin_retired + 1 + window.end_retired) / 2;
    let mut cfg = MachineConfig::liquid(8);
    cfg.interrupt_at = vec![mid];
    let mut m = Machine::new(&build.program, cfg);
    let report = m.run().expect("injected run");

    assert!(saw_injected_abort(&report));
    assert_eq!(report.translator.successes, 0);
    assert_eq!(report.mcache.inserts, 0, "no partial entry");
    assert!(m.microcode_snapshot().is_empty());
    verify_against_gold("aborted", &build.program, m.memory(), &gold_env)
        .expect("scalar fallback must stay gold-correct");
}

#[test]
fn every_injection_index_is_clean_on_the_sweep_workloads() {
    // The full exhaustive sweep (every retire index of every window) on
    // both standard workloads — the in-tree version of `liquid-simd
    // conform`'s abort_sweep section.
    for outcome in liquid_simd_repro::conform::abort::run_standard_sweeps(8) {
        assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
        assert!(outcome.points > 0, "{} swept nothing", outcome.name);
    }
}
