//! Microcode-cache capacity behaviour: the paper sizes the cache at 8
//! entries because no benchmark has more hot loops; here we build a
//! workload with *twelve* hot loops and check that (a) LRU eviction and
//! retranslation keep everything correct, and (b) enlarging the cache
//! removes the evictions.

use liquid_simd_repro::compiler::{ArrayBuilder, KernelBuilder, Workload};
use liquid_simd_repro::facade::{run, verify_against_gold, MachineConfig};
use liquid_simd_repro::isa::{ElemType, VAluOp};

fn twelve_loop_workload() -> Workload {
    let mut kernels = Vec::new();
    let mut data = ArrayBuilder::new();
    for i in 0..12 {
        let name = format!("k{i}");
        let mut k = KernelBuilder::new(&name, 32);
        let a = k.load(&format!("in{i}"), ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, i + 1);
        let c = k.bin_imm(VAluOp::Eor, b, 21);
        k.store(&format!("out{i}"), c);
        kernels.push(k.build().unwrap());
        data = data
            .int(
                &format!("in{i}"),
                ElemType::I32,
                (0..32).map(|x| x * 3 + i64::from(i)).collect::<Vec<i64>>(),
            )
            .zeroed(&format!("out{i}"), ElemType::I32, 32);
    }
    Workload::new("twelve", kernels, data.build(), 12)
}

#[test]
fn eviction_and_retranslation_stay_correct() {
    let w = twelve_loop_workload();
    let gold = liquid_simd_repro::compiler::gold::run_gold(&w).unwrap();
    let b = liquid_simd_repro::compiler::build_liquid(&w).unwrap();

    // Paper geometry: 8 entries for 12 hot loops -> continuous eviction.
    let out = run(&b.program, MachineConfig::liquid(8)).unwrap();
    verify_against_gold("12loops@8entries", &b.program, &out.memory, &gold).unwrap();
    assert!(
        out.report.mcache.evictions > 0,
        "twelve loops must not fit eight entries: {:?}",
        out.report.mcache
    );
    // Evicted loops are re-translated on later encounters.
    assert!(
        out.report.translator.attempts > 12,
        "expected retranslation, attempts = {}",
        out.report.translator.attempts
    );

    // A 16-entry cache captures the working set: no evictions, exactly one
    // translation per loop.
    let mut cfg = MachineConfig::liquid(8);
    cfg.mcache_entries = 16;
    let out16 = run(&b.program, cfg).unwrap();
    verify_against_gold("12loops@16entries", &b.program, &out16.memory, &gold).unwrap();
    assert_eq!(out16.report.mcache.evictions, 0);
    assert_eq!(out16.report.translator.attempts, 12);
    assert!(out16.report.cycles <= out.report.cycles);
}

#[test]
fn paper_benchmarks_fit_eight_entries() {
    // The paper's claim: 8 entries suffice for every benchmark's hot-loop
    // working set. (FFT and hydro2d are the widest, at 4 and 8 loops.)
    for w in liquid_simd_repro::workloads::all() {
        let b = liquid_simd_repro::compiler::build_liquid(&w).unwrap();
        let out = run(&b.program, MachineConfig::liquid(8)).unwrap();
        assert_eq!(
            out.report.mcache.evictions, 0,
            "{}: evictions at the paper geometry",
            w.name
        );
    }
}
