//! End-to-end smoke of `liquid-simd serve`: a real daemon on a loopback
//! socket, raw `TcpStream` clients speaking the `serve-v1` wire protocol,
//! byte-identity between served responses and direct one-shot execution,
//! graceful budget rejections, cross-shard determinism, and the full
//! telemetry loop (load generator → `perfhist-serve-v1` records →
//! sentinel verdict).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use liquid_simd_repro::perfhist::{self, Json};
use liquid_simd_repro::serve::cache::BuildCache;
use liquid_simd_repro::serve::loadgen::{self, LoadOptions};
use liquid_simd_repro::serve::{ops, proto, ServeOptions};

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn spawn_daemon(shards: usize, history: Option<PathBuf>) -> liquid_simd_repro::serve::ServerHandle {
    liquid_simd_repro::serve::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        shards,
        history,
        history_every: 0,
        ..ServeOptions::default()
    })
    .expect("daemon binds loopback")
}

/// Sends `lines` on one connection and reads exactly one response per line.
fn talk(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    for line in lines {
        writeln!(stream, "{line}").unwrap();
    }
    stream.flush().unwrap();
    let reader = BufReader::new(stream);
    let got: Vec<String> = reader
        .lines()
        .take(lines.len())
        .map(|l| l.expect("response line"))
        .collect();
    assert_eq!(got.len(), lines.len(), "one response per request");
    got
}

/// What the one-shot path produces for `line`: parse, compile, execute,
/// splice the id — the exact pipeline minus the socket and the shards.
fn direct(line: &str, builds: &BuildCache) -> String {
    let req = proto::parse_request(line).expect("request parses");
    let entry = builds
        .workload(req.workload.as_deref().expect("workload request"))
        .expect("workload compiles");
    let out = ops::execute(&req, &entry.program, &entry.name);
    proto::with_id(&out.body, req.id.as_ref())
}

#[test]
fn served_responses_match_direct_execution_across_shard_counts() {
    let lines = [
        r#"{"op":"translate","workload":"fir","width":8,"id":"t1"}"#,
        r#"{"op":"run","workload":"fft","width":8,"report":true,"id":"r1"}"#,
        r#"{"op":"run","workload":"fir","width":4,"id":"r2"}"#,
        r#"{"op":"explain","workload":"lu","widths":[2,8],"id":"e1"}"#,
    ];
    let builds = BuildCache::default();
    let expected: Vec<String> = lines.iter().map(|l| direct(l, &builds)).collect();

    let mut by_shards = Vec::new();
    for shards in [1, 3] {
        let handle = spawn_daemon(shards, None);
        let got = talk(handle.addr, &lines);
        handle.shutdown();
        let summary = handle.join().expect("clean daemon exit");
        assert_eq!(summary.errors, 0, "all requests succeed at {shards} shards");
        by_shards.push(got);
    }
    assert_eq!(by_shards[0], expected, "served output == one-shot output");
    assert_eq!(
        by_shards[0], by_shards[1],
        "responses byte-identical at 1 vs 3 shards"
    );
    // Every response is a tagged serve-v1 document echoing its id.
    for (line, resp) in lines.iter().zip(&by_shards[0]) {
        let doc = Json::parse(resp).expect("response is JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("serve-v1"));
        let want_id = Json::parse(line).unwrap().get("id").cloned();
        assert_eq!(doc.get("id"), want_id.as_ref());
    }
}

#[test]
fn budgets_reject_gracefully_and_stats_sees_the_cache() {
    let handle = spawn_daemon(2, None);
    let responses = talk(
        handle.addr,
        &[
            r#"{"op":"run","workload":"fir","width":8,"budget_cycles":10,"id":1}"#,
            r#"{"op":"run","workload":"fir","width":8,"id":2}"#,
            r#"{"op":"run","workload":"fir","width":8,"id":3}"#,
        ],
    );
    let rejected = Json::parse(&responses[0]).unwrap();
    assert_eq!(
        rejected.get("schema").and_then(Json::as_str),
        Some("serve-err-v1")
    );
    assert_eq!(
        rejected.get("kind").and_then(Json::as_str),
        Some("budget-exceeded"),
        "budget rejection, not a worker death"
    );
    // The worker survived the rejection: the healthy repeats still answer,
    // identically to each other (the second is a cache hit).
    let ok = Json::parse(&responses[1]).unwrap();
    assert_eq!(ok.get("schema").and_then(Json::as_str), Some("serve-v1"));
    assert_eq!(
        responses[1].replace("\"id\":2", ""),
        responses[2].replace("\"id\":3", "")
    );

    // Stats over a fresh connection reflect the finished work.
    let stats = talk(handle.addr, &[r#"{"op":"stats"}"#]);
    let doc = Json::parse(&stats[0]).unwrap();
    let hits = doc
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits >= 1, "repeat run was a cache hit (got {hits})");

    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.errors, 1, "exactly the budget rejection");
}

#[test]
fn loadgen_history_feeds_the_sentinel() {
    let history = tmpfile("serve-history.jsonl");
    let _ = std::fs::remove_file(&history);
    let report = loadgen::run(&LoadOptions {
        smoke: true,
        backend: Default::default(),
        clients: 2,
        requests_per_client: 12,
        shards: 3,
        min_hit_rate: 0.0,
        history: Some(history.clone()),
        seed: 0x5EED,
        measure_recorder: false,
    })
    .expect("load generator passes");
    assert_eq!(report.requests, 24);
    assert_eq!(
        report.single.determinism, report.sharded.determinism,
        "determinism triple equal across shard counts"
    );

    // Both passes appended a perfhist-serve-v1 record over the same
    // request multiset, so the sentinel has a comparable baseline pair.
    let records = perfhist::store::load(&history).expect("history parses");
    assert!(report.single.records_appended >= 1);
    assert!(report.sharded.records_appended >= 1);
    let verdict = perfhist::sentinel::check(&records, &Default::default());
    assert!(
        !verdict.failed,
        "matched serve passes satisfy the sentinel: {}",
        verdict.json.write()
    );
    let serve_status = verdict
        .json
        .get("serve")
        .and_then(|s| s.get("status"))
        .and_then(Json::as_str);
    assert_eq!(serve_status, Some("pass"));
}
