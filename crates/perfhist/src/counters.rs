//! Counter telemetry: one flat, dotted-name snapshot of everything a run
//! measured — the "counters" object embedded in each `perfhist-v1` record.
//!
//! The names form a stable public surface (the dashboard diffs them
//! against a baseline record), so they are chosen once and documented in
//! EXPERIMENTS.md: `translator.*` for the automaton, `mcache.*` for the
//! microcode cache, `icache.*`/`dcache.*` for the memory system, and
//! `lanes.*` for SIMD lane utilization.

use std::collections::BTreeMap;

use liquid_simd_sim::RunReport;

/// Flattens one run's [`RunReport`] into dotted counter names. Everything
/// is a monotonic count, so snapshots from several workloads can be summed
/// with [`merge`] into a suite-wide registry.
#[must_use]
pub fn snapshot(report: &RunReport) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let mut put = |k: &str, v: u64| {
        out.insert(k.to_string(), v);
    };
    put("cycles", report.cycles);
    put("retired", report.retired);
    put("retired.scalar", report.scalar_retired);
    put("retired.vector", report.vector_retired);
    put("lanes.ops", report.lane_ops);
    put("icache.accesses", report.icache.accesses);
    put("icache.hits", report.icache.hits);
    put("dcache.accesses", report.dcache.accesses);
    put("dcache.hits", report.dcache.hits);
    put("mcache.lookups", report.mcache.lookups);
    put("mcache.hits", report.mcache.hits);
    put(
        "mcache.misses",
        report
            .mcache
            .lookups
            .saturating_sub(report.mcache.hits + report.mcache.pending),
    );
    put("mcache.pending", report.mcache.pending);
    put("mcache.inserts", report.mcache.inserts);
    put("mcache.evictions", report.mcache.evictions);
    put("mcache.conflicts", report.mcache.conflicts);
    let t = &report.translator;
    put("translator.attempts", t.attempts);
    put("translator.successes", t.successes);
    put("translator.aborted", t.aborted());
    put("translator.uops_emitted", t.uops_emitted);
    put("translator.instrs_observed", t.instrs_observed);
    put("translator.phase.collect", t.collect_observed);
    put("translator.phase.loop", t.loop_observed);
    put("translator.buffer_high_water", t.buffer_high_water);
    put("phases.scalar_cycles", report.phases.scalar_cycles);
    put("phases.micro_cycles", report.phases.micro_cycles);
    put("phases.jit_stall_cycles", report.phases.jit_stall_cycles);
    // Backend attribution (one run, tagged with whichever backend executed
    // it) — summed across runs or serve shards, these show how work split
    // between backends.
    put(&format!("backend.{}.runs", report.backend.name()), 1);
    put(
        &format!("backend.{}.cycles", report.backend.name()),
        report.cycles,
    );
    for (tag, &n) in &t.aborts {
        out.insert(format!("translator.abort.{tag}"), n);
    }
    // Superblock block-cache telemetry, under the canonical `blocks.*`
    // names the sim crate defines. Only emitted when the backend actually
    // did block work, so interpreter records stay byte-compatible with
    // pre-backend history baselines.
    let blocks = report.blocks.metrics();
    if blocks.counters().values().any(|&v| v > 0) {
        for (name, &v) in blocks.counters() {
            out.insert(name.clone(), v);
        }
    }
    // Cycle-ledger category totals, only when the run recorded a ledger —
    // ledger-off runs (the default) stay byte-compatible with pre-ledger
    // history baselines.
    if let Some(ledger) = &report.ledger {
        for (cat, bucket) in ledger.category_totals() {
            out.insert(format!("ledger.{}.cycles", cat.name()), bucket.cycles);
            out.insert(format!("ledger.{}.events", cat.name()), bucket.events);
        }
    }
    out
}

/// Builds a labelled ledger [`Snapshot`](liquid_simd_sim::LedgerSnapshot)
/// from one run: the attribution buckets plus the run's deterministic
/// counter telemetry as corroborating evidence. `ledger.*` keys are left
/// out (they restate the categories) and `backend.*` keys are left out
/// (run metadata, not cost). This is the one code path behind
/// `liquid-simd diff` and the pinned diff fixtures, so both stay
/// byte-identical by construction.
#[must_use]
pub fn ledger_snapshot(
    label: &str,
    report: &RunReport,
    names: &BTreeMap<u32, String>,
) -> liquid_simd_sim::LedgerSnapshot {
    let ledger = report.ledger.clone().unwrap_or_default();
    let mut snap = liquid_simd_sim::LedgerSnapshot::from_ledger(label, &ledger, names);
    for (k, v) in snapshot(report) {
        if !k.starts_with("ledger.") && !k.starts_with("backend.") {
            snap.counters.insert(k, v);
        }
    }
    snap
}

/// Sums `add` into `acc` (union of names, values added) — suite-wide
/// aggregation across workload snapshots.
pub fn merge(acc: &mut BTreeMap<String, u64>, add: &BTreeMap<String, u64>) {
    for (k, &v) in add {
        *acc.entry(k.clone()).or_insert(0) += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_are_stable_and_merge_adds() {
        let mut translator = liquid_simd_translator::TranslatorStats {
            attempts: 3,
            ..Default::default()
        };
        translator.record_abort("cam-miss");
        let r = RunReport {
            cycles: 100,
            vector_retired: 4,
            lane_ops: 32,
            mcache: liquid_simd_sim::McacheStats {
                lookups: 10,
                hits: 7,
                pending: 1,
                conflicts: 2,
                ..Default::default()
            },
            translator,
            ..Default::default()
        };
        let a = snapshot(&r);
        assert_eq!(a["cycles"], 100);
        assert_eq!(a["lanes.ops"], 32);
        assert_eq!(a["mcache.misses"], 2);
        assert_eq!(a["mcache.conflicts"], 2);
        assert_eq!(a["translator.abort.cam-miss"], 1);
        let mut acc = a.clone();
        merge(&mut acc, &a);
        assert_eq!(acc["cycles"], 200);
        assert_eq!(acc["translator.abort.cam-miss"], 2);
        // Interpreter runs (all-zero block stats) emit no blocks.* keys,
        // and ledger-off runs emit no ledger.* keys.
        assert!(!a.keys().any(|k| k.starts_with("blocks.")));
        assert!(!a.keys().any(|k| k.starts_with("ledger.")));
    }

    #[test]
    fn ledger_runs_emit_category_counters() {
        let mut ledger = liquid_simd_sim::Ledger::new();
        ledger.charge(7, 9, liquid_simd_sim::LedgerCategory::VectorExecute, 64);
        ledger.event(7, 3, liquid_simd_sim::LedgerCategory::McacheProbe);
        let r = RunReport {
            ledger: Some(ledger),
            ..Default::default()
        };
        let c = snapshot(&r);
        assert_eq!(c["ledger.vector-execute.cycles"], 64);
        assert_eq!(c["ledger.vector-execute.events"], 1);
        assert_eq!(c["ledger.mcache-probe.cycles"], 0);
        assert_eq!(c["ledger.mcache-probe.events"], 1);
    }

    #[test]
    fn superblock_runs_emit_blocks_counters() {
        let r = RunReport {
            blocks: liquid_simd_sim::BlockStats {
                lowered: 3,
                lowered_instrs: 21,
                hits: 40,
                misses: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let c = snapshot(&r);
        assert_eq!(c["blocks.lowered"], 3);
        assert_eq!(c["blocks.cache_hits"], 40);
        assert_eq!(c["blocks.fallback.control"], 0);
    }
}
