//! Performance history and regression gating for the Liquid SIMD repo.
//!
//! The paper's whole pipeline is deterministic by construction: the same
//! program on the same [`liquid_simd_sim::MachineConfig`] retires the same
//! instructions in the same cycles, every run, on every host. That makes
//! simulated cycle counts a *regression contract*, not a measurement — any
//! drift is a code change, never noise. This crate turns that property
//! into infrastructure:
//!
//! * [`store`] — an append-only `bench/history.jsonl`: every `liquid-simd
//!   bench` run appends one [`record`]-built `perfhist-v1` line keyed by
//!   git commit, timestamp, host fingerprint, and machine-config hash.
//!   Loading preserves unknown fields and future schemas byte-for-byte.
//! * [`counters`] — one flat, dotted-name snapshot per record of
//!   everything the run counted: translator automaton phase occupancy and
//!   abort tallies, mcache hit/miss/eviction/conflict counts, SIMD lane
//!   utilization, microcode-buffer high-water.
//! * [`sentinel`] — the regression gate. Deterministic `sim_cycles` are
//!   compared *exactly* against a comparable baseline record (same config
//!   hash, suite, and widths) and any drift — regression or improvement —
//!   fails, because an unexplained cycle change means the simulator
//!   changed. Wall-clock throughput gets robust median/MAD statistics and
//!   can only warn.
//! * [`dashboard`] — a single self-contained HTML report (inline SVG and
//!   CSS, no JavaScript, no external fetches): cycle-trend sparklines,
//!   width-speedup bars in the paper's Figure 6 shape, counter deltas,
//!   and a flamegraph folded from the tracer's span records.
//! * [`json`] — the hand-rolled, zero-dependency JSON model underneath it
//!   all, which preserves key order and raw number text so that
//!   append → load → re-serialize is the identity function.

#![warn(missing_docs)]

pub mod counters;
pub mod dashboard;
pub mod json;
pub mod record;
pub mod sentinel;
pub mod store;

pub use json::Json;
pub use record::{FamilyRow, RecordMeta, WorkloadRow, GEN_SCHEMA, SCHEMA, SERVE_SCHEMA};
pub use sentinel::{cross_check, SentinelOptions, Verdict};
