//! `perfhist-v1` record construction and manipulation.
//!
//! One record captures one bench invocation: identity (git commit,
//! timestamp, host, machine-config hash), the deterministic results
//! (per-workload simulated cycles, including the scalar baseline and every
//! swept width), the counter-telemetry snapshot, and the wall-clock
//! measurements. Deterministic and wall-clock fields are deliberately
//! separated: `sim_cycles` must be byte-identical run-to-run (the sentinel
//! hard gate), while `wall_s` legitimately varies — [`scrub_wall`] strips
//! exactly the varying fields, and the equality of two scrubbed records is
//! the acceptance test for `--jobs 1` vs `--jobs 8`.

use std::collections::BTreeMap;

use crate::json::Json;

/// The record schema tag this crate writes.
pub const SCHEMA: &str = "perfhist-v1";

/// The schema tag of serving-telemetry records: one per completed serve
/// batch, written by `liquid-simd serve` / `bench --serve`. They share the
/// history file with [`SCHEMA`] records — readers filter by schema — and
/// carry throughput/latency/cache telemetry plus the order-independent
/// determinism hashes the sentinel gates on.
pub const SERVE_SCHEMA: &str = "perfhist-serve-v1";

/// The schema tag of generated-family records: one per `bench
/// --families` invocation, summarising each kernelgen family as a
/// speedup *distribution* (p10/p50/p90 over its variants) plus the
/// abort tags its untranslatable variants exercised. They share the
/// history file with [`SCHEMA`] records — readers filter by schema.
pub const GEN_SCHEMA: &str = "perfhist-gen-v1";

/// One workload's measurements inside a record.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRow {
    /// Workload name (paper Table 5 set).
    pub name: String,
    /// Scalar-only machine cycles — the speedup denominator.
    pub baseline_cycles: u64,
    /// Liquid machine cycles at the headline width (8 lanes).
    pub sim_cycles: u64,
    /// Liquid machine cycles at every swept width, `(width, cycles)`.
    pub cycles_by_width: Vec<(usize, u64)>,
    /// Wall-clock seconds of the timed 8-lane run.
    pub wall_s: f64,
    /// Simulated cycles per wall-clock second (throughput).
    pub cycles_per_sec: f64,
    /// Compact cycle-ledger snapshot of the headline-width run (category
    /// and region rollups), present only when bench ran with `--ledger`.
    /// `None` keeps the row byte-identical to pre-ledger records.
    pub ledger: Option<Json>,
}

/// Identity fields shared by every record from one bench invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordMeta {
    /// `git rev-parse HEAD`, or `"unknown"` outside a checkout.
    pub commit: String,
    /// Unix seconds at record creation.
    pub timestamp: u64,
    /// Host fingerprint (`os-arch-hostname`).
    pub host: String,
    /// Hex `MachineConfig::fingerprint()` of the liquid config measured.
    pub config_hash: String,
    /// Whether this was the reduced `--smoke` suite.
    pub smoke: bool,
    /// Widths swept.
    pub widths: Vec<usize>,
    /// Execution backend name (`"interp"` / `"superblock"`). Backends are
    /// observationally identical, so this is excluded from `config_hash`;
    /// the sentinel still pairs baselines per backend because wall-clock
    /// throughput differs wildly between them. Records written before the
    /// field existed are read as `"interp"`.
    pub backend: String,
}

/// Builds a `perfhist-v1` record. `wall` carries invocation-level
/// wall-clock extras (e.g. the figure-6 sweep timings) and may be empty.
#[must_use]
pub fn build(
    meta: &RecordMeta,
    workloads: &[WorkloadRow],
    counters: &BTreeMap<String, u64>,
    wall: &[(String, f64)],
) -> Json {
    let mut rec = Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.to_string())),
        ("commit".to_string(), Json::Str(meta.commit.clone())),
        ("timestamp".to_string(), Json::u64(meta.timestamp)),
        ("host".to_string(), Json::Str(meta.host.clone())),
        (
            "config_hash".to_string(),
            Json::Str(meta.config_hash.clone()),
        ),
        ("smoke".to_string(), Json::Bool(meta.smoke)),
        (
            "widths".to_string(),
            Json::Arr(meta.widths.iter().map(|&w| Json::u64(w as u64)).collect()),
        ),
        ("backend".to_string(), Json::Str(meta.backend.clone())),
    ]);
    let rows = workloads
        .iter()
        .map(|w| {
            let mut row = Json::Obj(vec![
                ("name".to_string(), Json::Str(w.name.clone())),
                ("baseline_cycles".to_string(), Json::u64(w.baseline_cycles)),
                ("sim_cycles".to_string(), Json::u64(w.sim_cycles)),
            ]);
            row.set(
                "cycles_by_width",
                Json::Obj(
                    w.cycles_by_width
                        .iter()
                        .map(|&(width, cycles)| (width.to_string(), Json::u64(cycles)))
                        .collect(),
                ),
            );
            if let Some(ledger) = &w.ledger {
                row.set("ledger", ledger.clone());
            }
            row.set("wall_s", Json::f64(w.wall_s));
            row.set("sim_cycles_per_sec", Json::f64(w.cycles_per_sec));
            row
        })
        .collect();
    rec.set("workloads", Json::Arr(rows));
    rec.set(
        "counters",
        Json::Obj(
            counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::u64(v)))
                .collect(),
        ),
    );
    rec.set(
        "wall",
        Json::Obj(
            wall.iter()
                .map(|(k, v)| (k.clone(), Json::f64(*v)))
                .collect(),
        ),
    );
    rec
}

/// One generated family's summary inside a [`GEN_SCHEMA`] record. All
/// fields derive from simulated cycles, so they are deterministic and
/// survive [`scrub_wall`].
#[derive(Clone, Debug, PartialEq)]
pub struct FamilyRow {
    /// Family name from the kernel-v1 spec.
    pub family: String,
    /// How many variants the family expanded to.
    pub variants: u64,
    /// 10th / 50th / 90th percentile headline-width speedup over the
    /// family's translatable variants (nearest-rank; 0 when none).
    pub speedup_p10: f64,
    /// Median speedup.
    pub speedup_p50: f64,
    /// 90th-percentile speedup.
    pub speedup_p90: f64,
    /// Abort tags observed across the family's variants, with counts.
    pub aborts: Vec<(String, u64)>,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
/// Returns 0 for an empty slice.
#[must_use]
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Builds a `perfhist-gen-v1` record from per-family summaries.
#[must_use]
pub fn build_gen(meta: &RecordMeta, families: &[FamilyRow], wall: &[(String, f64)]) -> Json {
    let mut rec = Json::Obj(vec![
        ("schema".to_string(), Json::Str(GEN_SCHEMA.to_string())),
        ("commit".to_string(), Json::Str(meta.commit.clone())),
        ("timestamp".to_string(), Json::u64(meta.timestamp)),
        ("host".to_string(), Json::Str(meta.host.clone())),
        (
            "config_hash".to_string(),
            Json::Str(meta.config_hash.clone()),
        ),
        ("smoke".to_string(), Json::Bool(meta.smoke)),
        (
            "widths".to_string(),
            Json::Arr(meta.widths.iter().map(|&w| Json::u64(w as u64)).collect()),
        ),
        ("backend".to_string(), Json::Str(meta.backend.clone())),
    ]);
    let rows = families
        .iter()
        .map(|f| {
            let mut row = Json::Obj(vec![
                ("family".to_string(), Json::Str(f.family.clone())),
                ("variants".to_string(), Json::u64(f.variants)),
            ]);
            row.set("speedup_p10", Json::f64(f.speedup_p10));
            row.set("speedup_p50", Json::f64(f.speedup_p50));
            row.set("speedup_p90", Json::f64(f.speedup_p90));
            row.set(
                "aborts",
                Json::Obj(
                    f.aborts
                        .iter()
                        .map(|(tag, n)| (tag.clone(), Json::u64(*n)))
                        .collect(),
                ),
            );
            row
        })
        .collect();
    rec.set("families", Json::Arr(rows));
    rec.set(
        "wall",
        Json::Obj(
            wall.iter()
                .map(|(k, v)| (k.clone(), Json::f64(*v)))
                .collect(),
        ),
    );
    rec
}

/// Strips every field that legitimately varies between two runs of the
/// same code on the same machine: the timestamp and all wall-clock
/// measurements. What remains must be byte-identical for identical code —
/// the determinism contract `--jobs 1` vs `--jobs 8` is tested against.
pub fn scrub_wall(record: &mut Json) {
    record.remove("timestamp");
    record.remove("wall");
    if let Some(Json::Arr(rows)) = record.get("workloads").cloned().as_ref() {
        let scrubbed: Vec<Json> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.remove("wall_s");
                r.remove("sim_cycles_per_sec");
                r
            })
            .collect();
        record.set("workloads", Json::Arr(scrubbed));
    }
}

/// Converts a `liquid-simd-bench-v1` snapshot (the legacy overwritten
/// `BENCH_sim.json`) into one `perfhist-v1` record, so an existing
/// snapshot can seed a history file. Per-width cycles and the scalar
/// baseline carry over when the snapshot has them (pre-history snapshots
/// don't; those fields default to empty/zero).
///
/// # Errors
///
/// Returns a message when `snapshot` is not a bench-v1 object.
pub fn from_bench_snapshot(snapshot: &Json, meta: &RecordMeta) -> Result<Json, String> {
    let schema = snapshot.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "liquid-simd-bench-v1" {
        return Err(format!("expected liquid-simd-bench-v1, got '{schema}'"));
    }
    let rows = snapshot
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or("bench snapshot has no workloads array")?;
    let workloads: Vec<WorkloadRow> = rows
        .iter()
        .map(|r| WorkloadRow {
            name: r
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            baseline_cycles: r.get("baseline_cycles").and_then(Json::as_u64).unwrap_or(0),
            sim_cycles: r.get("sim_cycles").and_then(Json::as_u64).unwrap_or(0),
            cycles_by_width: r
                .get("cycles_by_width")
                .and_then(Json::as_obj)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|(w, v)| Some((w.parse().ok()?, v.as_u64()?)))
                        .collect()
                })
                .unwrap_or_default(),
            wall_s: r.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
            cycles_per_sec: r
                .get("sim_cycles_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            ledger: r.get("ledger").cloned(),
        })
        .collect();
    let mut meta = meta.clone();
    meta.smoke = snapshot
        .get("smoke")
        .map(|s| *s == Json::Bool(true))
        .unwrap_or(false);
    if let Some(widths) = snapshot.get("widths").and_then(Json::as_arr) {
        meta.widths = widths
            .iter()
            .filter_map(|w| w.as_u64().map(|v| v as usize))
            .collect();
    }
    if let Some(backend) = snapshot.get("backend").and_then(Json::as_str) {
        meta.backend = backend.to_string();
    }
    let mut wall = Vec::new();
    if let Some(sweep) = snapshot.get("figure6_sweep").and_then(Json::as_obj) {
        for (k, v) in sweep {
            if let Some(f) = v.as_f64() {
                wall.push((format!("figure6_{k}"), f));
            }
        }
    }
    Ok(build(&meta, &workloads, &BTreeMap::new(), &wall))
}

/// `git rev-parse HEAD` in `dir`, or `"unknown"` when unavailable.
#[must_use]
pub fn git_commit(dir: &std::path::Path) -> String {
    std::process::Command::new("git")
        .arg("rev-parse")
        .arg("HEAD")
        .current_dir(dir)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `os-arch-hostname` host fingerprint, from compile-time target facts and
/// the runtime hostname (`HOSTNAME` env, then `/etc/hostname`, then
/// `"unknown-host"`).
#[must_use]
pub fn host_fingerprint() -> String {
    let hostname = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown-host".to_string());
    format!(
        "{}-{}-{hostname}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Unix seconds now (0 if the clock predates the epoch).
#[must_use]
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RecordMeta {
        RecordMeta {
            commit: "abc123".to_string(),
            timestamp: 1_700_000_000,
            host: "linux-x86_64-test".to_string(),
            config_hash: "deadbeef".to_string(),
            smoke: false,
            widths: vec![2, 8],
            backend: "interp".to_string(),
        }
    }

    fn row(name: &str, wall_s: f64) -> WorkloadRow {
        WorkloadRow {
            name: name.to_string(),
            baseline_cycles: 1000,
            sim_cycles: 250,
            cycles_by_width: vec![(2, 600), (8, 250)],
            wall_s,
            cycles_per_sec: 250.0 / wall_s,
            ledger: None,
        }
    }

    #[test]
    fn ledger_snapshot_splices_into_the_row_only_when_present() {
        let counters = BTreeMap::new();
        let plain = build(&meta(), &[row("FIR", 0.5)], &counters, &[]);
        assert!(!plain.write().contains("\"ledger\""));
        let mut with = row("FIR", 0.5);
        with.ledger =
            Some(Json::parse(r#"{"total_cycles":250,"categories":{"scalar-execute":{"cycles":250,"events":100}}}"#).unwrap());
        let rec = build(&meta(), &[with], &counters, &[]);
        let rows = rec.get("workloads").and_then(Json::as_arr).unwrap();
        let led = rows[0].get("ledger").expect("ledger spliced");
        assert_eq!(led.get("total_cycles").and_then(Json::as_u64), Some(250));
        // The ledger is deterministic telemetry: it survives scrubbing.
        let mut scrubbed = rec.clone();
        scrub_wall(&mut scrubbed);
        assert!(scrubbed.write().contains("\"ledger\""));
    }

    #[test]
    fn build_emits_schema_and_round_trips() {
        let mut counters = BTreeMap::new();
        counters.insert("cycles".to_string(), 250u64);
        let rec = build(
            &meta(),
            &[row("FIR", 0.5)],
            &counters,
            &[("figure6_serial_s".to_string(), 1.25)],
        );
        let text = rec.write();
        assert!(text.starts_with("{\"schema\":\"perfhist-v1\""));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.write(), text);
        let rows = back.get("workloads").and_then(Json::as_arr).unwrap();
        let cbw = rows[0].get("cycles_by_width").unwrap();
        assert_eq!(cbw.get("8").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn scrub_wall_removes_exactly_the_varying_fields() {
        let counters = BTreeMap::new();
        let mut a = build(&meta(), &[row("FIR", 0.5)], &counters, &[]);
        let mut b = build(
            &RecordMeta {
                timestamp: 1_700_009_999,
                ..meta()
            },
            &[row("FIR", 0.125)],
            &counters,
            &[("x".to_string(), 9.0)],
        );
        assert_ne!(a.write(), b.write());
        scrub_wall(&mut a);
        scrub_wall(&mut b);
        assert_eq!(a.write(), b.write(), "only wall fields differed");
        assert!(a.get("commit").is_some(), "identity fields survive");
        assert!(a.get("counters").is_some());
    }

    #[test]
    fn gen_record_round_trips_and_scrubs_deterministic() {
        let fam = FamilyRow {
            family: "stencil3_f32".to_string(),
            variants: 12,
            speedup_p10: 1.5,
            speedup_p50: 2.25,
            speedup_p90: 3.0,
            aborts: vec![("trip-not-multiple".to_string(), 2)],
        };
        let mut a = build_gen(
            &meta(),
            std::slice::from_ref(&fam),
            &[("expand_s".to_string(), 0.5)],
        );
        let text = a.write();
        assert!(text.starts_with("{\"schema\":\"perfhist-gen-v1\""));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.write(), text);

        let mut b = build_gen(
            &RecordMeta {
                timestamp: 1_700_009_999,
                ..meta()
            },
            &[fam],
            &[("expand_s".to_string(), 9.0)],
        );
        assert_ne!(a.write(), b.write());
        scrub_wall(&mut a);
        scrub_wall(&mut b);
        assert_eq!(a.write(), b.write(), "family rows are deterministic");
        assert!(a.get("families").is_some());
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&v, 10.0), 1.0);
        assert_eq!(nearest_rank(&v, 50.0), 2.0);
        assert_eq!(nearest_rank(&v, 90.0), 4.0);
        assert_eq!(nearest_rank(&v, 100.0), 4.0);
        assert_eq!(nearest_rank(&[], 50.0), 0.0);
        assert_eq!(nearest_rank(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn bench_snapshot_converts() {
        let snap = Json::parse(
            r#"{"schema":"liquid-simd-bench-v1","jobs":2,"smoke":true,"widths":[2,8],
                "workloads":[{"name":"FIR","sim_cycles":123,"wall_s":0.5,"sim_cycles_per_sec":246.0}],
                "figure6_sweep":{"serial_s":1.0,"parallel_s":0.5,"speedup":2.0,"deterministic":true}}"#,
        )
        .unwrap();
        let rec = from_bench_snapshot(&snap, &meta()).unwrap();
        assert_eq!(rec.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(rec.get("smoke"), Some(&Json::Bool(true)));
        let rows = rec.get("workloads").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("sim_cycles").and_then(Json::as_u64), Some(123));
        assert!(rec
            .get("wall")
            .and_then(|w| w.get("figure6_serial_s"))
            .is_some());
        assert!(from_bench_snapshot(&Json::Null, &meta()).is_err());
    }
}
