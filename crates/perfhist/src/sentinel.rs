//! The regression sentinel: compares the newest history record against a
//! baseline window and emits a `sentinel-v1` verdict.
//!
//! Two classes of signal, treated very differently:
//!
//! * **Simulated cycles are deterministic.** The same code at the same
//!   machine config must produce *identical* `sim_cycles` — so the gate is
//!   exact match, and **any** drift (faster or slower) fails: an
//!   unexplained improvement is as suspicious as a regression, and an
//!   intended one must be acknowledged by appending a fresh baseline.
//! * **Wall-clock throughput is noisy.** The sentinel compares the newest
//!   `sim_cycles_per_sec` against the baseline window's median with a MAD-
//!   scaled noise band and only *warns* — CI never fails on wall clock.
//!
//! `perfhist-serve-v1` records (the serve daemon's batch telemetry) get
//! the same two-class treatment: the `determinism` hashes are exact-match
//! gated against the latest older serve record that served the same
//! request multiset (equal `requests_hash`), while throughput and latency
//! are advisory. A serve record with no comparable baseline is only a
//! failure when the history has nothing else to gate on — the bench gate
//! keeps CI honest while a new request mix seeds its first record.

use liquid_simd_trace::metrics::{mad, median};

use crate::json::Json;
use crate::record::{SCHEMA, SERVE_SCHEMA};

/// Sentinel tuning.
#[derive(Clone, Debug)]
pub struct SentinelOptions {
    /// Only accept baseline records whose `commit` equals this.
    pub baseline_commit: Option<String>,
    /// Baseline window size (most recent comparable records).
    pub window: usize,
    /// Wall-clock noise threshold as a fraction of the baseline median
    /// (the warn band is `max(noise_frac × median, 3 × MAD)`).
    pub noise_frac: f64,
}

impl Default for SentinelOptions {
    fn default() -> SentinelOptions {
        SentinelOptions {
            baseline_commit: None,
            window: 5,
            noise_frac: 0.15,
        }
    }
}

/// The sentinel's outcome: the `sentinel-v1` verdict document plus the
/// process-level pass/fail bit CI keys off.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The `sentinel-v1` JSON document.
    pub json: Json,
    /// Whether CI must fail: any cycle drift, no history at all, or no
    /// comparable baseline. The last matters because a config change
    /// (MachineConfig defaults, width sweep, smoke set) changes the
    /// comparability key — if that silently passed, such a change would
    /// disable the gate until someone noticed; instead it must be
    /// acknowledged by re-seeding the history.
    pub failed: bool,
}

fn is_perfhist(r: &Json) -> bool {
    r.get("schema").and_then(Json::as_str) == Some(SCHEMA)
}

fn is_serve(r: &Json) -> bool {
    r.get("schema").and_then(Json::as_str) == Some(SERVE_SCHEMA)
}

fn serve_det<'a>(r: &'a Json, key: &str) -> Option<&'a Json> {
    r.get("determinism").and_then(|d| d.get(key))
}

/// Gates the newest `perfhist-serve-v1` record against the latest older
/// serve record that served the same request multiset. Returns the serve
/// sub-verdict and whether it fails CI; `None` when the history holds no
/// serve records at all.
fn serve_check(records: &[&Json], have_bench: bool) -> Option<(Json, bool)> {
    let (newest, older) = records.split_last()?;
    let req_hash = serve_det(newest, "requests_hash").and_then(Json::as_str);
    let mut verdict = Json::Obj(vec![(
        "records".to_string(),
        Json::u64(records.len() as u64),
    )]);
    let baseline = req_hash.and_then(|want| {
        older
            .iter()
            .rev()
            .find(|r| serve_det(r, "requests_hash").and_then(Json::as_str) == Some(want))
    });
    let Some(baseline) = baseline else {
        // Nothing served this request multiset before. With bench records
        // around the deterministic gate is still armed, so this is
        // advisory; in a serve-only history it is the no-baseline failure.
        let failed = !have_bench;
        verdict.set(
            "status",
            Json::Str(if failed { "no-baseline" } else { "unchecked" }.to_string()),
        );
        return Some((verdict, failed));
    };
    let mut drift: Vec<Json> = Vec::new();
    for key in ["responses_hash", "sim_cycles_total"] {
        let base = serve_det(baseline, key);
        let cur = serve_det(newest, key);
        if base != cur {
            drift.push(Json::Obj(vec![
                ("metric".to_string(), Json::Str(key.to_string())),
                ("baseline".to_string(), base.cloned().unwrap_or(Json::Null)),
                ("current".to_string(), cur.cloned().unwrap_or(Json::Null)),
            ]));
        }
    }
    let failed = !drift.is_empty();
    verdict.set(
        "status",
        Json::Str(if failed { "fail" } else { "pass" }.to_string()),
    );
    verdict.set(
        "requests_hash",
        Json::Str(req_hash.unwrap_or("?").to_string()),
    );
    verdict.set("drift", Json::Arr(drift));
    Some((verdict, failed))
}

/// Backend name of a record. The field postdates the history format;
/// records written before execution backends existed are interpreter
/// records.
fn backend_of(r: &Json) -> &str {
    r.get("backend").and_then(Json::as_str).unwrap_or("interp")
}

fn comparable(newest: &Json, candidate: &Json) -> bool {
    // Backends must agree cycle-for-cycle, but their wall-clock throughput
    // differs by design — pairing across backends would drown the
    // advisory wall-clock band in backend noise, so baselines are
    // per-backend (cross-backend equality has its own gate,
    // [`cross_check`]).
    if backend_of(newest) != backend_of(candidate) {
        return false;
    }
    for key in ["config_hash", "smoke", "widths"] {
        if newest.get(key) != candidate.get(key) {
            return false;
        }
    }
    true
}

fn workload_rows(record: &Json) -> Vec<&Json> {
    record
        .get("workloads")
        .and_then(Json::as_arr)
        .map(|rows| rows.iter().collect())
        .unwrap_or_default()
}

fn row_named<'a>(record: &'a Json, name: &str) -> Option<&'a Json> {
    workload_rows(record)
        .into_iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
}

/// Runs the sentinel over a loaded history (file order: oldest first).
#[must_use]
pub fn check(history: &[Json], opts: &SentinelOptions) -> Verdict {
    let records: Vec<&Json> = history.iter().filter(|r| is_perfhist(r)).collect();
    let serve_records: Vec<&Json> = history.iter().filter(|r| is_serve(r)).collect();
    let serve = serve_check(&serve_records, !records.is_empty());
    let Some((newest, older)) = records.split_last() else {
        if let Some((serve_json, serve_failed)) = serve {
            // Serve-only history: the serve gate is the whole verdict.
            let mut json = Json::Obj(vec![
                ("schema".to_string(), Json::Str("sentinel-v1".to_string())),
                (
                    "status".to_string(),
                    Json::Str(
                        match serve_json.get("status").and_then(Json::as_str) {
                            Some("no-baseline") => "no-baseline",
                            _ if serve_failed => "fail",
                            _ => "pass",
                        }
                        .to_string(),
                    ),
                ),
            ]);
            json.set("serve", serve_json);
            return Verdict {
                json,
                failed: serve_failed,
            };
        }
        let json = Json::Obj(vec![
            ("schema".to_string(), Json::Str("sentinel-v1".to_string())),
            ("status".to_string(), Json::Str("no-history".to_string())),
        ]);
        return Verdict { json, failed: true };
    };
    let commit = newest.get("commit").and_then(Json::as_str).unwrap_or("?");
    let mut window: Vec<&&Json> = older
        .iter()
        .filter(|r| comparable(newest, r))
        .filter(|r| {
            opts.baseline_commit
                .as_deref()
                .is_none_or(|want| r.get("commit").and_then(Json::as_str) == Some(want))
        })
        .collect();
    if window.len() > opts.window {
        window.drain(..window.len() - opts.window);
    }
    let mut verdict = Json::Obj(vec![
        ("schema".to_string(), Json::Str("sentinel-v1".to_string())),
        ("commit".to_string(), Json::Str(commit.to_string())),
    ]);
    let Some(reference) = window.last().copied() else {
        // No comparable record: the config hash, width sweep, or smoke
        // set changed (or the only record is the newest one). Fail loudly
        // — a green job here would mean the gate silently turned itself
        // off; a deliberate config change re-seeds bench/history.jsonl.
        verdict.set("status", Json::Str("no-baseline".to_string()));
        verdict.set("baseline_window", Json::u64(0));
        if let Some((serve_json, _)) = serve {
            verdict.set("serve", serve_json);
        }
        return Verdict {
            json: verdict,
            failed: true,
        };
    };
    verdict.set(
        "baseline_commit",
        Json::Str(
            reference
                .get("commit")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        ),
    );
    verdict.set("baseline_window", Json::u64(window.len() as u64));

    // --- Exact-match gate on deterministic cycles --------------------------
    let mut drift: Vec<Json> = Vec::new();
    let mut checked = 0u64;
    for row in workload_rows(newest) {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base_row) = row_named(reference, name) else {
            continue; // new workload: nothing to gate against
        };
        checked += 1;
        let mut gate = |metric: String, base: Option<u64>, cur: Option<u64>| {
            if let (Some(b), Some(c)) = (base, cur) {
                if b != c {
                    drift.push(Json::Obj(vec![
                        ("workload".to_string(), Json::Str(name.to_string())),
                        ("metric".to_string(), Json::Str(metric)),
                        ("baseline".to_string(), Json::u64(b)),
                        ("current".to_string(), Json::u64(c)),
                    ]));
                }
            }
        };
        gate(
            "sim_cycles".to_string(),
            base_row.get("sim_cycles").and_then(Json::as_u64),
            row.get("sim_cycles").and_then(Json::as_u64),
        );
        gate(
            "baseline_cycles".to_string(),
            base_row.get("baseline_cycles").and_then(Json::as_u64),
            row.get("baseline_cycles").and_then(Json::as_u64),
        );
        if let (Some(base_w), Some(cur_w)) = (
            base_row.get("cycles_by_width").and_then(Json::as_obj),
            row.get("cycles_by_width").and_then(Json::as_obj),
        ) {
            for (width, cur_v) in cur_w {
                let base_v = base_w.iter().find(|(k, _)| k == width).map(|(_, v)| v);
                gate(
                    format!("cycles_by_width.{width}"),
                    base_v.and_then(Json::as_u64),
                    cur_v.as_u64(),
                );
            }
        }
    }

    // --- Robust wall-clock advisory ---------------------------------------
    let mut warnings: Vec<Json> = Vec::new();
    for row in workload_rows(newest) {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(current) = row.get("sim_cycles_per_sec").and_then(Json::as_f64) else {
            continue;
        };
        let rates: Vec<f64> = window
            .iter()
            .filter_map(|r| row_named(r, name))
            .filter_map(|r| r.get("sim_cycles_per_sec").and_then(Json::as_f64))
            .filter(|&r| r > 0.0)
            .collect();
        if rates.is_empty() || current <= 0.0 {
            continue;
        }
        let med = median(&rates);
        let spread = mad(&rates);
        // A single-sample baseline has no measurable spread — `mad()`
        // returns 0 below two samples by construction — so the 3×MAD term
        // would silently contribute nothing and the band would understate
        // real run-to-run noise. Double the configured fraction instead
        // and mark the warning as resting on a degenerate MAD.
        let degenerate = rates.len() < 2;
        let band = if degenerate {
            2.0 * opts.noise_frac * med
        } else {
            (opts.noise_frac * med).max(3.0 * spread)
        };
        if current < med - band {
            let mut warning = Json::Obj(vec![
                ("workload".to_string(), Json::Str(name.to_string())),
                ("median".to_string(), Json::f64(med)),
                ("mad".to_string(), Json::f64(spread)),
                ("current".to_string(), Json::f64(current)),
                (
                    "baseline_samples".to_string(),
                    Json::u64(rates.len() as u64),
                ),
            ]);
            if degenerate {
                warning.set("degenerate_mad", Json::Bool(true));
            }
            warnings.push(warning);
        }
    }

    // --- Counter deltas (informational) ------------------------------------
    let mut deltas: Vec<Json> = Vec::new();
    if let (Some(base_c), Some(cur_c)) = (
        reference.get("counters").and_then(Json::as_obj),
        newest.get("counters").and_then(Json::as_obj),
    ) {
        for (name, cur_v) in cur_c {
            let base_v = base_c
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.as_u64());
            if let (Some(b), Some(c)) = (base_v, cur_v.as_u64()) {
                if b != c {
                    deltas.push(Json::Obj(vec![
                        ("counter".to_string(), Json::Str(name.clone())),
                        ("baseline".to_string(), Json::u64(b)),
                        ("current".to_string(), Json::u64(c)),
                    ]));
                }
            }
        }
    }

    let (serve_json, serve_failed) = match serve {
        Some((j, f)) => (Some(j), f),
        None => (None, false),
    };
    let failed = !drift.is_empty() || serve_failed;
    verdict.set(
        "status",
        Json::Str(if failed { "fail" } else { "pass" }.to_string()),
    );
    verdict.set("workloads_checked", Json::u64(checked));
    verdict.set("noise_frac", Json::f64(opts.noise_frac));
    verdict.set("cycle_drift", Json::Arr(drift));
    verdict.set("wall_warnings", Json::Arr(warnings));
    verdict.set("counter_deltas", Json::Arr(deltas));
    if let Some(j) = serve_json {
        verdict.set("serve", j);
    }
    Verdict {
        json: verdict,
        failed,
    }
}

/// The cross-backend gate (`sentinel --cross-backend`): execution
/// backends are required to be observationally identical, so the newest
/// interpreter record and the newest superblock record must agree
/// *exactly* on every deterministic cycle count. Both records must come
/// from the same commit and the same config/smoke/width sweep — comparing
/// across code versions would report version drift as backend drift.
#[must_use]
pub fn cross_check(history: &[Json]) -> Verdict {
    let records: Vec<&Json> = history.iter().filter(|r| is_perfhist(r)).collect();
    let newest_of = |name: &str| {
        records
            .iter()
            .rev()
            .find(|r| backend_of(r) == name)
            .copied()
    };
    let mut verdict = Json::Obj(vec![(
        "schema".to_string(),
        Json::Str("sentinel-cross-v1".to_string()),
    )]);
    let (Some(interp), Some(superblock)) = (newest_of("interp"), newest_of("superblock")) else {
        // The gate needs one record from each backend; a missing side must
        // fail loudly (a green job here would mean the equality gate
        // silently turned itself off).
        verdict.set("status", Json::Str("no-pair".to_string()));
        return Verdict {
            json: verdict,
            failed: true,
        };
    };
    for (side, r) in [("interp", interp), ("superblock", superblock)] {
        verdict.set(
            &format!("{side}_commit"),
            Json::Str(
                r.get("commit")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            ),
        );
    }
    let mismatched: Vec<&str> = ["commit", "config_hash", "smoke", "widths"]
        .into_iter()
        .filter(|key| interp.get(key) != superblock.get(key))
        .collect();
    if !mismatched.is_empty() {
        verdict.set("status", Json::Str("incomparable".to_string()));
        verdict.set(
            "mismatched",
            Json::Arr(
                mismatched
                    .iter()
                    .map(|k| Json::Str((*k).to_string()))
                    .collect(),
            ),
        );
        return Verdict {
            json: verdict,
            failed: true,
        };
    }

    let mut drift: Vec<Json> = Vec::new();
    let mut checked = 0u64;
    for row in workload_rows(superblock) {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base_row) = row_named(interp, name) else {
            drift.push(Json::Obj(vec![
                ("workload".to_string(), Json::Str(name.to_string())),
                (
                    "metric".to_string(),
                    Json::Str("missing-in-interp".to_string()),
                ),
            ]));
            continue;
        };
        checked += 1;
        for metric in ["sim_cycles", "baseline_cycles"] {
            let a = base_row.get(metric).and_then(Json::as_u64);
            let b = row.get(metric).and_then(Json::as_u64);
            if a != b {
                drift.push(Json::Obj(vec![
                    ("workload".to_string(), Json::Str(name.to_string())),
                    ("metric".to_string(), Json::Str(metric.to_string())),
                    ("interp".to_string(), Json::u64(a.unwrap_or(0))),
                    ("superblock".to_string(), Json::u64(b.unwrap_or(0))),
                ]));
            }
        }
        if base_row.get("cycles_by_width") != row.get("cycles_by_width") {
            drift.push(Json::Obj(vec![
                ("workload".to_string(), Json::Str(name.to_string())),
                (
                    "metric".to_string(),
                    Json::Str("cycles_by_width".to_string()),
                ),
            ]));
        }
    }
    // Zero overlapping workloads means nothing was actually gated.
    let failed = !drift.is_empty() || checked == 0;
    verdict.set(
        "status",
        Json::Str(if failed { "fail" } else { "pass" }.to_string()),
    );
    verdict.set("workloads_checked", Json::u64(checked));
    verdict.set("cycle_drift", Json::Arr(drift));
    Verdict {
        json: verdict,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(commit: &str, cycles: u64, rate: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"perfhist-v1","commit":"{commit}","timestamp":1,"host":"h","config_hash":"cafe","smoke":false,"widths":[2,8],"workloads":[{{"name":"FIR","baseline_cycles":1000,"sim_cycles":{cycles},"cycles_by_width":{{"2":600,"8":{cycles}}},"wall_s":0.5,"sim_cycles_per_sec":{rate}}}],"counters":{{"cycles":{cycles}}},"wall":{{}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_cycles_pass() {
        let h = vec![record("a", 250, 100.0), record("b", 250, 101.0)];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed);
        assert_eq!(v.json.get("status").and_then(Json::as_str), Some("pass"));
        assert_eq!(
            v.json.get("workloads_checked").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn any_cycle_drift_fails_even_improvements() {
        let h = vec![record("a", 250, 100.0), record("b", 240, 100.0)];
        let v = check(&h, &SentinelOptions::default());
        assert!(v.failed, "faster is still drift");
        let drift = v.json.get("cycle_drift").and_then(Json::as_arr).unwrap();
        // sim_cycles and the width-8 entry both moved.
        assert_eq!(drift.len(), 2);
        assert_eq!(
            drift[0].get("metric").and_then(Json::as_str),
            Some("sim_cycles")
        );
    }

    #[test]
    fn incomparable_configs_fail_as_no_baseline() {
        let mut other = record("a", 999, 100.0);
        other.set("config_hash", Json::Str("beef".to_string()));
        let h = vec![other, record("b", 250, 100.0)];
        let v = check(&h, &SentinelOptions::default());
        // The mismatched record is never compared cycle-for-cycle, but a
        // config change must not silently disable the gate: no comparable
        // baseline is itself a failure until the history is re-seeded.
        assert!(v.failed, "no comparable baseline must fail CI");
        assert_eq!(
            v.json.get("status").and_then(Json::as_str),
            Some("no-baseline")
        );
        let drift = v.json.get("cycle_drift").and_then(Json::as_arr);
        assert!(drift.is_none_or(<[Json]>::is_empty), "no cycles compared");
    }

    #[test]
    fn baseline_commit_filter_selects_reference() {
        let h = vec![
            record("good", 250, 100.0),
            record("noise", 999, 100.0),
            record("new", 250, 100.0),
        ];
        let against_noise = check(&h, &SentinelOptions::default());
        assert!(
            against_noise.failed,
            "latest record is the default baseline"
        );
        let against_good = check(
            &h,
            &SentinelOptions {
                baseline_commit: Some("good".to_string()),
                ..SentinelOptions::default()
            },
        );
        assert!(!against_good.failed);
        assert_eq!(
            against_good
                .json
                .get("baseline_commit")
                .and_then(Json::as_str),
            Some("good")
        );
    }

    #[test]
    fn slow_wall_clock_warns_but_passes() {
        let h = vec![
            record("a", 250, 100.0),
            record("b", 250, 102.0),
            record("c", 250, 98.0),
            record("d", 250, 10.0), // 10× slower wall clock, same cycles
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed, "wall clock never fails CI");
        let warns = v.json.get("wall_warnings").and_then(Json::as_arr).unwrap();
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].get("workload").and_then(Json::as_str), Some("FIR"));
    }

    #[test]
    fn single_sample_baseline_widens_band_and_flags_degenerate_mad() {
        // One comparable record: MAD is degenerate (0), so the warn band
        // doubles to 2×noise_frac. A 25 % slowdown sits inside that wider
        // band (noise_frac 0.15 ⇒ band 30 %) and must NOT warn…
        let h = vec![record("a", 250, 100.0), record("b", 250, 75.0)];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed);
        let warns = v.json.get("wall_warnings").and_then(Json::as_arr).unwrap();
        assert!(warns.is_empty(), "{}", v.json.write());

        // …while a 2× slowdown still does, and the warning says its MAD
        // was degenerate instead of pretending spread was measured.
        let h = vec![record("a", 250, 100.0), record("b", 250, 50.0)];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed, "wall clock stays advisory");
        let warns = v.json.get("wall_warnings").and_then(Json::as_arr).unwrap();
        assert_eq!(warns.len(), 1);
        assert_eq!(
            warns[0].get("degenerate_mad"),
            Some(&Json::Bool(true)),
            "{}",
            v.json.write()
        );
        assert_eq!(
            warns[0].get("baseline_samples").and_then(Json::as_u64),
            Some(1)
        );

        // A multi-sample baseline never carries the flag.
        let h = vec![
            record("a", 250, 100.0),
            record("b", 250, 102.0),
            record("c", 250, 10.0),
        ];
        let v = check(&h, &SentinelOptions::default());
        let warns = v.json.get("wall_warnings").and_then(Json::as_arr).unwrap();
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].get("degenerate_mad"), None);
        assert_eq!(
            warns[0].get("baseline_samples").and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn empty_history_fails_loudly() {
        let v = check(&[], &SentinelOptions::default());
        assert!(v.failed);
        assert_eq!(
            v.json.get("status").and_then(Json::as_str),
            Some("no-history")
        );
    }

    fn serve_record(req: &str, resp: &str, cycles: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"perfhist-serve-v1","commit":"c","timestamp":1,"host":"h","shards":4,"batch":{{"requests":10,"errors":0,"by_op":{{}}}},"cache":{{"hits":9,"misses":1,"entries":1,"hit_rate":0.9}},"determinism":{{"requests_hash":"{req}","responses_hash":"{resp}","sim_cycles_total":{cycles}}},"latency":{{"p50_us":1,"p95_us":2,"p99_us":3,"max_us":4}},"throughput_rps":5.0,"wall_s":2.0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn matching_serve_records_pass_and_drift_fails() {
        let h = vec![
            serve_record("aaaa", "bbbb", 100),
            serve_record("aaaa", "bbbb", 100),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed, "{}", v.json.write());
        let serve = v.json.get("serve").unwrap();
        assert_eq!(serve.get("status").and_then(Json::as_str), Some("pass"));

        // Same requests, different responses: cross-run nondeterminism.
        let h = vec![
            serve_record("aaaa", "bbbb", 100),
            serve_record("aaaa", "XXXX", 100),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(v.failed, "response drift must fail");
        assert_eq!(v.json.get("status").and_then(Json::as_str), Some("fail"));
        let drift = v
            .json
            .get("serve")
            .and_then(|s| s.get("drift"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(drift.len(), 1);
        assert_eq!(
            drift[0].get("metric").and_then(Json::as_str),
            Some("responses_hash")
        );

        // Same requests and responses, drifted cycle total.
        let h = vec![
            serve_record("aaaa", "bbbb", 100),
            serve_record("aaaa", "bbbb", 101),
        ];
        assert!(check(&h, &SentinelOptions::default()).failed);
    }

    #[test]
    fn serve_baseline_skips_unrelated_request_mixes() {
        // The comparable baseline is the latest older record with the SAME
        // requests_hash — a different mix in between must not confuse it.
        let h = vec![
            serve_record("aaaa", "bbbb", 100),
            serve_record("9999", "zzzz", 7),
            serve_record("aaaa", "bbbb", 100),
        ];
        assert!(!check(&h, &SentinelOptions::default()).failed);
    }

    #[test]
    fn fresh_serve_mix_is_unchecked_with_bench_but_fails_alone() {
        // Bench records keep CI green while a new serve mix seeds itself…
        let h = vec![
            record("a", 250, 100.0),
            record("b", 250, 100.0),
            serve_record("aaaa", "bbbb", 100),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed, "{}", v.json.write());
        assert_eq!(
            v.json
                .get("serve")
                .and_then(|s| s.get("status"))
                .and_then(Json::as_str),
            Some("unchecked")
        );
        // …but a serve-only history with no baseline is a hard failure.
        let h = vec![serve_record("aaaa", "bbbb", 100)];
        let v = check(&h, &SentinelOptions::default());
        assert!(v.failed);
        assert_eq!(
            v.json.get("status").and_then(Json::as_str),
            Some("no-baseline")
        );
    }

    #[test]
    fn serve_drift_fails_even_when_bench_passes() {
        let h = vec![
            record("a", 250, 100.0),
            serve_record("aaaa", "bbbb", 100),
            record("b", 250, 100.0),
            serve_record("aaaa", "CCCC", 100),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(v.failed, "serve drift alone must fail CI");
        assert_eq!(v.json.get("status").and_then(Json::as_str), Some("fail"));
        assert!(
            v.json
                .get("cycle_drift")
                .and_then(Json::as_arr)
                .is_some_and(<[Json]>::is_empty),
            "bench side itself was clean"
        );
    }

    fn backend_record(commit: &str, backend: &str, cycles: u64) -> Json {
        let mut r = record(commit, cycles, 100.0);
        r.set("backend", Json::Str(backend.to_string()));
        r
    }

    #[test]
    fn baselines_pair_only_within_a_backend() {
        // A superblock record between two interp records must not become
        // the interp baseline (and vice versa), even with equal cycles.
        let h = vec![
            record("a", 250, 100.0), // legacy record: implicitly interp
            backend_record("b", "superblock", 999),
            backend_record("c", "interp", 250),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(!v.failed, "{}", v.json.write());
        assert_eq!(
            v.json.get("baseline_commit").and_then(Json::as_str),
            Some("a"),
            "legacy records count as interp"
        );

        // Newest is superblock: only the superblock record can gate it,
        // and there is none older → no-baseline.
        let h = vec![
            record("a", 250, 100.0),
            backend_record("b", "superblock", 250),
        ];
        let v = check(&h, &SentinelOptions::default());
        assert!(v.failed);
        assert_eq!(
            v.json.get("status").and_then(Json::as_str),
            Some("no-baseline")
        );
    }

    #[test]
    fn cross_check_gates_backend_equality() {
        // Equal cycles on the same commit: pass.
        let h = vec![
            backend_record("c1", "interp", 250),
            backend_record("c1", "superblock", 250),
        ];
        let v = cross_check(&h);
        assert!(!v.failed, "{}", v.json.write());
        assert_eq!(v.json.get("status").and_then(Json::as_str), Some("pass"));
        assert_eq!(
            v.json.get("workloads_checked").and_then(Json::as_u64),
            Some(1)
        );

        // Any cycle difference between the backends fails.
        let h = vec![
            backend_record("c1", "interp", 250),
            backend_record("c1", "superblock", 251),
        ];
        let v = cross_check(&h);
        assert!(v.failed);
        let drift = v.json.get("cycle_drift").and_then(Json::as_arr).unwrap();
        assert!(!drift.is_empty());

        // Records from different commits are incomparable, not "equal".
        let h = vec![
            backend_record("c1", "interp", 250),
            backend_record("c2", "superblock", 250),
        ];
        let v = cross_check(&h);
        assert!(v.failed);
        assert_eq!(
            v.json.get("status").and_then(Json::as_str),
            Some("incomparable")
        );

        // A missing side fails loudly.
        let h = vec![backend_record("c1", "interp", 250)];
        let v = cross_check(&h);
        assert!(v.failed);
        assert_eq!(v.json.get("status").and_then(Json::as_str), Some("no-pair"));
    }

    #[test]
    fn counter_deltas_are_reported() {
        let h = vec![record("a", 250, 100.0), record("b", 250, 100.0)];
        let mut h2 = h;
        h2[1].set(
            "counters",
            Json::parse(r#"{"cycles":250,"mcache.hits":7}"#).unwrap(),
        );
        let v = check(&h2, &SentinelOptions::default());
        assert!(!v.failed);
        // "cycles" unchanged; "mcache.hits" has no baseline → not a delta.
        let deltas = v.json.get("counter_deltas").and_then(Json::as_arr).unwrap();
        assert!(deltas.is_empty());
    }
}
