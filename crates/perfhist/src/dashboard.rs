//! The self-contained HTML dashboard: one file, inline SVG, inline CSS,
//! zero JavaScript and zero external fetches — it must render from a CI
//! artifact viewer, an `mailcap` handler, or `file://` with no network.
//!
//! Sections: run header, per-workload cycle-trend sparklines across the
//! history, width-speedup bars (the paper's Figure 6 shape), counter
//! deltas vs the baseline record, and a flamegraph folded from the
//! tracer's span records. Colors are CSS custom properties with selected
//! light/dark values (`prefers-color-scheme` plus a `data-theme`
//! override); tooltips are native SVG `<title>` elements; every chart has
//! a plain-table equivalent so nothing is gated on color vision.

use std::fmt::Write as _;

use crate::json::Json;
use crate::record::{GEN_SCHEMA, SCHEMA, SERVE_SCHEMA};

/// Ordinal blue ramp for the width series (steps 250/400/500/600 of the
/// sequential ramp — legal nearest-surface step in both modes).
const WIDTH_RAMP: [&str; 4] = ["#86b6ef", "#3987e5", "#256abf", "#184f95"];

/// Sequential blue ramp for flamegraph depth (steps 150..650).
const FLAME_RAMP: [&str; 6] = [
    "#b7d3f6", "#9ec5f4", "#6da7ec", "#5598e7", "#2a78d6", "#1c5cab",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn commas(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// One workload's numbers pulled out of a record.
struct Row {
    name: String,
    baseline_cycles: u64,
    sim_cycles: u64,
    by_width: Vec<(usize, u64)>,
}

fn rows_of(record: &Json) -> Vec<Row> {
    record
        .get("workloads")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .map(|r| Row {
                    name: r
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    baseline_cycles: r.get("baseline_cycles").and_then(Json::as_u64).unwrap_or(0),
                    sim_cycles: r.get("sim_cycles").and_then(Json::as_u64).unwrap_or(0),
                    by_width: r
                        .get("cycles_by_width")
                        .and_then(Json::as_obj)
                        .map(|pairs| {
                            pairs
                                .iter()
                                .filter_map(|(w, v)| Some((w.parse().ok()?, v.as_u64()?)))
                                .collect()
                        })
                        .unwrap_or_default(),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Renders the dashboard over a loaded history (oldest first) plus an
/// optional folded-stacks profile (`trace::export::folded_stacks` output).
#[must_use]
pub fn render(history: &[Json], folded: &str) -> String {
    render_extended(history, folded, &[], None)
}

/// [`render`] plus the observability panels: `flight-v1` black-box dumps
/// (each `(file name, JSONL text)`) and a live `metrics-v1` snapshot from
/// the `inspect` serve op, rendered as power-of-two histogram charts.
#[must_use]
pub fn render_extended(
    history: &[Json],
    folded: &str,
    flight_dumps: &[(String, String)],
    snapshot: Option<&Json>,
) -> String {
    let records: Vec<&Json> = history
        .iter()
        .filter(|r| r.get("schema").and_then(Json::as_str) == Some(SCHEMA))
        .collect();
    let serve_records: Vec<&Json> = history
        .iter()
        .filter(|r| r.get("schema").and_then(Json::as_str) == Some(SERVE_SCHEMA))
        .collect();
    let gen_records: Vec<&Json> = history
        .iter()
        .filter(|r| r.get("schema").and_then(Json::as_str) == Some(GEN_SCHEMA))
        .collect();
    let mut out = String::new();
    out.push_str(HEAD);
    if let Some(newest) = records.last() {
        header_section(&mut out, newest, records.len());
        sparkline_section(&mut out, &records);
        figure6_section(&mut out, newest);
        ledger_section(&mut out, newest);
        heatmap_section(&mut out, newest);
        counter_section(&mut out, &records);
    } else if serve_records.is_empty() {
        out.push_str("<p class=\"empty\">No perfhist-v1 records in history.</p>");
    }
    families_section(&mut out, &gen_records);
    service_section(&mut out, &serve_records);
    snapshot_section(&mut out, snapshot);
    flight_section(&mut out, flight_dumps);
    flame_section(&mut out, folded);
    out.push_str("</main></body></html>\n");
    out
}

fn header_section(out: &mut String, newest: &Json, n_records: usize) {
    let commit = newest.get("commit").and_then(Json::as_str).unwrap_or("?");
    let host = newest.get("host").and_then(Json::as_str).unwrap_or("?");
    let ts = newest.get("timestamp").and_then(Json::as_u64).unwrap_or(0);
    let total: u64 = rows_of(newest).iter().map(|r| r.sim_cycles).sum();
    let _ = write!(
        out,
        "<header><h1>Liquid SIMD performance history</h1>\
         <div class=\"hero\"><span class=\"hero-value\">{}</span>\
         <span class=\"hero-label\">simulated cycles, full suite @ 8 lanes</span></div>\
         <p class=\"meta\">commit <code>{}</code> · host {} · unix {} · {} record{}</p></header>",
        commas(total),
        esc(&commit.chars().take(12).collect::<String>()),
        esc(host),
        ts,
        n_records,
        if n_records == 1 { "" } else { "s" }
    );
}

/// Per-workload cycle trend across records: 2px line, end dot with a 2px
/// surface ring, no legend (single series), native tooltips per point.
fn sparkline_section(out: &mut String, records: &[&Json]) {
    let Some(newest) = records.last() else { return };
    out.push_str("<section><h2>Cycle trend per workload</h2><div class=\"sparks\">");
    let (w, h, pad) = (180.0, 44.0, 6.0);
    for row in rows_of(newest) {
        let series: Vec<(usize, u64)> = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                rows_of(r)
                    .into_iter()
                    .find(|x| x.name == row.name)
                    .map(|x| (i, x.sim_cycles))
            })
            .collect();
        if series.is_empty() {
            continue;
        }
        let lo = series.iter().map(|&(_, c)| c).min().unwrap_or(0);
        let hi = series
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(lo + 1);
        let x_of = |i: usize| {
            if series.len() == 1 {
                w / 2.0
            } else {
                pad + (w - 2.0 * pad) * i as f64 / (series.len() - 1) as f64
            }
        };
        let y_of = |c: u64| pad + (h - 2.0 * pad) * (1.0 - (c - lo) as f64 / (hi - lo) as f64);
        let pts: Vec<String> = series
            .iter()
            .enumerate()
            .map(|(i, &(_, c))| format!("{:.1},{:.1}", x_of(i), y_of(c)))
            .collect();
        let (lx, ly) = (
            x_of(series.len() - 1),
            y_of(series.last().map(|&(_, c)| c).unwrap_or(0)),
        );
        let delta = if series.len() >= 2 {
            let first = series[0].1 as i128;
            let last = series[series.len() - 1].1 as i128;
            last - first
        } else {
            0
        };
        let _ = write!(
            out,
            "<figure class=\"spark\"><figcaption>{}</figcaption>\
             <svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
              aria-label=\"{} cycle trend\">\
             <title>{}: {} → {} cycles across {} records</title>\
             <polyline points=\"{}\" fill=\"none\" stroke=\"var(--series-1)\" \
              stroke-width=\"2\" stroke-linejoin=\"round\" stroke-linecap=\"round\"/>\
             <circle cx=\"{lx:.1}\" cy=\"{ly:.1}\" r=\"6\" fill=\"var(--surface-1)\"/>\
             <circle cx=\"{lx:.1}\" cy=\"{ly:.1}\" r=\"4\" fill=\"var(--series-1)\"/>\
             </svg><span class=\"spark-value\">{}{}</span></figure>",
            esc(&row.name),
            esc(&row.name),
            esc(&row.name),
            commas(series[0].1),
            commas(series[series.len() - 1].1),
            series.len(),
            pts.join(" "),
            commas(row.sim_cycles),
            match delta.signum() {
                1 => format!(
                    " <span class=\"delta-up\">(+{})</span>",
                    commas(delta as u64)
                ),
                -1 => format!(
                    " <span class=\"delta-down\">(−{})</span>",
                    commas((-delta) as u64)
                ),
                _ => String::new(),
            }
        );
    }
    out.push_str("</div></section>");
}

/// Stable color per ledger category (anything unknown falls back to the
/// muted gray, so category additions never break old dashboards).
fn category_color(name: &str) -> &'static str {
    match name {
        "scalar-execute" => "#8a7f6a",
        "vector-execute" => "#2a78d6",
        "translate-overhead" => "#b86f12",
        "abort-replay" => "#d03b3b",
        "mcache-probe" => "#7a5ea8",
        "mcache-miss" => "#a83e77",
        "dispatch" => "#4a9a8f",
        _ => "#898781",
    }
}

/// Per-workload stacked category bars from the ledger snapshots embedded
/// in the newest record's rows (`bench --ledger`). Each bar splits the
/// workload's headline-width cycles across the ledger's cost categories,
/// so "where did the cycles go" is answerable per workload at a glance.
fn ledger_section(out: &mut String, newest: &Json) {
    let Some(rows) = newest.get("workloads").and_then(Json::as_arr) else {
        return;
    };
    // (workload, total, [(category, cycles)]) for rows that carried a
    // ledger snapshot; records written without --ledger skip the panel.
    type Bar = (String, u64, Vec<(String, u64)>);
    let mut bars: Vec<Bar> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for r in rows {
        let Some(cats) = r
            .get("ledger")
            .and_then(|l| l.get("categories"))
            .and_then(Json::as_obj)
        else {
            continue;
        };
        let split: Vec<(String, u64)> = cats
            .iter()
            .filter_map(|(name, b)| {
                let cycles = b.get("cycles").and_then(Json::as_u64)?;
                (cycles > 0).then(|| (name.clone(), cycles))
            })
            .collect();
        if split.is_empty() {
            continue;
        }
        for (name, _) in &split {
            if !seen.contains(name) {
                seen.push(name.clone());
            }
        }
        bars.push((
            r.get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            split.iter().map(|&(_, c)| c).sum(),
            split,
        ));
    }
    if bars.is_empty() {
        return;
    }
    seen.sort();
    out.push_str("<section id=\"ledger-categories\"><h2>Cycle ledger: where the cycles went</h2>");
    out.push_str("<div class=\"legend\">");
    for name in &seen {
        let _ = write!(
            out,
            "<span><span class=\"swatch\" style=\"background:{}\"></span>{}</span>",
            category_color(name),
            esc(name)
        );
    }
    out.push_str("</div><table><tbody>");
    for (name, total, split) in &bars {
        let _ = write!(
            out,
            "<tr><td>{}</td><td><div class=\"ledger-bar\" role=\"img\" \
             aria-label=\"{} category split\">",
            esc(name),
            esc(name)
        );
        for (cat, cycles) in split {
            let share = *cycles as f64 / (*total).max(1) as f64 * 100.0;
            let _ = write!(
                out,
                "<span style=\"width:{share:.2}%;background:{}\" \
                 title=\"{}: {} {} cycles ({share:.1}%)\"></span>",
                category_color(cat),
                esc(name),
                esc(cat),
                commas(*cycles)
            );
        }
        let _ = write!(
            out,
            "</div></td><td class=\"num\">{}</td></tr>",
            commas(*total)
        );
    }
    out.push_str("</tbody></table></section>");
}

/// Width-comparison heatmap: per workload, cycles at every swept width
/// relative to the workload's best width. Cells glow red as they fall
/// behind the best, so a width inversion (a wider machine losing to a
/// narrower one, e.g. `179.art` w16 vs w8) jumps out as a hot cell to the
/// right of a cool one.
fn heatmap_section(out: &mut String, newest: &Json) {
    let rows: Vec<Row> = rows_of(newest)
        .into_iter()
        .filter(|r| r.by_width.len() >= 2)
        .collect();
    if rows.is_empty() {
        return;
    }
    let widths: Vec<usize> = {
        let mut ws: Vec<usize> = rows
            .iter()
            .flat_map(|r| r.by_width.iter().map(|&(w, _)| w))
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    };
    out.push_str("<section id=\"width-heatmap\"><h2>Width-comparison heatmap</h2>");
    out.push_str(
        "<p class=\"meta\">cycles at each width relative to the workload's best width \
         (1.00× = best; hotter = further behind)</p>",
    );
    out.push_str("<table class=\"heat\"><thead><tr><th>workload</th>");
    for w in &widths {
        let _ = write!(out, "<th class=\"num\">w{w}</th>");
    }
    out.push_str("</tr></thead><tbody>");
    for row in &rows {
        let best = row
            .by_width
            .iter()
            .map(|&(_, c)| c)
            .min()
            .unwrap_or(1)
            .max(1);
        let _ = write!(out, "<tr><td>{}</td>", esc(&row.name));
        for w in &widths {
            let Some(&(_, cycles)) = row.by_width.iter().find(|&&(bw, _)| bw == *w) else {
                out.push_str("<td class=\"cell\">—</td>");
                continue;
            };
            let ratio = cycles as f64 / best as f64;
            // 1.00× is transparent; the red channel saturates by 1.5×.
            let alpha = ((ratio - 1.0) / 0.5).clamp(0.0, 1.0) * 0.55;
            let _ = write!(
                out,
                "<td class=\"cell\" style=\"background:rgba(208,59,59,{alpha:.2})\" \
                 title=\"{}: {} cycles at w{w}\">{ratio:.2}×</td>",
                esc(&row.name),
                commas(cycles)
            );
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table></section>");
}

/// Width-speedup bars, paper Figure 6 shape: grouped bars per workload,
/// one ordinal-ramp series per lane width, speedup = scalar baseline
/// cycles / liquid cycles at that width. Reference hairline at 1.0.
fn figure6_section(out: &mut String, newest: &Json) {
    let rows: Vec<Row> = rows_of(newest)
        .into_iter()
        .filter(|r| r.baseline_cycles > 0 && !r.by_width.is_empty())
        .collect();
    if rows.is_empty() {
        return;
    }
    let widths: Vec<usize> = {
        let mut ws: Vec<usize> = rows
            .iter()
            .flat_map(|r| r.by_width.iter().map(|&(w, _)| w))
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    };
    let speedup = |r: &Row, w: usize| -> Option<f64> {
        let &(_, cycles) = r.by_width.iter().find(|&&(bw, _)| bw == w)?;
        (cycles > 0).then(|| r.baseline_cycles as f64 / cycles as f64)
    };
    let max_speedup = rows
        .iter()
        .flat_map(|r| widths.iter().filter_map(|&w| speedup(r, w)))
        .fold(1.0f64, f64::max);
    let y_top = max_speedup.ceil().max(2.0);
    // Geometry: bars 12px with a 2px surface gap, groups padded.
    let (bar_w, gap, group_pad) = (12.0, 2.0, 14.0);
    let group_w = widths.len() as f64 * (bar_w + gap) - gap + group_pad;
    let (pad_l, pad_t, plot_h, label_h) = (36.0, 8.0, 180.0, 64.0);
    let svg_w = pad_l + rows.len() as f64 * group_w + 8.0;
    let svg_h = pad_t + plot_h + label_h;
    out.push_str("<section><h2>Width speedup (Figure 6 shape)</h2>");
    // Legend: ≥2 series, so always present; swatch carries the color.
    out.push_str("<div class=\"legend\">");
    for (i, w) in widths.iter().enumerate() {
        let _ = write!(
            out,
            "<span class=\"key\"><span class=\"swatch\" style=\"background:{}\"></span>{} lanes</span>",
            WIDTH_RAMP[i.min(WIDTH_RAMP.len() - 1)],
            w
        );
    }
    out.push_str("</div>");
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {svg_w:.0} {svg_h:.0}\" width=\"{svg_w:.0}\" height=\"{svg_h:.0}\" \
         role=\"img\" aria-label=\"speedup over scalar by lane width\">"
    );
    let y_of = |s: f64| pad_t + plot_h * (1.0 - s / y_top);
    // Hairline grid + ticks at integer speedups; emphasised baseline at 1×.
    let mut tick = 0.0;
    while tick <= y_top {
        let y = y_of(tick);
        let stroke = if (tick - 1.0).abs() < 1e-9 {
            "var(--baseline)"
        } else {
            "var(--grid)"
        };
        let _ = write!(
            out,
            "<line x1=\"{pad_l:.0}\" y1=\"{y:.1}\" x2=\"{:.0}\" y2=\"{y:.1}\" \
             stroke=\"{stroke}\" stroke-width=\"1\"/>\
             <text x=\"{:.0}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{tick:.0}×</text>",
            svg_w - 4.0,
            pad_l - 6.0,
            y + 3.5
        );
        tick += 1.0;
    }
    for (gi, r) in rows.iter().enumerate() {
        let gx = pad_l + gi as f64 * group_w;
        for (wi, &w) in widths.iter().enumerate() {
            let Some(s) = speedup(r, w) else { continue };
            let x = gx + wi as f64 * (bar_w + gap);
            let y = y_of(s);
            let color = WIDTH_RAMP[wi.min(WIDTH_RAMP.len() - 1)];
            // 4px rounded data-end, square baseline: round the top only.
            let _ = write!(
                out,
                "<path d=\"M{x:.1} {:.1} V{:.1} Q{x:.1} {y:.1} {:.1} {y:.1} H{:.1} \
                 Q{:.1} {y:.1} {:.1} {:.1} V{:.1} Z\" fill=\"{color}\">\
                 <title>{} @ {w} lanes: {s:.2}× ({} / {} cycles)</title></path>",
                pad_t + plot_h,
                (y + 4.0).min(pad_t + plot_h),
                x + 4.0,
                x + bar_w - 4.0,
                x + bar_w,
                x + bar_w,
                (y + 4.0).min(pad_t + plot_h),
                pad_t + plot_h,
                esc(&r.name),
                commas(r.baseline_cycles),
                commas(
                    r.by_width
                        .iter()
                        .find(|&&(bw, _)| bw == w)
                        .map(|&(_, c)| c)
                        .unwrap_or(0)
                ),
            );
        }
        let cx = gx + (group_w - group_pad) / 2.0;
        let _ = write!(
            out,
            "<text x=\"{cx:.1}\" y=\"{:.1}\" class=\"xlabel\" \
             transform=\"rotate(-38 {cx:.1} {:.1})\" text-anchor=\"end\">{}</text>",
            pad_t + plot_h + 14.0,
            pad_t + plot_h + 14.0,
            esc(&r.name)
        );
    }
    out.push_str("</svg>");
    // Table view: the accessibility channel for the same numbers.
    out.push_str("<details><summary>Data table</summary><table><thead><tr><th>workload</th><th>scalar cycles</th>");
    for w in &widths {
        let _ = write!(out, "<th>{w} lanes</th><th>speedup</th>");
    }
    out.push_str("</tr></thead><tbody>");
    for r in &rows {
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td>",
            esc(&r.name),
            commas(r.baseline_cycles)
        );
        for &w in &widths {
            match r.by_width.iter().find(|&&(bw, _)| bw == w) {
                Some(&(_, c)) => {
                    let _ = write!(
                        out,
                        "<td class=\"num\">{}</td><td class=\"num\">{:.2}×</td>",
                        commas(c),
                        r.baseline_cycles as f64 / c.max(1) as f64
                    );
                }
                None => out.push_str("<td class=\"num\">—</td><td class=\"num\">—</td>"),
            }
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table></details></section>");
}

/// Generated families: per-family speedup distribution strips (p10–p90
/// band, p50 tick) from the newest `perfhist-gen-v1` record, plus the
/// abort-coverage matrix (family × tag counts).
fn families_section(out: &mut String, gen_records: &[&Json]) {
    let Some(newest) = gen_records.last() else {
        return;
    };
    struct Fam {
        family: String,
        variants: u64,
        p10: f64,
        p50: f64,
        p90: f64,
        aborts: Vec<(String, u64)>,
    }
    let fams: Vec<Fam> = newest
        .get("families")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .map(|r| Fam {
                    family: r
                        .get("family")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    variants: r.get("variants").and_then(Json::as_u64).unwrap_or(0),
                    p10: r.get("speedup_p10").and_then(Json::as_f64).unwrap_or(0.0),
                    p50: r.get("speedup_p50").and_then(Json::as_f64).unwrap_or(0.0),
                    p90: r.get("speedup_p90").and_then(Json::as_f64).unwrap_or(0.0),
                    aborts: r
                        .get("aborts")
                        .and_then(Json::as_obj)
                        .map(|pairs| {
                            pairs
                                .iter()
                                .filter_map(|(t, v)| Some((t.clone(), v.as_u64()?)))
                                .collect()
                        })
                        .unwrap_or_default(),
                })
                .collect()
        })
        .unwrap_or_default();
    if fams.is_empty() {
        return;
    }
    out.push_str("<section><h2>Generated families</h2>");

    // Speedup distribution strips for the translatable families.
    let strips: Vec<&Fam> = fams.iter().filter(|f| f.p90 > 0.0).collect();
    if !strips.is_empty() {
        let x_top = strips
            .iter()
            .map(|f| f.p90)
            .fold(1.0f64, f64::max)
            .ceil()
            .max(2.0);
        let (label_w, plot_w, row_h, pad_t) = (150.0, 400.0, 22.0, 8.0);
        let svg_w = label_w + plot_w + 48.0;
        let svg_h = pad_t + strips.len() as f64 * row_h + 20.0;
        let x_of = |s: f64| label_w + plot_w * s / x_top;
        let _ = write!(
            out,
            "<svg viewBox=\"0 0 {svg_w:.0} {svg_h:.0}\" width=\"{svg_w:.0}\" height=\"{svg_h:.0}\" \
             role=\"img\" aria-label=\"speedup distribution per generated family\">"
        );
        // Vertical grid at integer speedups, 1× emphasised.
        let mut tick = 1.0;
        while tick <= x_top {
            let x = x_of(tick);
            let stroke = if (tick - 1.0).abs() < 1e-9 {
                "var(--baseline)"
            } else {
                "var(--grid)"
            };
            let _ = write!(
                out,
                "<line x1=\"{x:.1}\" y1=\"{pad_t:.0}\" x2=\"{x:.1}\" y2=\"{:.1}\" \
                 stroke=\"{stroke}\" stroke-width=\"1\"/>\
                 <text x=\"{x:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{tick:.0}×</text>",
                pad_t + strips.len() as f64 * row_h,
                pad_t + strips.len() as f64 * row_h + 12.0
            );
            tick += 1.0;
        }
        for (i, f) in strips.iter().enumerate() {
            let cy = pad_t + i as f64 * row_h + row_h / 2.0;
            let (x10, x50, x90) = (x_of(f.p10), x_of(f.p50), x_of(f.p90));
            let _ = write!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"xlabel\" text-anchor=\"end\">{}</text>\
                 <rect x=\"{x10:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"8\" rx=\"4\" \
                  fill=\"var(--series-1)\" opacity=\"0.45\">\
                 <title>{}: p10 {:.2}× · p50 {:.2}× · p90 {:.2}× over {} variants</title></rect>\
                 <line x1=\"{x50:.1}\" y1=\"{:.1}\" x2=\"{x50:.1}\" y2=\"{:.1}\" \
                  stroke=\"var(--series-1)\" stroke-width=\"3\"/>\
                 <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\">{:.2}×</text>",
                label_w - 8.0,
                cy + 3.5,
                esc(&f.family),
                cy - 4.0,
                (x90 - x10).max(2.0),
                esc(&f.family),
                f.p10,
                f.p50,
                f.p90,
                f.variants,
                cy - 7.0,
                cy + 7.0,
                x90 + 6.0,
                cy + 3.5,
                f.p50
            );
        }
        out.push_str("</svg>");
    }

    // Abort-coverage matrix: which tags each family exercises.
    let mut tags: Vec<String> = fams
        .iter()
        .flat_map(|f| f.aborts.iter().map(|(t, _)| t.clone()))
        .collect();
    tags.sort_unstable();
    tags.dedup();
    if !tags.is_empty() {
        out.push_str(
            "<details open><summary>Abort coverage matrix</summary>\
             <table><thead><tr><th>family</th><th>variants</th>",
        );
        for t in &tags {
            let _ = write!(out, "<th>{}</th>", esc(t));
        }
        out.push_str("</tr></thead><tbody>");
        for f in &fams {
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td>",
                esc(&f.family),
                f.variants
            );
            for t in &tags {
                match f.aborts.iter().find(|(ft, _)| ft == t) {
                    Some((_, n)) => {
                        let _ = write!(out, "<td class=\"num\">{}</td>", commas(*n));
                    }
                    None => out.push_str("<td class=\"num\">·</td>"),
                }
            }
            out.push_str("</tr>");
        }
        out.push_str("</tbody></table></details>");
    }

    // The accessibility table for the strip chart.
    out.push_str(
        "<details><summary>Distribution table</summary>\
         <table><thead><tr><th>family</th><th>variants</th>\
         <th>p10</th><th>p50</th><th>p90</th></tr></thead><tbody>",
    );
    for f in &fams {
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{:.2}×</td><td class=\"num\">{:.2}×</td><td class=\"num\">{:.2}×</td></tr>",
            esc(&f.family),
            f.variants,
            f.p10,
            f.p50,
            f.p90
        );
    }
    out.push_str("</tbody></table></details></section>");
}

/// Counter deltas: newest record vs the previous comparable record.
fn counter_section(out: &mut String, records: &[&Json]) {
    if records.len() < 2 {
        return;
    }
    let newest = records[records.len() - 1];
    let baseline = records[records.len() - 2];
    let (Some(base_c), Some(cur_c)) = (
        baseline.get("counters").and_then(Json::as_obj),
        newest.get("counters").and_then(Json::as_obj),
    ) else {
        return;
    };
    let mut rows: Vec<(String, Option<u64>, u64)> = Vec::new();
    for (name, v) in cur_c {
        let Some(cur) = v.as_u64() else { continue };
        let base = base_c
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64());
        if base != Some(cur) {
            rows.push((name.clone(), base, cur));
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    out.push_str(
        "<section><h2>Counter deltas vs previous record</h2><table>\
         <thead><tr><th>counter</th><th>previous</th><th>current</th><th>Δ</th></tr></thead><tbody>",
    );
    for (name, base, cur) in rows {
        let delta_cell = match base {
            Some(b) if cur > b => format!("<td class=\"num delta-up\">+{}</td>", commas(cur - b)),
            Some(b) => format!("<td class=\"num delta-down\">−{}</td>", commas(b - cur)),
            None => "<td class=\"num\">new</td>".to_string(),
        };
        let _ = write!(
            out,
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td><td class=\"num\">{}</td>{}</tr>",
            esc(&name),
            base.map_or("—".to_string(), commas),
            commas(cur),
            delta_cell
        );
    }
    out.push_str("</tbody></table></section>");
}

/// Walks a nested key path through a record.
fn jpath<'a>(r: &'a Json, path: &[&str]) -> Option<&'a Json> {
    let mut cur = r;
    for key in path {
        cur = cur.get(key)?;
    }
    Some(cur)
}

/// The service panel from `perfhist-serve-v1` records: stat tiles for the
/// newest batch (requests, throughput, latency percentiles, cache hit
/// rate), a throughput trend once the history has depth (single series —
/// the title names it, so no legend box), and the per-record table.
fn service_section(out: &mut String, records: &[&Json]) {
    let Some(newest) = records.last() else { return };
    let num_u = |r: &Json, path: &[&str]| jpath(r, path).and_then(Json::as_u64).unwrap_or(0);
    let num_f = |r: &Json, path: &[&str]| jpath(r, path).and_then(Json::as_f64).unwrap_or(0.0);
    let ms = |us: u64| format!("{:.2} ms", us as f64 / 1000.0);
    out.push_str("<section><h2>Serving (batch telemetry)</h2><div class=\"sparks\">");
    let tiles: Vec<(&str, String)> = vec![
        (
            "requests (batch)",
            commas(num_u(newest, &["batch", "requests"])),
        ),
        ("errors", commas(num_u(newest, &["batch", "errors"]))),
        (
            "throughput",
            format!("{:.1} req/s", num_f(newest, &["throughput_rps"])),
        ),
        ("latency p50", ms(num_u(newest, &["latency", "p50_us"]))),
        ("latency p95", ms(num_u(newest, &["latency", "p95_us"]))),
        ("latency p99", ms(num_u(newest, &["latency", "p99_us"]))),
        (
            "cache hit rate",
            format!("{:.1}%", 100.0 * num_f(newest, &["cache", "hit_rate"])),
        ),
        ("shards", commas(num_u(newest, &["shards"]))),
    ];
    for (label, value) in tiles {
        let _ = write!(
            out,
            "<figure class=\"spark\"><figcaption>{label}</figcaption>\
             <span class=\"spark-value\">{value}</span></figure>"
        );
    }
    out.push_str("</div>");
    // Throughput trend: same single-series sparkline grammar as the cycle
    // trends — 2px line, surface-ringed end dot, native tooltip.
    if records.len() >= 2 {
        let series: Vec<f64> = records
            .iter()
            .map(|r| num_f(r, &["throughput_rps"]))
            .collect();
        let (w, h, pad) = (260.0, 44.0, 6.0);
        let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = series.iter().copied().fold(0.0f64, f64::max).max(lo + 1e-9);
        let x_of = |i: usize| pad + (w - 2.0 * pad) * i as f64 / (series.len() - 1) as f64;
        let y_of = |v: f64| pad + (h - 2.0 * pad) * (1.0 - (v - lo) / (hi - lo));
        let pts: Vec<String> = series
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", x_of(i), y_of(v)))
            .collect();
        let (lx, ly) = (x_of(series.len() - 1), y_of(series[series.len() - 1]));
        let _ = write!(
            out,
            "<figure class=\"spark\"><figcaption>throughput trend</figcaption>\
             <svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
              aria-label=\"serve throughput trend\">\
             <title>throughput: {:.1} → {:.1} req/s across {} records</title>\
             <polyline points=\"{}\" fill=\"none\" stroke=\"var(--series-1)\" \
              stroke-width=\"2\" stroke-linejoin=\"round\" stroke-linecap=\"round\"/>\
             <circle cx=\"{lx:.1}\" cy=\"{ly:.1}\" r=\"6\" fill=\"var(--surface-1)\"/>\
             <circle cx=\"{lx:.1}\" cy=\"{ly:.1}\" r=\"4\" fill=\"var(--series-1)\"/>\
             </svg><span class=\"spark-value\">{:.1} req/s</span></figure>",
            series[0],
            series[series.len() - 1],
            series.len(),
            pts.join(" "),
            series[series.len() - 1],
        );
    }
    // Table view: every record, every gated and advisory number.
    out.push_str(
        "<details><summary>Data table</summary><table><thead><tr>\
         <th>shards</th><th>requests</th><th>errors</th><th>hit rate</th>\
         <th>p50</th><th>p95</th><th>p99</th><th>req/s</th>\
         <th>responses hash</th></tr></thead><tbody>",
    );
    for r in records {
        let _ = write!(
            out,
            "<tr><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{:.1}%</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{:.1}</td><td><code>{}</code></td></tr>",
            num_u(r, &["shards"]),
            commas(num_u(r, &["batch", "requests"])),
            commas(num_u(r, &["batch", "errors"])),
            100.0 * num_f(r, &["cache", "hit_rate"]),
            ms(num_u(r, &["latency", "p50_us"])),
            ms(num_u(r, &["latency", "p95_us"])),
            ms(num_u(r, &["latency", "p99_us"])),
            num_f(r, &["throughput_rps"]),
            esc(jpath(r, &["determinism", "responses_hash"])
                .and_then(Json::as_str)
                .unwrap_or("—")),
        );
    }
    out.push_str("</tbody></table></details></section>");
}

/// Short label for a power-of-two bucket upper edge.
fn pow2_label(bound: u64) -> String {
    if bound.is_power_of_two() {
        format!("≤2^{}", bound.trailing_zeros())
    } else {
        format!("≤{}", commas(bound))
    }
}

/// One `metrics-v1` histogram as a horizontal bar chart: a bar per
/// non-empty bucket, log-free linear widths (counts, not values), native
/// tooltips with the exact bucket edge and count.
fn histogram_chart(out: &mut String, name: &str, hist: &Json) {
    let (Some(bounds), Some(counts)) = (
        hist.get("bounds").and_then(Json::as_arr),
        hist.get("counts").and_then(Json::as_arr),
    ) else {
        return;
    };
    let total = hist.get("count").and_then(Json::as_u64).unwrap_or(0);
    if total == 0 {
        return;
    }
    let max_bound = hist.get("max").and_then(Json::as_u64).unwrap_or(0);
    let rows: Vec<(String, u64)> = counts
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let n = c.as_u64()?;
            (n > 0).then(|| {
                let label = match bounds.get(i).and_then(Json::as_u64) {
                    Some(b) => pow2_label(b),
                    None => format!(
                        ">{} (max {})",
                        bounds
                            .last()
                            .and_then(Json::as_u64)
                            .map_or_else(|| "?".to_string(), commas),
                        commas(max_bound)
                    ),
                };
                (label, n)
            })
        })
        .collect();
    let peak = rows.iter().map(|&(_, n)| n).max().unwrap_or(1);
    let (bar_max, row_h, label_w) = (320.0, 16.0, 110.0);
    let svg_h = rows.len() as f64 * (row_h + 3.0);
    let _ = write!(
        out,
        "<figure class=\"spark\"><figcaption><code>{}</code> ({} samples, sum {}, max {})</figcaption>\
         <svg viewBox=\"0 0 {:.0} {svg_h:.0}\" width=\"{:.0}\" height=\"{svg_h:.0}\" role=\"img\" \
          aria-label=\"{} histogram\">",
        esc(name),
        commas(total),
        commas(hist.get("sum").and_then(Json::as_u64).unwrap_or(0)),
        commas(max_bound),
        label_w + bar_max + 60.0,
        label_w + bar_max + 60.0,
        esc(name)
    );
    for (i, (label, n)) in rows.iter().enumerate() {
        let y = i as f64 * (row_h + 3.0);
        let w = (bar_max * *n as f64 / peak as f64).max(1.0);
        let _ = write!(
            out,
            "<text x=\"{:.0}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{}</text>\
             <rect x=\"{label_w:.0}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{row_h:.0}\" rx=\"2\" \
              fill=\"var(--series-1)\"><title>{label}: {} samples</title></rect>\
             <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\">{}</text>",
            label_w - 6.0,
            y + row_h - 4.0,
            esc(label),
            commas(*n),
            label_w + w + 6.0,
            y + row_h - 4.0,
            commas(*n)
        );
    }
    out.push_str("</svg></figure>");
}

/// Live-introspection panel from a `metrics-v1` snapshot (the `inspect`
/// serve op): request/cache tiles plus every histogram the registry holds.
fn snapshot_section(out: &mut String, snapshot: Option<&Json>) {
    let Some(snap) = snapshot else { return };
    let snap = if snap.get("schema").and_then(Json::as_str) == Some("metrics-v1") {
        snap
    } else if let Some(inner) = snap.get("metrics") {
        inner // a raw inspect response line: unwrap its metrics field
    } else {
        return;
    };
    let num_u = |path: &[&str]| jpath(snap, path).and_then(Json::as_u64).unwrap_or(0);
    out.push_str("<section><h2>Live snapshot (inspect)</h2><div class=\"sparks\">");
    let tiles: Vec<(&str, String)> = vec![
        (
            "backend",
            snap.get("backend")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        ),
        ("requests", commas(num_u(&["requests", "total"]))),
        ("errors", commas(num_u(&["requests", "errors"]))),
        (
            "cache entries",
            commas(num_u(&["cache", "translations", "entries"])),
        ),
        (
            "cache generation",
            commas(num_u(&["cache", "translations", "generation"])),
        ),
        (
            "evictions",
            commas(num_u(&["cache", "translations", "evictions"])),
        ),
        ("flight events", commas(num_u(&["flight", "events"]))),
        ("flight dropped", commas(num_u(&["flight", "dropped"]))),
    ];
    for (label, value) in tiles {
        let _ = write!(
            out,
            "<figure class=\"spark\"><figcaption>{label}</figcaption>\
             <span class=\"spark-value\">{}</span></figure>",
            esc(&value)
        );
    }
    out.push_str("</div><div class=\"sparks\">");
    if let Some(hists) = snap.get("histograms").and_then(Json::as_obj) {
        for (name, h) in hists {
            histogram_chart(out, name, h);
        }
    }
    out.push_str("</div></section>");
}

/// Black-box panel: one block per `flight-v1` dump — header facts plus a
/// stage tally so "where did requests die" is answerable at a glance, and
/// the last events of the failing request when the dump names a panic.
fn flight_section(out: &mut String, dumps: &[(String, String)]) {
    if dumps.is_empty() {
        return;
    }
    out.push_str("<section><h2>Flight-recorder dumps</h2>");
    for (name, text) in dumps {
        let mut lines = text.lines();
        let Some(header) = lines.next().and_then(|l| Json::parse(l).ok()) else {
            continue;
        };
        if header.get("schema").and_then(Json::as_str) != Some("flight-v1") {
            continue;
        }
        let events: Vec<Json> = lines.filter_map(|l| Json::parse(l).ok()).collect();
        let _ = write!(
            out,
            "<h3><code>{}</code></h3><p class=\"meta\">reason <b>{}</b> · backend {} · \
             {} events · {} dropped · {} contended</p>",
            esc(name),
            esc(header.get("reason").and_then(Json::as_str).unwrap_or("?")),
            esc(header.get("backend").and_then(Json::as_str).unwrap_or("?")),
            commas(header.get("events").and_then(Json::as_u64).unwrap_or(0)),
            commas(header.get("dropped").and_then(Json::as_u64).unwrap_or(0)),
            commas(header.get("contended").and_then(Json::as_u64).unwrap_or(0)),
        );
        // Stage tally across the whole ring.
        let mut stages: Vec<(String, u64)> = Vec::new();
        for e in &events {
            let stage = e.get("stage").and_then(Json::as_str).unwrap_or("?");
            match stages.iter_mut().find(|(s, _)| s == stage) {
                Some((_, n)) => *n += 1,
                None => stages.push((stage.to_string(), 1)),
            }
        }
        out.push_str("<table><thead><tr><th>stage</th><th>events</th></tr></thead><tbody>");
        for (stage, n) in &stages {
            let _ = write!(
                out,
                "<tr><td><code>{}</code></td><td class=\"num\">{}</td></tr>",
                esc(stage),
                commas(*n)
            );
        }
        out.push_str("</tbody></table>");
        // The failing request's tail: every event of the last id that
        // recorded a panic stage, in sequence order.
        if let Some(victim) = events
            .iter()
            .rev()
            .find(|e| e.get("stage").and_then(Json::as_str) == Some("panic"))
            .and_then(|e| e.get("id").and_then(Json::as_str))
        {
            let _ = write!(
                out,
                "<details open><summary>lifecycle of failing request <code>{}</code></summary>\
                 <table><thead><tr><th>seq</th><th>stage</th><th>ok</th><th>detail</th></tr></thead><tbody>",
                esc(victim)
            );
            for e in events
                .iter()
                .filter(|e| e.get("id").and_then(Json::as_str) == Some(victim))
            {
                let _ = write!(
                    out,
                    "<tr><td class=\"num\">{}</td><td><code>{}</code></td>\
                     <td>{}</td><td>{}</td></tr>",
                    e.get("seq").and_then(Json::as_u64).unwrap_or(0),
                    esc(e.get("stage").and_then(Json::as_str).unwrap_or("?")),
                    match e.get("ok") {
                        Some(Json::Bool(false)) => "✗",
                        _ => "✓",
                    },
                    esc(e.get("detail").and_then(Json::as_str).unwrap_or("")),
                );
            }
            out.push_str("</tbody></table></details>");
        }
    }
    out.push_str("</section>");
}

/// One frame of the flamegraph tree.
struct Frame {
    name: String,
    self_cycles: u64,
    children: Vec<Frame>,
}

impl Frame {
    fn total(&self) -> u64 {
        self.self_cycles + self.children.iter().map(Frame::total).sum::<u64>()
    }

    fn insert(&mut self, path: &[&str], cycles: u64) {
        let Some((head, rest)) = path.split_first() else {
            self.self_cycles += cycles;
            return;
        };
        if let Some(c) = self.children.iter_mut().find(|c| c.name == *head) {
            c.insert(rest, cycles);
        } else {
            let mut child = Frame {
                name: (*head).to_string(),
                self_cycles: 0,
                children: Vec::new(),
            };
            child.insert(rest, cycles);
            self.children.push(child);
        }
    }
}

/// Flamegraph from folded stacks: nested rects, depth colored by the
/// sequential ramp, labels only where they fit, `<title>` everywhere.
fn flame_section(out: &mut String, folded: &str) {
    let mut root = Frame {
        name: String::new(),
        self_cycles: 0,
        children: Vec::new(),
    };
    for line in folded.lines() {
        let Some((path, n)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(cycles) = n.parse::<u64>() else {
            continue;
        };
        let frames: Vec<&str> = path.split(';').collect();
        root.insert(&frames, cycles);
    }
    let total = root.total();
    if total == 0 {
        return;
    }
    fn depth_of(f: &Frame) -> usize {
        1 + f.children.iter().map(depth_of).max().unwrap_or(0)
    }
    let depth = root.children.iter().map(depth_of).max().unwrap_or(1);
    let (svg_w, row_h) = (1080.0, 20.0);
    let svg_h = depth as f64 * (row_h + 2.0);
    out.push_str("<section><h2>Where the cycles went (flamegraph)</h2>");
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {svg_w:.0} {svg_h:.0}\" width=\"100%\" role=\"img\" \
         aria-label=\"flamegraph of simulated cycles by span\">"
    );
    // Recursive x-ordered layout; siblings sorted by total descending so
    // the big frames read left to right.
    fn draw(
        out: &mut String,
        f: &Frame,
        x: f64,
        level: usize,
        scale: f64,
        row_h: f64,
        grand_total: u64,
    ) {
        let w = f.total() as f64 * scale;
        if w < 0.5 {
            return;
        }
        let y = level as f64 * (row_h + 2.0);
        let color = FLAME_RAMP[level.min(FLAME_RAMP.len() - 1)];
        let pct = 100.0 * f.total() as f64 / grand_total as f64;
        let _ = write!(
            out,
            "<g><rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{row_h:.0}\" \
             rx=\"2\" fill=\"{color}\"/>\
             <title>{}: {} cycles ({pct:.1}%, self {})</title>",
            (w - 1.0).max(0.5),
            esc(&f.name),
            commas(f.total()),
            commas(f.self_cycles)
        );
        // ~7px per character at 12px font: label only when it fits with
        // padding, never clipped by its own mark.
        if w > 7.0 * f.name.len() as f64 + 12.0 {
            let _ = write!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"flame-label\">{}</text>",
                x + 6.0,
                y + row_h - 6.0,
                esc(&f.name)
            );
        }
        out.push_str("</g>");
        let mut cx = x;
        let mut kids: Vec<&Frame> = f.children.iter().collect();
        kids.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
        for c in kids {
            draw(out, c, cx, level + 1, scale, row_h, grand_total);
            cx += c.total() as f64 * scale;
        }
    }
    let scale = svg_w / total as f64;
    let mut x = 0.0;
    let mut tracks: Vec<&Frame> = root.children.iter().collect();
    tracks.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
    for track in tracks {
        draw(out, track, x, 0, scale, row_h, total);
        x += track.total() as f64 * scale;
    }
    out.push_str("</svg>");
    // Table view of the folded stacks themselves.
    out.push_str(
        "<details><summary>Folded stacks</summary><table>\
         <thead><tr><th>stack</th><th>self cycles</th></tr></thead><tbody>",
    );
    for line in folded.lines() {
        if let Some((path, n)) = line.rsplit_once(' ') {
            let _ = write!(
                out,
                "<tr><td><code>{}</code></td><td class=\"num\">{}</td></tr>",
                esc(path),
                esc(n)
            );
        }
    }
    out.push_str("</tbody></table></details></section>");
}

/// Document head: title + the full style block. Light values inline, dark
/// values behind both the OS media query and a `data-theme` override.
const HEAD: &str = r##"<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Liquid SIMD performance history</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --delta-good: #006300;
  --delta-bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --delta-good: #0ca30c;
    --delta-bad: #d03b3b;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --delta-good: #0ca30c;
  --delta-bad: #d03b3b;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px;
}
main { max-width: 1160px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; color: var(--text-primary); }
.hero { margin: 12px 0 4px; }
.hero-value { font-size: 48px; font-weight: 600; }
.hero-label { margin-left: 10px; color: var(--text-secondary); font-size: 14px; }
.meta { color: var(--muted); font-size: 13px; margin: 0; }
code { font-size: 0.92em; }
section { background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 16px 18px; margin-top: 16px; }
.sparks { display: flex; flex-wrap: wrap; gap: 14px 22px; }
.spark { margin: 0; }
.spark figcaption { font-size: 12px; color: var(--text-secondary); }
.spark-value { font-size: 13px; font-weight: 600; }
.delta-up { color: var(--delta-bad); font-weight: 400; }
.delta-down { color: var(--delta-good); font-weight: 400; }
.legend { display: flex; gap: 16px; font-size: 13px; color: var(--text-secondary);
  margin-bottom: 8px; }
.swatch { display: inline-block; width: 12px; height: 12px; border-radius: 3px;
  margin-right: 5px; vertical-align: -1px; }
.tick { font-size: 11px; fill: var(--muted); }
.xlabel { font-size: 11px; fill: var(--text-secondary); }
.flame-label { font-size: 12px; fill: #0b0b0b; }
svg { display: block; max-width: 100%; }
table { border-collapse: collapse; font-size: 13px; margin-top: 8px; }
th, td { text-align: left; padding: 3px 12px 3px 0; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
details summary { cursor: pointer; color: var(--text-secondary); font-size: 13px;
  margin-top: 10px; }
.ledger-bar { display: flex; height: 14px; width: 360px; border-radius: 3px;
  overflow: hidden; background: var(--grid); }
.ledger-bar span { display: block; height: 100%; }
.heat td.cell { text-align: center; padding: 4px 10px;
  font-variant-numeric: tabular-nums; }
.empty { color: var(--muted); }
</style></head>
<body class="viz-root"><main>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Json {
        Json::parse(
            r#"{"schema":"perfhist-v1","commit":"abc123def","timestamp":1700000000,"host":"linux-x86_64-h","config_hash":"cafe","smoke":false,"widths":[2,8],"workloads":[{"name":"FIR","baseline_cycles":1000,"sim_cycles":250,"cycles_by_width":{"2":600,"8":250},"wall_s":0.5,"sim_cycles_per_sec":500.0}],"counters":{"cycles":250,"mcache.hits":7},"wall":{}}"#,
        )
        .unwrap()
    }

    #[test]
    fn dashboard_is_self_contained() {
        let mut second = sample_record();
        second.set("commit", Json::Str("def456".to_string()));
        second.set(
            "counters",
            Json::parse(r#"{"cycles":250,"mcache.hits":9}"#).unwrap(),
        );
        let history = vec![sample_record(), second];
        let folded = "pipeline;run 30\npipeline;run;exec:scalar 70\n";
        let html = render(&history, folded);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("</html>"));
        // Single file, no external fetches of any kind.
        for needle in [
            "http://", "https://", "<script", "src=", "@import", "url(", "href=",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        // All four sections rendered.
        assert!(html.contains("Cycle trend"));
        assert!(html.contains("Figure 6"));
        assert!(html.contains("Counter deltas"));
        assert!(html.contains("flamegraph"));
        assert!(html.contains("mcache.hits"));
        // Tooltips are native <title> elements.
        assert!(html.contains("<title>FIR @ 8 lanes: 4.00×"));
        // Table views exist for the charts.
        assert!(html.matches("<details>").count() >= 2);
        // The width heatmap renders from cycles_by_width alone (no ledger
        // rows needed): the best width is the 1.00× cell.
        assert!(html.contains("id=\"width-heatmap\""));
        assert!(html.contains("1.00×"));
        // Without `bench --ledger` rows the category panel stays out.
        assert!(!html.contains("id=\"ledger-categories\""));
    }

    #[test]
    fn ledger_rows_render_stacked_category_bars() {
        let rec = Json::parse(
            r#"{"schema":"perfhist-v1","commit":"abc123def","timestamp":1700000000,"host":"h","config_hash":"cafe","smoke":false,"widths":[2,8],"workloads":[{"name":"FIR","baseline_cycles":1000,"sim_cycles":250,"cycles_by_width":{"2":600,"8":250},"ledger":{"total_cycles":250,"categories":{"scalar-execute":{"cycles":100,"events":10},"vector-execute":{"cycles":150,"events":5},"dispatch":{"cycles":0,"events":3}},"regions":{}},"wall_s":0.5,"sim_cycles_per_sec":500.0}],"counters":{"cycles":250},"wall":{}}"#,
        )
        .unwrap();
        let html = render(&[rec], "");
        assert!(html.contains("id=\"ledger-categories\""));
        // Both nonzero categories drawn, the zero-cycle one skipped.
        assert!(html.contains("scalar-execute"));
        assert!(html.contains("vector-execute"));
        assert!(html.contains("FIR: vector-execute 150 cycles (60.0%)"));
        assert!(!html.contains("dispatch"));
        // Still self-contained with the inline-styled panels present.
        for needle in ["<script", "src=", "href=", "url("] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn families_panel_renders_from_gen_records() {
        let gen = Json::parse(
            r#"{"schema":"perfhist-gen-v1","commit":"abc123def","timestamp":1700000200,"host":"linux-x86_64-h","config_hash":"cafe","smoke":true,"widths":[2,8],"backend":"interp","families":[{"family":"stencil3_f32","variants":12,"speedup_p10":1.5,"speedup_p50":2.25,"speedup_p90":3.0,"aborts":{"trip-not-multiple":2}},{"family":"histogram_i32","variants":3,"speedup_p10":0.0,"speedup_p50":0.0,"speedup_p90":0.0,"aborts":{"scalar-store":3}}],"wall":{"check_s":1.5}}"#,
        )
        .unwrap();
        let html = render(&[sample_record(), gen], "");
        assert!(html.contains("Generated families"));
        assert!(html.contains("stencil3_f32"));
        assert!(html.contains("Abort coverage matrix"));
        assert!(html.contains("scalar-store"));
        // The p50 tick value appears beside the strip.
        assert!(html.contains("2.25×"));
        // Untranslatable families appear in the matrix but get no strip.
        assert!(html.contains("histogram_i32"));
        for needle in [
            "http://", "https://", "<script", "src=", "@import", "url(", "href=",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn no_gen_records_no_families_panel() {
        let html = render(&[sample_record()], "");
        assert!(!html.contains("Generated families"));
    }

    fn serve_sample(rps: f64, resp_hash: &str) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"perfhist-serve-v1","commit":"abc123def","timestamp":1700000100,"host":"linux-x86_64-h","shards":4,"batch":{{"requests":128,"errors":2,"by_op":{{"run":64,"translate":64}}}},"latency":{{"p50_us":1500,"p95_us":4200,"p99_us":9100}},"throughput_rps":{rps},"cache":{{"hits":120,"misses":8,"entries":8,"hit_rate":0.9375}},"determinism":{{"requests_hash":"00000000deadbeef","responses_hash":"{resp_hash}","sim_cycles_total":123456}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn service_panel_renders_from_serve_records() {
        let history = vec![
            serve_sample(800.0, "0000000011112222"),
            serve_sample(950.5, "0000000033334444"),
        ];
        let html = render(&history, "");
        assert!(html.contains("Serving (batch telemetry)"));
        assert!(html.contains("950.5 req/s"));
        assert!(html.contains("93.8%"), "hit-rate tile");
        assert!(
            html.contains("throughput trend"),
            "two records make a trend"
        );
        assert!(html.contains("0000000033334444"), "responses hash in table");
        // Serve-only history must not claim the history is empty.
        assert!(!html.contains("No perfhist-v1 records"));
        for needle in [
            "http://", "https://", "<script", "src=", "@import", "url(", "href=",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn single_serve_record_skips_the_trend() {
        let history = vec![serve_sample(512.0, "0000000011112222")];
        let html = render(&history, "");
        assert!(html.contains("Serving (batch telemetry)"));
        assert!(!html.contains("throughput trend"));
    }

    #[test]
    fn flight_and_snapshot_panels_render() {
        let dump = "\
{\"schema\":\"flight-v1\",\"reason\":\"worker-panic\",\"backend\":\"interp\",\"shards\":2,\"capacity\":4096,\"events\":4,\"dropped\":0,\"contended\":0}\n\
{\"seq\":0,\"wall_us\":10,\"shard\":0,\"id\":\"boom\",\"op\":\"run\",\"stage\":\"accept\",\"ok\":true}\n\
{\"seq\":1,\"wall_us\":11,\"shard\":0,\"id\":\"boom\",\"op\":\"run\",\"stage\":\"translate\",\"ok\":true}\n\
{\"seq\":2,\"wall_us\":12,\"shard\":0,\"id\":\"boom\",\"op\":\"run\",\"stage\":\"panic\",\"ok\":false,\"detail\":\"injected\"}\n\
{\"seq\":3,\"wall_us\":13,\"shard\":1,\"id\":\"fine\",\"op\":\"run\",\"stage\":\"respond\",\"ok\":true}\n";
        let snapshot = Json::parse(
            r#"{"schema":"metrics-v1","backend":"interp","requests":{"total":9,"errors":1},
            "cache":{"translations":{"entries":3,"generation":3,"evictions":0}},
            "flight":{"events":40,"dropped":2},
            "histograms":{"request.cycles":{"bounds":[1,2,4,8],"counts":[0,3,5,1,0],"count":9,"sum":40,"max":7}}}"#,
        )
        .unwrap();
        let html = render_extended(
            &[],
            "",
            &[(
                "flight-000-worker-panic.jsonl".to_string(),
                dump.to_string(),
            )],
            Some(&snapshot),
        );
        assert!(html.contains("Flight-recorder dumps"));
        assert!(html.contains("worker-panic"));
        assert!(html.contains("lifecycle of failing request <code>boom</code>"));
        assert!(html.contains("injected"), "panic detail shown");
        assert!(html.contains("Live snapshot (inspect)"));
        assert!(html.contains("request.cycles"));
        assert!(html.contains("≤2^1"), "pow2 bucket labels");
        for needle in [
            "http://", "https://", "<script", "src=", "@import", "url(", "href=",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn snapshot_section_unwraps_a_raw_inspect_response() {
        let resp = Json::parse(
            r#"{"schema":"serve-v1","op":"inspect","ok":true,"metrics":{"schema":"metrics-v1","backend":"superblock","requests":{"total":1,"errors":0},"histograms":{}}}"#,
        )
        .unwrap();
        let html = render_extended(&[], "", &[], Some(&resp));
        assert!(html.contains("Live snapshot (inspect)"));
        assert!(html.contains("superblock"));
    }

    #[test]
    fn empty_history_still_renders() {
        let html = render(&[], "");
        assert!(html.contains("No perfhist-v1 records"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn commas_groups_thousands() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1_000), "1,000");
        assert_eq!(commas(1_234_567), "1,234,567");
    }
}
