//! The append-only history store: `bench/history.jsonl`, one record per
//! line. Appending never rewrites existing bytes; loading preserves each
//! record exactly (see [`crate::json`]), so `append → load → re-serialize`
//! is byte-identical — including records written by future schema
//! versions this build knows nothing about.

use std::io::Write as _;
use std::path::Path;

use crate::json::Json;

/// Appends one record as a single JSONL line, creating the file (and its
/// parent directory) on first use.
///
/// Safe under concurrent writers: the line (record text plus trailing
/// newline) is assembled in memory and handed to the kernel as **one**
/// `write` on an `O_APPEND` descriptor, so two appenders — several serve
/// shards flushing batches, or a daemon racing a `bench` run — can never
/// interleave partial lines. The one-syscall discipline is what makes
/// `O_APPEND` sufficient; a `writeln!` that splits the record across
/// multiple writes would not be.
///
/// # Errors
///
/// Returns a message on any I/O failure, including a short write (which
/// would indicate the atomicity assumption no longer holds).
pub fn append(path: &Path, record: &Json) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut line = record.write();
    line.push('\n');
    file.write_all(line.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

/// Loads every record in file order. Blank lines are skipped; a malformed
/// line is a hard error (history corruption should be loud, not silently
/// dropped). Unknown schemas and unknown fields load fine — filtering by
/// schema is the *reader's* job, so future records pass through intact.
///
/// # Errors
///
/// Returns a message on I/O failure or a malformed line.
pub fn load(path: &Path) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?);
    }
    Ok(out)
}

/// Re-serializes records exactly as [`load`] would have read them — the
/// identity half of the round-trip test.
#[must_use]
pub fn serialize(records: &[Json]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.write());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("perfhist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_load_reserialize_is_byte_identical() {
        let path = tmpfile("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        // Mix a current record, a future-schema record with unknown
        // fields, and odd number formatting.
        let lines = [
            r#"{"schema":"perfhist-v1","commit":"abc","sim_cycles":42}"#,
            r#"{"schema":"perfhist-v9","novel":{"deep":[1,2.50,true]},"commit":"xyz"}"#,
            r#"{"z_last":1e3,"a_first":null}"#,
        ];
        for l in &lines {
            append(&path, &Json::parse(l).unwrap()).unwrap();
        }
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(serialize(&records), on_disk, "byte-identical round-trip");
        // Append is append-only: a fourth record leaves the prefix intact.
        append(&path, &Json::parse("{}").unwrap()).unwrap();
        let longer = std::fs::read_to_string(&path).unwrap();
        assert!(longer.starts_with(&on_disk));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_appends_never_interleave_partial_lines() {
        let path = tmpfile("concurrent.jsonl");
        let _ = std::fs::remove_file(&path);
        let writers = 8;
        let per_writer = 25;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let path = &path;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        // A record bulky enough that a multi-write append
                        // would get caught interleaving.
                        let rec = Json::parse(&format!(
                            r#"{{"schema":"perfhist-v1","writer":{w},"seq":{i},"pad":"{}"}}"#,
                            "x".repeat(400)
                        ))
                        .unwrap();
                        append(path, &rec).unwrap();
                    }
                });
            }
        });
        // Every line parses (no torn writes) and every record arrived.
        let records = load(&path).unwrap();
        assert_eq!(records.len(), writers * per_writer);
        for w in 0..writers as u64 {
            let count = records
                .iter()
                .filter(|r| r.get("writer").and_then(Json::as_u64) == Some(w))
                .count();
            assert_eq!(count, per_writer, "writer {w} records all present");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_line_is_a_hard_error() {
        let path = tmpfile("bad.jsonl");
        std::fs::write(&path, "{\"ok\":1}\n{broken\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains(":2:"), "error names the line: {err}");
        let _ = std::fs::remove_file(&path);
    }
}
