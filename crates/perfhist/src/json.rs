//! A minimal JSON value model built for *fidelity*, not convenience.
//!
//! History records must survive append → load → re-serialize byte-for-byte
//! (the round-trip acceptance gate), including records written by future
//! versions with fields this version does not know. Two design choices
//! follow: object keys keep their **insertion order** (no sorting, no
//! hashing), and numbers keep their **original text** (`Json::Num` stores
//! the raw token, so `1.50` never becomes `1.5` and `u64::MAX` never loses
//! precision through an `f64` detour).
//!
//! The crate has no dependencies, so the parser and writer are hand-rolled
//! — the same policy as the rest of the workspace.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its original (or formatted-once) text.
    Num(String),
    /// A string (decoded; re-escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (never sorted — fidelity first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer number value.
    #[must_use]
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A float number value, formatted with enough digits to round-trip.
    #[must_use]
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            Json::Num(s)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object (None for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key/value pairs in document order, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
    }

    /// Removes `key` from an object, returning the removed value.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        if let Json::Obj(pairs) = self {
            let idx = pairs.iter().position(|(k, _)| k == key)?;
            return Some(pairs.remove(idx).1);
        }
        None
    }

    /// Serializes compactly (no whitespace), preserving key order and the
    /// original number text — the writer half of the byte-identity
    /// guarantee.
    #[must_use]
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_into(out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let tok = &text[start..*pos];
            // Validate via Rust's float parser; store the original text.
            tok.parse::<f64>()
                .map_err(|_| format!("bad number '{tok}' at byte {start}"))?;
            Ok(Json::Num(tok.to_string()))
        }
        other => Err(format!("unexpected '{}' at byte {}", other as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogate pairs: decode the low half if present.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                let hex2 = text
                                    .get(*pos + 2..*pos + 6)
                                    .ok_or("truncated surrogate".to_string())?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| format!("bad \\u escape '{hex2}'"))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("invalid low surrogate '\\u{hex2}'"));
                                }
                                *pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err("lone high surrogate".to_string());
                            }
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid codepoint".to_string())?);
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or("invalid UTF-8".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_write_round_trips_bytes() {
        let text = r#"{"schema":"perfhist-v1","n":1.50,"big":18446744073709551615,"arr":[1,2,{"z":null,"a":true}],"s":"a\"b\\c\nd"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.write(), text, "byte-identical round-trip");
    }

    #[test]
    fn key_order_is_preserved_not_sorted() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.write(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn numbers_keep_raw_text() {
        let v = Json::parse("[1.50,1e3,-0.25]").unwrap();
        assert_eq!(v.write(), "[1.50,1e3,-0.25]");
        assert_eq!(v.as_arr().unwrap()[1].as_f64(), Some(1000.0));
    }

    #[test]
    fn unknown_fields_survive() {
        let text = r#"{"schema":"perfhist-v9","future_field":{"deep":[1,2,3]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.write(), text);
    }

    #[test]
    fn set_and_remove() {
        let mut v = Json::parse(r#"{"a":1}"#).unwrap();
        v.set("b", Json::u64(2));
        v.set("a", Json::u64(9));
        assert_eq!(v.write(), r#"{"a":9,"b":2}"#);
        assert_eq!(v.remove("a"), Some(Json::u64(9)));
        assert_eq!(v.write(), r#"{"b":2}"#);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""tab\there A 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A 😀"));
    }

    #[test]
    fn surrogate_pairs_decode_or_error() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // A high surrogate must be followed by a \u escape in the low
        // range; anything else is an error, never a panic or underflow.
        assert!(Json::parse(r#""\uD800\u0041""#).is_err());
        assert!(Json::parse(r#""\uD800\uD800""#).is_err());
        assert!(Json::parse(r#""\uD800x""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nulll").is_err());
    }

    #[test]
    fn f64_formatting() {
        assert_eq!(Json::f64(2.0).write(), "2.0");
        assert_eq!(Json::f64(0.125).write(), "0.125");
        assert_eq!(Json::f64(f64::NAN).write(), "null");
    }
}
