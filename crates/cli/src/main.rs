//! `liquid-simd` — command-line driver for the Liquid SIMD toolchain.
//!
//! ```text
//! liquid-simd asm input.s -o program.lsim     assemble to an object file
//! liquid-simd disasm program.lsim             disassemble an object file
//! liquid-simd run program.{s,lsim} [FLAGS]    simulate to halt
//!     --lanes N        SIMD accelerator width (default 8; 0 = scalar only)
//!     --backend B      execution backend: interp (default) or superblock
//!                      (pre-lowered straight-line blocks, same cycles)
//!     --native         no dynamic translation (vector binaries)
//!     --jit            software-JIT translation (stalls the CPU)
//!     --report         print cache/translator statistics
//!     --trace          record dynamic events; print the trace summary
//!     --trace-out F    also write the event stream (.json → Chrome trace
//!                      for Perfetto/chrome://tracing, else JSON-lines)
//! liquid-simd translate program.{s,lsim} [--lanes N]
//!                      run once and print each translated microcode block
//! liquid-simd trace program.{s,lsim} [--lanes N] [--out trace.json]
//!                      traced run; write Chrome trace + print summary
//! liquid-simd explain program.{s,lsim}|workload [--widths 2,4] [--json]
//!                      per-region translation verdicts: translated (uops)
//!                      or aborted with full provenance, at every width
//!     --interrupt-every N   inject an external interrupt every N cycles
//!     --all-calls           also attempt plain `bl` (no `bl.v`) calls
//! liquid-simd profile program.{s,lsim}|workload [--lanes N] [--json]
//!                      cycle breakdown: phases, spans, hottest call
//!                      targets, per-entry microcode-cache statistics
//!     --top N          rows per table (default 10)
//!     --trace-out F    also write the Chrome trace with nested spans
//! liquid-simd diff [<A> <B>] [--backend B] [--json] [--out F]
//!                      explain a performance delta from the cycle ledger.
//!                      Each side is `<prog|workload>@wN` (simulated now
//!                      with the ledger on) or a history file (its newest
//!                      perfhist-v1 record); with no sides, the last two
//!                      perfhist-v1 records of --history are compared.
//!                      Prints ranked per-category and per-region
//!                      attribution with counter deltas as corroborating
//!                      evidence, plus a narrative line per contributor
//!     --history F      history file for the no-side form (default
//!                      bench/history.jsonl)
//!     --json           emit the `diff-v1` JSON document instead of text
//!     --out F          write the report to F instead of stdout
//! liquid-simd tables [--jobs N] [--smoke]
//!                      regenerate the paper's tables/figures in parallel
//! liquid-simd bench [--jobs N] [--smoke] [--progress] [--out BENCH_sim.json]
//!                      benchmark of the simulator: scalar baseline plus
//!                      liquid cycles at every width per workload, counter
//!                      telemetry, and the parallel sweep; writes a JSON
//!                      snapshot AND appends one perfhist-v1 record to the
//!                      append-only history
//!     --backend B      run every simulation on this backend; recorded in
//!                      the snapshot and the perfhist-v1 record
//!     --ledger         record the cycle ledger at the headline width and
//!                      embed the compact per-workload snapshot in the
//!                      perfhist-v1 record (plus `ledger.*` counters)
//!     --history F      history file (default bench/history.jsonl)
//!     --no-history     skip the history append
//!     --serve          load-test the serve daemon instead: N clients × M
//!                      pipelined requests, run at 1 shard and again at
//!                      --shards K, hard-failing on any byte difference
//!                      between the passes or a translation-cache hit
//!                      rate below 90%; appends perfhist-serve-v1 records
//!     --clients N      concurrent client connections (default 4)
//!     --requests N     requests per client (default auto-sized)
//!     --shards N       shard count of the sharded pass (default 8)
//!     --measure-recorder   third pass with the flight recorder disabled;
//!                      prints the wall-clock overhead delta and records
//!                      it in the BENCH_sim.json `notes` field
//!     --families       benchmark the generated kernel families instead of
//!                      the fixed suite: every corpus variant at every
//!                      width, summarised per family as a speedup
//!                      distribution (p10/p50/p90) with abort-reason
//!                      tallies and width anomalies; the snapshot has no
//!                      wall-clock fields, so two runs are byte-identical,
//!                      and one perfhist-gen-v1 record goes to the history
//!                      (--smoke keeps variants with trip <= 64, unroll <= 2)
//! liquid-simd gen [--list|--expand|--emit VARIANT|--check]
//!                      the declarative kernel-generator corpus
//!                      (bench/families/*.kernel, kernel-v1 format)
//!     --list           one variant name per line (the default)
//!     --expand         the deterministic expansion manifest: name, family,
//!                      trip, unroll, data seed, payload kind per line —
//!                      byte-identical across runs and hosts, CI `cmp`s two
//!     --emit VARIANT   print the variant's program: scalarized+outlined
//!                      assembly for kernels, raw assembly for the
//!                      deliberately untranslatable idioms
//!     --check          run every variant through the conform oracle
//!                      (translatable: full differential check at every
//!                      width; untranslatable: abort-never-mistranslate
//!                      with the expected tag) and gate on abort coverage
//!                      [--jobs N] [--json] [--out FILE]
//! liquid-simd serve [--addr A] [--shards N]
//!                      batched simulation daemon: line-delimited JSON
//!                      requests (translate|run|explain|conform|stats|
//!                      inspect|dump|shutdown) over TCP, answered in
//!                      request order per connection; repeat requests are
//!                      served from a cross-request translation cache and
//!                      responses are byte-identical at every shard count
//!     --addr A         bind address (default 127.0.0.1:7070)
//!     --shards N       worker shards (default min(cores, 8))
//!     --backend B      backend the daemon simulates with (responses are
//!                      byte-identical either way)
//!     --history F      perfhist-serve-v1 batch telemetry (default
//!                      bench/history.jsonl; --no-history to disable)
//!     --history-every N   flush a batch record every N requests
//!                      (default 64; a final record flushes at shutdown)
//!     --flight-capacity N   per-shard flight-recorder ring capacity
//!                      (default 4096; 0 disables the recorder)
//!     --flight-dir D   where black-box dumps go (worker panic,
//!                      budget-exceeded bursts, or the `dump` op); no
//!                      dumps are written without it
//!     --burst-threshold N   consecutive budget-exceeded errors that
//!                      trigger an automatic dump (default 8)
//!     --cache-cap N    translation-cache entry cap (default 0 =
//!                      unbounded; bounded caches evict LRU)
//!     --inject-faults  honor the test-only `inject:"panic"` request
//!                      field (crash drills; off by default)
//! liquid-simd inspect [--addr A] [--raw] [--scrub]
//!                      one `metrics-v1` snapshot from a live daemon:
//!                      counters, pow2 latency/cycle histograms, cache
//!                      occupancy, flight-ring health — rendered as text
//!                      (--raw: the JSON line; --scrub: schedule-scrubbed
//!                      JSON for byte-comparing daemons)
//! liquid-simd top [--addr A] [--interval S] [--count N] [--once]
//!                      live terminal view over `inspect`: throughput,
//!                      p50/p95/p99 latency, cache hit rate, abort
//!                      tallies; plain ANSI, redrawn every --interval
//!                      seconds (default 2; --once prints a single frame
//!                      with no escape codes)
//! liquid-simd sentinel [--baseline REF] [--json]
//!                      regression gate over the history: deterministic
//!                      sim_cycles must match the baseline record exactly
//!                      (any drift fails, improvements included);
//!                      wall-clock throughput only warns (median/MAD band);
//!                      baselines pair only within the same backend
//!     --history F      history file (default bench/history.jsonl)
//!     --window N       baseline window size (default 5)
//!     --noise-frac X   wall-clock warn fraction (default 0.15)
//!     --cross-backend  instead gate that the newest interp and superblock
//!                      records (same commit/config) report identical
//!                      deterministic sim cycles at every width
//! liquid-simd dashboard [--out report.html]
//!                      render the history as one self-contained HTML file
//!                      (inline SVG/CSS, no JavaScript, no external
//!                      fetches): cycle-trend sparklines, width-speedup
//!                      bars, counter deltas, and a flamegraph
//!     --history F      history file (default bench/history.jsonl)
//!     --flame W        workload profiled for the flamegraph (default fir)
//!     --flight-dir D   fold any flight-v1 dumps in D into the report
//!                      (stage tallies + failing-request lifecycle)
//!     --snapshot F     embed a `metrics-v1` snapshot (an `inspect`
//!                      response line) as live tiles + histogram charts
//! liquid-simd conform [--seed S] [--cases N] [--jobs N] [--json]
//!                      generative differential conformance: random legal
//!                      and illegal loops through every pipeline at every
//!                      width, plus the abort-injection sweep; failing
//!                      cases are shrunk and written to the corpus dir
//!     --out FILE       write the conform-v1 JSON report to FILE
//!     --corpus-dir D   where minimized failures go (default tests/corpus)
//!     --no-shrink      report raw failing specs without minimizing
//! ```

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use liquid_simd::{experiments, Machine, MachineConfig, RunReport};
use liquid_simd_isa::{asm, object, Program};
use liquid_simd_perfhist as perfhist;
use liquid_simd_serve as serve;
use liquid_simd_trace::{export, TraceConfig, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("liquid-simd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        "run" => cmd_run(rest),
        "translate" => cmd_translate(rest),
        "trace" => cmd_trace(rest),
        "explain" => cmd_explain(rest),
        "profile" => cmd_profile(rest),
        "diff" => cmd_diff(rest),
        "tables" => cmd_tables(rest),
        "bench" => cmd_bench(rest),
        "gen" => cmd_gen(rest),
        "serve" => cmd_serve(rest),
        "inspect" => cmd_inspect(rest),
        "top" => cmd_top(rest),
        "sentinel" => cmd_sentinel(rest),
        "dashboard" => cmd_dashboard(rest),
        "conform" => cmd_conform(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: liquid-simd <asm|disasm|run|translate|trace|explain|profile|diff|tables|bench|gen|serve|inspect|top|sentinel|dashboard|conform|help> [args]\n\
     \n\
     asm <input.s> -o <out.lsim>\n\
     disasm <prog.lsim>\n\
     run <prog.s|prog.lsim> [--lanes N] [--backend interp|superblock]\n\
         [--native] [--jit] [--report] [--trace] [--trace-out FILE]\n\
     translate <prog.s|prog.lsim> [--lanes N]\n\
     trace <prog.s|prog.lsim> [--lanes N] [--backend B] [--native] [--jit]\n\
         [--out trace.json] [--instructions]\n\
     explain <prog|workload> [--widths 2,4,8,16] [--backend B] [--json]\n\
         [--interrupt-every N] [--all-calls]\n\
     profile <prog|workload> [--lanes N] [--json] [--top N]\n\
         [--trace-out trace.json]\n\
     diff [<A@wN|FILE> <B@wN|FILE>] [--backend B] [--json] [--out FILE]\n\
         [--history bench/history.jsonl]\n\
     tables [--jobs N] [--smoke]\n\
     bench [--jobs N] [--smoke] [--backend B] [--ledger] [--progress]\n\
         [--out BENCH_sim.json] [--history bench/history.jsonl]\n\
         [--no-history] [--serve [--clients N] [--requests N] [--shards N]\n\
         [--measure-recorder]] [--families]\n\
     gen [--list] [--expand] [--emit VARIANT] [--check [--jobs N] [--json]]\n\
         [--out FILE]\n\
     serve [--addr 127.0.0.1:7070] [--shards N] [--backend B]\n\
         [--history FILE] [--no-history] [--history-every N]\n\
         [--flight-capacity N] [--flight-dir DIR] [--burst-threshold N]\n\
         [--cache-cap N] [--inject-faults]\n\
     inspect [--addr 127.0.0.1:7070] [--raw] [--scrub]\n\
     top [--addr 127.0.0.1:7070] [--interval SECS] [--count N] [--once]\n\
     sentinel [--baseline REF] [--json] [--history FILE]\n\
         [--window N] [--noise-frac X] [--cross-backend]\n\
     dashboard [--out report.html] [--history FILE] [--flame WORKLOAD]\n\
         [--flight-dir DIR] [--snapshot FILE]\n\
     conform [--seed S] [--cases N] [--jobs N] [--json] [--out FILE]\n\
         [--corpus-dir DIR] [--no-shrink]"
        .to_string()
}

/// Loads a program from either assembly text or an object file, by
/// extension (falling back to content sniffing).
fn load_program(path: &str) -> Result<Program, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let looks_binary = bytes.starts_with(object::MAGIC);
    if path.ends_with(".lsim") || looks_binary {
        object::read(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
        asm::assemble(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .map(|s| Some(s.as_str()))
                .ok_or_else(|| format!("{name} needs a value"));
        }
    }
    Ok(None)
}

/// `--backend interp|superblock` — which execution backend simulates the
/// program. Both retire bit-identical architectural state and cycle
/// counts; superblock pre-lowers straight-line runs for throughput.
fn parse_backend(args: &[String]) -> Result<liquid_simd::BackendKind, String> {
    match option_value(args, "--backend")? {
        None => Ok(liquid_simd::BackendKind::default()),
        Some(v) => liquid_simd::BackendKind::parse(v)
            .ok_or_else(|| format!("bad --backend `{v}` (interp or superblock)")),
    }
}

fn parse_lanes(args: &[String]) -> Result<usize, String> {
    match option_value(args, "--lanes")? {
        None => Ok(8),
        Some(v) => {
            let lanes: usize = v.parse().map_err(|_| format!("bad --lanes `{v}`"))?;
            if lanes != 0 && !((2..=16).contains(&lanes) && lanes.is_power_of_two()) {
                return Err("--lanes must be 0 (scalar) or a power of two in 2..=16".into());
            }
            Ok(lanes)
        }
    }
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("asm: missing input file")?;
    let output = option_value(args, "-o")?
        .map(str::to_string)
        .unwrap_or_else(|| input.strip_suffix(".s").unwrap_or(input).to_string() + ".lsim");
    let text = fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let program = asm::assemble(&text).map_err(|e| format!("{input}: {e}"))?;
    let bytes = object::write(&program).map_err(|e| e.to_string())?;
    fs::write(&output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{output}: {} instructions ({} bytes code, {} bytes data, {} symbols)",
        program.code.len(),
        program.code_bytes(),
        program.data_bytes(),
        program.symbols.len()
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("disasm: missing input file")?;
    let program = load_program(input)?;
    print!("{}", program.disassemble());
    Ok(())
}

/// Maps the CLI's `--lanes 0` / `--native` / `--jit` flag triage onto the
/// shared renderer's [`machine_config`](serve::ops::machine_config), so
/// one-shot runs and the serve daemon configure machines identically.
fn config_from(args: &[String]) -> Result<MachineConfig, String> {
    let lanes = parse_lanes(args)?;
    let mode = if lanes == 0 {
        serve::proto::Mode::Scalar
    } else if flag(args, "--native") {
        serve::proto::Mode::Native
    } else {
        serve::proto::Mode::Liquid
    };
    Ok(serve::ops::machine_config(mode, lanes, flag(args, "--jit"))
        .with_backend(parse_backend(args)?))
}

fn print_report(report: &RunReport) {
    print!("{}", serve::ops::report_text(report));
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("run: missing input file")?;
    let program = load_program(input)?;
    let mut cfg = config_from(args)?;
    let trace_out = option_value(args, "--trace-out")?.map(str::to_string);
    let tracing = flag(args, "--trace") || trace_out.is_some();
    let tracer = tracing.then(Tracer::new);
    if let Some(t) = &tracer {
        cfg = cfg.with_tracer(t.clone());
    }
    let mut machine = Machine::new(&program, cfg);
    let report = machine.run().map_err(|e| e.to_string())?;
    if flag(args, "--report") {
        print_report(&report);
    } else {
        print!("{}", serve::ops::run_summary(&report));
    }
    if let Some(t) = &tracer {
        if let Some(path) = &trace_out {
            write_trace(t, path)?;
        }
        print!("{}", export::summary(t));
    }
    Ok(())
}

/// Writes the recorded event stream: Chrome trace-event JSON for `.json`
/// paths (loadable in Perfetto / chrome://tracing), JSON-lines otherwise.
fn write_trace(tracer: &Tracer, path: &str) -> Result<(), String> {
    let records = tracer.records();
    let text = if path.ends_with(".json") {
        export::chrome_trace(&records)
    } else {
        export::json_lines(&records)
    };
    fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} events written{}",
        records.len(),
        if tracer.dropped() > 0 {
            format!(" ({} dropped by ring capacity)", tracer.dropped())
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("trace: missing input file")?;
    let program = load_program(input)?;
    let tracer = Tracer::with_config(TraceConfig {
        instructions: flag(args, "--instructions"),
        ..TraceConfig::default()
    });
    let cfg = config_from(args)?.with_tracer(tracer.clone());
    let mut machine = Machine::new(&program, cfg);
    machine.run().map_err(|e| e.to_string())?;
    let out = option_value(args, "--out")?.unwrap_or("trace.json");
    write_trace(&tracer, out)?;
    print!("{}", export::summary(&tracer));
    Ok(())
}

fn cmd_translate(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("translate: missing input file")?;
    let program = load_program(input)?;
    let lanes = parse_lanes(args)?;
    if lanes < 2 {
        return Err("translate: --lanes must be >= 2".into());
    }
    let (text, _) = serve::ops::translate_text(&program, lanes).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// Resolves an input that is either a program file (by path) or a
/// benchmark workload name (case-insensitive match against the suite, in
/// which case the Liquid build's program is used). Returns the program and
/// a display name.
fn resolve_program(input: &str) -> Result<(Program, String), String> {
    if std::path::Path::new(input).exists() {
        return Ok((load_program(input)?, input.to_string()));
    }
    let wanted = input.to_ascii_lowercase();
    for w in liquid_simd_workloads::all() {
        if w.name.to_ascii_lowercase() == wanted {
            let b = liquid_simd::build_liquid(&w).map_err(|e| format!("{}: {e}", w.name))?;
            return Ok((b.program, w.name));
        }
    }
    let names: Vec<String> = liquid_simd_workloads::all()
        .into_iter()
        .map(|w| w.name)
        .collect();
    Err(format!(
        "`{input}` is neither a file nor a workload (workloads: {})",
        names.join(", ")
    ))
}

fn parse_widths(args: &[String]) -> Result<Vec<usize>, String> {
    let Some(list) = option_value(args, "--widths")? else {
        return Ok(experiments::paper_widths());
    };
    let mut widths = Vec::new();
    for part in list.split(',') {
        let w: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad width `{part}` in --widths"))?;
        if !((2..=16).contains(&w) && w.is_power_of_two()) {
            return Err(format!(
                "--widths entries must be powers of two in 2..=16, got {w}"
            ));
        }
        widths.push(w);
    }
    if widths.is_empty() {
        return Err("--widths needs at least one width".into());
    }
    Ok(widths)
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("explain: missing program file or workload name")?;
    let (program, name) = resolve_program(input)?;
    let interrupt_every = match option_value(args, "--interrupt-every")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --interrupt-every `{v}`"))?,
    };
    let opts = liquid_simd::ExplainOptions {
        widths: parse_widths(args)?,
        interrupt_every,
        all_calls: flag(args, "--all-calls"),
        backend: parse_backend(args)?,
    };
    let report = liquid_simd::explain(&program, &name, &opts).map_err(|e| e.to_string())?;
    if flag(args, "--json") {
        print!("{}", liquid_simd::diagnose::explain_json(&report));
    } else {
        print!("{}", liquid_simd::diagnose::render_explain(&report));
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("profile: missing program file or workload name")?;
    let (program, name) = resolve_program(input)?;
    let lanes = parse_lanes(args)?;
    let top = match option_value(args, "--top")? {
        None => 10,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --top `{v}` (need an integer >= 1)")),
        },
    };
    let report = liquid_simd::profile(&program, &name, lanes).map_err(|e| e.to_string())?;
    if let Some(path) = option_value(args, "--trace-out")? {
        let text = export::chrome_trace_with_spans(&report.records, &report.spans);
        fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "{path}: {} events, {} spans written",
            report.records.len(),
            report.spans.len()
        );
    }
    if flag(args, "--json") {
        print!("{}", liquid_simd::diagnose::profile_json(&report, top));
    } else {
        print!("{}", liquid_simd::diagnose::render_profile(&report, top));
    }
    Ok(())
}

fn parse_jobs(args: &[String]) -> Result<usize, String> {
    match option_value(args, "--jobs")? {
        None => Ok(liquid_simd::default_jobs()),
        Some(v) => match v.parse::<usize>() {
            Ok(j) if j >= 1 => Ok(j),
            _ => Err(format!("bad --jobs `{v}` (need an integer >= 1)")),
        },
    }
}

/// The workload set and width sweep a `tables`/`bench` invocation uses:
/// all fifteen benchmarks over the paper's widths, or the three-benchmark
/// smoke subset over two widths with `--smoke` (CI-sized).
fn bench_suite(args: &[String]) -> (Vec<liquid_simd::Workload>, Vec<usize>) {
    if flag(args, "--smoke") {
        (liquid_simd_workloads::smoke(), vec![2, 8])
    } else {
        (liquid_simd_workloads::all(), experiments::paper_widths())
    }
}

fn cmd_tables(args: &[String]) -> Result<(), String> {
    let jobs = parse_jobs(args)?;
    let (workloads, widths) = bench_suite(args);
    let err = |e: liquid_simd::VerifyError| e.to_string();

    println!("── Table 5: outlined-function sizes (functions, mean, max) ──");
    for row in experiments::table5_jobs(&workloads, jobs).map_err(err)? {
        println!("{row}");
    }
    println!("\n── Table 6: first-call gaps (<150, <300, >=300, mean) ──");
    for row in experiments::table6_jobs(&workloads, jobs).map_err(err)? {
        println!("{row}");
    }
    println!("\n── Figure 6: speedup at widths {widths:?} (liquid | built-in | native) ──");
    for row in experiments::figure6_jobs(&workloads, &widths, jobs).map_err(err)? {
        println!("{row}");
    }
    println!("\n── Code size (plain, liquid, overhead, extra data) ──");
    for row in experiments::code_size_jobs(&workloads, jobs).map_err(err)? {
        println!("{row}");
    }
    println!("\n── Microcode cache at 8x64 (loops, max uops, evictions, microcode calls) ──");
    for row in experiments::mcache_jobs(&workloads, jobs).map_err(err)? {
        println!("{row}");
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders experiment rows to the exact text a user would see, so serial
/// and parallel sweeps can be compared byte for byte.
fn render_rows<T: std::fmt::Display>(rows: &[T]) -> String {
    rows.iter().map(|r| format!("{r}\n")).collect()
}

/// Flags workloads where a wider SIMD width simulated **more** cycles than
/// the next narrower one. Legal (strip-mining remainders, width-dependent
/// abort fallbacks) but always worth a human look — e.g. `179.art` at
/// width 16 costing more cycles than at width 8.
fn width_anomalies(rows: &[perfhist::WorkloadRow]) -> Vec<String> {
    let mut out = Vec::new();
    for row in rows {
        for pair in row.cycles_by_width.windows(2) {
            let ((narrow, narrow_cycles), (wide, wide_cycles)) = (pair[0], pair[1]);
            if wide > narrow && wide_cycles > narrow_cycles {
                out.push(format!(
                    "{}: width {wide} took {wide_cycles} cycles, more than width \
                     {narrow}'s {narrow_cycles}",
                    row.name
                ));
            }
        }
    }
    out
}

/// Region names for ledger snapshots: the program label at each region's
/// entry PC, for every region the ledger actually charged.
fn ledger_region_labels(
    program: &Program,
    ledger: &liquid_simd::ledger::Ledger,
) -> std::collections::BTreeMap<u32, String> {
    ledger
        .region_totals()
        .keys()
        .filter(|&&pc| pc != liquid_simd::ledger::TOP_REGION)
        .filter_map(|&pc| program.label_at(pc).map(|l| (pc, l.to_string())))
        .collect()
}

/// Simulates `program` at `width` with the cycle ledger on and rolls the
/// result into a labelled, counter-corroborated snapshot — the input to
/// every ledger diff.
fn ledger_snapshot_at(
    label: &str,
    program: &Program,
    width: usize,
    backend: liquid_simd::BackendKind,
) -> Result<liquid_simd::ledger::Snapshot, String> {
    let cfg = MachineConfig::liquid(width)
        .with_backend(backend)
        .with_ledger(true);
    let out = liquid_simd::run(program, cfg).map_err(|e| format!("{label}: {e}"))?;
    let led = out.report.ledger.clone().unwrap_or_default();
    let names = ledger_region_labels(program, &led);
    Ok(perfhist::counters::ledger_snapshot(
        label,
        &out.report,
        &names,
    ))
}

/// The structured `width_anomalies` entries of the bench snapshot: each
/// inversion is re-run at the two widths with the ledger on, and the entry
/// carries the top-3 attribution buckets of the delta plus the dominant
/// cost category — a machine-checked explanation, not just a flag.
fn width_anomaly_entries(
    rows: &[perfhist::WorkloadRow],
    workloads: &[liquid_simd::Workload],
    backend: liquid_simd::BackendKind,
) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for row in rows {
        for pair in row.cycles_by_width.windows(2) {
            let ((narrow, narrow_cycles), (wide, wide_cycles)) = (pair[0], pair[1]);
            if !(wide > narrow && wide_cycles > narrow_cycles) {
                continue;
            }
            let Some(w) = workloads.iter().find(|w| w.name == row.name) else {
                continue;
            };
            let b = liquid_simd::build_liquid(w).map_err(|e| format!("{}: {e}", w.name))?;
            let a = ledger_snapshot_at(
                &format!("{}@w{narrow}", w.name),
                &b.program,
                narrow,
                backend,
            )?;
            let z = ledger_snapshot_at(&format!("{}@w{wide}", w.name), &b.program, wide, backend)?;
            let d = liquid_simd::ledger::diff::diff(&a, &z);
            let buckets = d
                .categories
                .iter()
                .filter(|c| c.delta != 0)
                .take(3)
                .map(|c| {
                    format!(
                        "{{\"category\": \"{}\", \"narrow_cycles\": {}, \"wide_cycles\": {}, \
                         \"delta\": {}}}",
                        json_escape(&c.name),
                        c.a_cycles,
                        c.b_cycles,
                        c.delta
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push(format!(
                "{{\"workload\": \"{}\", \"narrow_width\": {narrow}, \
                 \"narrow_cycles\": {narrow_cycles}, \"wide_width\": {wide}, \
                 \"wide_cycles\": {wide_cycles}, \"dominant_category\": {}, \
                 \"top_buckets\": [{buckets}], \"message\": \"{}\"}}",
                json_escape(&row.name),
                match &d.dominant_category {
                    Some(c) => format!("\"{}\"", json_escape(c)),
                    None => "null".to_string(),
                },
                json_escape(&format!(
                    "{}: width {wide} took {wide_cycles} cycles, more than width \
                     {narrow}'s {narrow_cycles}",
                    row.name
                )),
            ));
        }
    }
    Ok(out)
}

/// Positional (non-flag) arguments, skipping the values of value-taking
/// flags.
fn positionals<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a.as_str());
    }
    out
}

/// One side of a `diff`: `<prog|workload>@wN` simulates now with the
/// ledger on; anything else must be a history file, whose newest
/// perfhist-v1 record is rolled into a snapshot.
fn diff_snapshot(
    spec: &str,
    backend: liquid_simd::BackendKind,
) -> Result<liquid_simd::ledger::Snapshot, String> {
    if let Some((base, width)) = spec.rsplit_once("@w") {
        if let Ok(w) = width.parse::<usize>() {
            if !((2..=16).contains(&w) && w.is_power_of_two()) {
                return Err(format!("bad width in `{spec}` (powers of two in 2..=16)"));
            }
            let (program, name) = resolve_program(base)?;
            return ledger_snapshot_at(&format!("{name}@w{w}"), &program, w, backend);
        }
    }
    let path = std::path::Path::new(spec);
    if !path.exists() {
        return Err(format!(
            "`{spec}` is neither `<prog|workload>@wN` nor a history file"
        ));
    }
    let records = perfhist::store::load(path)?;
    let rec = records
        .iter()
        .rev()
        .find(|r| r.get("schema").and_then(perfhist::Json::as_str) == Some("perfhist-v1"))
        .ok_or_else(|| format!("{spec}: no perfhist-v1 record"))?;
    Ok(record_snapshot(rec, spec))
}

/// Rolls one perfhist-v1 record into a diff-able snapshot: `ledger.*`
/// counters become the category totals, per-workload rows become the
/// regions (with the per-category split when the record was written under
/// `bench --ledger`), and every other deterministic counter rides along as
/// corroborating evidence.
fn record_snapshot(rec: &perfhist::Json, label: &str) -> liquid_simd::ledger::Snapshot {
    use liquid_simd::ledger::{RegionSnap, Snapshot};
    let commit = rec
        .get("commit")
        .and_then(perfhist::Json::as_str)
        .unwrap_or("?");
    let backend = rec
        .get("backend")
        .and_then(perfhist::Json::as_str)
        .unwrap_or("?");
    let mut snap = Snapshot {
        label: format!("{label} ({commit}, {backend})"),
        ..Snapshot::default()
    };
    if let Some(pairs) = rec.get("counters").and_then(perfhist::Json::as_obj) {
        for (k, v) in pairs {
            let Some(v) = v.as_u64() else { continue };
            if let Some(rest) = k.strip_prefix("ledger.") {
                if let Some(cat) = rest.strip_suffix(".cycles") {
                    snap.categories.entry(cat.to_string()).or_default().cycles = v;
                } else if let Some(cat) = rest.strip_suffix(".events") {
                    snap.categories.entry(cat.to_string()).or_default().events = v;
                }
            } else if !k.starts_with("backend.") {
                snap.counters.insert(k.clone(), v);
            }
        }
    }
    if let Some(rows) = rec.get("workloads").and_then(perfhist::Json::as_arr) {
        for row in rows {
            let name = row
                .get("name")
                .and_then(perfhist::Json::as_str)
                .unwrap_or("?")
                .to_string();
            let cycles = row
                .get("sim_cycles")
                .and_then(perfhist::Json::as_u64)
                .unwrap_or(0);
            snap.total_cycles += cycles;
            let mut r = RegionSnap {
                cycles,
                ..RegionSnap::default()
            };
            if let Some(cats) = row
                .get("ledger")
                .and_then(|l| l.get("categories"))
                .and_then(perfhist::Json::as_obj)
            {
                for (cat, b) in cats {
                    r.by_category.insert(
                        cat.clone(),
                        b.get("cycles")
                            .and_then(perfhist::Json::as_u64)
                            .unwrap_or(0),
                    );
                }
            }
            snap.regions.insert(name, r);
        }
    }
    snap
}

/// `liquid-simd diff`: explain a performance delta from the cycle ledger.
fn cmd_diff(args: &[String]) -> Result<(), String> {
    let backend = parse_backend(args)?;
    let json = flag(args, "--json");
    let out_path = option_value(args, "--out")?;
    let sides = positionals(args, &["--backend", "--history", "--out"]);
    let (a, b) = match sides.len() {
        // No sides: the last two perfhist-v1 records of the history —
        // "what changed since the previous bench run?"
        0 => {
            let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
            let records = perfhist::store::load(std::path::Path::new(history_path))?;
            let mut v1: Vec<&perfhist::Json> = records
                .iter()
                .filter(|r| r.get("schema").and_then(perfhist::Json::as_str) == Some("perfhist-v1"))
                .collect();
            if v1.len() < 2 {
                return Err(format!(
                    "{history_path}: need at least two perfhist-v1 records to diff \
                     (found {})",
                    v1.len()
                ));
            }
            let newest = v1.pop().expect("len checked");
            let previous = v1.pop().expect("len checked");
            (
                record_snapshot(previous, "history[-2]"),
                record_snapshot(newest, "history[-1]"),
            )
        }
        2 => (
            diff_snapshot(sides[0], backend)?,
            diff_snapshot(sides[1], backend)?,
        ),
        n => {
            return Err(format!(
                "diff takes zero or two sides, got {n}\n{}",
                usage()
            ))
        }
    };
    let d = liquid_simd::ledger::diff::diff(&a, &b);
    let rendered = if json {
        liquid_simd::ledger::diff::render_json(&d)
    } else {
        liquid_simd::ledger::diff::render_text(&d)
    };
    match out_path {
        Some(p) => {
            fs::write(p, &rendered).map_err(|e| format!("{p}: {e}"))?;
            println!("{p}: written");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    if flag(args, "--serve") {
        return cmd_bench_serve(args);
    }
    if flag(args, "--families") {
        return cmd_bench_families(args);
    }
    let jobs = parse_jobs(args)?;
    let (workloads, widths) = bench_suite(args);
    let smoke = flag(args, "--smoke");
    let want_ledger = flag(args, "--ledger");
    let backend = parse_backend(args)?;
    let out_path = option_value(args, "--out")?.unwrap_or("BENCH_sim.json");
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    let err = |e: liquid_simd::VerifyError| e.to_string();
    // The headline width: the paper's 8-lane configuration when swept,
    // else the widest width in the sweep.
    let headline = if widths.contains(&8) {
        8
    } else {
        *widths.last().ok_or("bench: empty width sweep")?
    };

    // Per-workload measurements, all deterministic except wall clock: the
    // scalar baseline (speedup denominator), liquid cycles at every swept
    // width, wall-clock throughput of the headline run (the
    // predecoded-metadata fast path is what that number measures), and the
    // headline run's counter-telemetry snapshot.
    let mut rows: Vec<perfhist::WorkloadRow> = Vec::new();
    let mut counters = std::collections::BTreeMap::new();
    for w in &workloads {
        let plain = liquid_simd::build_plain(w).map_err(|e| format!("{}: {e}", w.name))?;
        let base = liquid_simd::run(
            &plain.program,
            MachineConfig::scalar_only().with_backend(backend),
        )
        .map_err(|e| e.to_string())?;
        let b = liquid_simd::build_liquid(w).map_err(|e| format!("{}: {e}", w.name))?;
        let mut row = perfhist::WorkloadRow {
            name: w.name.clone(),
            baseline_cycles: base.report.cycles,
            sim_cycles: 0,
            cycles_by_width: Vec::new(),
            ledger: None,
            wall_s: 0.0,
            cycles_per_sec: 0.0,
        };
        for &width in &widths {
            // The ledger is an observer (never changes cycles), recorded
            // at the headline width only when `--ledger` asked for it.
            let record_ledger = want_ledger && width == headline;
            let t0 = Instant::now();
            let out = liquid_simd::run(
                &b.program,
                MachineConfig::liquid(width)
                    .with_backend(backend)
                    .with_ledger(record_ledger),
            )
            .map_err(|e| e.to_string())?;
            if width == headline {
                row.wall_s = t0.elapsed().as_secs_f64();
                row.sim_cycles = out.report.cycles;
                row.cycles_per_sec = out.report.cycles as f64 / row.wall_s.max(1e-9);
                perfhist::counters::merge(
                    &mut counters,
                    &perfhist::counters::snapshot(&out.report),
                );
            }
            if record_ledger {
                let led = out.report.ledger.clone().unwrap_or_default();
                let names = ledger_region_labels(&b.program, &led);
                let snap = liquid_simd::ledger::Snapshot::from_ledger(&w.name, &led, &names);
                row.ledger = perfhist::Json::parse(&snap.to_json()).ok();
            }
            row.cycles_by_width.push((width, out.report.cycles));
        }
        println!(
            "{:<14} {:>12} cycles @ {headline} lanes  ({:>9} scalar, {:.2}x)  \
             {:>8.3} ms  {:>12.0} sim-cycles/s",
            w.name,
            row.sim_cycles,
            row.baseline_cycles,
            row.baseline_cycles as f64 / row.sim_cycles.max(1) as f64,
            row.wall_s * 1e3,
            row.cycles_per_sec
        );
        rows.push(row);
    }

    // A wider machine that loses to a narrower one is surprising enough to
    // say out loud, not leave buried in the JSON snapshot.
    let anomalies = width_anomalies(&rows);
    for a in &anomalies {
        println!("warning: width anomaly — {a}");
    }
    // The snapshot gets the structured form: each inversion re-run at the
    // two widths with the ledger on, so the entry names where the extra
    // cycles went instead of just flagging that they exist.
    let anomaly_entries = width_anomaly_entries(&rows, &workloads, backend)?;

    // The Figure 6 sweep, serial then parallel: wall-clock speedup plus a
    // byte-identity check on the rendered rows (determinism gate). Per-task
    // timings go into the report so a disappointing speedup is diagnosable
    // (the 2024-era anomaly was a speedup of 0.992 with no way to tell
    // whether scheduling, build memoization, or one slow unit was at
    // fault).
    let n_units = workloads.len() * (1 + widths.len() * 3);
    let progress = |t: &liquid_simd::TaskTiming| {
        if flag(args, "--progress") {
            eprintln!(
                "  [worker {}] unit {}/{} done in {:.1} ms",
                t.worker,
                t.index + 1,
                n_units,
                t.wall_s * 1e3
            );
        }
    };
    let t0 = Instant::now();
    let (serial, _) = experiments::figure6_timed(&workloads, &widths, 1, &progress).map_err(err)?;
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (parallel, timings) =
        experiments::figure6_timed(&workloads, &widths, jobs, &progress).map_err(err)?;
    let parallel_s = t0.elapsed().as_secs_f64();
    let deterministic = render_rows(&serial) == render_rows(&parallel);
    let speedup = serial_s / parallel_s.max(1e-9);
    println!(
        "figure6 sweep: serial {serial_s:.3}s, parallel ({jobs} jobs) {parallel_s:.3}s, \
         {speedup:.2}x, {}",
        if deterministic {
            "byte-identical"
        } else {
            "NONDETERMINISTIC"
        }
    );
    // Busy seconds per worker: imbalance here (one worker owning most of
    // the wall time) explains a poor speedup.
    let n_workers = timings.iter().map(|t| t.worker + 1).max().unwrap_or(1);
    let mut worker_busy_s = vec![0.0f64; n_workers];
    for t in &timings {
        worker_busy_s[t.worker] += t.wall_s;
    }
    let speedup_warning = jobs > 1 && speedup < 1.05;
    if speedup_warning {
        println!(
            "warning: parallel sweep speedup {speedup:.3}x < 1.05x at {jobs} jobs — see the \
             per-task wall times in the report (worker busy seconds: {})",
            worker_busy_s
                .iter()
                .enumerate()
                .map(|(w, s)| format!("w{w}={s:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let mut json = String::from("{\n  \"schema\": \"liquid-simd-bench-v1\",\n");
    json.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"widths\": {widths:?},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let by_width = row
            .cycles_by_width
            .iter()
            .map(|(w, c)| format!("\"{w}\": {c}"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_cycles\": {}, \"sim_cycles\": {}, \
             \"cycles_by_width\": {{{by_width}}}, \"wall_s\": {:.6}, \
             \"sim_cycles_per_sec\": {:.0}}}{}\n",
            json_escape(&row.name),
            row.baseline_cycles,
            row.sim_cycles,
            row.wall_s,
            row.cycles_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    if anomaly_entries.is_empty() {
        json.push_str("  \"width_anomalies\": [],\n");
    } else {
        json.push_str("  \"width_anomalies\": [\n");
        for (i, e) in anomaly_entries.iter().enumerate() {
            json.push_str(&format!(
                "    {e}{}\n",
                if i + 1 < anomaly_entries.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        json.push_str("  ],\n");
    }
    json.push_str(&format!(
        "  \"figure6_sweep\": {{\"serial_s\": {serial_s:.6}, \"parallel_s\": {parallel_s:.6}, \
         \"speedup\": {speedup:.3}, \"deterministic\": {deterministic}, \
         \"speedup_warning\": {speedup_warning}}},\n"
    ));
    json.push_str(&format!(
        "  \"figure6_workers\": [{}],\n",
        worker_busy_s
            .iter()
            .enumerate()
            .map(|(w, s)| format!("{{\"worker\": {w}, \"busy_s\": {s:.6}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"figure6_tasks\": [\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"index\": {}, \"worker\": {}, \"start_s\": {:.6}, \"wall_s\": {:.6}}}{}\n",
            t.index,
            t.worker,
            t.start_s,
            t.wall_s,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!("{out_path}: written");

    // Append one perfhist-v1 record to the history. The record carries no
    // `jobs` field and isolates every wall-clock measurement, so two runs
    // of the same code differ only in scrubbable fields regardless of
    // parallelism (the determinism contract the sentinel gates on).
    if !flag(args, "--no-history") {
        let meta = perfhist::RecordMeta {
            commit: perfhist::record::git_commit(std::path::Path::new(".")),
            timestamp: perfhist::record::unix_now(),
            host: perfhist::record::host_fingerprint(),
            config_hash: format!("{:016x}", MachineConfig::liquid(headline).fingerprint()),
            smoke,
            widths: widths.clone(),
            backend: backend.name().to_string(),
        };
        let wall_extras = vec![
            ("figure6_serial_s".to_string(), serial_s),
            ("figure6_parallel_s".to_string(), parallel_s),
            ("figure6_speedup".to_string(), speedup),
        ];
        let record = perfhist::record::build(&meta, &rows, &counters, &wall_extras);
        perfhist::store::append(std::path::Path::new(history_path), &record)?;
        println!(
            "{history_path}: appended perfhist-v1 record for {}",
            meta.commit
        );
    }

    if !deterministic {
        return Err("parallel figure6 sweep diverged from the serial sweep".into());
    }
    Ok(())
}

/// Expands the embedded kernelgen corpus, with the `--smoke` filter (the
/// CI-sized cut: short trips, shallow unrolls) applied when asked.
fn gen_variants(smoke: bool) -> Result<Vec<liquid_simd_kernelgen::Variant>, String> {
    let all = liquid_simd_kernelgen::expand_corpus().map_err(|e| format!("gen: corpus: {e}"))?;
    Ok(all
        .into_iter()
        .filter(|v| !smoke || (v.trip <= 64 && v.unroll <= 2))
        .collect())
}

/// One manifest line per variant: everything the expansion determined,
/// nothing the clock or host did — two runs must produce byte-identical
/// manifests (the CI `cmp` gate on expansion determinism).
fn gen_manifest(variants: &[liquid_simd_kernelgen::Variant]) -> String {
    use liquid_simd_kernelgen::Payload;
    let mut out = String::new();
    for v in variants {
        let kind = match &v.payload {
            Payload::Kernel(_) => "kernel".to_string(),
            Payload::Asm { expected_tag, .. } => format!("abort:{expected_tag}"),
        };
        out.push_str(&format!(
            "{}\t{}\ttrip={}\tunroll={}\tseed={:#018x}\t{}\n",
            v.name, v.family, v.trip, v.unroll, v.data_seed, kind
        ));
    }
    out
}

/// `liquid-simd gen`: list, expand, emit, or conformance-check the
/// generated kernel families.
fn cmd_gen(args: &[String]) -> Result<(), String> {
    use liquid_simd_kernelgen::Payload;
    if flag(args, "--check") {
        return cmd_gen_check(args);
    }
    let variants = gen_variants(flag(args, "--smoke"))?;
    if let Some(wanted) = option_value(args, "--emit")? {
        let v = variants
            .iter()
            .find(|v| v.name == wanted)
            .ok_or_else(|| format!("gen: no variant named `{wanted}` (try `gen --list`)"))?;
        match &v.payload {
            Payload::Kernel(w) => {
                let b = liquid_simd::build_liquid(w).map_err(|e| format!("{}: {e}", v.name))?;
                print!("{}", b.program.disassemble());
            }
            Payload::Asm { src, expected_tag } => {
                println!("# untranslatable idiom — expected abort tag: {expected_tag}");
                print!("{src}");
            }
        }
        return Ok(());
    }
    let text = if flag(args, "--expand") {
        gen_manifest(&variants)
    } else {
        // --list (the default): names only.
        variants.iter().map(|v| format!("{}\n", v.name)).collect()
    };
    match option_value(args, "--out")? {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("{path}: {} variants written", variants.len());
        }
        None => print!("{text}"),
    }
    let families: std::collections::BTreeSet<&str> =
        variants.iter().map(|v| v.family.as_str()).collect();
    eprintln!(
        "gen: {} variants from {} families",
        variants.len(),
        families.len()
    );
    Ok(())
}

/// `gen --check`: every corpus variant through the conform oracle, plus
/// the abort-coverage gate (no reachable tag may go unexercised).
fn cmd_gen_check(args: &[String]) -> Result<(), String> {
    let jobs = parse_jobs(args)?;
    let (outcomes, coverage) = liquid_simd_conform::families::check_corpus(jobs);
    let passed = outcomes.iter().filter(|o| o.passed).count();
    let failed = outcomes.len() - passed;

    let mut json = String::from("{\n  \"schema\": \"gen-check-v1\",\n");
    json.push_str(&format!("  \"variants\": {},\n", outcomes.len()));
    json.push_str(&format!(
        "  \"summary\": {{\"passed\": {passed}, \"failed\": {failed}, \"ok\": {}}},\n",
        failed == 0 && coverage.uncovered.is_empty()
    ));
    json.push_str("  \"failures\": [\n");
    let fails: Vec<&liquid_simd_conform::oracle::CaseOutcome> =
        outcomes.iter().filter(|o| !o.passed).collect();
    for (i, f) in fails.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\"}}{}\n",
            json_escape(&f.name),
            json_escape(&f.detail),
            if i + 1 < fails.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&liquid_simd_conform::coverage_to_json(&coverage, "  "));
    json.push_str("}\n");

    if let Some(path) = option_value(args, "--out")? {
        fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: written");
    }
    if flag(args, "--json") {
        print!("{json}");
    } else {
        println!(
            "gen --check: {} variants — {passed} passed, {failed} failed",
            outcomes.len()
        );
        for f in &fails {
            println!("FAIL {}: {}", f.name, f.detail);
        }
        println!(
            "abort coverage: {} families, {} uncovered tag(s){}",
            coverage.by_family.len(),
            coverage.uncovered.len(),
            if coverage.uncovered.is_empty() {
                String::new()
            } else {
                format!(" — {}", coverage.uncovered.join(", "))
            }
        );
        for (tag, why) in &coverage.exempt {
            println!("  exempt {tag}: {why}");
        }
    }
    if failed > 0 {
        return Err("gen --check: oracle failures".into());
    }
    if !coverage.uncovered.is_empty() {
        return Err(format!(
            "gen --check: abort tags with no witness: {}",
            coverage.uncovered.join(", ")
        ));
    }
    Ok(())
}

/// `bench --families`: benchmark the generated corpus instead of the
/// fixed fifteen. Every deterministic number (cycles, speedup
/// percentiles, abort tallies, width anomalies) goes into the snapshot;
/// wall-clock stays on stdout only, so the snapshot file is
/// byte-identical run to run — `cmp` of two runs is the CI determinism
/// gate.
fn cmd_bench_families(args: &[String]) -> Result<(), String> {
    use liquid_simd_kernelgen::Payload;
    let smoke = flag(args, "--smoke");
    let backend = parse_backend(args)?;
    let widths = if smoke {
        vec![2, 8]
    } else {
        experiments::paper_widths()
    };
    let headline = if widths.contains(&8) {
        8
    } else {
        *widths.last().unwrap()
    };
    let out_path = option_value(args, "--out")?.unwrap_or("BENCH_sim.json");
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    let variants = gen_variants(smoke)?;
    let t0 = Instant::now();

    struct FamAcc {
        variants: u64,
        speedups: Vec<f64>,
        aborts: std::collections::BTreeMap<String, u64>,
    }
    let mut fams: std::collections::BTreeMap<String, FamAcc> = std::collections::BTreeMap::new();
    let mut rows: Vec<perfhist::WorkloadRow> = Vec::new();
    for v in &variants {
        let acc = fams.entry(v.family.clone()).or_insert_with(|| FamAcc {
            variants: 0,
            speedups: Vec::new(),
            aborts: std::collections::BTreeMap::new(),
        });
        acc.variants += 1;
        // Kernels get the full scalar-baseline + per-width sweep; the
        // untranslatable assembly idioms run per width only for their
        // abort tallies (their speedup is 1 by construction — they
        // always fall back to the scalar loop).
        let (program, baseline_cycles) = match &v.payload {
            Payload::Kernel(w) => {
                let plain = liquid_simd::build_plain(w).map_err(|e| format!("{}: {e}", v.name))?;
                let base = liquid_simd::run(
                    &plain.program,
                    MachineConfig::scalar_only().with_backend(backend),
                )
                .map_err(|e| e.to_string())?;
                let b = liquid_simd::build_liquid(w).map_err(|e| format!("{}: {e}", v.name))?;
                (b.program, base.report.cycles)
            }
            Payload::Asm { src, .. } => {
                let program = asm::assemble(src).map_err(|e| format!("{}: {e}", v.name))?;
                (program, 0)
            }
        };
        let mut row = perfhist::WorkloadRow {
            name: v.name.clone(),
            baseline_cycles,
            sim_cycles: 0,
            cycles_by_width: Vec::new(),
            ledger: None,
            wall_s: 0.0,
            cycles_per_sec: 0.0,
        };
        for &width in &widths {
            let out =
                liquid_simd::run(&program, MachineConfig::liquid(width).with_backend(backend))
                    .map_err(|e| format!("{}@{width}: {e}", v.name))?;
            if width == headline {
                row.sim_cycles = out.report.cycles;
            }
            row.cycles_by_width.push((width, out.report.cycles));
            for (tag, &n) in &out.report.translator.aborts {
                *acc.aborts.entry((*tag).to_string()).or_insert(0) += n;
            }
        }
        if baseline_cycles > 0 {
            acc.speedups
                .push(baseline_cycles as f64 / row.sim_cycles.max(1) as f64);
            // Width anomalies only make sense where widths change the
            // cycle count; always-aborting variants run scalar at every
            // width.
            rows.push(row);
        }
    }

    let mut fam_rows: Vec<perfhist::FamilyRow> = Vec::new();
    for (family, acc) in &mut fams {
        acc.speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fam_rows.push(perfhist::FamilyRow {
            family: family.clone(),
            variants: acc.variants,
            speedup_p10: perfhist::record::nearest_rank(&acc.speedups, 10.0),
            speedup_p50: perfhist::record::nearest_rank(&acc.speedups, 50.0),
            speedup_p90: perfhist::record::nearest_rank(&acc.speedups, 90.0),
            aborts: acc.aborts.iter().map(|(t, &n)| (t.clone(), n)).collect(),
        });
    }
    for f in &fam_rows {
        let aborts = f
            .aborts
            .iter()
            .map(|(t, n)| format!("{t}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<16} {:>3} variants  speedup p10 {:>5.2}x  p50 {:>5.2}x  p90 {:>5.2}x  {}",
            f.family,
            f.variants,
            f.speedup_p10,
            f.speedup_p50,
            f.speedup_p90,
            if aborts.is_empty() { "-" } else { &aborts }
        );
    }
    let anomalies = width_anomalies(&rows);
    for a in &anomalies {
        println!("warning: width anomaly — {a}");
    }

    // The snapshot: schema'd, sorted, and free of wall-clock and host
    // facts — rerunning must reproduce it byte for byte.
    let mut json = String::from("{\n  \"schema\": \"liquid-simd-bench-families-v1\",\n");
    json.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"widths\": {widths:?},\n"));
    json.push_str(&format!("  \"variants\": {},\n", variants.len()));
    json.push_str("  \"families\": [\n");
    for (i, f) in fam_rows.iter().enumerate() {
        let aborts = f
            .aborts
            .iter()
            .map(|(t, n)| format!("\"{}\": {n}", json_escape(t)))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"variants\": {}, \"speedup_p10\": {:.4}, \
             \"speedup_p50\": {:.4}, \"speedup_p90\": {:.4}, \"aborts\": {{{aborts}}}}}{}\n",
            json_escape(&f.family),
            f.variants,
            f.speedup_p10,
            f.speedup_p50,
            f.speedup_p90,
            if i + 1 < fam_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"width_anomalies\": [{}]\n",
        anomalies
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("}\n");
    fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "{out_path}: written ({} variants, {} families, {:.3}s)",
        variants.len(),
        fam_rows.len(),
        t0.elapsed().as_secs_f64()
    );

    if !flag(args, "--no-history") {
        let meta = perfhist::RecordMeta {
            commit: perfhist::record::git_commit(std::path::Path::new(".")),
            timestamp: perfhist::record::unix_now(),
            host: perfhist::record::host_fingerprint(),
            config_hash: format!("{:016x}", MachineConfig::liquid(headline).fingerprint()),
            smoke,
            widths: widths.clone(),
            backend: backend.name().to_string(),
        };
        let wall = vec![("families_total_s".to_string(), t0.elapsed().as_secs_f64())];
        let record = perfhist::record::build_gen(&meta, &fam_rows, &wall);
        perfhist::store::append(std::path::Path::new(history_path), &record)?;
        println!(
            "{history_path}: appended perfhist-gen-v1 record for {}",
            meta.commit
        );
    }
    Ok(())
}

fn parse_count(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match option_value(args, name)? {
        None => Ok(default),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad {name} `{v}` (need an integer >= 1)")),
        },
    }
}

/// `bench --serve`: the daemon load generator. Two passes over the same
/// request multiset — one shard, then `--shards` — diffed byte for byte,
/// with the translation-cache hit rate gated at 90%.
fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    let opts = serve::loadgen::LoadOptions {
        smoke: flag(args, "--smoke"),
        backend: parse_backend(args)?,
        clients: parse_count(args, "--clients", 4)?,
        requests_per_client: match option_value(args, "--requests")? {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad --requests `{v}` (need an integer)"))?,
        },
        shards: parse_count(args, "--shards", 8)?,
        min_hit_rate: 0.9,
        history: (!flag(args, "--no-history")).then(|| std::path::PathBuf::from(history_path)),
        seed: 0xC0FFEE,
        measure_recorder: flag(args, "--measure-recorder"),
    };
    let report = serve::loadgen::run(&opts)?;
    println!(
        "bench --serve: {} requests × 2 passes ({} clients) — byte-identical at 1 and {} shards",
        report.requests,
        opts.clients.max(1),
        report.shards
    );
    println!(
        "translation cache: {:.1}% hit rate (gate 90.0%), {} hits / {} misses in the sharded pass",
        report.hit_rate * 100.0,
        report.sharded.cache_hits,
        report.sharded.cache_misses
    );
    println!(
        "determinism: requests {:016x}, responses {:016x}, {} sim-cycles total \
         ({} error responses, identical in both passes)",
        report.sharded.determinism.0,
        report.sharded.determinism.1,
        report.sharded.determinism.2,
        report.errors
    );
    if let Some(history) = &opts.history {
        println!(
            "{}: appended {} perfhist-serve-v1 records",
            history.display(),
            report.single.records_appended + report.sharded.records_appended
        );
    }
    if let Some((on_s, off_s)) = report.recorder_walls_s {
        let frac = report.recorder_overhead_frac().unwrap_or(0.0);
        println!(
            "flight recorder overhead: {:+.1}% wall ({on_s:.3}s on vs {off_s:.3}s off, \
             sharded pass; responses byte-identical with the recorder off)",
            frac * 100.0
        );
        let note = format!(
            "flight recorder overhead {:+.1}% wall ({:.3}s on vs {:.3}s off, {} requests, \
             {} shards, backend {})",
            frac * 100.0,
            on_s,
            off_s,
            report.requests,
            report.shards,
            opts.backend.name()
        );
        let out = option_value(args, "--out")?.unwrap_or("BENCH_sim.json");
        record_bench_note(out, &note)?;
        println!("{out}: recorder-overhead note recorded");
    }
    Ok(())
}

/// Records one line in the bench snapshot's `notes` array (replacing any
/// previous notes), preserving the rest of the hand-formatted file so
/// `bench` diffs stay readable. The note lands right after the `schema`
/// line; a missing snapshot gets a minimal one.
fn record_bench_note(path: &str, note: &str) -> Result<(), String> {
    let entry = format!("  \"notes\": [\"{}\"],", json_escape(note));
    let Ok(text) = fs::read_to_string(path) else {
        let doc = format!(
            "{{\n  \"schema\": \"liquid-simd-bench-v1\",\n{}\n}}\n",
            entry.trim_end_matches(',')
        );
        return fs::write(path, doc).map_err(|e| format!("{path}: {e}"));
    };
    let mut out = String::with_capacity(text.len() + entry.len() + 1);
    let mut inserted = false;
    for line in text.lines() {
        if line.trim_start().starts_with("\"notes\":") {
            continue; // replaced below
        }
        out.push_str(line);
        out.push('\n');
        if !inserted && line.contains("\"schema\":") {
            out.push_str(&entry);
            out.push('\n');
            inserted = true;
        }
    }
    if !inserted {
        return Err(format!("{path}: no \"schema\" line to anchor the note on"));
    }
    // If the note ended up as the last member (minimal snapshot), drop the
    // trailing comma so the document stays valid JSON.
    let out = out.replace("],\n}", "]\n}");
    fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// `liquid-simd serve`: bind the daemon and block until a `shutdown`
/// request (or a bind/accept failure) stops it.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = option_value(args, "--addr")?.unwrap_or("127.0.0.1:7070");
    let shards = parse_count(args, "--shards", liquid_simd::default_jobs().clamp(1, 8))?;
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    let flight_capacity = match option_value(args, "--flight-capacity")? {
        None => liquid_simd_trace::DEFAULT_FLIGHT_CAPACITY,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --flight-capacity `{v}` (need an integer; 0 disables)"))?,
    };
    let cache_capacity = match option_value(args, "--cache-cap")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --cache-cap `{v}` (need an integer; 0 = unbounded)"))?,
    };
    let opts = serve::ServeOptions {
        addr: addr.to_string(),
        shards,
        history: (!flag(args, "--no-history")).then(|| std::path::PathBuf::from(history_path)),
        history_every: parse_count(args, "--history-every", 64)?,
        backend: parse_backend(args)?,
        flight_capacity,
        flight_dir: option_value(args, "--flight-dir")?.map(std::path::PathBuf::from),
        inject_faults: flag(args, "--inject-faults"),
        burst_threshold: parse_count(args, "--burst-threshold", 8)? as u64,
        cache_capacity,
    };
    if opts.inject_faults {
        eprintln!("liquid-simd serve: --inject-faults is on (test-only crash drills enabled)");
    }
    let handle = serve::spawn(opts)?;
    println!(
        "liquid-simd serve: listening on {} ({shards} shards) — line-delimited JSON, \
         {{\"op\":\"shutdown\"}} to stop",
        handle.addr
    );
    let summary = handle.join()?;
    println!(
        "liquid-simd serve: {} requests ({} errors), cache {} hits / {} misses, \
         {} history records, {} flight dumps",
        summary.requests,
        summary.errors,
        summary.cache_hits,
        summary.cache_misses,
        summary.records_appended,
        summary.dumps
    );
    Ok(())
}

/// Sends one line-JSON request to a running daemon and parses the single
/// response line. `inspect` and `top` are pure observers, so a blocking
/// round-trip per poll is plenty.
fn serve_request(addr: &str, line: &str) -> Result<perfhist::Json, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("connect {addr}: {e} (is `liquid-simd serve` running?)"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("{addr}: send: {e}"))?;
    let mut resp = String::new();
    BufReader::new(stream)
        .read_line(&mut resp)
        .map_err(|e| format!("{addr}: recv: {e}"))?;
    if resp.trim().is_empty() {
        return Err(format!(
            "{addr}: daemon closed the connection without answering"
        ));
    }
    perfhist::Json::parse(resp.trim_end()).map_err(|e| format!("{addr}: bad response: {e}"))
}

/// Fetches one `metrics-v1` document from a daemon's `inspect` op.
fn fetch_metrics(addr: &str) -> Result<perfhist::Json, String> {
    let resp = serve_request(addr, "{\"op\":\"inspect\"}")?;
    match resp.get("metrics") {
        Some(m) => Ok(m.clone()),
        None => Err(format!(
            "{addr}: unexpected inspect response: {}",
            resp.write()
        )),
    }
}

/// Walks a dotted path through nested JSON objects; absent → 0.
fn path_u64(doc: &perfhist::Json, path: &[&str]) -> u64 {
    let mut cur = doc;
    for key in path {
        match cur.get(key) {
            Some(v) => cur = v,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

fn path_f64(doc: &perfhist::Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for key in path {
        match cur.get(key) {
            Some(v) => cur = v,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

/// One text frame over a `metrics-v1` document — shared by `inspect`
/// (one shot, with the full counter table) and `top` (redrawn per poll,
/// with a throughput line computed from the previous poll).
fn render_metrics_frame(
    out: &mut String,
    addr: &str,
    m: &perfhist::Json,
    throughput: Option<f64>,
    counters_table: bool,
) {
    use std::fmt::Write;
    let backend = m
        .get("backend")
        .and_then(perfhist::Json::as_str)
        .unwrap_or("?");
    let _ = writeln!(
        out,
        "liquid-simd @ {addr} — backend {backend}, {} shards, up {:.1}s",
        path_u64(m, &["shards"]),
        path_u64(m, &["uptime_us"]) as f64 / 1e6
    );
    let by_op = m
        .get("requests")
        .and_then(|r| r.get("by_op"))
        .and_then(perfhist::Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .unwrap_or_default();
    let _ = write!(
        out,
        "requests   {} total ({} errors)",
        path_u64(m, &["requests", "total"]),
        path_u64(m, &["requests", "errors"])
    );
    if let Some(rps) = throughput {
        let _ = write!(out, "   throughput {rps:.1} req/s");
    }
    out.push('\n');
    if !by_op.is_empty() {
        let _ = writeln!(out, "ops        {by_op}");
    }
    for (label, name, unit) in [
        ("latency", "wall.latency_us", "us"),
        ("cycles", "request.cycles", ""),
    ] {
        let Some(h) = m.get("histograms").and_then(|hs| hs.get(name)) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{label:<10} p50 <={}{unit}  p95 <={}{unit}  p99 <={}{unit}  max {}{unit}  \
             ({} samples)",
            serve::inspect::percentile_json(h, 50.0),
            serve::inspect::percentile_json(h, 95.0),
            serve::inspect::percentile_json(h, 99.0),
            path_u64(h, &["max"]),
            path_u64(h, &["count"])
        );
    }
    let cap = path_u64(m, &["cache", "translations", "capacity"]);
    let _ = writeln!(
        out,
        "cache      {:.1}% hit rate ({} hits / {} misses), {} entries{}, generation {}, \
         {} evictions, {} cached builds",
        path_f64(m, &["cache", "translations", "hit_rate"]) * 100.0,
        path_u64(m, &["cache", "translations", "hits"]),
        path_u64(m, &["cache", "translations", "misses"]),
        path_u64(m, &["cache", "translations", "entries"]),
        if cap == 0 {
            " (unbounded)".to_string()
        } else {
            format!(" (cap {cap})")
        },
        path_u64(m, &["cache", "translations", "generation"]),
        path_u64(m, &["cache", "translations", "evictions"]),
        path_u64(m, &["cache", "builds"])
    );
    let _ = writeln!(
        out,
        "flight     {} events (cap {}), {} dropped, {} contended",
        path_u64(m, &["flight", "events"]),
        path_u64(m, &["flight", "capacity"]),
        path_u64(m, &["flight", "dropped"]),
        path_u64(m, &["flight", "contended"])
    );
    // Abort-reason tallies straight from the merged shard counters
    // (`sim.translator.abort.<reason>`), the live view of why regions
    // fell back to scalar execution.
    let aborts = m
        .get("counters")
        .and_then(perfhist::Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| {
                    k.strip_prefix("sim.translator.abort.")
                        .map(|tag| format!("{tag}={}", v.as_u64().unwrap_or(0)))
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "aborts     {}",
        if aborts.is_empty() { "none" } else { &aborts }
    );
    // Per-backend cycle split from the merged shard counters
    // (`sim.backend.<name>.cycles` / `.runs`): which execution backend did
    // the simulated work, and how much of it.
    let mut backends: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    if let Some(pairs) = m.get("counters").and_then(perfhist::Json::as_obj) {
        for (k, v) in pairs {
            let Some(rest) = k.strip_prefix("sim.backend.") else {
                continue;
            };
            let v = v.as_u64().unwrap_or(0);
            if let Some(name) = rest.strip_suffix(".cycles") {
                backends.entry(name.to_string()).or_default().0 = v;
            } else if let Some(name) = rest.strip_suffix(".runs") {
                backends.entry(name.to_string()).or_default().1 = v;
            }
        }
    }
    let split = backends
        .iter()
        .map(|(name, &(cycles, runs))| format!("{name} {cycles} cycles / {runs} runs"))
        .collect::<Vec<_>>()
        .join("   ");
    let _ = writeln!(
        out,
        "backends   {}",
        if split.is_empty() { "none" } else { &split }
    );
    // Merged ledger category cycles (`sim.ledger.<category>.cycles`) —
    // the serve-side view of the cycle ledger, scrub-stable at any shard
    // count because the shards sum.
    let ledger = m
        .get("counters")
        .and_then(perfhist::Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| {
                    k.strip_prefix("sim.ledger.")
                        .and_then(|rest| rest.strip_suffix(".cycles"))
                        .filter(|_| v.as_u64().unwrap_or(0) > 0)
                        .map(|cat| format!("{cat}={}", v.as_u64().unwrap_or(0)))
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "ledger     {}",
        if ledger.is_empty() { "none" } else { &ledger }
    );
    if counters_table {
        if let Some(pairs) = m.get("counters").and_then(perfhist::Json::as_obj) {
            let table: std::collections::BTreeMap<String, u64> = pairs
                .iter()
                .map(|(k, v)| (k.clone(), v.as_u64().unwrap_or(0)))
                .collect();
            out.push_str("counters\n");
            out.push_str(&liquid_simd::render_counter_table(&table));
        }
    }
}

/// `liquid-simd inspect`: one `metrics-v1` snapshot, rendered for humans
/// (or raw/scrubbed JSON for scripts and byte-comparisons).
fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let addr = option_value(args, "--addr")?.unwrap_or("127.0.0.1:7070");
    let metrics = fetch_metrics(addr)?;
    if flag(args, "--raw") {
        println!("{}", metrics.write());
        return Ok(());
    }
    if flag(args, "--scrub") {
        println!("{}", serve::inspect::scrub(&metrics).write());
        return Ok(());
    }
    let mut frame = String::new();
    render_metrics_frame(&mut frame, addr, &metrics, None, true);
    print!("{frame}");
    Ok(())
}

/// `liquid-simd top`: poll `inspect` and redraw a plain-ANSI terminal
/// frame — throughput from the delta between polls, p50/p95/p99, cache
/// hit rate, abort tallies.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let addr = option_value(args, "--addr")?.unwrap_or("127.0.0.1:7070");
    let interval = match option_value(args, "--interval")? {
        None => 2.0,
        Some(v) => match v.parse::<f64>() {
            Ok(s) if s > 0.0 => s,
            _ => return Err(format!("bad --interval `{v}` (need seconds > 0)")),
        },
    };
    let once = flag(args, "--once");
    let frames = if once {
        1
    } else {
        match option_value(args, "--count")? {
            None => 0, // poll until the daemon goes away (or ctrl-c)
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad --count `{v}` (need an integer >= 1)")),
            },
        }
    };
    let mut prev: Option<(Instant, u64)> = None;
    let mut drawn = 0usize;
    loop {
        let metrics = fetch_metrics(addr)?;
        let now = Instant::now();
        let total = path_u64(&metrics, &["requests", "total"]);
        let throughput = prev.map(|(t0, n0)| {
            let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
            total.saturating_sub(n0) as f64 / dt
        });
        prev = Some((now, total));
        let mut frame = String::new();
        render_metrics_frame(&mut frame, addr, &metrics, throughput, false);
        if once {
            // A single frame with no escape codes: pipeline-friendly.
            print!("{frame}");
        } else {
            // Home + clear-to-end keeps the redraw flicker-free on any
            // ANSI terminal; no raw mode, no external TUI machinery.
            print!("\x1b[H\x1b[2J{frame}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        drawn += 1;
        if frames != 0 && drawn >= frames {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn cmd_sentinel(args: &[String]) -> Result<(), String> {
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    if flag(args, "--cross-backend") {
        return cmd_sentinel_cross(args, history_path);
    }
    let mut opts = perfhist::SentinelOptions {
        baseline_commit: option_value(args, "--baseline")?.map(str::to_string),
        ..perfhist::SentinelOptions::default()
    };
    if let Some(v) = option_value(args, "--window")? {
        opts.window = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --window `{v}` (need an integer >= 1)")),
        };
    }
    if let Some(v) = option_value(args, "--noise-frac")? {
        opts.noise_frac = match v.parse::<f64>() {
            Ok(f) if f > 0.0 => f,
            _ => return Err(format!("bad --noise-frac `{v}` (need a fraction > 0)")),
        };
    }
    let history = perfhist::store::load(std::path::Path::new(history_path))?;
    let verdict = perfhist::sentinel::check(&history, &opts);
    if flag(args, "--json") {
        println!("{}", verdict.json.write());
    } else {
        render_verdict(&verdict.json);
    }
    if verdict.failed {
        let status = verdict
            .json
            .get("status")
            .and_then(perfhist::Json::as_str)
            .unwrap_or("fail");
        return Err(match status {
            "no-history" => {
                "sentinel: no history — run `liquid-simd bench` to seed bench/history.jsonl"
                    .to_string()
            }
            "no-baseline" => "sentinel: no comparable baseline record (config hash, width \
                 sweep, or smoke set changed) — re-seed bench/history.jsonl to acknowledge \
                 the change"
                .to_string(),
            _ => "sentinel: deterministic results drifted from the baseline (bench cycle \
                 counts or serve determinism hashes)"
                .to_string(),
        });
    }
    Ok(())
}

/// `sentinel --cross-backend`: assert the newest interp and superblock
/// bench records (same commit, same config) agree on every deterministic
/// cycle count. The regular sentinel pairs baselines *within* a backend;
/// this is the *between*-backend equality gate.
fn cmd_sentinel_cross(args: &[String], history_path: &str) -> Result<(), String> {
    let history = perfhist::store::load(std::path::Path::new(history_path))?;
    let verdict = perfhist::cross_check(&history);
    if flag(args, "--json") {
        println!("{}", verdict.json.write());
    } else {
        use perfhist::Json;
        let get_str = |k: &str| verdict.json.get(k).and_then(Json::as_str).unwrap_or("?");
        println!(
            "sentinel --cross-backend: {} (interp {}, superblock {}, {} workloads checked)",
            get_str("status"),
            get_str("interp_commit"),
            get_str("superblock_commit"),
            verdict
                .json
                .get("workloads_checked")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );
        for d in verdict
            .json
            .get("cycle_drift")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            println!(
                "  DRIFT {} {}: interp {} vs superblock {}",
                d.get("workload").and_then(Json::as_str).unwrap_or("?"),
                d.get("metric").and_then(Json::as_str).unwrap_or("?"),
                d.get("interp").map_or("?".to_string(), Json::write),
                d.get("superblock").map_or("?".to_string(), Json::write),
            );
        }
    }
    if verdict.failed {
        return Err(
            match verdict
                .json
                .get("status")
                .and_then(perfhist::Json::as_str)
                .unwrap_or("fail")
            {
                "no-pair" => "sentinel --cross-backend: need one bench record from each backend — \
                 run `liquid-simd bench` and `liquid-simd bench --backend superblock`"
                    .to_string(),
                "incomparable" => "sentinel --cross-backend: the newest interp and superblock \
                 records are from different commits or configs — re-run both benches on the \
                 same tree"
                    .to_string(),
                _ => "sentinel --cross-backend: superblock sim cycles diverged from the \
                 interpreter (the backends must be bit-exact)"
                    .to_string(),
            },
        );
    }
    Ok(())
}

/// Human rendering of a `sentinel-v1` verdict document.
fn render_verdict(v: &perfhist::Json) {
    use perfhist::Json;
    let get_str = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("?");
    let get_arr = |k: &str| {
        v.get(k)
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    println!(
        "sentinel: {} (commit {}, baseline {}, window {}, {} workloads checked)",
        get_str("status"),
        get_str("commit"),
        get_str("baseline_commit"),
        v.get("baseline_window").and_then(Json::as_u64).unwrap_or(0),
        v.get("workloads_checked")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );
    for d in get_arr("cycle_drift") {
        println!(
            "  DRIFT {} {}: {} -> {}",
            d.get("workload").and_then(Json::as_str).unwrap_or("?"),
            d.get("metric").and_then(Json::as_str).unwrap_or("?"),
            d.get("baseline").and_then(Json::as_u64).unwrap_or(0),
            d.get("current").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    for w in get_arr("wall_warnings") {
        println!(
            "  warn {}: {:.0} sim-cycles/s vs median {:.0} (MAD {:.0}) — wall clock only, not gated",
            w.get("workload").and_then(Json::as_str).unwrap_or("?"),
            w.get("current").and_then(Json::as_f64).unwrap_or(0.0),
            w.get("median").and_then(Json::as_f64).unwrap_or(0.0),
            w.get("mad").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }
    let deltas = get_arr("counter_deltas");
    if !deltas.is_empty() {
        println!(
            "  {} counter(s) changed vs baseline (informational):",
            deltas.len()
        );
        for d in deltas.iter().take(10) {
            println!(
                "    {} {} -> {}",
                d.get("counter").and_then(Json::as_str).unwrap_or("?"),
                d.get("baseline").and_then(Json::as_u64).unwrap_or(0),
                d.get("current").and_then(Json::as_u64).unwrap_or(0),
            );
        }
        if deltas.len() > 10 {
            println!("    … and {} more", deltas.len() - 10);
        }
    }
    if let Some(serve) = v.get("serve") {
        println!(
            "  serve: {} ({} serve records, requests {})",
            serve.get("status").and_then(Json::as_str).unwrap_or("?"),
            serve.get("records").and_then(Json::as_u64).unwrap_or(0),
            serve
                .get("requests_hash")
                .and_then(Json::as_str)
                .unwrap_or("-"),
        );
        for d in serve
            .get("drift")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
        {
            println!(
                "  SERVE DRIFT {}: {} -> {}",
                d.get("metric").and_then(Json::as_str).unwrap_or("?"),
                d.get("baseline").map_or("?".to_string(), Json::write),
                d.get("current").map_or("?".to_string(), Json::write),
            );
        }
    }
}

fn cmd_dashboard(args: &[String]) -> Result<(), String> {
    let history_path = option_value(args, "--history")?.unwrap_or("bench/history.jsonl");
    let out = option_value(args, "--out")?.unwrap_or("report.html");
    let flame_workload = option_value(args, "--flame")?.unwrap_or("fir");
    let history = if std::path::Path::new(history_path).exists() {
        perfhist::store::load(std::path::Path::new(history_path))?
    } else {
        Vec::new()
    };
    // A traced run of one workload supplies the flamegraph: its span
    // records fold into `track;parent;child self_cycles` stacks.
    let (program, name) = resolve_program(flame_workload)?;
    let prof = liquid_simd::profile(&program, &name, 8).map_err(|e| e.to_string())?;
    let folded = export::folded_stacks(&prof.spans);
    // Optional observability panels: every flight-v1 dump under
    // --flight-dir (sorted by file name, i.e. dump order) and one
    // metrics-v1 snapshot file (an `inspect` response line works as-is).
    let mut dumps: Vec<(String, String)> = Vec::new();
    if let Some(dir) = option_value(args, "--flight-dir")? {
        let entries = fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{dir}: {e}"))?;
            let file = entry.file_name().to_string_lossy().into_owned();
            if !file.ends_with(".jsonl") {
                continue;
            }
            let text = fs::read_to_string(entry.path())
                .map_err(|e| format!("{}: {e}", entry.path().display()))?;
            dumps.push((file, text));
        }
        dumps.sort();
    }
    let snapshot = match option_value(args, "--snapshot")? {
        None => None,
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(perfhist::Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?)
        }
    };
    let html = perfhist::dashboard::render_extended(&history, &folded, &dumps, snapshot.as_ref());
    fs::write(out, &html).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: written ({} history records, {} flame frames from {name}, {} flight dumps, \
         {} bytes, self-contained)",
        history.len(),
        folded.lines().count(),
        dumps.len(),
        html.len()
    );
    Ok(())
}

fn cmd_conform(args: &[String]) -> Result<(), String> {
    let seed = match option_value(args, "--seed")? {
        None => 0xC0FFEE,
        Some(v) => {
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.map_err(|_| format!("bad --seed `{v}`"))?
        }
    };
    let cases = match option_value(args, "--cases")? {
        None => 200,
        Some(v) => v.parse().map_err(|_| format!("bad --cases `{v}`"))?,
    };
    let opts = liquid_simd_conform::ConformOptions {
        seed,
        cases,
        jobs: parse_jobs(args)?,
        shrink: !flag(args, "--no-shrink"),
    };
    let report = liquid_simd_conform::run_conform(&opts);

    let json = liquid_simd_conform::report_to_json(&report);
    if let Some(path) = option_value(args, "--out")? {
        fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: written");
    }
    if flag(args, "--json") {
        print!("{json}");
    } else {
        let (passed, failed) = report.tally();
        let translated = report.cases.iter().filter(|c| c.translated).count();
        println!(
            "conform: seed {seed:#x}, {} cases — {passed} passed, {failed} failed \
             ({translated} exercised the translator)",
            report.cases.len()
        );
        for sw in &report.sweeps {
            println!(
                "abort sweep `{}` @ {} lanes: {} injection points — {}",
                sw.name,
                sw.lanes,
                sw.points,
                if sw.passed { "all clean" } else { &sw.detail }
            );
        }
        for f in &report.failures {
            println!("FAIL {}: {}", f.outcome.name, f.outcome.detail);
        }
    }

    // Persist minimized failures so they can be promoted to regression
    // cases (and uploaded as CI artifacts).
    if !report.failures.is_empty() {
        let dir = option_value(args, "--corpus-dir")?.unwrap_or("tests/corpus");
        for f in &report.failures {
            let path = liquid_simd_conform::corpus::save(std::path::Path::new(dir), &f.case)
                .map_err(|e| e.to_string())?;
            eprintln!("minimized failing case written to {}", path.display());
        }
    }
    if !report.passed() {
        return Err("conformance run failed".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_parsing() {
        let a = |s: &str| vec!["--lanes".to_string(), s.to_string()];
        assert_eq!(parse_lanes(&a("8")).unwrap(), 8);
        assert_eq!(parse_lanes(&a("0")).unwrap(), 0);
        assert_eq!(parse_lanes(&[]).unwrap(), 8);
        assert!(parse_lanes(&a("3")).is_err());
        assert!(parse_lanes(&a("32")).is_err());
        assert!(parse_lanes(&a("x")).is_err());
    }

    #[test]
    fn jobs_parsing() {
        let a = |s: &str| vec!["--jobs".to_string(), s.to_string()];
        assert_eq!(parse_jobs(&a("4")).unwrap(), 4);
        assert!(parse_jobs(&a("0")).is_err());
        assert!(parse_jobs(&a("x")).is_err());
        assert!(parse_jobs(&[]).unwrap() >= 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn width_anomaly_detection_flags_slower_wider_widths() {
        let row = |name: &str, by_width: &[(usize, u64)]| perfhist::WorkloadRow {
            name: name.to_string(),
            baseline_cycles: 1_000,
            sim_cycles: by_width.last().map_or(0, |&(_, c)| c),
            cycles_by_width: by_width.to_vec(),
            wall_s: 0.0,
            cycles_per_sec: 0.0,
            ledger: None,
        };
        // The motivating case: 179.art costs more cycles at width 16 than 8.
        let rows = vec![
            row(
                "179.art",
                &[(2, 3_000_000), (8, 2_380_481), (16, 2_482_896)],
            ),
            row("fir", &[(2, 300), (8, 200), (16, 100)]),
        ];
        let warnings = width_anomalies(&rows);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("179.art"));
        assert!(warnings[0].contains("width 16"));
        assert!(warnings[0].contains("2482896"));
        assert!(width_anomalies(&[]).is_empty());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_cli(&["frobnicate".to_string()]).is_err());
        assert!(run_cli(&[]).is_err());
    }

    /// The acceptance-criteria exit-code contract: `sentinel` succeeds on a
    /// clean history and errors (→ process exit 1) the moment a record's
    /// deterministic `sim_cycles` drifts from the baseline.
    #[test]
    fn sentinel_exit_code_tracks_cycle_drift() {
        let dir = std::env::temp_dir().join(format!("cli-sentinel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = |cycles: u64| {
            perfhist::Json::parse(&format!(
                r#"{{"schema":"perfhist-v1","commit":"c","timestamp":1,"host":"h","config_hash":"cafe","smoke":true,"widths":[2,8],"workloads":[{{"name":"FIR","baseline_cycles":1000,"sim_cycles":{cycles},"cycles_by_width":{{"8":{cycles}}},"wall_s":0.5,"sim_cycles_per_sec":100.0}}],"counters":{{}},"wall":{{}}}}"#
            ))
            .unwrap()
        };
        perfhist::store::append(&path, &rec(250)).unwrap();
        perfhist::store::append(&path, &rec(250)).unwrap();
        let hist = path.to_str().unwrap().to_string();
        let args = |h: &str| {
            vec![
                "sentinel".to_string(),
                "--history".to_string(),
                h.to_string(),
                "--json".to_string(),
            ]
        };
        assert!(run_cli(&args(&hist)).is_ok(), "identical cycles pass");
        perfhist::store::append(&path, &rec(251)).unwrap();
        assert!(run_cli(&args(&hist)).is_err(), "perturbed cycles fail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_and_top_poll_a_live_daemon() {
        let handle = serve::spawn(serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            history: None,
            ..serve::ServeOptions::default()
        })
        .unwrap();
        let addr = handle.addr.to_string();
        // Push one real request through so the histograms have samples.
        let resp = serve_request(&addr, r#"{"op":"run","workload":"fir","id":"t1"}"#).unwrap();
        assert_eq!(
            resp.get("schema").and_then(perfhist::Json::as_str),
            Some("serve-v1"),
            "{}",
            resp.write()
        );
        let args = |extra: &[&str]| {
            let mut v = vec![
                "inspect".to_string(),
                "--addr".to_string(),
                addr.to_string(),
            ];
            v.extend(extra.iter().map(|s| (*s).to_string()));
            v
        };
        assert!(run_cli(&args(&[])).is_ok(), "human inspect");
        assert!(run_cli(&args(&["--raw"])).is_ok(), "raw inspect");
        assert!(run_cli(&args(&["--scrub"])).is_ok(), "scrubbed inspect");
        let top = vec![
            "top".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--once".to_string(),
        ];
        assert!(run_cli(&top).is_ok(), "top --once");
        // The frame itself carries the live numbers `top` renders.
        let metrics = fetch_metrics(&addr).unwrap();
        let mut frame = String::new();
        render_metrics_frame(&mut frame, &addr, &metrics, Some(12.5), false);
        assert!(frame.contains("throughput 12.5 req/s"), "{frame}");
        assert!(frame.contains("latency    p50 <="), "{frame}");
        assert!(frame.contains("aborts"), "{frame}");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn bench_notes_splice_keeps_the_snapshot_valid() {
        let dir = std::env::temp_dir().join(format!("cli-bench-note-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        let p = path.to_str().unwrap();
        std::fs::write(
            &path,
            "{\n  \"schema\": \"liquid-simd-bench-v1\",\n  \"jobs\": 4,\n  \"workloads\": [\n  ]\n}\n",
        )
        .unwrap();
        record_bench_note(p, "overhead +1.0% wall").unwrap();
        // Replacing an existing note must not duplicate the key.
        record_bench_note(p, "overhead +2.0% wall").unwrap();
        let doc = perfhist::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let notes = doc.get("notes").and_then(perfhist::Json::as_arr).unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].as_str(), Some("overhead +2.0% wall"));
        assert_eq!(doc.get("jobs").and_then(perfhist::Json::as_u64), Some(4));
        // A missing snapshot gets a minimal, parseable one.
        let fresh = dir.join("fresh.json");
        record_bench_note(fresh.to_str().unwrap(), "n").unwrap();
        let doc = perfhist::Json::parse(&std::fs::read_to_string(&fresh).unwrap()).unwrap();
        assert!(doc.get("notes").is_some());
        // And re-noting the minimal file stays valid (no trailing comma).
        record_bench_note(fresh.to_str().unwrap(), "n2").unwrap();
        perfhist::Json::parse(&std::fs::read_to_string(&fresh).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
