//! `diff-v1`: the ranked attribution of a cycle delta between two runs.
//!
//! [`diff`] compares two [`Snapshot`]s — two widths of one workload, two
//! history records, two backends — and explains where the cycles moved:
//! per-category, per-region, with counter deltas as corroborating
//! evidence, plus one deterministic human narrative line per top
//! contributor. Everything is integer math over ordered maps, so the same
//! pair of snapshots renders byte-identically on every run and host.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{escape, Snapshot};

/// One category's contribution to the delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatDelta {
    /// Stable category name.
    pub name: String,
    /// Cycles in run A.
    pub a_cycles: u64,
    /// Cycles in run B.
    pub b_cycles: u64,
    /// `b - a`.
    pub delta: i64,
    /// This category's signed share of the net total delta, in permille
    /// (a category moving against the net direction gets a negative
    /// share). Zero when the totals are identical.
    pub share_permille: i64,
}

/// One region's contribution to the delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionDelta {
    /// Region display name.
    pub name: String,
    /// Cycles in run A.
    pub a_cycles: u64,
    /// Cycles in run B.
    pub b_cycles: u64,
    /// `b - a`.
    pub delta: i64,
    /// The category moving the most inside this region, if any moved.
    pub top_category: Option<String>,
}

/// One corroborating counter's movement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDelta {
    /// Flat dotted counter name.
    pub name: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
    /// `b - a`.
    pub delta: i64,
}

/// The full ranked explanation of `B - A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diff {
    /// Label of run A.
    pub a_label: String,
    /// Label of run B.
    pub b_label: String,
    /// Total cycles of run A.
    pub a_total: u64,
    /// Total cycles of run B.
    pub b_total: u64,
    /// `b_total - a_total`.
    pub total_delta: i64,
    /// The single category that explains the largest share of the delta
    /// (None when nothing moved).
    pub dominant_category: Option<String>,
    /// Per-category deltas, largest |delta| first.
    pub categories: Vec<CatDelta>,
    /// Per-region deltas, largest |delta| first.
    pub regions: Vec<RegionDelta>,
    /// Counters that moved, largest |delta| first.
    pub counters: Vec<CounterDelta>,
    /// One deterministic human line per top contributor.
    pub narrative: Vec<String>,
}

fn sub(b: u64, a: u64) -> i64 {
    i64::try_from(b as i128 - a as i128).unwrap_or(i64::MAX)
}

/// Signed permille of `part` within `whole`, truncated (integer math, so
/// byte-stable everywhere).
fn permille(part: i64, whole: i64) -> i64 {
    if whole == 0 {
        return 0;
    }
    let p = i128::from(part) * 1000 / i128::from(whole);
    i64::try_from(p).unwrap_or(0)
}

/// `permille` of an |delta| against a base count, for percent rendering.
fn pct_str(delta: i64, base: u64) -> String {
    if base == 0 {
        return "n/a".to_string();
    }
    let pm = i128::from(delta.unsigned_abs()) * 1000 / i128::from(base);
    format!("{}.{}%", pm / 10, pm % 10)
}

fn commas(n: u64) -> String {
    let raw = n.to_string();
    let mut out = String::new();
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn signed(n: i64) -> String {
    if n >= 0 {
        format!("+{}", commas(n.unsigned_abs()))
    } else {
        format!("-{}", commas(n.unsigned_abs()))
    }
}

/// Compares two snapshots and builds the ranked explanation of `b - a`.
#[must_use]
pub fn diff(a: &Snapshot, b: &Snapshot) -> Diff {
    let total_delta = sub(b.total_cycles, a.total_cycles);

    // ---- categories --------------------------------------------------------
    let mut cat_names: BTreeSet<&String> = a.categories.keys().collect();
    cat_names.extend(b.categories.keys());
    let mut categories: Vec<CatDelta> = cat_names
        .into_iter()
        .map(|name| {
            let av = a.categories.get(name).copied().unwrap_or_default();
            let bv = b.categories.get(name).copied().unwrap_or_default();
            let delta = sub(bv.cycles, av.cycles);
            CatDelta {
                name: name.clone(),
                a_cycles: av.cycles,
                b_cycles: bv.cycles,
                delta,
                share_permille: permille(delta, total_delta),
            }
        })
        .collect();
    categories.sort_by(|x, y| {
        y.delta
            .unsigned_abs()
            .cmp(&x.delta.unsigned_abs())
            .then(x.name.cmp(&y.name))
    });
    let dominant_category = categories
        .iter()
        .find(|c| c.delta != 0)
        .map(|c| c.name.clone());

    // ---- regions -----------------------------------------------------------
    let mut region_names: BTreeSet<&String> = a.regions.keys().collect();
    region_names.extend(b.regions.keys());
    let empty = crate::RegionSnap::default();
    let mut regions: Vec<RegionDelta> = region_names
        .into_iter()
        .map(|name| {
            let ar = a.regions.get(name).unwrap_or(&empty);
            let br = b.regions.get(name).unwrap_or(&empty);
            let mut cats: BTreeSet<&String> = ar.by_category.keys().collect();
            cats.extend(br.by_category.keys());
            let top_category = cats
                .into_iter()
                .map(|c| {
                    let d = sub(
                        br.by_category.get(c).copied().unwrap_or(0),
                        ar.by_category.get(c).copied().unwrap_or(0),
                    );
                    (c, d)
                })
                .filter(|&(_, d)| d != 0)
                .max_by(|x, y| {
                    x.1.unsigned_abs()
                        .cmp(&y.1.unsigned_abs())
                        .then(y.0.cmp(x.0))
                })
                .map(|(c, _)| c.clone());
            RegionDelta {
                name: name.clone(),
                a_cycles: ar.cycles,
                b_cycles: br.cycles,
                delta: sub(br.cycles, ar.cycles),
                top_category,
            }
        })
        .collect();
    regions.sort_by(|x, y| {
        y.delta
            .unsigned_abs()
            .cmp(&x.delta.unsigned_abs())
            .then(x.name.cmp(&y.name))
    });

    // ---- counters ----------------------------------------------------------
    let mut counter_names: BTreeSet<&String> = a.counters.keys().collect();
    counter_names.extend(b.counters.keys());
    let mut counters: Vec<CounterDelta> = counter_names
        .into_iter()
        .filter_map(|name| {
            let av = a.counters.get(name).copied().unwrap_or(0);
            let bv = b.counters.get(name).copied().unwrap_or(0);
            (av != bv).then(|| CounterDelta {
                name: name.clone(),
                a: av,
                b: bv,
                delta: sub(bv, av),
            })
        })
        .collect();
    counters.sort_by(|x, y| {
        y.delta
            .unsigned_abs()
            .cmp(&x.delta.unsigned_abs())
            .then(x.name.cmp(&y.name))
    });

    let narrative = narrate(a, b, total_delta, &categories, &regions, &counters);
    Diff {
        a_label: a.label.clone(),
        b_label: b.label.clone(),
        a_total: a.total_cycles,
        b_total: b.total_cycles,
        total_delta,
        dominant_category,
        categories,
        regions,
        counters,
        narrative,
    }
}

/// The per-region delta of one category, for narrative attribution.
fn region_cat_delta(a: &Snapshot, b: &Snapshot, cat: &str) -> Option<(String, i64)> {
    let mut names: BTreeSet<&String> = a.regions.keys().collect();
    names.extend(b.regions.keys());
    names
        .into_iter()
        .map(|name| {
            let av = a
                .regions
                .get(name)
                .and_then(|r| r.by_category.get(cat))
                .copied()
                .unwrap_or(0);
            let bv = b
                .regions
                .get(name)
                .and_then(|r| r.by_category.get(cat))
                .copied()
                .unwrap_or(0);
            (name.clone(), sub(bv, av))
        })
        .filter(|&(_, d)| d != 0)
        .max_by(|x, y| {
            x.1.unsigned_abs()
                .cmp(&y.1.unsigned_abs())
                .then(y.0.cmp(&x.0))
        })
}

fn narrate(
    a: &Snapshot,
    b: &Snapshot,
    total_delta: i64,
    categories: &[CatDelta],
    _regions: &[RegionDelta],
    counters: &[CounterDelta],
) -> Vec<String> {
    let mut out = Vec::new();
    if total_delta == 0 {
        out.push(format!(
            "{} and {} spend identical cycle totals ({}).",
            b.label,
            a.label,
            commas(a.total_cycles)
        ));
    } else {
        let dir = if total_delta > 0 { "more" } else { "fewer" };
        out.push(format!(
            "{} spends {} {dir} cycles than {} ({} → {}, {} change).",
            b.label,
            commas(total_delta.unsigned_abs()),
            a.label,
            commas(a.total_cycles),
            commas(b.total_cycles),
            pct_str(total_delta, a.total_cycles)
        ));
    }
    for c in categories.iter().filter(|c| c.delta != 0).take(3) {
        let mut line = format!(
            "{}: {} → {} cycles ({}, {}‰ of the net delta)",
            c.name,
            commas(c.a_cycles),
            commas(c.b_cycles),
            signed(c.delta),
            c.share_permille
        );
        if let Some((region, d)) = region_cat_delta(a, b, &c.name) {
            let _ = write!(line, " — led by {region} ({})", signed(d));
        }
        line.push('.');
        out.push(line);
    }
    // Event-only categories carry no cycles; surface the biggest event
    // movers among them as corroboration alongside the counters.
    let evidence: Vec<String> = counters
        .iter()
        .take(3)
        .map(|c| format!("{} {} → {}", c.name, commas(c.a), commas(c.b)))
        .collect();
    if !evidence.is_empty() {
        out.push(format!("corroborating counters: {}.", evidence.join(", ")));
    }
    out
}

/// Renders a [`Diff`] as the `diff-v1` JSON document.
#[must_use]
pub fn render_json(d: &Diff) -> String {
    let mut j = String::from("{\n  \"schema\": \"diff-v1\",\n");
    let _ = writeln!(
        j,
        "  \"a\": {{\"label\": \"{}\", \"total_cycles\": {}}},",
        escape(&d.a_label),
        d.a_total
    );
    let _ = writeln!(
        j,
        "  \"b\": {{\"label\": \"{}\", \"total_cycles\": {}}},",
        escape(&d.b_label),
        d.b_total
    );
    let _ = writeln!(j, "  \"total_delta\": {},", d.total_delta);
    let _ = writeln!(
        j,
        "  \"dominant_category\": {},",
        d.dominant_category
            .as_deref()
            .map_or_else(|| "null".to_string(), |c| format!("\"{}\"", escape(c)))
    );
    let cats: Vec<String> = d
        .categories
        .iter()
        .map(|c| {
            format!(
                "    {{\"category\": \"{}\", \"a_cycles\": {}, \"b_cycles\": {}, \
                 \"delta\": {}, \"share_permille\": {}}}",
                escape(&c.name),
                c.a_cycles,
                c.b_cycles,
                c.delta,
                c.share_permille
            )
        })
        .collect();
    let _ = writeln!(j, "  \"categories\": [\n{}\n  ],", cats.join(",\n"));
    let regions: Vec<String> = d
        .regions
        .iter()
        .map(|r| {
            format!(
                "    {{\"region\": \"{}\", \"a_cycles\": {}, \"b_cycles\": {}, \
                 \"delta\": {}, \"top_category\": {}}}",
                escape(&r.name),
                r.a_cycles,
                r.b_cycles,
                r.delta,
                r.top_category
                    .as_deref()
                    .map_or_else(|| "null".to_string(), |c| format!("\"{}\"", escape(c)))
            )
        })
        .collect();
    let _ = writeln!(j, "  \"regions\": [\n{}\n  ],", regions.join(",\n"));
    let counters: Vec<String> = d
        .counters
        .iter()
        .map(|c| {
            format!(
                "    {{\"counter\": \"{}\", \"a\": {}, \"b\": {}, \"delta\": {}}}",
                escape(&c.name),
                c.a,
                c.b,
                c.delta
            )
        })
        .collect();
    let _ = writeln!(j, "  \"counters\": [\n{}\n  ],", counters.join(",\n"));
    let lines: Vec<String> = d
        .narrative
        .iter()
        .map(|l| format!("    \"{}\"", escape(l)))
        .collect();
    let _ = writeln!(j, "  \"narrative\": [\n{}\n  ]", lines.join(",\n"));
    j.push_str("}\n");
    j
}

/// Renders a [`Diff`] as aligned human-readable text.
#[must_use]
pub fn render_text(d: &Diff) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "diff: {} vs {}", d.a_label, d.b_label);
    let _ = writeln!(
        out,
        "total cycles      {} → {}   ({})",
        commas(d.a_total),
        commas(d.b_total),
        signed(d.total_delta)
    );
    if let Some(c) = &d.dominant_category {
        let _ = writeln!(out, "dominant category {c}");
    }
    if !d.categories.is_empty() {
        let _ = writeln!(out, "\nby category ({} → {})", d.a_label, d.b_label);
        for c in &d.categories {
            let _ = writeln!(
                out,
                "  {:<20} {:>14} {:>14} {:>14}  {:>6}‰",
                c.name,
                commas(c.a_cycles),
                commas(c.b_cycles),
                signed(c.delta),
                c.share_permille
            );
        }
    }
    if !d.regions.is_empty() {
        let _ = writeln!(out, "\nby region");
        for r in d.regions.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<28} {:>14} {:>14} {:>14}  {}",
                r.name,
                commas(r.a_cycles),
                commas(r.b_cycles),
                signed(r.delta),
                r.top_category.as_deref().unwrap_or("-")
            );
        }
        if d.regions.len() > 12 {
            let _ = writeln!(out, "  … {} more regions", d.regions.len() - 12);
        }
    }
    if !d.counters.is_empty() {
        let _ = writeln!(out, "\ncounters that moved");
        for c in d.counters.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<28} {:>14} {:>14} {:>14}",
                c.name,
                commas(c.a),
                commas(c.b),
                signed(c.delta)
            );
        }
        if d.counters.len() > 12 {
            let _ = writeln!(out, "  … {} more counters", d.counters.len() - 12);
        }
    }
    if !d.narrative.is_empty() {
        let _ = writeln!(out, "\nnarrative");
        for l in &d.narrative {
            let _ = writeln!(out, "  {l}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bucket, RegionSnap};

    fn snap(label: &str, scalar: u64, vector: u64) -> Snapshot {
        let mut s = Snapshot {
            label: label.to_string(),
            total_cycles: scalar + vector,
            ..Snapshot::default()
        };
        s.categories.insert(
            "scalar-execute".to_string(),
            Bucket {
                cycles: scalar,
                events: scalar / 2,
            },
        );
        s.categories.insert(
            "vector-execute".to_string(),
            Bucket {
                cycles: vector,
                events: vector / 4,
            },
        );
        s.regions.insert(
            "kernel @10".to_string(),
            RegionSnap {
                cycles: vector,
                events: vector / 4,
                by_category: [("vector-execute".to_string(), vector)].into(),
            },
        );
        s.regions.insert(
            "(top-level)".to_string(),
            RegionSnap {
                cycles: scalar,
                events: scalar / 2,
                by_category: [("scalar-execute".to_string(), scalar)].into(),
            },
        );
        s.counters
            .insert("mcache.conflicts".to_string(), scalar / 100);
        s
    }

    #[test]
    fn diff_ranks_categories_and_names_dominant() {
        let a = snap("w8", 1000, 2000);
        let b = snap("w16", 1100, 3000);
        let d = diff(&a, &b);
        assert_eq!(d.total_delta, 1100);
        assert_eq!(d.dominant_category.as_deref(), Some("vector-execute"));
        assert_eq!(d.categories[0].name, "vector-execute");
        assert_eq!(d.categories[0].delta, 1000);
        assert_eq!(d.categories[0].share_permille, 909);
        assert_eq!(d.regions[0].name, "kernel @10");
        assert_eq!(d.regions[0].top_category.as_deref(), Some("vector-execute"));
        assert_eq!(d.counters[0].name, "mcache.conflicts");
        assert!(d.narrative[0].contains("w16 spends 1,100 more cycles than w8"));
    }

    #[test]
    fn diff_json_is_deterministic_and_schema_tagged() {
        let a = snap("w8", 1000, 2000);
        let b = snap("w16", 900, 1500);
        let j1 = render_json(&diff(&a, &b));
        let j2 = render_json(&diff(&a, &b));
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\n  \"schema\": \"diff-v1\",\n"));
        assert!(j1.contains("\"dominant_category\": \"vector-execute\""));
        assert!(j1.contains("\"share_permille\""));
        let text = render_text(&diff(&a, &b));
        assert!(text.contains("dominant category vector-execute"));
        assert!(text.contains("narrative"));
    }

    #[test]
    fn identical_snapshots_diff_to_zero() {
        let a = snap("x", 10, 20);
        let d = diff(&a, &a);
        assert_eq!(d.total_delta, 0);
        assert_eq!(d.dominant_category, None);
        assert!(d.counters.is_empty());
        assert!(d.narrative[0].contains("identical cycle totals"));
    }
}
