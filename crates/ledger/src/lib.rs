//! The cycle ledger: exact, deterministic cycle attribution.
//!
//! Every simulated cycle the machine spends is charged to exactly one
//! *bucket* keyed by `(region, pc, category)`:
//!
//! * **region** — the entry PC of the innermost call target the cycle was
//!   spent under ([`TOP_REGION`] for straight-line code outside any call,
//!   the microcode entry's function PC for accelerator execution);
//! * **pc** — the retiring instruction's PC (program index for the scalar
//!   stream, microcode position for the accelerator stream);
//! * **category** — *why* the cycle was spent (see [`Category`]).
//!
//! The hard invariant, enforced by tier-1 tests and the CI `ledger-smoke`
//! job: the sum of all bucket cycles equals the run's `PhaseBreakdown`
//! total bit-exactly, on both execution backends. Event-only categories
//! (mcache probes/misses, microcode dispatches) charge zero cycles and
//! count occurrences instead, so they corroborate without perturbing the
//! partition.
//!
//! The ledger is a plain ordered map — merging, totalling, and rendering
//! are all deterministic, and two ledgers from observationally identical
//! runs compare byte-identical when rendered. [`Snapshot`] is the compact,
//! diff-able rollup (per-region × per-category, no per-PC detail) embedded
//! in `perfhist-v1` records and consumed by [`diff`](crate::diff).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Region id for cycles spent outside any call (top-level driver code).
pub const TOP_REGION: u32 = u32::MAX;

/// Why a cycle was spent (or an event happened). The first four partition
/// every simulated cycle; the last three are event-only corroboration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Scalar-stream execution outside any abort-replay region.
    ScalarExecute,
    /// Accelerator execution: microcode-stream retires, plus native
    /// vector instructions in the program stream.
    VectorExecute,
    /// Translation cost: JIT pipeline stalls (hardware translation
    /// finishes charge an event with zero cycles).
    TranslateOverhead,
    /// Scalar-stream execution inside a region whose translation aborted
    /// permanently — the scalar fallback the paper's §4.2 replay pays.
    AbortReplay,
    /// One microcode-cache lookup (event-only).
    McacheProbe,
    /// One microcode-cache miss (event-only).
    McacheMiss,
    /// One dispatch into resident microcode (event-only).
    Dispatch,
}

impl Category {
    /// Every category, in canonical (ordering) order.
    pub const ALL: [Category; 7] = [
        Category::ScalarExecute,
        Category::VectorExecute,
        Category::TranslateOverhead,
        Category::AbortReplay,
        Category::McacheProbe,
        Category::McacheMiss,
        Category::Dispatch,
    ];

    /// The stable kebab-case name (the public schema surface).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::ScalarExecute => "scalar-execute",
            Category::VectorExecute => "vector-execute",
            Category::TranslateOverhead => "translate-overhead",
            Category::AbortReplay => "abort-replay",
            Category::McacheProbe => "mcache-probe",
            Category::McacheMiss => "mcache-miss",
            Category::Dispatch => "dispatch",
        }
    }

    /// Parses a stable name back into the category.
    #[must_use]
    pub fn parse(name: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One attribution bucket: cycles charged plus charge occurrences.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Simulated cycles charged to this bucket.
    pub cycles: u64,
    /// Number of charges (retires for execute categories, occurrences for
    /// event-only categories).
    pub events: u64,
}

/// Per-region rollup: totals plus the per-category split.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionTotal {
    /// Cycles charged under this region, all categories.
    pub cycles: u64,
    /// Events charged under this region, all categories.
    pub events: u64,
    /// Per-category bucket totals.
    pub by_category: BTreeMap<Category, Bucket>,
}

/// The attribution ledger for one run. Ordered map ⇒ deterministic
/// iteration, merging, and rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    buckets: BTreeMap<(u32, u32, Category), Bucket>,
}

impl Ledger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Charges `cycles` to the `(region, pc, category)` bucket and counts
    /// one event.
    pub fn charge(&mut self, region: u32, pc: u32, category: Category, cycles: u64) {
        let b = self.buckets.entry((region, pc, category)).or_default();
        b.cycles += cycles;
        b.events += 1;
    }

    /// Counts one zero-cycle event on the `(region, pc, category)` bucket.
    pub fn event(&mut self, region: u32, pc: u32, category: Category) {
        self.charge(region, pc, category, 0);
    }

    /// True when nothing has been charged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of distinct buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates buckets in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32, Category), &Bucket)> {
        self.buckets.iter()
    }

    /// Sum of all bucket cycles — must equal the run's phase total.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.buckets.values().map(|b| b.cycles).sum()
    }

    /// Sum of all bucket events.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.buckets.values().map(|b| b.events).sum()
    }

    /// Adds every bucket of `other` into `self` (suite-wide aggregation).
    pub fn merge(&mut self, other: &Ledger) {
        for (k, v) in &other.buckets {
            let b = self.buckets.entry(*k).or_default();
            b.cycles += v.cycles;
            b.events += v.events;
        }
    }

    /// Per-category rollup across all regions and PCs.
    #[must_use]
    pub fn category_totals(&self) -> BTreeMap<Category, Bucket> {
        let mut out: BTreeMap<Category, Bucket> = BTreeMap::new();
        for (&(_, _, cat), v) in &self.buckets {
            let b = out.entry(cat).or_default();
            b.cycles += v.cycles;
            b.events += v.events;
        }
        out
    }

    /// Per-region rollup with the per-category split.
    #[must_use]
    pub fn region_totals(&self) -> BTreeMap<u32, RegionTotal> {
        let mut out: BTreeMap<u32, RegionTotal> = BTreeMap::new();
        for (&(region, _, cat), v) in &self.buckets {
            let r = out.entry(region).or_default();
            r.cycles += v.cycles;
            r.events += v.events;
            let b = r.by_category.entry(cat).or_default();
            b.cycles += v.cycles;
            b.events += v.events;
        }
        out
    }

    /// Renders the full per-PC ledger as deterministic single-line JSON —
    /// the byte-identity surface for cross-backend and cross-jobs tests.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\"schema\":\"ledger-v1\",\"total_cycles\":");
        let _ = write!(j, "{}", self.total_cycles());
        j.push_str(",\"buckets\":[");
        for (i, (&(region, pc, cat), b)) in self.buckets.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "[{region},{pc},\"{}\",{},{}]",
                cat.name(),
                b.cycles,
                b.events
            );
        }
        j.push_str("]}");
        j
    }
}

/// How a region id renders in snapshots and diff output.
#[must_use]
pub fn region_name(region: u32, names: &BTreeMap<u32, String>) -> String {
    if region == TOP_REGION {
        return "(top-level)".to_string();
    }
    names
        .get(&region)
        .map_or_else(|| format!("@{region}"), |n| format!("{n} @{region}"))
}

/// Per-region entry of a [`Snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionSnap {
    /// Cycles charged under the region.
    pub cycles: u64,
    /// Events charged under the region.
    pub events: u64,
    /// Per-category cycle split (names, so snapshots parsed back from
    /// history records round-trip even across category additions).
    pub by_category: BTreeMap<String, u64>,
}

/// The compact, diff-able rollup of one run's ledger: per-category and
/// per-region totals plus corroborating flat counters. This is what gets
/// embedded in `perfhist-v1` records (behind `bench --ledger`) and what
/// [`diff::diff`] consumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Human label for the run ("179.art w8", "BENCH run 4", …).
    pub label: String,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// Per-category totals, keyed by stable category name.
    pub categories: BTreeMap<String, Bucket>,
    /// Per-region totals, keyed by display name
    /// (`label @entry` / `@entry` / `(top-level)`).
    pub regions: BTreeMap<String, RegionSnap>,
    /// Corroborating evidence: any flat dotted-name counters
    /// (`mcache.conflicts`, `lanes.ops`, …) the caller wants diffed
    /// alongside the attribution.
    pub counters: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Rolls a ledger up into a snapshot. `names` maps region entry PCs to
    /// labels for display.
    #[must_use]
    pub fn from_ledger(label: &str, ledger: &Ledger, names: &BTreeMap<u32, String>) -> Snapshot {
        let categories = ledger
            .category_totals()
            .into_iter()
            .map(|(c, b)| (c.name().to_string(), b))
            .collect();
        let regions = ledger
            .region_totals()
            .into_iter()
            .map(|(r, t)| {
                (
                    region_name(r, names),
                    RegionSnap {
                        cycles: t.cycles,
                        events: t.events,
                        by_category: t
                            .by_category
                            .into_iter()
                            .map(|(c, b)| (c.name().to_string(), b.cycles))
                            .collect(),
                    },
                )
            })
            .collect();
        Snapshot {
            label: label.to_string(),
            total_cycles: ledger.total_cycles(),
            categories,
            regions,
            counters: BTreeMap::new(),
        }
    }

    /// Renders the snapshot body (without the label) as deterministic
    /// single-line JSON — the `ledger` object embedded in perfhist rows.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\"total_cycles\":");
        let _ = write!(j, "{}", self.total_cycles);
        j.push_str(",\"categories\":{");
        for (i, (name, b)) in self.categories.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\"{name}\":{{\"cycles\":{},\"events\":{}}}",
                b.cycles, b.events
            );
        }
        j.push_str("},\"regions\":{");
        for (i, (name, r)) in self.regions.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "\"{}\":{{\"cycles\":{},\"events\":{},\"by_category\":{{",
                escape(name),
                r.cycles,
                r.events
            );
            for (k, (cat, cycles)) in r.by_category.iter().enumerate() {
                if k > 0 {
                    j.push(',');
                }
                let _ = write!(j, "\"{cat}\":{cycles}");
            }
            j.push_str("}}");
        }
        j.push_str("}}");
        j
    }

    /// The top `n` (region, category, cycles) buckets by cycle weight —
    /// the attribution attached to structured width-anomaly entries.
    #[must_use]
    pub fn top_buckets(&self, n: usize) -> Vec<(String, String, u64)> {
        let mut rows: Vec<(String, String, u64)> = self
            .regions
            .iter()
            .flat_map(|(region, r)| {
                r.by_category
                    .iter()
                    .map(|(cat, &cycles)| (region.clone(), cat.clone(), cycles))
            })
            .filter(|&(_, _, cycles)| cycles > 0)
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        rows.truncate(n);
        rows
    }
}

/// Minimal JSON string escaping (labels can contain quotes/backslashes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ledger {
        let mut l = Ledger::new();
        l.charge(10, 12, Category::VectorExecute, 100);
        l.charge(10, 13, Category::VectorExecute, 50);
        l.charge(TOP_REGION, 1, Category::ScalarExecute, 30);
        l.charge(10, 10, Category::TranslateOverhead, 0);
        l.event(10, 1, Category::McacheProbe);
        l.event(10, 1, Category::Dispatch);
        l
    }

    #[test]
    fn totals_partition_and_merge_adds() {
        let l = sample();
        assert_eq!(l.total_cycles(), 180);
        let cats = l.category_totals();
        assert_eq!(cats[&Category::VectorExecute].cycles, 150);
        assert_eq!(cats[&Category::ScalarExecute].cycles, 30);
        assert_eq!(cats[&Category::McacheProbe].events, 1);
        let regions = l.region_totals();
        assert_eq!(regions[&10].cycles, 150);
        assert_eq!(regions[&TOP_REGION].cycles, 30);
        let mut m = l.clone();
        m.merge(&l);
        assert_eq!(m.total_cycles(), 360);
        assert_eq!(m.category_totals()[&Category::Dispatch].events, 2);
    }

    #[test]
    fn category_names_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::parse(c.name()), Some(c));
        }
        assert_eq!(Category::parse("nope"), None);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"ledger-v1\",\"total_cycles\":180,"));
        // Region 10's buckets precede TOP_REGION (u32::MAX sorts last).
        let probe = a.find("mcache-probe").unwrap();
        let scalar = a.find("scalar-execute").unwrap();
        assert!(probe < scalar, "{a}");
    }

    #[test]
    fn snapshot_rolls_up_and_ranks_buckets() {
        let mut names = BTreeMap::new();
        names.insert(10u32, "kernel".to_string());
        let snap = Snapshot::from_ledger("t w8", &sample(), &names);
        assert_eq!(snap.total_cycles, 180);
        assert_eq!(snap.categories["vector-execute"].cycles, 150);
        assert_eq!(snap.regions["kernel @10"].cycles, 150);
        assert_eq!(snap.regions["(top-level)"].cycles, 30);
        let top = snap.top_buckets(2);
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            ("kernel @10".to_string(), "vector-execute".to_string(), 150)
        );
        let json = snap.to_json();
        assert!(json.starts_with("{\"total_cycles\":180,\"categories\":{"));
        assert!(json.contains("\"kernel @10\":{\"cycles\":150"));
    }
}
