//! Differential verification of all fifteen paper benchmarks: every
//! binary (plain, Liquid untranslated, Liquid translated at each width,
//! native at each width) must match the gold evaluator.

use liquid_simd::{build_liquid, run, verify_workload, MachineConfig};
use liquid_simd_workloads as workloads;

#[test]
fn verify_fir_fft_lu() {
    for w in [workloads::fir(), workloads::fft(), workloads::lu()] {
        verify_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn verify_media_codecs() {
    for w in [
        workloads::mpeg2dec(),
        workloads::mpeg2enc(),
        workloads::gsmdec(),
        workloads::gsmenc(),
    ] {
        verify_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn verify_specfp_small() {
    for w in [
        workloads::alvinn(),
        workloads::ear(),
        workloads::nasa7(),
        workloads::hydro2d(),
    ] {
        verify_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn verify_specfp_stencils() {
    for w in [workloads::tomcatv(), workloads::swim(), workloads::mgrid()] {
        verify_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn verify_art_out_of_cache() {
    let w = workloads::art();
    verify_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    // And confirm the working set actually misses: the scalar run's
    // D-cache miss rate must be substantial.
    let b = build_liquid(&w).unwrap();
    let out = run(&b.program, MachineConfig::scalar_only()).unwrap();
    assert!(
        out.report.dcache.miss_rate() > 0.05,
        "art should be cache-bound, miss rate {}",
        out.report.dcache.miss_rate()
    );
}

#[test]
fn every_benchmark_translates_at_width8() {
    for w in workloads::all() {
        let b = build_liquid(&w).unwrap();
        let out = run(&b.program, MachineConfig::liquid(8)).unwrap();
        assert!(
            out.report.translator.successes > 0,
            "{}: no loop translated ({})",
            w.name,
            out.report.translator
        );
        assert!(
            out.report.vector_retired > 0,
            "{}: no vector work executed",
            w.name
        );
    }
}
