//! Determinism of the parallel experiment harness: any `--jobs` level must
//! produce byte-identical experiment output, and repeated parallel runs
//! must be stable. Scheduling decides only *when* a simulation unit runs,
//! never *what* it computes — these tests pin that invariant.

use liquid_simd::{experiments, verify_workloads};

/// Renders rows exactly as the CLI prints them, one per line.
fn render<T: std::fmt::Display>(rows: &[T]) -> String {
    rows.iter().map(|r| format!("{r}\n")).collect()
}

#[test]
fn figure6_is_identical_at_any_job_count_and_stable_across_runs() {
    let workloads = liquid_simd_workloads::smoke();
    let widths = [2usize, 8];
    let serial = render(&experiments::figure6_jobs(&workloads, &widths, 1).expect("serial"));
    assert!(!serial.is_empty());
    for jobs in [2, 8] {
        let parallel =
            render(&experiments::figure6_jobs(&workloads, &widths, jobs).expect("parallel"));
        assert_eq!(serial, parallel, "figure6 diverged at jobs={jobs}");
    }
    // Repeated parallel runs: same bytes again (no run-to-run drift).
    let again = render(&experiments::figure6_jobs(&workloads, &widths, 8).expect("repeat"));
    assert_eq!(serial, again, "figure6 unstable across repeated runs");
}

#[test]
fn table5_and_table6_are_identical_at_any_job_count() {
    let workloads = liquid_simd_workloads::smoke();
    let t5_serial = render(&experiments::table5_jobs(&workloads, 1).expect("t5 serial"));
    let t5_parallel = render(&experiments::table5_jobs(&workloads, 8).expect("t5 parallel"));
    assert_eq!(t5_serial, t5_parallel);

    let t6_serial = render(&experiments::table6_jobs(&workloads, 1).expect("t6 serial"));
    let t6_parallel = render(&experiments::table6_jobs(&workloads, 8).expect("t6 parallel"));
    assert_eq!(t6_serial, t6_parallel);
}

#[test]
fn remaining_drivers_are_identical_at_any_job_count() {
    let workloads = liquid_simd_workloads::smoke();

    let serial = render(&experiments::code_size_jobs(&workloads, 1).expect("serial"));
    let parallel = render(&experiments::code_size_jobs(&workloads, 4).expect("parallel"));
    assert_eq!(serial, parallel, "code_size diverged");

    let serial = render(&experiments::mcache_jobs(&workloads, 1).expect("serial"));
    let parallel = render(&experiments::mcache_jobs(&workloads, 4).expect("parallel"));
    assert_eq!(serial, parallel, "mcache diverged");

    let serial = render(&experiments::metrics_jobs(&workloads, 1).expect("serial"));
    let parallel = render(&experiments::metrics_jobs(&workloads, 4).expect("parallel"));
    assert_eq!(serial, parallel, "metrics diverged");

    let costs = [1u64, 40];
    let serial = experiments::ablation_latency_jobs(&workloads, &costs, 1).expect("serial");
    let parallel = experiments::ablation_latency_jobs(&workloads, &costs, 4).expect("parallel");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.cycles_by_cost, p.cycles_by_cost,
            "{} diverged",
            s.benchmark
        );
    }

    let serial = experiments::ablation_jit_jobs(&workloads, 40, 1).expect("serial");
    let parallel = experiments::ablation_jit_jobs(&workloads, 40, 4).expect("parallel");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.hw_cycles, s.jit_cycles),
            (p.hw_cycles, p.jit_cycles),
            "{} diverged",
            s.benchmark
        );
    }
}

#[test]
fn parallel_verification_passes_on_the_smoke_set() {
    verify_workloads(&liquid_simd_workloads::smoke(), 8).expect("parallel verify");
}
