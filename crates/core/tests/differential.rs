//! Differential verification across the whole stack: for each kernel
//! shape, the plain scalar binary, the Liquid binary (untranslated and
//! dynamically translated at 2/4/8/16 lanes), and the native SIMD binary
//! must all reproduce the gold evaluator's results.

use liquid_simd::{build_liquid, run, verify_workload, MachineConfig, Workload};
use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, ReduceInit};
use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp};

fn ramp(n: usize, scale: i64, offset: i64) -> Vec<i64> {
    (0..n as i64).map(|i| i * scale + offset).collect()
}

fn franp(n: usize, scale: f32, offset: f32) -> Vec<f32> {
    (0..n).map(|i| i as f32 * scale + offset).collect()
}

#[test]
fn elementwise_int_chain() {
    let mut k = KernelBuilder::new("chain", 64);
    let a = k.load("A", ElemType::I32);
    let b = k.load("B", ElemType::I32);
    let t1 = k.bin(VAluOp::Mul, a, b);
    let t2 = k.bin_imm(VAluOp::Add, t1, 17);
    let t3 = k.bin(VAluOp::Sub, t2, a);
    let t4 = k.bin_imm(VAluOp::Asr, t3, 2);
    k.store("C", t4);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I32, ramp(64, 3, -20))
        .int("B", ElemType::I32, ramp(64, -7, 100))
        .zeroed("C", ElemType::I32, 64)
        .build();
    verify_workload(&Workload::new("chain", vec![k.build().unwrap()], data, 3)).unwrap();
}

#[test]
fn narrow_unsigned_saturating_pixels() {
    // The MPEG2-style clamp: C[i] = sat8(A[i] + B[i]), plus a saturating
    // subtract against an immediate.
    let mut k = KernelBuilder::new("satpix", 64);
    let a = k.load_u("A", ElemType::I8);
    let b = k.load_u("B", ElemType::I8);
    let s = k.bin(VAluOp::SatAdd, a, b);
    let d = k.bin_imm(VAluOp::SatSub, s, 30);
    k.store("C", d);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I8, ramp(64, 5, 0))
        .int("B", ElemType::I8, ramp(64, 11, 7))
        .zeroed("C", ElemType::I8, 64)
        .build();
    verify_workload(&Workload::new("satpix", vec![k.build().unwrap()], data, 2)).unwrap();
}

#[test]
fn signed_saturating_audio() {
    let mut k = KernelBuilder::new("sataudio", 32);
    let a = k.load("A", ElemType::I16);
    let b = k.load("B", ElemType::I16);
    let s = k.bin(VAluOp::SSatAdd, a, b);
    k.store("C", s);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I16, ramp(32, 2500, -30000))
        .int("B", ElemType::I16, ramp(32, 1700, -10000))
        .zeroed("C", ElemType::I16, 32)
        .build();
    verify_workload(&Workload::new(
        "sataudio",
        vec![k.build().unwrap()],
        data,
        2,
    ))
    .unwrap();
}

#[test]
fn int_reductions_all_ops() {
    let mut k = KernelBuilder::new("reds", 48);
    let a = k.load("A", ElemType::I32);
    k.reduce(RedOp::Min, a, "omin", ReduceInit::Int(i32::MAX));
    k.reduce(RedOp::Max, a, "omax", ReduceInit::Int(i32::MIN));
    k.reduce(RedOp::Sum, a, "osum", ReduceInit::Int(0));
    let data = ArrayBuilder::new()
        .int("A", ElemType::I32, ramp(48, -13, 300))
        .zeroed("omin", ElemType::I32, 1)
        .zeroed("omax", ElemType::I32, 1)
        .zeroed("osum", ElemType::I32, 1)
        .build();
    verify_workload(&Workload::new("reds", vec![k.build().unwrap()], data, 2)).unwrap();
}

#[test]
fn float_pipeline_with_reduction() {
    let mut k = KernelBuilder::new("fdot", 64);
    let a = k.load("X", ElemType::F32);
    let b = k.load("Y", ElemType::F32);
    let p = k.bin(VAluOp::Mul, a, b);
    let q = k.bin(VAluOp::Max, p, a);
    k.store("Z", q);
    k.reduce(RedOp::Sum, p, "dot", ReduceInit::F32(0.0));
    let data = ArrayBuilder::new()
        .f32("X", franp(64, 0.25, -3.0))
        .f32("Y", franp(64, -0.5, 10.0))
        .zeroed("Z", ElemType::F32, 64)
        .zeroed("dot", ElemType::F32, 1)
        .build();
    verify_workload(&Workload::new("fdot", vec![k.build().unwrap()], data, 2)).unwrap();
}

#[test]
fn all_permutation_kinds_on_loads_and_stores() {
    for (tag, kind) in [
        ("bfly2", PermKind::Bfly { block: 2 }),
        ("bfly8", PermKind::Bfly { block: 8 }),
        ("bfly16", PermKind::Bfly { block: 16 }),
        ("rev4", PermKind::Rev { block: 4 }),
        ("rev16", PermKind::Rev { block: 16 }),
        ("rot8_3", PermKind::Rot { block: 8, amt: 3 }),
        ("rot16_5", PermKind::Rot { block: 16, amt: 5 }),
    ] {
        let mut k = KernelBuilder::new(tag, 32);
        let a = k.load_perm("A", ElemType::I32, kind);
        let b = k.bin_imm(VAluOp::Add, a, 1);
        k.store("B", b);
        let mut k2 = KernelBuilder::new(&format!("{tag}_st"), 32);
        let a2 = k2.load("A", ElemType::I32);
        let c2 = k2.bin_imm(VAluOp::Eor, a2, 85);
        k2.store_perm("C", c2, kind);
        let data = ArrayBuilder::new()
            .int("A", ElemType::I32, ramp(32, 7, 1))
            .zeroed("B", ElemType::I32, 32)
            .zeroed("C", ElemType::I32, 32)
            .build();
        let w = Workload::new(tag, vec![k.build().unwrap(), k2.build().unwrap()], data, 2);
        verify_workload(&w).unwrap_or_else(|e| panic!("{tag}: {e}"));
    }
}

#[test]
fn mid_dataflow_permutation_forces_fission_and_still_matches() {
    // The FFT-style shape: compute, butterfly the result, combine, store.
    let mut k = KernelBuilder::new("fftish", 32);
    let a = k.load("A", ElemType::F32);
    let b = k.load("B", ElemType::F32);
    let t = k.bin(VAluOp::Mul, a, b);
    let bf = k.perm(PermKind::Bfly { block: 8 }, t);
    let sum = k.bin(VAluOp::Add, bf, a);
    k.store("C", sum);
    let data = ArrayBuilder::new()
        .f32("A", franp(32, 1.5, 1.0))
        .f32("B", franp(32, -0.25, 4.0))
        .zeroed("C", ElemType::F32, 32)
        .build();
    let w = Workload::new("fftish", vec![k.build().unwrap()], data, 2);
    // Fission must produce at least two outlined loops.
    let b2 = build_liquid(&w).unwrap();
    assert!(b2.outlined.len() >= 2, "outlined: {:?}", b2.outlined);
    verify_workload(&w).unwrap();
}

#[test]
fn constant_vectors_uniform_and_periodic() {
    let mut k = KernelBuilder::new("cnst", 32);
    let a = k.load("A", ElemType::I16);
    // Uniform small constant -> splat optimisation path in the translator.
    let small = k.constv(ElemType::I16, vec![7]);
    let t1 = k.bin(VAluOp::Mul, a, small);
    // Uniform wide constant -> keep-load path (0xFF00 exceeds 9-bit imm).
    let mask = k.constv(ElemType::I16, vec![0xFF00]);
    let t2 = k.bin(VAluOp::And, t1, mask);
    // Periodic alternating constant (period 2).
    let alt = k.constv(ElemType::I16, vec![1, -1]);
    let t3 = k.bin(VAluOp::Mul, t2, alt);
    k.store("B", t3);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I16, ramp(32, 37, -100))
        .zeroed("B", ElemType::I16, 32)
        .build();
    verify_workload(&Workload::new("cnst", vec![k.build().unwrap()], data, 2)).unwrap();
}

#[test]
fn float_constant_vector() {
    let mut k = KernelBuilder::new("fconst", 32);
    let a = k.load("A", ElemType::F32);
    let c = k.constf(vec![0.5, 2.0]);
    let t = k.bin(VAluOp::Mul, a, c);
    k.store("B", t);
    let data = ArrayBuilder::new()
        .f32("A", franp(32, 1.0, 1.0))
        .zeroed("B", ElemType::F32, 32)
        .build();
    verify_workload(&Workload::new("fconst", vec![k.build().unwrap()], data, 2)).unwrap();
}

#[test]
fn oversized_kernel_is_fissioned_and_matches() {
    let mut k = KernelBuilder::new("big", 32);
    let mut v = k.load("A", ElemType::I32);
    for i in 0..90i32 {
        v = k.bin_imm(VAluOp::Add, v, (i % 5) + 1);
    }
    k.store("B", v);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I32, ramp(32, 1, 0))
        .zeroed("B", ElemType::I32, 32)
        .build();
    let w = Workload::new("big", vec![k.build().unwrap()], data, 2);
    let b = build_liquid(&w).unwrap();
    assert!(b.outlined.len() >= 2);
    for f in &b.outlined {
        assert!(f.instrs <= 60, "{} has {} instrs", f.name, f.instrs);
    }
    verify_workload(&w).unwrap();
}

#[test]
fn multi_kernel_pipeline_shares_arrays() {
    // Kernel 1 produces an intermediate; kernel 2 consumes it.
    let mut k1 = KernelBuilder::new("stage1", 32);
    let a = k1.load("A", ElemType::I32);
    let t = k1.bin_imm(VAluOp::Lsl, a, 2);
    k1.store("Mid", t);
    let mut k2 = KernelBuilder::new("stage2", 32);
    let m = k2.load("Mid", ElemType::I32);
    let u = k2.bin_imm(VAluOp::Add, m, -3);
    k2.store("Out", u);
    k2.reduce(RedOp::Max, u, "peak", ReduceInit::Int(i32::MIN));
    let data = ArrayBuilder::new()
        .int("A", ElemType::I32, ramp(32, 11, -50))
        .zeroed("Mid", ElemType::I32, 32)
        .zeroed("Out", ElemType::I32, 32)
        .zeroed("peak", ElemType::I32, 1)
        .build();
    let w = Workload::new(
        "pipeline",
        vec![k1.build().unwrap(), k2.build().unwrap()],
        data,
        3,
    );
    verify_workload(&w).unwrap();
}

#[test]
fn translated_runs_eventually_use_microcode() {
    let mut k = KernelBuilder::new("hot", 64);
    let a = k.load("A", ElemType::I32);
    let b = k.bin_imm(VAluOp::Add, a, 1);
    k.store("A2", b);
    let data = ArrayBuilder::new()
        .int("A", ElemType::I32, ramp(64, 1, 0))
        .zeroed("A2", ElemType::I32, 64)
        .build();
    let w = Workload::new("hot", vec![k.build().unwrap()], data, 10);
    let build = build_liquid(&w).unwrap();
    let out = run(&build.program, MachineConfig::liquid(8)).unwrap();
    assert_eq!(out.report.translator.successes, 1);
    assert!(
        out.report.mcache.hits >= 8,
        "mcache: {:?}",
        out.report.mcache
    );
    // The overwhelming majority of vector work happened in microcode.
    assert!(out.report.vector_retired > 0);
}

#[test]
fn unsigned_vs_signed_narrow_loads_differ_and_both_match_gold() {
    // Same bytes, loaded signed vs unsigned, must produce different minima
    // and both match gold.
    let bytes: Vec<i64> = vec![
        0x80, 0x7F, 0x01, 0xFF, 0x40, 0xC0, 0x00, 0x10, 0x80, 0x7F, 0x01, 0xFF, 0x40, 0xC0, 0x00,
        0x10,
    ];
    let mut ks = KernelBuilder::new("s", 16);
    let a = ks.load("A", ElemType::I8);
    ks.reduce(RedOp::Min, a, "smin", ReduceInit::Int(i32::MAX));
    let mut ku = KernelBuilder::new("u", 16);
    let b = ku.load_u("A", ElemType::I8);
    ku.reduce(RedOp::Min, b, "umin", ReduceInit::Int(i32::MAX));
    let data = ArrayBuilder::new()
        .int("A", ElemType::I8, bytes)
        .zeroed("smin", ElemType::I32, 1)
        .zeroed("umin", ElemType::I32, 1)
        .build();
    let w = Workload::new(
        "signs",
        vec![ks.build().unwrap(), ku.build().unwrap()],
        data,
        1,
    );
    verify_workload(&w).unwrap();
    // And sanity-check the gold values themselves.
    let env = liquid_simd::gold::run_gold(&w).unwrap();
    let (_, liquid_simd_compiler::ArrayData::Int(smin)) = env.get("smin").unwrap() else {
        panic!()
    };
    let (_, liquid_simd_compiler::ArrayData::Int(umin)) = env.get("umin").unwrap() else {
        panic!()
    };
    assert_eq!(smin[0] as u32 as i32, -128i32);
    assert_eq!(umin[0], 0);
}

#[test]
fn offset_loads_express_stencils_and_taps() {
    // A 3-point stencil: Out[i] = (X[i] + X[i+1] + X[i+2]) >> 1, plus a
    // 3-tap FIR-style dot product reduced to a scalar.
    let mut k = KernelBuilder::new("stencil3", 64);
    let x0 = k.load("X", ElemType::I32);
    let x1 = k.load_at("X", ElemType::I32, 1);
    let x2 = k.load_at("X", ElemType::I32, 2);
    let s = k.bin(VAluOp::Add, x0, x1);
    let s = k.bin(VAluOp::Add, s, x2);
    let s = k.bin_imm(VAluOp::Asr, s, 1);
    k.store("Out", s);
    let p0 = k.bin(VAluOp::Mul, x0, x2);
    k.reduce(RedOp::Sum, p0, "acc", ReduceInit::Int(0));

    // Offset store: Y[i+1] = X[i] (a shift-by-one writer).
    let mut k2 = KernelBuilder::new("shift", 64);
    let x = k2.load("X", ElemType::I32);
    k2.store_at("Y", x, 1);

    let data = ArrayBuilder::new()
        .int("X", ElemType::I32, ramp(66, 3, -7))
        .zeroed("Out", ElemType::I32, 64)
        .zeroed("Y", ElemType::I32, 66)
        .zeroed("acc", ElemType::I32, 1)
        .build();
    let w = Workload::new(
        "stencil",
        vec![k.build().unwrap(), k2.build().unwrap()],
        data,
        2,
    );
    verify_workload(&w).unwrap();
}
