//! Dependency-free parallel experiment harness.
//!
//! Every experiment driver in [`crate::experiments`] decomposes into
//! independent `(workload, width, mode)` simulation units. This module
//! provides the two pieces that let them fan out across cores with zero
//! new dependencies (`std` only, no `unsafe`):
//!
//! * [`run_tasks`] — a scoped-thread work-queue scheduler. Workers claim
//!   task indices from a shared atomic counter; each result lands in its
//!   own slot, and the caller reassembles them **in task order**, so the
//!   output of a parallel run is byte-identical to the serial run.
//!   [`run_tasks_timed`] is the same scheduler with per-task wall-clock
//!   [`TaskTiming`] and a streaming progress callback.
//! * [`BuildCache`] — [`OnceLock`]-memoized compilation. A width sweep
//!   needs each workload's plain/liquid build once, not once per width;
//!   the first task to need a build compiles it, everyone else blocks
//!   briefly and shares the result.
//!
//! Determinism argument: scheduling only decides *when* a unit runs, never
//! *what* it computes — units share no mutable state (each simulation owns
//! its [`Machine`](liquid_simd_sim::Machine)) and results are indexed, so
//! reassembly order is fixed. Errors are deterministic too: the caller
//! always sees the error of the **lowest-indexed** failing task, matching
//! what a serial loop would have returned first.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use liquid_simd_compiler::{
    build_liquid, build_native, build_plain, gold, Build, DataEnv, Workload,
};

use crate::VerifyError;

/// The scheduler's default degree of parallelism: one worker per available
/// hardware thread (1 if that cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `count` independent tasks on up to `jobs` worker threads and
/// returns their results **in task order** (index `i` of the output is
/// `task(i)`).
///
/// With `jobs <= 1` this degenerates to a plain serial loop — no threads
/// are spawned, so `--jobs 1` is exactly the pre-parallel behaviour. With
/// more jobs, workers claim indices from a shared atomic counter (dynamic
/// load balancing: a slow simulation does not hold up the queue).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task. Once any task
/// fails, workers stop claiming new tasks (already-running ones finish).
///
/// # Panics
///
/// A panicking task does not kill the queue: the panic is caught, the
/// remaining tasks still run to completion, and the payload of the
/// lowest-indexed panicking task is re-raised once the queue has drained.
pub fn run_tasks<T, E, F>(jobs: usize, count: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_tasks_timed(jobs, count, task, |_| {}).map(|(out, _)| out)
}

/// Wall-clock timing of one scheduled task, as observed by the worker that
/// ran it. Timings are observational only: they never influence what a
/// task computes, so the determinism guarantee of [`run_tasks`] is
/// untouched (the *timings themselves* naturally vary run to run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskTiming {
    /// Task index (matches the result's position).
    pub index: usize,
    /// Worker that ran the task (0-based; always 0 on the serial path).
    pub worker: usize,
    /// Seconds from scheduler start to task start.
    pub start_s: f64,
    /// Task wall time in seconds.
    pub wall_s: f64,
}

/// [`run_tasks`] plus per-task wall-clock timing and a progress callback.
///
/// `progress` is invoked from the worker thread as each task completes
/// (successfully or not) — callers use it to stream progress lines while a
/// long sweep runs. On success the returned timings are in task order,
/// parallel to the results.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task, exactly as
/// [`run_tasks`] does.
///
/// # Panics
///
/// A panicking task is contained, not fatal to the queue: the panic is
/// caught, every remaining task still runs (and `progress` still fires for
/// the panicked one), and once the queue has drained the payload of the
/// **lowest-indexed** panicking task is re-raised — so a panic is never
/// swallowed, and never takes unrelated in-flight work down with it. A
/// re-raised panic takes precedence over any task `Err`.
pub fn run_tasks_timed<T, E, F, P>(
    jobs: usize,
    count: usize,
    task: F,
    progress: P,
) -> Result<(Vec<T>, Vec<TaskTiming>), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    P: Fn(&TaskTiming) + Sync,
{
    let epoch = Instant::now();
    // Lowest-indexed panic payload; re-raised only after the queue drains.
    let first_panic: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    let timed = |i: usize, worker: usize| -> Option<(Result<T, E>, TaskTiming)> {
        let start_s = epoch.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| task(i)));
        let timing = TaskTiming {
            index: i,
            worker,
            start_s,
            wall_s: t0.elapsed().as_secs_f64(),
        };
        progress(&timing);
        match result {
            Ok(r) => Some((r, timing)),
            Err(payload) => {
                let mut slot = first_panic.lock().expect("panic slot poisoned");
                if slot.as_ref().is_none_or(|(idx, _)| i < *idx) {
                    *slot = Some((i, payload));
                }
                None
            }
        }
    };

    if jobs <= 1 || count <= 1 {
        let mut out = Vec::with_capacity(count);
        let mut timings = Vec::with_capacity(count);
        let mut first_err = None;
        for i in 0..count {
            match timed(i, 0) {
                Some((Ok(value), timing)) => {
                    out.push(value);
                    timings.push(timing);
                }
                // An Err stops claiming new tasks, exactly as the parallel
                // path's `failed` flag does.
                Some((Err(e), _)) => {
                    first_err = Some(e);
                    break;
                }
                // A panic drains: keep running the remaining tasks.
                None => {}
            }
        }
        if let Some((_, payload)) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        return match first_err {
            Some(e) => Err(e),
            None => Ok((out, timings)),
        };
    }

    type Slot<T, E> = Mutex<Option<(Result<T, E>, TaskTiming)>>;
    let slots: Vec<Slot<T, E>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for worker in 0..jobs.min(count) {
            let (slots, next, failed, timed) = (&slots, &next, &failed, &timed);
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                // A panicked task leaves its slot empty but does not set
                // `failed`: the queue keeps draining.
                let Some((result, timing)) = timed(i, worker) else {
                    continue;
                };
                if result.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("result slot poisoned") = Some((result, timing));
            });
        }
    });

    if let Some((_, payload)) = first_panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }

    // Indices are claimed monotonically and (absent panics, re-raised
    // above) every claimed task fills its slot, so filled slots form a
    // prefix; in index order any error precedes every abandoned (`None`)
    // slot.
    let mut out = Vec::with_capacity(count);
    let mut timings = Vec::with_capacity(count);
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some((Ok(value), timing)) => {
                out.push(value);
                timings.push(timing);
            }
            Some((Err(e), _)) => return Err(e),
            None => unreachable!("slot abandoned without a preceding error"),
        }
    }
    Ok((out, timings))
}

/// Memoized compilation results shared by all tasks of one experiment.
///
/// Each build is compiled at most once, by whichever task needs it first
/// ([`OnceLock::get_or_init`] makes racing tasks block rather than
/// duplicate the work), and errors are memoized the same way — every task
/// that needs a broken build sees the same [`VerifyError`].
pub struct BuildCache<'w> {
    workloads: &'w [Workload],
    widths: Vec<usize>,
    plain: Vec<OnceLock<Result<Build, VerifyError>>>,
    liquid: Vec<OnceLock<Result<Build, VerifyError>>>,
    /// `native[workload][width index]`, parallel to `widths`.
    native: Vec<Vec<OnceLock<Result<Build, VerifyError>>>>,
    gold: Vec<OnceLock<Result<DataEnv, VerifyError>>>,
}

impl<'w> BuildCache<'w> {
    /// Creates an empty cache over `workloads`. Native builds are
    /// width-specific, so the accelerator widths the experiment will
    /// request must be registered up front.
    #[must_use]
    pub fn new(workloads: &'w [Workload], widths: &[usize]) -> BuildCache<'w> {
        fn locks<T>(n: usize) -> Vec<OnceLock<T>> {
            std::iter::repeat_with(OnceLock::new).take(n).collect()
        }
        BuildCache {
            workloads,
            widths: widths.to_vec(),
            plain: locks(workloads.len()),
            liquid: locks(workloads.len()),
            native: (0..workloads.len()).map(|_| locks(widths.len())).collect(),
            gold: locks(workloads.len()),
        }
    }

    /// The workload at `index`.
    #[must_use]
    pub fn workload(&self, index: usize) -> &'w Workload {
        &self.workloads[index]
    }

    /// The plain (scalar, no outlining) build of workload `index`.
    ///
    /// # Errors
    ///
    /// Returns the memoized compile error, if compilation failed.
    pub fn plain(&self, index: usize) -> Result<&Build, VerifyError> {
        self.plain[index]
            .get_or_init(|| build_plain(&self.workloads[index]).map_err(Into::into))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The Liquid (outlined scalar) build of workload `index`.
    ///
    /// # Errors
    ///
    /// Returns the memoized compile error, if compilation failed.
    pub fn liquid(&self, index: usize) -> Result<&Build, VerifyError> {
        self.liquid[index]
            .get_or_init(|| build_liquid(&self.workloads[index]).map_err(Into::into))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The native SIMD build of workload `index` at `width` lanes.
    ///
    /// # Errors
    ///
    /// Returns the memoized compile error, or a [`VerifyError::Compile`]
    /// if `width` was not registered in [`BuildCache::new`].
    pub fn native(&self, index: usize, width: usize) -> Result<&Build, VerifyError> {
        let Some(wi) = self.widths.iter().position(|&w| w == width) else {
            return Err(VerifyError::Compile(format!(
                "width {width} not registered in the build cache"
            )));
        };
        self.native[index][wi]
            .get_or_init(|| build_native(&self.workloads[index], width).map_err(Into::into))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The gold (reference evaluator) data environment of workload `index`.
    ///
    /// # Errors
    ///
    /// Returns the memoized gold-evaluation error.
    pub fn gold(&self, index: usize) -> Result<&DataEnv, VerifyError> {
        self.gold[index]
            .get_or_init(|| gold::run_gold(&self.workloads[index]).map_err(Into::into))
            .as_ref()
            .map_err(Clone::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [1, 2, 8] {
            let out: Result<Vec<usize>, ()> = run_tasks(jobs, 37, |i| Ok(i * i));
            assert_eq!(out.unwrap(), (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        // Both 5 and 11 fail; every schedule must report 5.
        for jobs in [1, 3, 8] {
            let out: Result<Vec<usize>, usize> =
                run_tasks(jobs, 16, |i| if i == 5 || i == 11 { Err(i) } else { Ok(i) });
            assert_eq!(out.unwrap_err(), 5);
        }
    }

    #[test]
    fn zero_tasks_and_zero_jobs_are_fine() {
        let out: Result<Vec<u8>, ()> = run_tasks(0, 0, |_| Ok(0));
        assert_eq!(out.unwrap(), Vec::<u8>::new());
        let out: Result<Vec<usize>, ()> = run_tasks(0, 3, Ok);
        assert_eq!(out.unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let out: Result<Vec<()>, ()> = run_tasks(8, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(out.unwrap().len(), 64);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn timed_results_match_and_progress_fires_per_task() {
        for jobs in [1, 4] {
            let progressed = AtomicU32::new(0);
            let (out, timings) = run_tasks_timed(
                jobs,
                11,
                |i| Ok::<usize, ()>(i * 2),
                |_| {
                    progressed.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap();
            assert_eq!(out, (0..11).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(timings.len(), 11);
            assert!(timings.iter().enumerate().all(|(i, t)| t.index == i));
            assert!(timings.iter().all(|t| t.wall_s >= 0.0 && t.start_s >= 0.0));
            assert_eq!(progressed.load(Ordering::Relaxed), 11);
            if jobs == 1 {
                assert!(timings.iter().all(|t| t.worker == 0));
            } else {
                assert!(timings.iter().all(|t| t.worker < 4));
            }
        }
    }

    #[test]
    fn timed_errors_match_untimed_semantics() {
        for jobs in [1, 3] {
            let out = run_tasks_timed(
                jobs,
                16,
                |i| if i == 5 || i == 11 { Err(i) } else { Ok(i) },
                |_| {},
            );
            assert_eq!(out.unwrap_err(), 5);
        }
    }

    #[test]
    fn panicking_task_drains_queue_and_panic_is_surfaced() {
        // One task panics; the queue must still drain (every other task
        // runs) and the original payload must reach the caller — on both
        // the serial and the parallel path.
        for jobs in [1, 4] {
            let started: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_tasks(jobs, 16, |i| {
                    started[i].fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3, "boom at {i}");
                    Ok::<usize, ()>(i)
                })
            }));
            let payload = caught.expect_err("panic must be surfaced, not swallowed");
            let msg = payload
                .downcast_ref::<String>()
                .expect("original payload preserved");
            assert!(msg.contains("boom at 3"), "payload intact: {msg}");
            // Queue drained: every task was claimed and entered, including
            // the ones after the panic.
            assert!(
                started.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "jobs={jobs}: remaining tasks must complete after a panic"
            );
        }
    }

    #[test]
    fn lowest_indexed_panic_wins_and_progress_still_fires() {
        for jobs in [1, 4] {
            let progressed = AtomicU32::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_tasks_timed(
                    jobs,
                    12,
                    |i| {
                        assert!(i != 2 && i != 9, "panic {i}");
                        Ok::<usize, ()>(i)
                    },
                    |_| {
                        progressed.fetch_add(1, Ordering::Relaxed);
                    },
                )
            }));
            let payload = caught.expect_err("panic surfaced");
            let msg = payload.downcast_ref::<String>().unwrap();
            assert!(msg.contains("panic 2"), "lowest index wins: {msg}");
            // Progress fires for every task, panicked ones included.
            assert_eq!(progressed.load(Ordering::Relaxed), 12);
        }
    }

    #[test]
    fn build_cache_memoizes_and_shares_errors() {
        let w = liquid_simd_workloads::smoke();
        let cache = BuildCache::new(&w, &[2, 8]);
        let a = cache.liquid(0).unwrap().program.code_bytes();
        let b = cache.liquid(0).unwrap().program.code_bytes();
        assert_eq!(a, b);
        assert!(cache.plain(1).is_ok());
        assert!(cache.native(2, 8).is_ok());
        assert!(cache.gold(0).is_ok());
        // Unregistered width is a deterministic error, not a panic.
        assert!(matches!(
            cache.native(0, 4),
            Err(VerifyError::Compile(msg)) if msg.contains("not registered")
        ));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
