//! Liquid SIMD — public facade.
//!
//! This crate ties the reproduction together: compile a [`Workload`] three
//! ways ([`build_liquid`] / [`build_native`] / [`build_plain`]), run the
//! binaries on the simulated machine ([`run`]), check results against the
//! reference evaluator ([`verify_against_gold`]), and regenerate every
//! table and figure of the paper's evaluation ([`experiments`]).
//!
//! # Quickstart
//!
//! ```
//! use liquid_simd::{
//!     build_liquid, build_plain, run, verify_workload, MachineConfig, Workload,
//! };
//! use liquid_simd_compiler::{ArrayBuilder, KernelBuilder};
//! use liquid_simd_isa::{ElemType, VAluOp};
//!
//! // A hot loop: B[i] = A[i] * 3 + 1 over 64 elements, called 4 times.
//! let mut k = KernelBuilder::new("saxpyish", 64);
//! let a = k.load("A", ElemType::I32);
//! let t = k.bin_imm(VAluOp::Mul, a, 3);
//! let c = k.bin_imm(VAluOp::Add, t, 1);
//! k.store("B", c);
//! let data = ArrayBuilder::new()
//!     .int("A", ElemType::I32, (0..64).collect::<Vec<i64>>())
//!     .zeroed("B", ElemType::I32, 64)
//!     .build();
//! let w = Workload::new("demo", vec![k.build().unwrap()], data, 4);
//!
//! // One call checks all three binaries against the gold evaluator at
//! // every supported accelerator width.
//! verify_workload(&w).unwrap();
//!
//! // And the headline effect: the Liquid binary beats the scalar baseline
//! // on a machine with an 8-lane accelerator.
//! let liquid = build_liquid(&w).unwrap();
//! let plain = build_plain(&w).unwrap();
//! let fast = run(&liquid.program, MachineConfig::liquid(8)).unwrap();
//! let slow = run(&plain.program, MachineConfig::scalar_only()).unwrap();
//! assert!(fast.report.cycles < slow.report.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnose;
pub mod experiments;
pub mod harness;
mod verify;

pub use diagnose::{
    explain, profile, render_counter_table, ExplainOptions, ExplainReport, ProfileReport,
    RegionOutcome, RegionReport,
};
pub use harness::{default_jobs, run_tasks, run_tasks_timed, BuildCache, TaskTiming};
pub use liquid_simd_compiler::{
    build_liquid, build_native, build_plain, gold, ArrayBuilder, Build, CompileError, DataEnv,
    Kernel, KernelBuilder, OutlinedFn, ReduceInit, Workload,
};
pub use liquid_simd_isa as isa;
pub use liquid_simd_ledger as ledger;
pub use liquid_simd_mem as mem;
pub use liquid_simd_sim::{
    BackendKind, BlockStats, CallEvent, CallMode, ExecBackend, InterpBackend, LatencyModel,
    Machine, MachineConfig, RunReport, SimError, SuperblockBackend, TranslationConfig,
    TranslationWindow,
};
pub use liquid_simd_trace as trace;
pub use liquid_simd_trace::{TraceConfig, TraceEvent, Tracer};
pub use liquid_simd_translator as translator;
pub use verify::{verify_against_gold, verify_workload, verify_workloads, VerifyError, F32_RTOL};

use liquid_simd_isa::Program;
use liquid_simd_mem::Memory;

/// The result of one simulation: measurements plus final memory.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Cycle counts, cache stats, translator stats, call log.
    pub report: RunReport,
    /// Final memory image (for output verification).
    pub memory: Memory,
}

/// Runs a program to `halt` on a machine with the given configuration.
///
/// # Errors
///
/// Returns [`SimError`] for simulation faults (wild memory, cycle limit).
pub fn run(program: &Program, config: MachineConfig) -> Result<RunOutcome, SimError> {
    let mut machine = Machine::new(program, config);
    let report = machine.run()?;
    Ok(RunOutcome {
        report,
        memory: machine.memory().clone(),
    })
}

/// Runs a Liquid binary as if the processor had *built-in ISA support* for
/// its SIMD loops: a first run harvests the dynamically translated
/// microcode, then a fresh machine executes with that microcode resident
/// from cycle 0 (no translation warm-up). This is the paper's Figure 6
/// callout comparator ("the simulator treated outlined functions like
/// native SIMD code").
///
/// # Errors
///
/// Returns [`SimError`] for simulation faults in either pass.
pub fn run_pretranslated(program: &Program, config: MachineConfig) -> Result<RunOutcome, SimError> {
    let mut warm = Machine::new(program, config.clone());
    warm.run()?;
    let microcode = warm.microcode_snapshot();
    let mut machine = Machine::new(program, config);
    machine.preload_microcode(&microcode);
    let report = machine.run()?;
    Ok(RunOutcome {
        report,
        memory: machine.memory().clone(),
    })
}
