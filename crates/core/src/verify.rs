//! Differential verification: simulated memory vs the gold evaluator.

use std::error::Error;
use std::fmt;

use liquid_simd_compiler::{ArrayData, CompileError, DataEnv, Workload};
use liquid_simd_isa::{ElemType, Program, SUPPORTED_WIDTHS};
use liquid_simd_mem::Memory;
use liquid_simd_sim::{MachineConfig, SimError};

/// Relative tolerance for `f32` comparisons. Reductions reassociate under
/// vectorisation (the paper's SIMD hardware does too), so float results
/// match only approximately; integer results must match bit-exactly.
pub const F32_RTOL: f32 = 1e-3;

/// A verification failure.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// Compilation failed.
    Compile(String),
    /// Simulation failed.
    Sim(String),
    /// An output array differs from the reference.
    Mismatch {
        /// Which configuration produced the mismatch.
        config: String,
        /// Array name.
        array: String,
        /// Element index.
        index: usize,
        /// Expected (gold) value as text.
        expected: String,
        /// Actual simulated value as text.
        actual: String,
    },
    /// An array in the gold environment has no symbol in the program.
    MissingSymbol {
        /// Array name.
        array: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Compile(e) => write!(f, "compile error: {e}"),
            VerifyError::Sim(e) => write!(f, "simulation error: {e}"),
            VerifyError::Mismatch {
                config,
                array,
                index,
                expected,
                actual,
            } => write!(
                f,
                "[{config}] {array}[{index}]: expected {expected}, got {actual}"
            ),
            VerifyError::MissingSymbol { array } => {
                write!(f, "array `{array}` has no symbol in the program")
            }
        }
    }
}

impl Error for VerifyError {}

impl From<CompileError> for VerifyError {
    fn from(e: CompileError) -> VerifyError {
        VerifyError::Compile(e.to_string())
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> VerifyError {
        VerifyError::Sim(e.to_string())
    }
}

fn f32_close(a: f32, b: f32) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= F32_RTOL * scale
}

/// Compares every array of the gold environment against the program's
/// memory image after a run.
///
/// # Errors
///
/// Returns the first mismatch found.
pub fn verify_against_gold(
    config_name: &str,
    program: &Program,
    memory: &Memory,
    gold_env: &DataEnv,
) -> Result<(), VerifyError> {
    for (name, (elem, data)) in &gold_env.arrays {
        let Some((_, sym)) = program.symbol_by_name(name) else {
            return Err(VerifyError::MissingSymbol {
                array: name.clone(),
            });
        };
        let mismatch = |index: usize, expected: String, actual: String| VerifyError::Mismatch {
            config: config_name.to_string(),
            array: name.clone(),
            index,
            expected,
            actual,
        };
        match data {
            ArrayData::Int(values) => {
                let bytes = elem.bytes();
                for (i, &expected) in values.iter().enumerate() {
                    let addr = sym.addr + i as u32 * bytes;
                    let actual = memory
                        .read(addr, bytes)
                        .map_err(|e| VerifyError::Sim(e.to_string()))?;
                    if i64::from(actual) != expected {
                        return Err(mismatch(i, expected.to_string(), actual.to_string()));
                    }
                }
            }
            ArrayData::F32(values) => {
                for (i, &expected) in values.iter().enumerate() {
                    let addr = sym.addr + i as u32 * 4;
                    let actual = memory
                        .read_f32(addr)
                        .map_err(|e| VerifyError::Sim(e.to_string()))?;
                    if !f32_close(expected, actual) {
                        return Err(mismatch(i, expected.to_string(), actual.to_string()));
                    }
                }
            }
        }
    }
    let _ = ElemType::I8; // (symbol used via elem.bytes())
    Ok(())
}

/// Full differential verification of one workload:
///
/// * plain scalar binary on the scalar-only machine;
/// * Liquid binary on the scalar-only machine (forward compatibility: the
///   virtualised code runs correctly with no accelerator and no translator);
/// * Liquid binary under dynamic translation at every supported width;
/// * native binary at every supported width;
///
/// each checked against the gold evaluator.
///
/// # Errors
///
/// Returns the first failure.
pub fn verify_workload(w: &Workload) -> Result<(), VerifyError> {
    verify_workloads(std::slice::from_ref(w), 1)
}

/// [`verify_workload`] over many workloads, with every
/// `(workload, configuration)` check fanned over `jobs` worker threads via
/// [`crate::harness::run_tasks`]. Builds and gold results are memoized in
/// a [`crate::harness::BuildCache`], so each binary is compiled once no
/// matter how many configurations exercise it. On failure the error is the
/// one a serial [`verify_workload`] loop would have hit first.
///
/// # Errors
///
/// Returns the first failure (in serial check order).
pub fn verify_workloads(workloads: &[Workload], jobs: usize) -> Result<(), VerifyError> {
    let cache = crate::harness::BuildCache::new(workloads, &SUPPORTED_WIDTHS);
    // Unit layout per workload: [plain/scalar, liquid/scalar, then
    // (liquid/translated, native) per supported width].
    let per = 2 + 2 * SUPPORTED_WIDTHS.len();
    crate::harness::run_tasks(jobs, workloads.len() * per, |i| {
        let (wi, unit) = (i / per, i % per);
        let gold_env = cache.gold(wi)?;
        match unit {
            0 => {
                let plain = cache.plain(wi)?;
                let out = crate::run(&plain.program, MachineConfig::scalar_only())?;
                verify_against_gold("plain/scalar", &plain.program, &out.memory, gold_env)
            }
            1 => {
                let liquid = cache.liquid(wi)?;
                let out = crate::run(&liquid.program, MachineConfig::scalar_only())?;
                verify_against_gold("liquid/scalar", &liquid.program, &out.memory, gold_env)
            }
            _ => {
                let k = unit - 2;
                let lanes = SUPPORTED_WIDTHS[k / 2];
                if k % 2 == 0 {
                    let liquid = cache.liquid(wi)?;
                    let out = crate::run(&liquid.program, MachineConfig::liquid(lanes))?;
                    verify_against_gold(
                        &format!("liquid/translated@{lanes}"),
                        &liquid.program,
                        &out.memory,
                        gold_env,
                    )
                } else {
                    let native = cache.native(wi, lanes)?;
                    let out = crate::run(&native.program, MachineConfig::native(lanes))?;
                    verify_against_gold(
                        &format!("native@{lanes}"),
                        &native.program,
                        &out.memory,
                        gold_env,
                    )
                }
            }
        }
    })
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_tolerance_behaviour() {
        assert!(f32_close(1.0, 1.0));
        assert!(f32_close(1000.0, 1000.5));
        assert!(!f32_close(1.0, 1.1));
        assert!(f32_close(0.0, 0.0));
        assert!(!f32_close(0.0, 0.1));
    }
}
