//! Drivers regenerating every table and figure of the paper's evaluation
//! (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results).
//!
//! Every driver comes in two forms: the original serial name (`table5`,
//! `figure6`, ...) and a `*_jobs` variant that fans the independent
//! `(workload, width, mode)` simulation units across worker threads via
//! [`crate::harness::run_tasks`]. The serial names are thin `jobs = 1`
//! wrappers, and the parallel variants reassemble results in task order,
//! so both produce identical rows — see `tests/parallel.rs` for the
//! byte-identity check.

use std::collections::BTreeMap;
use std::fmt;

use liquid_simd_compiler::Workload;
use liquid_simd_isa::SUPPORTED_WIDTHS;
use liquid_simd_sim::MachineConfig;

use crate::harness::{run_tasks, run_tasks_timed, BuildCache, TaskTiming};
use crate::VerifyError;

/// Table 5: scalar instructions per outlined function, per benchmark.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of outlined hot-loop functions.
    pub functions: usize,
    /// Mean instructions per outlined function.
    pub mean: f64,
    /// Maximum instructions in any outlined function.
    pub max: usize,
}

/// Runs the Table 5 measurement (static sizes of outlined functions).
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile.
pub fn table5(workloads: &[Workload]) -> Result<Vec<Table5Row>, VerifyError> {
    table5_jobs(workloads, 1)
}

/// [`table5`] with the work spread over `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile.
pub fn table5_jobs(workloads: &[Workload], jobs: usize) -> Result<Vec<Table5Row>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    run_tasks(
        jobs,
        workloads.len(),
        |i| -> Result<Table5Row, VerifyError> {
            let b = cache.liquid(i)?;
            let sizes: Vec<usize> = b.outlined.iter().map(|f| f.instrs).collect();
            let functions = sizes.len();
            let mean = sizes.iter().sum::<usize>() as f64 / functions.max(1) as f64;
            let max = sizes.iter().copied().max().unwrap_or(0);
            Ok(Table5Row {
                benchmark: cache.workload(i).name.clone(),
                functions,
                mean,
                max,
            })
        },
    )
}

impl fmt::Display for Table5Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>5} {:>8.1} {:>5}",
            self.benchmark, self.functions, self.mean, self.max
        )
    }
}

/// Table 6: cycles between the first two consecutive calls to each
/// outlined hot loop, bucketed as in the paper.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Loops with first-call gap `< 150` cycles.
    pub lt150: usize,
    /// Loops with gap in `[150, 300)`.
    pub lt300: usize,
    /// Loops with gap `>= 300`.
    pub ge300: usize,
    /// Mean gap across outlined loops.
    pub mean: f64,
}

/// Runs the Table 6 measurement on the scalar side of a Liquid machine
/// (gaps are measured between the first two calls, i.e. while translation
/// would be in flight).
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn table6(workloads: &[Workload]) -> Result<Vec<Table6Row>, VerifyError> {
    table6_jobs(workloads, 1)
}

/// [`table6`] with one simulation per worker-thread task.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn table6_jobs(workloads: &[Workload], jobs: usize) -> Result<Vec<Table6Row>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    run_tasks(
        jobs,
        workloads.len(),
        |i| -> Result<Table6Row, VerifyError> {
            let b = cache.liquid(i)?;
            // Translation disabled: we want raw call spacing of the scalar
            // binary, exactly the paper's measurement setup.
            let mut cfg = MachineConfig::scalar_only();
            cfg.max_cycles = 50_000_000_000;
            let out = crate::run(&b.program, cfg)?;
            let mut gaps = Vec::new();
            for f in &b.outlined {
                if let Some(gap) = out.report.first_call_gap(f.entry) {
                    gaps.push(gap);
                }
            }
            let lt150 = gaps.iter().filter(|&&g| g < 150).count();
            let lt300 = gaps.iter().filter(|&&g| (150..300).contains(&g)).count();
            let ge300 = gaps.iter().filter(|&&g| g >= 300).count();
            let mean = if gaps.is_empty() {
                0.0
            } else {
                gaps.iter().sum::<u64>() as f64 / gaps.len() as f64
            };
            Ok(Table6Row {
                benchmark: cache.workload(i).name.clone(),
                lt150,
                lt300,
                ge300,
                mean,
            })
        },
    )
}

impl fmt::Display for Table6Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>5} {:>5} {:>5} {:>10.0}",
            self.benchmark, self.lt150, self.lt300, self.ge300, self.mean
        )
    }
}

/// Figure 6: speedup over the scalar baseline at each accelerator width,
/// for both the Liquid binary (dynamic translation) and the native binary,
/// plus the translation-overhead callout.
#[derive(Clone, Debug)]
pub struct Figure6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline cycles (plain scalar binary, no accelerator).
    pub baseline_cycles: u64,
    /// Liquid speedup by width (dynamic translation, cold microcode cache).
    pub liquid: BTreeMap<usize, f64>,
    /// Speedup with built-in ISA support: the same binary with its
    /// microcode resident from cycle 0 (the paper's callout comparator).
    pub pretranslated: BTreeMap<usize, f64>,
    /// Native-binary speedup by width (separately compiled vector code).
    pub native: BTreeMap<usize, f64>,
}

impl Figure6Row {
    /// The built-in-ISA-minus-liquid speedup difference at a width (the
    /// paper's callout shows a worst case of about 0.001, for FIR).
    #[must_use]
    pub fn overhead(&self, width: usize) -> f64 {
        self.pretranslated.get(&width).copied().unwrap_or(0.0)
            - self.liquid.get(&width).copied().unwrap_or(0.0)
    }
}

/// Runs the Figure 6 sweep.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn figure6(workloads: &[Workload], widths: &[usize]) -> Result<Vec<Figure6Row>, VerifyError> {
    figure6_jobs(workloads, widths, 1)
}

/// [`figure6`] decomposed into `(workload, width, mode)` simulation units
/// and fanned over `jobs` worker threads. This is the heaviest sweep in
/// the repo — `1 + 3 * widths.len()` simulations per workload — and every
/// unit is independent, so it scales until cores run out.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn figure6_jobs(
    workloads: &[Workload],
    widths: &[usize],
    jobs: usize,
) -> Result<Vec<Figure6Row>, VerifyError> {
    figure6_timed(workloads, widths, jobs, &|_| {}).map(|(rows, _)| rows)
}

/// [`figure6_jobs`] plus per-task wall-clock timing: the second element of
/// the result names, for every simulation unit, which worker ran it and
/// how long it took. `progress` streams each completed unit from its
/// worker thread. Timings never feed back into the rows, so the
/// determinism gate on the rendered output is unaffected.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn figure6_timed(
    workloads: &[Workload],
    widths: &[usize],
    jobs: usize,
    progress: &(dyn Fn(&TaskTiming) + Sync),
) -> Result<(Vec<Figure6Row>, Vec<TaskTiming>), VerifyError> {
    let cache = BuildCache::new(workloads, widths);
    // Unit layout per workload: [baseline, then (liquid, pretranslated,
    // native) per width]. Reassembly below depends on this order.
    let per = 1 + widths.len() * 3;
    let (cycles, timings) = run_tasks_timed(
        jobs,
        workloads.len() * per,
        |i| -> Result<u64, VerifyError> {
            let (wi, unit) = (i / per, i % per);
            if unit == 0 {
                let plain = cache.plain(wi)?;
                let out = crate::run(&plain.program, MachineConfig::scalar_only())?;
                return Ok(out.report.cycles);
            }
            let k = unit - 1;
            let width = widths[k / 3];
            let out = match k % 3 {
                0 => crate::run(&cache.liquid(wi)?.program, MachineConfig::liquid(width))?,
                1 => crate::run_pretranslated(
                    &cache.liquid(wi)?.program,
                    MachineConfig::liquid(width),
                )?,
                _ => crate::run(
                    &cache.native(wi, width)?.program,
                    MachineConfig::native(width),
                )?,
            };
            Ok(out.report.cycles)
        },
        progress,
    )?;

    let rows = workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let chunk = &cycles[wi * per..(wi + 1) * per];
            let baseline_cycles = chunk[0];
            let mut liquid = BTreeMap::new();
            let mut pretranslated = BTreeMap::new();
            let mut native = BTreeMap::new();
            for (k, &width) in widths.iter().enumerate() {
                liquid.insert(width, baseline_cycles as f64 / chunk[1 + 3 * k] as f64);
                pretranslated.insert(width, baseline_cycles as f64 / chunk[2 + 3 * k] as f64);
                native.insert(width, baseline_cycles as f64 / chunk[3 + 3 * k] as f64);
            }
            Figure6Row {
                benchmark: w.name.clone(),
                baseline_cycles,
                liquid,
                pretranslated,
                native,
            }
        })
        .collect();
    Ok((rows, timings))
}

impl fmt::Display for Figure6Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14}", self.benchmark)?;
        for s in self.liquid.values() {
            write!(f, " {s:>6.2}")?;
        }
        write!(f, "  |")?;
        for s in self.pretranslated.values() {
            write!(f, " {s:>6.2}")?;
        }
        write!(f, "  |")?;
        for s in self.native.values() {
            write!(f, " {s:>6.2}")?;
        }
        Ok(())
    }
}

/// Code-size overhead of the Liquid binary vs the plain binary (paper §5:
/// "less than 1%", worst case hydro2d).
#[derive(Clone, Debug)]
pub struct CodeSizeRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Plain binary code bytes.
    pub plain_bytes: usize,
    /// Liquid binary code bytes.
    pub liquid_bytes: usize,
    /// Extra read-only data the Liquid build adds (offset/constant arrays).
    pub extra_data_bytes: i64,
}

impl CodeSizeRow {
    /// Code-size overhead relative to the hot-loop-only binaries built
    /// here. Note these binaries *are* the hot loops: the paper's "< 1%"
    /// is measured against full SPEC/MediaBench applications, whose text
    /// dwarfs the outlining additions — see [`CodeSizeRow::overhead_vs_app`].
    #[must_use]
    pub fn overhead(&self) -> f64 {
        (self.liquid_bytes as f64 - self.plain_bytes as f64) / self.plain_bytes as f64
    }

    /// The same absolute overhead expressed against a realistic
    /// application text size (the paper's measurement baseline).
    #[must_use]
    pub fn overhead_vs_app(&self, app_text_bytes: usize) -> f64 {
        (self.liquid_bytes as f64 - self.plain_bytes as f64) / app_text_bytes as f64
    }
}

/// Runs the code-size comparison.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile.
pub fn code_size(workloads: &[Workload]) -> Result<Vec<CodeSizeRow>, VerifyError> {
    code_size_jobs(workloads, 1)
}

/// [`code_size`] with compilation spread over `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile.
pub fn code_size_jobs(
    workloads: &[Workload],
    jobs: usize,
) -> Result<Vec<CodeSizeRow>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    run_tasks(
        jobs,
        workloads.len(),
        |i| -> Result<CodeSizeRow, VerifyError> {
            let plain = cache.plain(i)?;
            let liquid = cache.liquid(i)?;
            Ok(CodeSizeRow {
                benchmark: cache.workload(i).name.clone(),
                plain_bytes: plain.program.code_bytes(),
                liquid_bytes: liquid.program.code_bytes(),
                extra_data_bytes: liquid.program.data_bytes() as i64
                    - plain.program.data_bytes() as i64,
            })
        },
    )
}

impl fmt::Display for CodeSizeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>8} {:>8} {:>7.2}% {:>8}",
            self.benchmark,
            self.plain_bytes,
            self.liquid_bytes,
            self.overhead() * 100.0,
            self.extra_data_bytes
        )
    }
}

/// Microcode-cache working-set measurement (paper §5: 8 entries of 64
/// instructions suffice for every benchmark).
#[derive(Clone, Debug)]
pub struct McacheRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Distinct hot loops (outlined functions actually translated).
    pub hot_loops: usize,
    /// Largest translated microcode sequence (instructions).
    pub max_uops: usize,
    /// Microcode-cache evictions during the run at the paper geometry.
    pub evictions: u64,
    /// Fraction of calls serviced by microcode, across all hot loops.
    pub microcode_call_fraction: f64,
}

/// Runs the microcode-cache working-set measurement at the paper's 8x64
/// geometry.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn mcache(workloads: &[Workload]) -> Result<Vec<McacheRow>, VerifyError> {
    mcache_jobs(workloads, 1)
}

/// [`mcache`] with one simulation per worker-thread task.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn mcache_jobs(workloads: &[Workload], jobs: usize) -> Result<Vec<McacheRow>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    run_tasks(
        jobs,
        workloads.len(),
        |i| -> Result<McacheRow, VerifyError> {
            let b = cache.liquid(i)?;
            let out = crate::run(&b.program, MachineConfig::liquid(8))?;
            let hot_loops = out.report.translations.len();
            let max_uops = out
                .report
                .translations
                .iter()
                .map(|&(_, n)| n)
                .max()
                .unwrap_or(0);
            let micro = out
                .report
                .calls
                .iter()
                .filter(|c| c.mode == crate::CallMode::Microcode)
                .count();
            let total = out.report.calls.len().max(1);
            Ok(McacheRow {
                benchmark: cache.workload(i).name.clone(),
                hot_loops,
                max_uops,
                evictions: out.report.mcache.evictions,
                microcode_call_fraction: micro as f64 / total as f64,
            })
        },
    )
}

impl fmt::Display for McacheRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>5} {:>5} {:>5} {:>7.1}%",
            self.benchmark,
            self.hot_loops,
            self.max_uops,
            self.evictions,
            self.microcode_call_fraction * 100.0
        )
    }
}

/// Ablation A1: sensitivity to translation latency (paper: translation
/// could take "tens of cycles per instruction" without hurting, because
/// call gaps exceed 300 cycles).
#[derive(Clone, Debug)]
pub struct LatencyAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles at each translation cost (cycles per observed instruction).
    pub cycles_by_cost: BTreeMap<u64, u64>,
}

/// Runs the translation-latency ablation at 8 lanes.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn ablation_latency(
    workloads: &[Workload],
    costs: &[u64],
) -> Result<Vec<LatencyAblationRow>, VerifyError> {
    ablation_latency_jobs(workloads, costs, 1)
}

/// [`ablation_latency`] decomposed into `(workload, cost)` simulation
/// units and fanned over `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn ablation_latency_jobs(
    workloads: &[Workload],
    costs: &[u64],
    jobs: usize,
) -> Result<Vec<LatencyAblationRow>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    let per = costs.len();
    let cycles = run_tasks(
        jobs,
        workloads.len() * per,
        |i| -> Result<u64, VerifyError> {
            let (wi, ci) = (i / per, i % per);
            let b = cache.liquid(wi)?;
            let mut cfg = MachineConfig::liquid(8);
            cfg.translation.cycles_per_instr = costs[ci];
            let out = crate::run(&b.program, cfg)?;
            Ok(out.report.cycles)
        },
    )?;
    Ok(workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| LatencyAblationRow {
            benchmark: w.name.clone(),
            cycles_by_cost: costs
                .iter()
                .enumerate()
                .map(|(ci, &cost)| (cost, cycles[wi * per + ci]))
                .collect(),
        })
        .collect())
}

/// Ablation A2: hardware translator vs software JIT (which stalls the CPU
/// for its translation work).
#[derive(Clone, Debug)]
pub struct JitAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles with the hardware translator.
    pub hw_cycles: u64,
    /// Cycles with the software JIT at the given per-instruction cost.
    pub jit_cycles: u64,
}

/// Runs the hardware-vs-JIT ablation at 8 lanes.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn ablation_jit(
    workloads: &[Workload],
    jit_cost: u64,
) -> Result<Vec<JitAblationRow>, VerifyError> {
    ablation_jit_jobs(workloads, jit_cost, 1)
}

/// [`ablation_jit`] decomposed into `(workload, translator-kind)` units
/// and fanned over `jobs` worker threads.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn ablation_jit_jobs(
    workloads: &[Workload],
    jit_cost: u64,
    jobs: usize,
) -> Result<Vec<JitAblationRow>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    let cycles = run_tasks(jobs, workloads.len() * 2, |i| -> Result<u64, VerifyError> {
        let (wi, unit) = (i / 2, i % 2);
        let b = cache.liquid(wi)?;
        let mut cfg = MachineConfig::liquid(8);
        if unit == 1 {
            cfg.translation.jit = true;
            cfg.translation.jit_cycles_per_instr = jit_cost;
            cfg.translation.hw_value_limit = false; // JITs keep full-width values
        }
        let out = crate::run(&b.program, cfg)?;
        Ok(out.report.cycles)
    })?;
    Ok(workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| JitAblationRow {
            benchmark: w.name.clone(),
            hw_cycles: cycles[wi * 2],
            jit_cycles: cycles[wi * 2 + 1],
        })
        .collect())
}

/// The Figure 6 callout: the paper measured the worst-case speedup
/// difference between the Liquid binary and "built-in ISA support" across
/// all benchmarks and found about 0.001, occurring in FIR. The steady-state
/// overhead vanishes with call count (only the first call per loop runs
/// scalar), so this driver raises the repetition count to amortise warm-up
/// the way the paper's full benchmark runs did.
#[derive(Clone, Debug)]
pub struct OverheadCallout {
    /// Benchmark used (FIR, as in the paper).
    pub benchmark: String,
    /// Speedup of the Liquid binary with dynamic translation.
    pub liquid_speedup: f64,
    /// Speedup with built-in ISA support (preloaded microcode).
    pub builtin_speedup: f64,
}

impl OverheadCallout {
    /// The speedup difference (paper: ~0.001 in the worst case).
    #[must_use]
    pub fn difference(&self) -> f64 {
        self.builtin_speedup - self.liquid_speedup
    }
}

/// Runs the overhead callout on a (typically high-repetition) workload at
/// 8 lanes.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the workload fails to compile or simulate.
pub fn overhead_callout(w: &Workload) -> Result<OverheadCallout, VerifyError> {
    let workloads = std::slice::from_ref(w);
    let cache = BuildCache::new(workloads, &[]);
    let plain = cache.plain(0)?;
    let base = crate::run(&plain.program, MachineConfig::scalar_only())?;
    let b = cache.liquid(0)?;
    let liquid = crate::run(&b.program, MachineConfig::liquid(8))?;
    let builtin = crate::run_pretranslated(&b.program, MachineConfig::liquid(8))?;
    Ok(OverheadCallout {
        benchmark: w.name.clone(),
        liquid_speedup: base.report.cycles as f64 / liquid.report.cycles as f64,
        builtin_speedup: base.report.cycles as f64 / builtin.report.cycles as f64,
    })
}

/// Per-benchmark dynamic metrics captured through the tracing subsystem:
/// calls by mode, translation outcomes, abort-reason tallies, mcache and
/// memory behaviour — everything the end-of-run aggregates flatten away.
#[derive(Clone, Debug)]
pub struct MetricsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles of the traced run.
    pub cycles: u64,
    /// The full metrics registry (counters + histograms) of the run.
    pub metrics: liquid_simd_trace::Metrics,
    /// Per-kind event tallies (`"translation-commit"` → count, ...).
    pub events: BTreeMap<&'static str, u64>,
}

impl MetricsRow {
    /// Abort-reason tallies, keyed by `AbortReason::tag()` strings.
    #[must_use]
    pub fn aborts(&self) -> BTreeMap<String, u64> {
        self.metrics.with_prefix("translator.abort.")
    }
}

/// Runs each workload's Liquid binary at 8 lanes with a tracer attached
/// and returns the captured per-benchmark metrics.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn metrics(workloads: &[Workload]) -> Result<Vec<MetricsRow>, VerifyError> {
    metrics_jobs(workloads, 1)
}

/// [`metrics`] with one traced simulation per worker-thread task. The
/// tracer handle is not `Send` (`Rc`-based), so each task creates its own
/// tracer and ships back only the plain-data [`Metrics`] registry.
///
/// [`Metrics`]: liquid_simd_trace::Metrics
///
/// # Errors
///
/// Returns a [`VerifyError`] if a workload fails to compile or simulate.
pub fn metrics_jobs(workloads: &[Workload], jobs: usize) -> Result<Vec<MetricsRow>, VerifyError> {
    let cache = BuildCache::new(workloads, &[]);
    run_tasks(
        jobs,
        workloads.len(),
        |i| -> Result<MetricsRow, VerifyError> {
            let b = cache.liquid(i)?;
            let tracer = liquid_simd_trace::Tracer::new();
            let cfg = MachineConfig::liquid(8).with_tracer(tracer.clone());
            let out = crate::run(&b.program, cfg)?;
            Ok(MetricsRow {
                benchmark: cache.workload(i).name.clone(),
                cycles: out.report.cycles,
                metrics: tracer.metrics(),
                events: tracer.kind_counts(),
            })
        },
    )
}

impl fmt::Display for MetricsRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>10} cycles, {:>4} commits, {:>4} aborts, {:>5} simd calls",
            self.benchmark,
            self.cycles,
            self.events.get("translation-commit").copied().unwrap_or(0),
            self.events.get("translation-abort").copied().unwrap_or(0),
            self.metrics.counter("calls.simd"),
        )
    }
}

/// Convenience: the paper's width sweep.
#[must_use]
pub fn paper_widths() -> Vec<usize> {
    SUPPORTED_WIDTHS.to_vec()
}
