//! The explain & profile layer: turn one program's run into an actionable
//! diagnosis instead of a bare cycle count.
//!
//! Two questions dominate when a Liquid binary underperforms:
//!
//! 1. **Why didn't my loop translate?** [`explain`] runs the program at
//!    each accelerator width and reports, per outlined region, whether it
//!    translated (and into how many microcode instructions) or aborted —
//!    with the full [`AbortRecord`] provenance: the retired PC and opcode
//!    that killed it, how many dynamic instructions into the region, the
//!    register-class map and value-tracker state at that moment.
//! 2. **Where did the cycles go?** [`profile`] runs once with a
//!    [`Tracer`] attached and reports the exact cycle partition
//!    (scalar / microcode / JIT stall — the three sum to the total), the
//!    span aggregation (the `exec:*` spans tile the run, so their cycle
//!    totals also sum to the total), per-call-target attribution, and
//!    per-microcode-cache-entry statistics including evictor identity.
//!
//! Both reports render to aligned human text ([`render_explain`] /
//! [`render_profile`]) and to hand-rolled JSON ([`explain_json`] /
//! [`profile_json`]) for scripting; the CLI's `explain` and `profile`
//! commands are thin wrappers over this module.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use liquid_simd_isa::{Program, SUPPORTED_WIDTHS};
use liquid_simd_ledger::{Ledger, Snapshot as LedgerSnapshot, TOP_REGION};
use liquid_simd_sim::{
    BackendKind, BlockStats, MachineConfig, McacheEntryStats, McacheStats, PhaseBreakdown,
    SimError, TargetProfile,
};
use liquid_simd_trace::{span, SpanAgg, SpanRecord, TraceRecord, Tracer};
use liquid_simd_translator::{AbortRecord, RegClass, TranslatorStats};

/// Knobs for an [`explain`] sweep.
#[derive(Clone, Debug)]
pub struct ExplainOptions {
    /// Accelerator widths to try (each is one full run). Empty falls back
    /// to the default sweep.
    pub widths: Vec<usize>,
    /// Deliver a simulated external interrupt every N cycles (0 = never) —
    /// the way to observe `external` aborts deterministically.
    pub interrupt_every: u64,
    /// Also attempt translation of plain `bl` calls (no `bl.v` marker).
    pub all_calls: bool,
    /// Execution backend for every run of the sweep. Backends are
    /// observationally identical, so this changes throughput and the
    /// `blocks` telemetry, never the verdicts.
    pub backend: BackendKind,
}

impl Default for ExplainOptions {
    fn default() -> ExplainOptions {
        ExplainOptions {
            widths: SUPPORTED_WIDTHS.to_vec(),
            interrupt_every: 0,
            all_calls: false,
            backend: BackendKind::Interp,
        }
    }
}

/// What happened to one region at one width.
#[derive(Clone, Debug)]
pub enum RegionOutcome {
    /// Microcode was produced and cached.
    Translated {
        /// Microcode length of the (last) successful translation.
        uops: usize,
    },
    /// Every translation attempt aborted; `record` is the last retained
    /// abort's full provenance.
    Aborted {
        /// Provenance of the abort.
        record: AbortRecord,
    },
    /// The region was called but translation never started (for example a
    /// plain `bl` without [`ExplainOptions::all_calls`]).
    NotAttempted,
}

/// One region's fate at one accelerator width.
#[derive(Clone, Debug)]
pub struct RegionWidth {
    /// Accelerator width of this run.
    pub width: usize,
    /// Translated / aborted-with-provenance / not attempted.
    pub outcome: RegionOutcome,
    /// Calls serviced by the scalar body in this run.
    pub scalar_calls: u64,
    /// Calls serviced by microcode in this run.
    pub micro_calls: u64,
    /// Abort tally for this region in this run, by reason tag (can be
    /// non-empty even when the outcome is `Translated`: early calls may
    /// abort before a later one succeeds).
    pub aborts: BTreeMap<&'static str, u64>,
}

/// Everything [`explain`] learned about one outlined region.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Entry PC (code index) of the region.
    pub entry: u32,
    /// Label at the entry PC, when the program has one.
    pub label: Option<String>,
    /// Per-width fate, in sweep order.
    pub widths: Vec<RegionWidth>,
}

/// The result of an [`explain`] sweep.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Program name (file name or workload name).
    pub program: String,
    /// Widths swept.
    pub widths: Vec<usize>,
    /// Total cycles per width, parallel to `widths`.
    pub cycles: Vec<u64>,
    /// Aggregate microcode-cache statistics per width, parallel to
    /// `widths` — surfaces evictions and tag-conflict replacements.
    pub mcache: Vec<McacheStats>,
    /// Execution backend used for the sweep.
    pub backend: BackendKind,
    /// Superblock block-cache telemetry per width, parallel to `widths`
    /// (all zeros under the interpreter backend).
    pub blocks: Vec<BlockStats>,
    /// Every region that was called, translated, or aborted, by entry PC.
    pub regions: Vec<RegionReport>,
    /// Cycle-ledger snapshot per width, parallel to `widths`: category and
    /// region rollups of the exact per-cycle attribution.
    pub ledgers: Vec<LedgerSnapshot>,
}

/// Runs `program` once per width and reports every outlined region's fate:
/// translated (with microcode size) or aborted (with full provenance).
///
/// # Errors
///
/// Returns [`SimError`] if any run faults (wild memory, cycle limit).
pub fn explain(
    program: &Program,
    name: &str,
    opts: &ExplainOptions,
) -> Result<ExplainReport, SimError> {
    let widths = if opts.widths.is_empty() {
        SUPPORTED_WIDTHS.to_vec()
    } else {
        opts.widths.clone()
    };
    let mut runs = Vec::new();
    for &w in &widths {
        let mut cfg = MachineConfig::liquid(w)
            .with_backend(opts.backend)
            .with_ledger(true);
        cfg.interrupt_every = opts.interrupt_every;
        cfg.translation.translate_plain_bl = opts.all_calls;
        runs.push((w, crate::run(program, cfg)?.report));
    }

    let mut entries: BTreeSet<u32> = BTreeSet::new();
    for (_, r) in &runs {
        entries.extend(r.targets.keys().copied());
        entries.extend(r.translations.iter().map(|&(pc, _)| pc));
        entries.extend(r.translator.aborts_by_region.keys().copied());
    }

    let regions = entries
        .into_iter()
        .map(|pc| RegionReport {
            entry: pc,
            label: program.label_at(pc).map(str::to_string),
            widths: runs
                .iter()
                .map(|(w, r)| {
                    let translated = r
                        .translations
                        .iter()
                        .rev()
                        .find(|&&(p, _)| p == pc)
                        .map(|&(_, uops)| uops);
                    let outcome = if let Some(uops) = translated {
                        RegionOutcome::Translated { uops }
                    } else if let Some(record) = r.translator.region_aborts(pc).last() {
                        RegionOutcome::Aborted {
                            record: record.clone(),
                        }
                    } else {
                        RegionOutcome::NotAttempted
                    };
                    let target = r.targets.get(&pc).copied().unwrap_or_default();
                    RegionWidth {
                        width: *w,
                        outcome,
                        scalar_calls: target.scalar_calls,
                        micro_calls: target.micro_calls,
                        aborts: r
                            .translator
                            .aborts_by_region
                            .get(&pc)
                            .cloned()
                            .unwrap_or_default(),
                    }
                })
                .collect(),
        })
        .collect();

    let ledgers = runs
        .iter()
        .map(|(w, r)| {
            let led = r.ledger.clone().unwrap_or_default();
            LedgerSnapshot::from_ledger(
                &format!("{name} w{w}"),
                &led,
                &ledger_labels(program, &led),
            )
        })
        .collect();

    Ok(ExplainReport {
        program: name.to_string(),
        widths,
        cycles: runs.iter().map(|(_, r)| r.cycles).collect(),
        mcache: runs.iter().map(|(_, r)| r.mcache).collect(),
        backend: opts.backend,
        blocks: runs.iter().map(|(_, r)| r.blocks).collect(),
        regions,
        ledgers,
    })
}

/// Labels for every ledger region that has one in the program's symbol
/// table, so snapshots name regions `label @pc` instead of bare `@pc`.
fn ledger_labels(program: &Program, ledger: &Ledger) -> BTreeMap<u32, String> {
    ledger
        .region_totals()
        .keys()
        .filter(|&&pc| pc != TOP_REGION)
        .filter_map(|&pc| program.label_at(pc).map(|l| (pc, l.to_string())))
        .collect()
}

/// The result of a [`profile`] run: where the cycles went.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Program name (file name or workload name).
    pub program: String,
    /// Accelerator width of the run (0 = scalar only).
    pub lanes: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub retired: u64,
    /// Exact cycle partition (the three fields sum to `cycles`).
    pub phases: PhaseBreakdown,
    /// Translator statistics (attempts, successes, abort tallies).
    pub translator: TranslatorStats,
    /// Aggregate microcode-cache statistics.
    pub mcache: McacheStats,
    /// Per-function microcode-cache statistics, with evictor identity.
    pub mcache_entries: BTreeMap<u32, McacheEntryStats>,
    /// Per-call-target cycle attribution `(entry, label, profile)`, sorted
    /// by total attributed cycles, heaviest first.
    pub targets: Vec<(u32, Option<String>, TargetProfile)>,
    /// Per-span-name aggregation, heaviest first. The `exec:*` spans tile
    /// the run, so their cycle totals sum to `cycles`.
    pub span_summary: Vec<SpanAgg>,
    /// Raw span records (for Chrome-trace export).
    pub spans: Vec<SpanRecord>,
    /// Raw event records (for Chrome-trace export; ring-capacity bounded).
    pub records: Vec<TraceRecord>,
    /// Cycle-ledger snapshot of the run: category and region rollups of
    /// the exact per-cycle attribution.
    pub ledger: LedgerSnapshot,
}

/// Runs `program` once with a tracer attached and assembles the cycle
/// breakdown: phases, spans, call targets, microcode-cache entries.
///
/// # Errors
///
/// Returns [`SimError`] if the run faults.
pub fn profile(program: &Program, name: &str, lanes: usize) -> Result<ProfileReport, SimError> {
    let tracer = Tracer::new();
    let cfg = if lanes == 0 {
        MachineConfig::scalar_only()
    } else {
        MachineConfig::liquid(lanes)
    }
    .with_tracer(tracer.clone())
    .with_ledger(true);
    let report = crate::run(program, cfg)?.report;

    let mut targets: Vec<(u32, Option<String>, TargetProfile)> = report
        .targets
        .iter()
        .map(|(&pc, &t)| (pc, program.label_at(pc).map(str::to_string), t))
        .collect();
    targets.sort_by(|a, b| {
        b.2.total_cycles()
            .cmp(&a.2.total_cycles())
            .then(a.0.cmp(&b.0))
    });

    let led = report.ledger.clone().unwrap_or_default();
    let ledger = LedgerSnapshot::from_ledger(name, &led, &ledger_labels(program, &led));

    let spans = tracer.spans();
    Ok(ProfileReport {
        program: name.to_string(),
        lanes,
        cycles: report.cycles,
        retired: report.retired,
        phases: report.phases,
        translator: report.translator,
        mcache: report.mcache,
        mcache_entries: report.mcache_entries,
        targets,
        span_summary: span::aggregate(&spans),
        spans,
        records: tracer.records(),
        ledger,
    })
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_opt_label(label: Option<&str>) -> String {
    label.map_or_else(|| "null".to_string(), |l| format!("\"{}\"", esc(l)))
}

/// A register class rendered as a short stable name.
fn regclass_name(c: &RegClass) -> String {
    match c {
        RegClass::Unknown => "unknown".to_string(),
        RegClass::Const(v) => format!("const({v})"),
        RegClass::Induction => "induction".to_string(),
        RegClass::Scalar => "scalar".to_string(),
        RegClass::Vector { elem, signed, .. } => {
            format!("vector(.{elem}{})", if *signed { ",signed" } else { "" })
        }
        RegClass::AddrVector { tracker } => format!("addr-vector(t{tracker})"),
    }
}

fn regs_json(prefix: &str, regs: &[(u8, RegClass)]) -> String {
    let parts: Vec<String> = regs
        .iter()
        .map(|(i, c)| {
            format!(
                "{{\"reg\": \"{prefix}{i}\", \"class\": \"{}\"}}",
                regclass_name(c)
            )
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn abort_json(record: &AbortRecord) -> String {
    let trackers: Vec<String> = record
        .trackers
        .iter()
        .map(|t| {
            format!(
                "{{\"values\": {:?}, \"complete\": {}, \"consistent\": {}, \"wide\": {}, \
                 \"address_use\": {}}}",
                t.values, t.complete, t.consistent, t.wide, t.address_use
            )
        })
        .collect();
    format!(
        "{{\"status\": \"aborted\", \"reason\": \"{}\", \"detail\": \"{}\", \"pc\": {}, \
         \"opcode\": \"{}\", \"instr_index\": {}, \"phase\": \"{}\", \"loops_done\": {}, \
         \"regs\": {}, \"fregs\": {}, \"trackers\": [{}]}}",
        record.reason.tag(),
        esc(&record.reason.to_string()),
        record.pc,
        esc(&record.opcode),
        record.instr_index,
        record.phase,
        record.loops_done,
        regs_json("r", &record.regs),
        regs_json("f", &record.fregs),
        trackers.join(", ")
    )
}

fn tally_json(tally: &BTreeMap<&'static str, u64>) -> String {
    let parts: Vec<String> = tally.iter().map(|(t, n)| format!("\"{t}\": {n}")).collect();
    format!("{{{}}}", parts.join(", "))
}

/// Renders an [`ExplainReport`] as JSON (schema `liquid-simd-explain-v2`;
/// v2 added the execution-backend name and the per-run `blocks`
/// block-cache counters).
#[must_use]
pub fn explain_json(report: &ExplainReport) -> String {
    let mut j = String::from("{\n  \"schema\": \"liquid-simd-explain-v2\",\n");
    let _ = writeln!(j, "  \"program\": \"{}\",", esc(&report.program));
    let _ = writeln!(j, "  \"backend\": \"{}\",", report.backend);
    let _ = writeln!(j, "  \"widths\": {:?},", report.widths);
    let runs: Vec<String> = report
        .widths
        .iter()
        .enumerate()
        .zip(report.cycles.iter().zip(&report.mcache))
        .map(|((i, w), (c, m))| {
            let b = report.blocks.get(i).copied().unwrap_or_default();
            let blocks = b
                .metrics()
                .counters()
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", k.trim_start_matches("blocks.")))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{\"width\": {w}, \"cycles\": {c}, \"mcache\": {{\"lookups\": {}, \
                 \"hits\": {}, \"pending\": {}, \"inserts\": {}, \"evictions\": {}, \
                 \"conflicts\": {}}}, \"blocks\": {{{blocks}}}}}",
                m.lookups, m.hits, m.pending, m.inserts, m.evictions, m.conflicts
            )
        })
        .collect();
    let _ = writeln!(j, "  \"runs\": [\n    {}\n  ],", runs.join(",\n    "));
    let leds: Vec<String> = report
        .ledgers
        .iter()
        .map(|s| format!("    {}", s.to_json()))
        .collect();
    if !leds.is_empty() {
        let _ = writeln!(j, "  \"ledger\": [\n{}\n  ],", leds.join(",\n"));
    }
    j.push_str("  \"regions\": [\n");
    for (i, region) in report.regions.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"entry\": {},", region.entry);
        let _ = writeln!(
            j,
            "      \"label\": {},",
            json_opt_label(region.label.as_deref())
        );
        j.push_str("      \"widths\": [\n");
        for (k, rw) in region.widths.iter().enumerate() {
            let outcome = match &rw.outcome {
                RegionOutcome::Translated { uops } => {
                    format!("{{\"status\": \"translated\", \"uops\": {uops}}}")
                }
                RegionOutcome::Aborted { record } => abort_json(record),
                RegionOutcome::NotAttempted => "{\"status\": \"not-attempted\"}".to_string(),
            };
            let _ = writeln!(
                j,
                "        {{\"width\": {}, \"scalar_calls\": {}, \"micro_calls\": {}, \
                 \"aborts\": {}, \"outcome\": {}}}{}",
                rw.width,
                rw.scalar_calls,
                rw.micro_calls,
                tally_json(&rw.aborts),
                outcome,
                if k + 1 < region.widths.len() { "," } else { "" }
            );
        }
        j.push_str("      ]\n");
        let _ = writeln!(
            j,
            "    }}{}",
            if i + 1 < report.regions.len() {
                ","
            } else {
                ""
            }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn region_name(entry: u32, label: Option<&str>) -> String {
    label.map_or_else(|| format!("@{entry}"), |l| format!("{l} @{entry}"))
}

/// Renders an [`ExplainReport`] as aligned human-readable text.
#[must_use]
pub fn render_explain(report: &ExplainReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — explain at widths {:?}",
        report.program, report.widths
    );
    for (w, (c, m)) in report
        .widths
        .iter()
        .zip(report.cycles.iter().zip(&report.mcache))
    {
        let _ = writeln!(
            out,
            "  w{w:<2} {c} cycles — mcache {}/{} hits, {} evictions, {} conflicts",
            m.hits, m.lookups, m.evictions, m.conflicts
        );
    }
    for (w, snap) in report.widths.iter().zip(&report.ledgers) {
        let cats: Vec<String> = snap
            .categories
            .iter()
            .filter(|(_, b)| b.cycles > 0)
            .map(|(name, b)| format!("{name} {}", b.cycles))
            .collect();
        if !cats.is_empty() {
            let _ = writeln!(out, "  w{w:<2} ledger: {}", cats.join(", "));
        }
    }
    if report.regions.is_empty() {
        let _ = writeln!(out, "\nno outlined regions were called");
        return out;
    }
    for region in &report.regions {
        let _ = writeln!(
            out,
            "\nregion {}",
            region_name(region.entry, region.label.as_deref())
        );
        for rw in &region.widths {
            let calls = format!(
                "{} microcode / {} scalar calls",
                rw.micro_calls, rw.scalar_calls
            );
            match &rw.outcome {
                RegionOutcome::Translated { uops } => {
                    let _ = writeln!(out, "  w{:<2} translated: {uops} uops — {calls}", rw.width);
                    for (tag, n) in &rw.aborts {
                        let _ = writeln!(out, "       ({n} earlier abort(s): {tag})");
                    }
                }
                RegionOutcome::Aborted { record } => {
                    let _ = writeln!(
                        out,
                        "  w{:<2} ABORTED: {} — {calls}",
                        rw.width, record.reason
                    );
                    let _ = writeln!(
                        out,
                        "       at pc={} `{}` instr #{} ({} phase, {} loops done)",
                        record.pc,
                        record.opcode,
                        record.instr_index,
                        record.phase,
                        record.loops_done
                    );
                    if !record.regs.is_empty() || !record.fregs.is_empty() {
                        let classes: Vec<String> = record
                            .regs
                            .iter()
                            .map(|(i, c)| format!("r{i}={}", regclass_name(c)))
                            .chain(
                                record
                                    .fregs
                                    .iter()
                                    .map(|(i, c)| format!("f{i}={}", regclass_name(c))),
                            )
                            .collect();
                        let _ = writeln!(out, "       regs: {}", classes.join(", "));
                    }
                    for (tag, n) in &rw.aborts {
                        let _ = writeln!(out, "       tally: {tag} x{n}");
                    }
                }
                RegionOutcome::NotAttempted => {
                    let _ = writeln!(out, "  w{:<2} not attempted — {calls}", rw.width);
                }
            }
        }
    }
    out
}

/// Renders a [`ProfileReport`] as JSON (schema `liquid-simd-profile-v1`),
/// keeping the `top` heaviest targets and microcode-cache entries.
#[must_use]
pub fn profile_json(report: &ProfileReport, top: usize) -> String {
    let mut j = String::from("{\n  \"schema\": \"liquid-simd-profile-v1\",\n");
    let _ = writeln!(j, "  \"program\": \"{}\",", esc(&report.program));
    let _ = writeln!(j, "  \"lanes\": {},", report.lanes);
    let _ = writeln!(j, "  \"cycles\": {},", report.cycles);
    let _ = writeln!(j, "  \"retired\": {},", report.retired);
    let _ = writeln!(
        j,
        "  \"phases\": {{\"scalar_cycles\": {}, \"micro_cycles\": {}, \"jit_stall_cycles\": {}}},",
        report.phases.scalar_cycles, report.phases.micro_cycles, report.phases.jit_stall_cycles
    );
    let _ = writeln!(j, "  \"ledger\": {},", report.ledger.to_json());
    let spans: Vec<String> = report
        .span_summary
        .iter()
        .map(|a| {
            format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"open\": {}, \"total_cycles\": {}, \
                 \"mean_cycles\": {:.1}, \"max_cycles\": {}, \"total_wall_ns\": {}}}",
                esc(&a.name),
                a.count,
                a.open,
                a.total_cycles,
                a.mean_cycles(),
                a.max_cycles,
                a.total_wall_ns
            )
        })
        .collect();
    let _ = writeln!(j, "  \"spans\": [\n{}\n  ],", spans.join(",\n"));
    let targets: Vec<String> = report
        .targets
        .iter()
        .take(top)
        .map(|(pc, label, t)| {
            format!(
                "    {{\"entry\": {pc}, \"label\": {}, \"scalar_calls\": {}, \
                 \"scalar_cycles\": {}, \"micro_calls\": {}, \"micro_cycles\": {}}}",
                json_opt_label(label.as_deref()),
                t.scalar_calls,
                t.scalar_cycles,
                t.micro_calls,
                t.micro_cycles
            )
        })
        .collect();
    let _ = writeln!(j, "  \"targets\": [\n{}\n  ],", targets.join(",\n"));
    let _ = writeln!(
        j,
        "  \"mcache\": {{\"lookups\": {}, \"hits\": {}, \"pending\": {}, \"inserts\": {}, \
         \"evictions\": {}}},",
        report.mcache.lookups,
        report.mcache.hits,
        report.mcache.pending,
        report.mcache.inserts,
        report.mcache.evictions
    );
    let entries: Vec<String> = report
        .mcache_entries
        .iter()
        .take(top)
        .map(|(pc, e)| {
            format!(
                "    {{\"entry\": {pc}, \"label\": {}, \"hits\": {}, \"misses\": {}, \
                 \"pending\": {}, \"inserts\": {}, \"evictions\": {}, \"evicted_by\": {:?}, \
                 \"uops\": {}}}",
                json_opt_label(None),
                e.hits,
                e.misses,
                e.pending,
                e.inserts,
                e.evictions,
                e.evicted_by,
                e.uops
            )
        })
        .collect();
    let _ = writeln!(j, "  \"mcache_entries\": [\n{}\n  ],", entries.join(",\n"));
    let _ = writeln!(
        j,
        "  \"translator\": {{\"attempts\": {}, \"successes\": {}, \"aborted\": {}, \
         \"aborts\": {}}}",
        report.translator.attempts,
        report.translator.successes,
        report.translator.aborted(),
        tally_json(&report.translator.aborts)
    );
    j.push_str("}\n");
    j
}

/// Cycles covered by the run-tiling `exec:*` spans (scalar + microcode
/// execution segments). Equals [`ProfileReport::cycles`] for a halted run.
#[must_use]
pub fn exec_span_cycles(report: &ProfileReport) -> u64 {
    report
        .span_summary
        .iter()
        .filter(|a| a.name.starts_with("exec:"))
        .map(|a| a.total_cycles)
        .sum()
}

/// Renders a [`ProfileReport`] as aligned human-readable text, keeping the
/// `top` heaviest rows per table.
#[must_use]
pub fn render_profile(report: &ProfileReport, top: usize) -> String {
    let mut out = String::new();
    let lanes = if report.lanes == 0 {
        "scalar only".to_string()
    } else {
        format!("{} lanes", report.lanes)
    };
    let _ = writeln!(out, "{} — profile at {lanes}", report.program);
    let _ = writeln!(
        out,
        "cycles {} (scalar {}, microcode {}, jit stall {})   retired {}",
        report.cycles,
        report.phases.scalar_cycles,
        report.phases.micro_cycles,
        report.phases.jit_stall_cycles,
        report.retired
    );
    let _ = writeln!(out, "translator {}", report.translator);
    let cats: Vec<String> = report
        .ledger
        .categories
        .iter()
        .filter(|(_, b)| b.cycles > 0)
        .map(|(name, b)| format!("{name} {}", b.cycles))
        .collect();
    if !cats.is_empty() {
        let _ = writeln!(out, "ledger {}", cats.join(", "));
    }

    if !report.span_summary.is_empty() {
        let _ = writeln!(out, "\nspans (by total simulated cycles)");
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "cycles", "mean", "max", "wall-ms"
        );
        for a in report.span_summary.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<22} {:>6} {:>10} {:>10.1} {:>10} {:>10.3}",
                a.name,
                a.count,
                a.total_cycles,
                a.mean_cycles(),
                a.max_cycles,
                a.total_wall_ns as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "  exec:* spans cover {} / {} cycles",
            exec_span_cycles(report),
            report.cycles
        );
    }

    if !report.targets.is_empty() {
        let _ = writeln!(out, "\nhottest call targets");
        for (pc, label, t) in report.targets.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<22} microcode {} calls / {} cycles   scalar {} calls / {} cycles",
                region_name(*pc, label.as_deref()),
                t.micro_calls,
                t.micro_cycles,
                t.scalar_calls,
                t.scalar_cycles
            );
        }
    }

    if !report.mcache_entries.is_empty() {
        let _ = writeln!(out, "\nmicrocode cache entries");
        for (pc, e) in report.mcache_entries.iter().take(top) {
            let evictors = if e.evicted_by.is_empty() {
                String::new()
            } else {
                format!(
                    "   evicted by {}",
                    e.evicted_by
                        .iter()
                        .map(|pc| region_name(*pc, report_label(report, *pc).as_deref()))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(
                out,
                "  {:<22} hits {:<4} misses {:<4} inserts {:<3} evictions {:<3} uops {}{}",
                region_name(*pc, report_label(report, *pc).as_deref()),
                e.hits,
                e.misses,
                e.inserts,
                e.evictions,
                e.uops,
                evictors
            );
        }
    }
    out
}

/// Renders a flat dotted-name counter table (the `counters` object of a
/// `metrics-v1` snapshot or a `perfhist-v1` record) as aligned human text,
/// grouped by top-level prefix with a blank line between groups — the
/// human channel of `liquid-simd inspect`, next to `--raw` JSON.
#[must_use]
pub fn render_counter_table(counters: &std::collections::BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    if counters.is_empty() {
        out.push_str("(no counters)\n");
        return out;
    }
    let width = counters.keys().map(String::len).max().unwrap_or(0);
    let mut last_group: Option<&str> = None;
    for (name, v) in counters {
        let group = name.split('.').next().unwrap_or(name);
        if let Some(prev) = last_group {
            if prev != group {
                out.push('\n');
            }
        }
        last_group = Some(group);
        let _ = writeln!(out, "  {name:<width$}  {v}");
    }
    out
}

/// Looks up a target's label from the report's own target table (the
/// report is self-contained; no `Program` needed at render time).
fn report_label(report: &ProfileReport, pc: u32) -> Option<String> {
    report
        .targets
        .iter()
        .find(|(p, _, _)| *p == pc)
        .and_then(|(_, l, _)| l.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::asm;

    const ADD_ONE: &str = r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    mov r5, #0
again:
    bl.v kernel
    add r5, r5, #1
    cmp r5, #6
    blt again
    halt
kernel:
    mov r0, #0
top:
    ldw r1, [A + r0]
    add r1, r1, #1
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";

    /// Same driver, but the kernel hides an untranslatable opcode.
    const ILLEGAL: &str = r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    mov r5, #0
again:
    bl.v kernel
    add r5, r5, #1
    cmp r5, #3
    blt again
    halt
kernel:
    mov r0, #0
top:
    ldw r1, [A + r0]
    bic r1, r1, #1
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #8
    blt top
    ret
";

    #[test]
    fn explain_reports_translated_region_per_width() {
        let p = asm::assemble(ADD_ONE).unwrap();
        let opts = ExplainOptions {
            widths: vec![2, 4],
            ..ExplainOptions::default()
        };
        let report = explain(&p, "add_one", &opts).unwrap();
        assert_eq!(report.widths, vec![2, 4]);
        assert_eq!(report.regions.len(), 1);
        let region = &report.regions[0];
        assert_eq!(region.label.as_deref(), Some("kernel"));
        for rw in &region.widths {
            assert!(
                matches!(rw.outcome, RegionOutcome::Translated { uops } if uops > 0),
                "width {} should translate: {:?}",
                rw.width,
                rw.outcome
            );
            assert!(rw.micro_calls > 0);
        }
        let json = explain_json(&report);
        assert!(json.contains("\"schema\": \"liquid-simd-explain-v2\""));
        assert!(json.contains("\"backend\": \"interp\""));
        assert!(json.contains("\"status\": \"translated\""));
        let human = render_explain(&report);
        assert!(human.contains("region kernel"));
        assert!(human.contains("translated:"));
    }

    #[test]
    fn explain_sweeps_identically_under_the_superblock_backend() {
        let p = asm::assemble(ADD_ONE).unwrap();
        let base = ExplainOptions {
            widths: vec![2, 4],
            ..ExplainOptions::default()
        };
        let interp = explain(&p, "add_one", &base).unwrap();
        let sb = explain(
            &p,
            "add_one",
            &ExplainOptions {
                backend: liquid_simd_sim::BackendKind::Superblock,
                ..base
            },
        )
        .unwrap();
        // The verdict surface is backend-independent…
        assert_eq!(interp.cycles, sb.cycles);
        assert_eq!(interp.regions.len(), sb.regions.len());
        // …but the superblock run carries block-cache telemetry.
        assert!(interp.blocks.iter().all(|b| *b == BlockStats::default()));
        assert!(sb.blocks.iter().any(|b| b.lowered > 0));
        let json = explain_json(&sb);
        assert!(json.contains("\"backend\": \"superblock\""));
        assert!(json.contains("\"cache_hits\""));
    }

    #[test]
    fn explain_names_abort_reason_pc_and_instruction_index() {
        let p = asm::assemble(ILLEGAL).unwrap();
        let opts = ExplainOptions {
            widths: vec![4],
            ..ExplainOptions::default()
        };
        let report = explain(&p, "illegal", &opts).unwrap();
        let rw = &report.regions[0].widths[0];
        let RegionOutcome::Aborted { record } = &rw.outcome else {
            panic!("expected abort, got {:?}", rw.outcome);
        };
        assert_eq!(record.reason.tag(), "unsupported-opcode");
        let liquid_simd_translator::AbortReason::UnsupportedOpcode { pc } = record.reason else {
            panic!("wrong reason: {:?}", record.reason);
        };
        assert!(
            p.code[pc as usize].to_string().starts_with("bic"),
            "offender at @{pc}: {}",
            p.code[pc as usize]
        );
        assert!(record.instr_index > 0);
        assert!(!record.opcode.is_empty());
        let json = explain_json(&report);
        assert!(json.contains("\"reason\": \"unsupported-opcode\""));
        assert!(json.contains(&format!("\"pc\": {}", record.pc)));
        assert!(json.contains(&format!("\"instr_index\": {}", record.instr_index)));
        let human = render_explain(&report);
        assert!(human.contains("ABORTED"));
        assert!(human.contains("instr #"));
    }

    #[test]
    fn external_abort_provenance_survives_into_explain_json() {
        let p = asm::assemble(ADD_ONE).unwrap();
        let opts = ExplainOptions {
            widths: vec![4],
            interrupt_every: 40,
            ..ExplainOptions::default()
        };
        let report = explain(&p, "interrupted", &opts).unwrap();
        let json = explain_json(&report);
        assert!(
            json.contains("\"external\""),
            "expected an external abort in: {json}"
        );
        let rw = &report.regions[0].widths[0];
        assert!(
            rw.aborts.contains_key("external"),
            "per-region tally: {:?}",
            rw.aborts
        );
    }

    #[test]
    fn profile_exec_spans_tile_the_run() {
        let p = asm::assemble(ADD_ONE).unwrap();
        let report = profile(&p, "add_one", 4).unwrap();
        assert_eq!(report.phases.total(), report.cycles);
        assert_eq!(
            exec_span_cycles(&report),
            report.cycles,
            "exec:* spans must cover every cycle: {:?}",
            report.span_summary
        );
        assert!(report.phases.micro_cycles > 0);
        assert!(!report.targets.is_empty());
        assert!(!report.mcache_entries.is_empty());
        let json = profile_json(&report, 10);
        assert!(json.contains("\"schema\": \"liquid-simd-profile-v1\""));
        let human = render_profile(&report, 10);
        assert!(human.contains("spans (by total simulated cycles)"));
        assert!(human.contains("hottest call targets"));
    }

    #[test]
    fn counter_table_aligns_and_groups_by_prefix() {
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("cycles".to_string(), 1234u64);
        counters.insert("mcache.hits".to_string(), 7);
        counters.insert("mcache.lookups".to_string(), 9);
        counters.insert("translator.attempts".to_string(), 3);
        let text = render_counter_table(&counters);
        assert!(text.contains("cycles"));
        assert!(text.contains("mcache.hits"));
        // One blank line between the cycles, mcache, and translator groups.
        assert_eq!(text.matches("\n\n").count(), 2, "{text}");
        // Values aligned to one column past the longest name.
        let hit_line = text.lines().find(|l| l.contains("mcache.hits")).unwrap();
        let attempt_line = text
            .lines()
            .find(|l| l.contains("translator.attempts"))
            .unwrap();
        assert_eq!(hit_line.rfind(' '), attempt_line.rfind(' '), "{text}");
        assert_eq!(
            render_counter_table(&std::collections::BTreeMap::new()),
            "(no counters)\n"
        );
    }
}
