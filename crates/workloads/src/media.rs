//! MediaBench-style codecs: MPEG2 encode/decode and GSM encode/decode.
//!
//! These are the paper's short-loop benchmarks: 8x8-block (MPEG2) and
//! 160-sample-frame (GSM) hot loops called very frequently, which is why
//! their Table 6 call gaps are the smallest of the suite.

use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, ReduceInit, Workload};
use liquid_simd_isa::{ElemType, RedOp, VAluOp};

use crate::util::ivec;

/// MPEG2 decode: a 1-D IDCT-style pass over 16-bit coefficients followed
/// by motion-compensation clamping — prediction plus residual, saturated
/// into 8-bit pixels (the paper's canonical saturating-arithmetic idiom).
#[must_use]
pub fn mpeg2dec() -> Workload {
    const N: u32 = 16; // two 8x8 block rows — short, frequent loops

    // IDCT-ish pass: coef * basis (period-8 integer cosine table, scaled),
    // two shifted taps, descale with arithmetic shifts.
    let mut idct = KernelBuilder::new("idct_pass", N);
    let c = idct.load("coef", ElemType::I16);
    let basis = idct.constv(ElemType::I16, vec![181, 178, 167, 150, 128, 100, 69, 35]);
    let p0 = idct.bin(VAluOp::Mul, c, basis);
    let c1 = idct.load_at("coef", ElemType::I16, 1);
    let basis2 = idct.constv(ElemType::I16, vec![128, -128]);
    let p1 = idct.bin(VAluOp::Mul, c1, basis2);
    let s = idct.bin(VAluOp::Add, p0, p1);
    let d = idct.bin_imm(VAluOp::Asr, s, 8);
    idct.store("residual", d);

    // Motion compensation: pixel = sat8(pred + residual_lowbyte), then
    // brightness floor via saturating subtract.
    let mut mc = KernelBuilder::new("mc_clamp", N);
    let pred = mc.load_u("pred", ElemType::I8);
    let resid = mc.load("residual", ElemType::I16);
    let summed = mc.bin(VAluOp::SatAdd, pred, resid);
    let pix = mc.bin_imm(VAluOp::SatSub, summed, 16);
    mc.store("pixels", pix);

    let data = ArrayBuilder::new()
        .int(
            "coef",
            ElemType::I16,
            ivec(0x2DEC, N as usize + 1, -256, 256),
        )
        .int("pred", ElemType::I8, ivec(0x2DED, N as usize, 0, 256))
        .zeroed("residual", ElemType::I16, N as usize)
        .zeroed("pixels", ElemType::I8, N as usize)
        .build();
    Workload::new(
        "MPEG2 Dec.",
        vec![
            idct.build().expect("idct kernel"),
            mc.build().expect("mc kernel"),
        ],
        data,
        800,
    )
}

/// MPEG2 encode: a DCT-style pass plus the sum-of-absolute-differences
/// motion search metric, computed branch-free with saturating subtracts
/// (`|a-b| = satsub(a,b) | satsub(b,a)`).
#[must_use]
pub fn mpeg2enc() -> Workload {
    const N: u32 = 16;

    let mut dct = KernelBuilder::new("dct_pass", N);
    let x = dct.load_u("block", ElemType::I8);
    let x1 = dct.load_u_at("block", ElemType::I8, 1);
    let cos0 = dct.constv(ElemType::I8, vec![64, 62, 59, 54, 46, 38, 27, 13]);
    let p0 = dct.bin(VAluOp::Mul, x, cos0);
    let p1 = dct.bin_imm(VAluOp::Lsl, x1, 5);
    let s = dct.bin(VAluOp::Add, p0, p1);
    let q = dct.bin_imm(VAluOp::Asr, s, 4);
    dct.store("freq", q);

    let mut sad = KernelBuilder::new("sad", N);
    let a = sad.load_u("block", ElemType::I8);
    let b = sad.load_u("refblk", ElemType::I8);
    let d1 = sad.bin(VAluOp::SatSub, a, b);
    let d2 = sad.bin(VAluOp::SatSub, b, a);
    let ad = sad.bin(VAluOp::Orr, d1, d2);
    sad.reduce(RedOp::Sum, ad, "sadout", ReduceInit::Int(0));

    let data = ArrayBuilder::new()
        .int("block", ElemType::I8, ivec(0x2E0C, N as usize + 1, 0, 256))
        .int("refblk", ElemType::I8, ivec(0x2E0D, N as usize, 0, 256))
        .zeroed("freq", ElemType::I8, N as usize)
        .zeroed("sadout", ElemType::I32, 1)
        .build();
    Workload::new(
        "MPEG2 Enc.",
        vec![
            dct.build().expect("dct kernel"),
            sad.build().expect("sad kernel"),
        ],
        data,
        800,
    )
}

/// GSM decode: long-term-prediction synthesis over a 160-sample frame —
/// scaled history plus residual with signed 16-bit saturation, then a
/// de-emphasis tap.
#[must_use]
pub fn gsmdec() -> Workload {
    const N: u32 = 160;

    let mut syn = KernelBuilder::new("ltp_syn", N);
    let r = syn.load("resid", ElemType::I16);
    let h = syn.load("hist", ElemType::I16);
    let gain = syn.constv(ElemType::I16, vec![89]); // ~0.7 in Q7
    let scaled = syn.bin(VAluOp::Mul, h, gain);
    let scaled = syn.bin_imm(VAluOp::Asr, scaled, 7);
    let sum = syn.bin(VAluOp::SSatAdd, r, scaled);
    let h1 = syn.load_at("hist", ElemType::I16, 1);
    let de = syn.bin_imm(VAluOp::Asr, h1, 2);
    let out = syn.bin(VAluOp::SSatSub, sum, de);
    syn.store("speech", out);
    syn.reduce(RedOp::Max, out, "framepeak", ReduceInit::Int(i32::MIN));

    let data = ArrayBuilder::new()
        .int("resid", ElemType::I16, ivec(0x65D, N as usize, -4000, 4000))
        .int(
            "hist",
            ElemType::I16,
            ivec(0x65E, N as usize + 1, -12000, 12000),
        )
        .zeroed("speech", ElemType::I16, N as usize)
        .zeroed("framepeak", ElemType::I32, 1)
        .build();
    Workload::new(
        "GSM Dec.",
        vec![syn.build().expect("ltp_syn kernel")],
        data,
        100,
    )
}

/// GSM encode: autocorrelation at three lags (the LPC analysis hot loop)
/// and the long-term-prediction lag search maximum.
#[must_use]
pub fn gsmenc() -> Workload {
    const N: u32 = 160;

    let mut ac = KernelBuilder::new("autocorr", N);
    let x0 = ac.load("frame", ElemType::I16);
    let x0s = ac.bin_imm(VAluOp::Asr, x0, 2); // scale to avoid overflow
    for lag in 0..3u32 {
        let xk = ac.load_at("frame", ElemType::I16, lag);
        let xks = ac.bin_imm(VAluOp::Asr, xk, 2);
        let p = ac.bin(VAluOp::Mul, x0s, xks);
        ac.reduce(RedOp::Sum, p, &format!("ac{lag}"), ReduceInit::Int(0));
    }

    let mut ltp = KernelBuilder::new("ltp_search", N);
    let x = ltp.load("frame", ElemType::I16);
    let past = ltp.load_at("frame", ElemType::I16, 2);
    let xp = ltp.bin_imm(VAluOp::Asr, x, 3);
    let pp = ltp.bin_imm(VAluOp::Asr, past, 3);
    let corr = ltp.bin(VAluOp::Mul, xp, pp);
    ltp.reduce(RedOp::Max, corr, "bestlag", ReduceInit::Int(i32::MIN));

    let data = ArrayBuilder::new()
        .int(
            "frame",
            ElemType::I16,
            ivec(0x65F, N as usize + 2, -16000, 16000),
        )
        .zeroed("ac0", ElemType::I32, 1)
        .zeroed("ac1", ElemType::I32, 1)
        .zeroed("ac2", ElemType::I32, 1)
        .zeroed("bestlag", ElemType::I32, 1)
        .build();
    Workload::new(
        "GSM Enc.",
        vec![
            ac.build().expect("autocorr kernel"),
            ltp.build().expect("ltp kernel"),
        ],
        data,
        100,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_benchmarks_validate() {
        for w in [mpeg2dec(), mpeg2enc(), gsmdec(), gsmenc()] {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn sad_is_nonnegative_under_gold() {
        let w = mpeg2enc();
        let env = liquid_simd_compiler::gold::run_gold(&w).unwrap();
        let (_, liquid_simd_compiler::ArrayData::Int(v)) = env.get("sadout").unwrap() else {
            panic!()
        };
        assert!((v[0] as u32 as i32) > 0, "sad = {}", v[0]);
    }
}
