//! Signal-processing kernels: FIR, FFT, LU (paper §5 "common signal
//! processing kernels").

use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, ReduceInit, Workload};
use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp};

use crate::util::fvec;

/// FIR filter: `y[i] = sum_k h[k] * x[i+k]` over 4 taps, plus an output
/// energy reduction. Nearly the whole runtime is the vectorizable hot loop
/// — the paper's highest-speedup benchmark.
#[must_use]
pub fn fir() -> Workload {
    const N: u32 = 512;
    const TAPS: usize = 4;
    let h = [0.25f32, 0.5, -0.125, 0.0625];
    let mut k = KernelBuilder::new("fir4", N);
    let mut acc = None;
    for (t, &coef) in h.iter().enumerate().take(TAPS) {
        let x = k.load_at("x", ElemType::F32, t as u32);
        let c = k.constf(vec![coef]);
        let p = k.bin(VAluOp::Mul, x, c);
        acc = Some(match acc {
            None => p,
            Some(a) => k.bin(VAluOp::Add, a, p),
        });
    }
    let y = acc.expect("taps > 0");
    k.store("y", y);
    k.reduce(RedOp::Max, y, "peak", ReduceInit::F32(f32::MIN));

    let data = ArrayBuilder::new()
        .f32("x", fvec(0xF17, N as usize + TAPS, -1.0, 1.0))
        .zeroed("y", ElemType::F32, N as usize)
        .zeroed("peak", ElemType::F32, 1)
        .build();
    Workload::new("FIR", vec![k.build().expect("fir kernel")], data, 150)
}

/// One radix-2-style FFT stage: butterflied loads of the real/imaginary
/// planes, twiddle multiply, combine, store to the next plane pair. Stage
/// `s` uses butterfly block `2^s`, so narrow accelerators can translate the
/// early stages but must abort the later ones (CAM miss) — the width
/// crossover the paper's abort rule implies.
fn fft_stage(
    idx: usize,
    block: u8,
    trip: u32,
    re_in: &str,
    im_in: &str,
    re_out: &str,
    im_out: &str,
) -> liquid_simd_compiler::Kernel {
    let b = block as usize;
    // Twiddle factors, one per butterfly slot (period = block).
    let wr: Vec<f32> = (0..b)
        .map(|j| (std::f32::consts::PI * j as f32 / b as f32).cos())
        .collect();
    let wi: Vec<f32> = (0..b)
        .map(|j| (std::f32::consts::PI * j as f32 / b as f32).sin())
        .collect();

    let mut k = KernelBuilder::new(&format!("fft_stage{idx}"), trip);
    let kind = PermKind::Bfly { block };
    let re_b = k.load_perm(re_in, ElemType::F32, kind);
    let im_b = k.load_perm(im_in, ElemType::F32, kind);
    let re = k.load(re_in, ElemType::F32);
    let im = k.load(im_in, ElemType::F32);
    let cwr = k.constf(wr);
    let cwi = k.constf(wi);
    // tr = re_b*wr - im_b*wi ; ti = re_b*wi + im_b*wr   (paper Figure 2/3)
    let t1 = k.bin(VAluOp::Mul, re_b, cwr);
    let t2 = k.bin(VAluOp::Mul, im_b, cwi);
    let tr = k.bin(VAluOp::Sub, t1, t2);
    let t3 = k.bin(VAluOp::Mul, re_b, cwi);
    let t4 = k.bin(VAluOp::Mul, im_b, cwr);
    let ti = k.bin(VAluOp::Add, t3, t4);
    let ore = k.bin(VAluOp::Add, re, tr);
    let oim = k.bin(VAluOp::Sub, im, ti);
    k.store(re_out, ore);
    k.store(im_out, oim);
    k.build().expect("fft stage kernel")
}

/// FFT: four butterfly stages (blocks 2, 4, 8, 16) ping-ponging between
/// plane pairs — the paper's Figure 2–4 walkthrough at benchmark scale.
#[must_use]
pub fn fft() -> Workload {
    const N: u32 = 256;
    let stages = [
        fft_stage(1, 2, N, "re0", "im0", "re1", "im1"),
        fft_stage(2, 4, N, "re1", "im1", "re2", "im2"),
        fft_stage(3, 8, N, "re2", "im2", "re3", "im3"),
        fft_stage(4, 16, N, "re3", "im3", "re4", "im4"),
    ];
    let mut data = ArrayBuilder::new()
        .f32("re0", fvec(0xFF7A, N as usize, -2.0, 2.0))
        .f32("im0", fvec(0xFF7B, N as usize, -2.0, 2.0));
    for i in 1..=4 {
        data = data
            .zeroed(&format!("re{i}"), ElemType::F32, N as usize)
            .zeroed(&format!("im{i}"), ElemType::F32, N as usize);
    }
    Workload::new("FFT", stages.to_vec(), data.build(), 60)
}

/// LU decomposition inner loops: the row-elimination update
/// `U[i] = A[i] - F[i]*B[i]` and the pivot-row scale `L[i] = A[i]*Finv[i]`.
#[must_use]
pub fn lu() -> Workload {
    const N: u32 = 256;
    let mut elim = KernelBuilder::new("lu_elim", N);
    let a = elim.load("rowA", ElemType::F32);
    let f = elim.load("factor", ElemType::F32);
    let b = elim.load("rowB", ElemType::F32);
    let fb = elim.bin(VAluOp::Mul, f, b);
    let u = elim.bin(VAluOp::Sub, a, fb);
    elim.store("rowU", u);

    let mut scale = KernelBuilder::new("lu_scale", N);
    let a = scale.load("rowU", ElemType::F32);
    let inv = scale.load("pivinv", ElemType::F32);
    let l = scale.bin(VAluOp::Mul, a, inv);
    scale.store("rowL", l);

    let data = ArrayBuilder::new()
        .f32("rowA", fvec(0x10, N as usize, -4.0, 4.0))
        .f32("rowB", fvec(0x11, N as usize, -4.0, 4.0))
        .f32("factor", fvec(0x12, N as usize, 0.1, 0.9))
        .f32("pivinv", fvec(0x13, N as usize, 0.5, 2.0))
        .zeroed("rowU", ElemType::F32, N as usize)
        .zeroed("rowL", ElemType::F32, N as usize)
        .build();
    Workload::new(
        "LU",
        vec![
            elim.build().expect("lu elim"),
            scale.build().expect("lu scale"),
        ],
        data,
        100,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_is_single_small_kernel() {
        let w = fir();
        w.validate().unwrap();
        assert_eq!(w.kernels.len(), 1);
    }

    #[test]
    fn fft_stage_blocks_escalate() {
        let w = fft();
        w.validate().unwrap();
        assert_eq!(w.kernels.len(), 4);
    }
}
