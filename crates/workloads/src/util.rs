//! Deterministic synthetic input generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic `f32` vector in `[lo, hi)`.
pub fn fvec(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// A deterministic integer vector in `[lo, hi)` (canonicalised later by
/// the array builder).
pub fn ivec(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = fvec(7, 100, -1.0, 1.0);
        let b = fvec(7, 100, -1.0, 1.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let c = ivec(9, 100, -50, 50);
        let d = ivec(9, 100, -50, 50);
        assert_eq!(c, d);
        assert!(c.iter().all(|&x| (-50..50).contains(&x)));
        assert_ne!(ivec(1, 10, 0, 100), ivec(2, 10, 0, 100));
    }
}
