//! Deterministic synthetic input generation.
//!
//! Inputs are produced by an in-repo xorshift64* generator rather than an
//! external RNG crate, so the workspace resolves with no registry access
//! and every benchmark input is bit-stable across toolchains.

/// A small, fast, deterministic PRNG (xorshift64*). Not cryptographic —
/// it only feeds synthetic benchmark inputs and property tests.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped (xorshift has a zero
    /// fixed point).
    #[must_use]
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_f64() as f32) * (hi - lo)
    }
}

/// A deterministic `f32` vector in `[lo, hi)`.
pub fn fvec(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| rng.range_f32(lo, hi)).collect()
}

/// A deterministic integer vector in `[lo, hi)` (canonicalised later by
/// the array builder).
pub fn ivec(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| rng.range_i64(lo, hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = fvec(7, 100, -1.0, 1.0);
        let b = fvec(7, 100, -1.0, 1.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let c = ivec(9, 100, -50, 50);
        let d = ivec(9, 100, -50, 50);
        assert_eq!(c, d);
        assert!(c.iter().all(|&x| (-50..50).contains(&x)));
        assert_ne!(ivec(1, 10, 0, 100), ivec(2, 10, 0, 100));
    }

    #[test]
    fn zero_seed_is_usable() {
        let v = ivec(0, 16, 0, 10);
        assert!(v.iter().any(|&x| x != v[0]));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = XorShift64::new(42);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
