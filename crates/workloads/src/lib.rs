//! The paper's fifteen evaluation benchmarks (§5), re-implemented as
//! vector kernels over synthetic data.
//!
//! **Substitution note (DESIGN.md §3):** SPEC and MediaBench sources and
//! inputs are proprietary; the paper, however, only SIMDizes each
//! benchmark's *hot loops* and measures structural properties of those
//! loops (instruction counts, call spacing, vectorizable fraction, cache
//! behaviour). Each module here re-implements the algorithmic core of the
//! corresponding hot loops with inputs sized to echo the original's
//! behaviour — e.g. `179.art` gets an out-of-cache working set (its paper
//! speedup is cache-bound), the MPEG2 codecs get short, frequently-called
//! block loops (their paper call gaps are under 300 cycles), FIR is almost
//! entirely vectorizable (highest paper speedup).
//!
//! | Benchmark | Function | Character |
//! |---|---|---|
//! | 052.alvinn | [`alvinn`] | MLP forward passes, fp multiply + reduce |
//! | 056.ear | [`ear`] | gammatone-style filter cascade |
//! | 093.nasa7 | [`nasa7`] | matrix kernels, large loop bodies |
//! | 101.tomcatv | [`tomcatv`] | mesh-smoothing stencils (fission-sized) |
//! | 104.hydro2d | [`hydro2d`] | many small hydrodynamics loops |
//! | 171.swim | [`swim`] | shallow-water stencils |
//! | 172.mgrid | [`mgrid`] | multigrid relaxation, largest bodies |
//! | 179.art | [`art`] | neural-net match with out-of-cache data |
//! | MPEG2 decode | [`mpeg2dec`] | IDCT + saturating motion-comp clamp |
//! | MPEG2 encode | [`mpeg2enc`] | DCT + SAD via saturating abs-diff |
//! | GSM decode | [`gsmdec`] | LTP synthesis with signed saturation |
//! | GSM encode | [`gsmenc`] | autocorrelation + lag search |
//! | LU | [`lu`] | row elimination updates |
//! | FIR | [`fir`] | tap-delay dot products, ~fully vectorizable |
//! | FFT | [`fft`] | radix-2 stages with per-stage butterflies |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod media;
mod specfp;
pub mod util;

pub use kernels::{fft, fir, lu};
pub use media::{gsmdec, gsmenc, mpeg2dec, mpeg2enc};
pub use specfp::{alvinn, art, ear, hydro2d, mgrid, nasa7, swim, tomcatv};

use liquid_simd_compiler::Workload;

/// All fifteen benchmarks, in the paper's Figure 6 order.
#[must_use]
pub fn all() -> Vec<Workload> {
    vec![
        alvinn(),
        ear(),
        nasa7(),
        tomcatv(),
        hydro2d(),
        swim(),
        mgrid(),
        art(),
        mpeg2enc(),
        mpeg2dec(),
        gsmdec(),
        gsmenc(),
        lu(),
        fft(),
        fir(),
    ]
}

/// A fast subset for smoke tests: one fp benchmark, one saturating media
/// benchmark, one permutation-heavy benchmark.
#[must_use]
pub fn smoke() -> Vec<Workload> {
    vec![lu(), mpeg2dec(), fft()]
}

/// The generated workload frontier: every *translatable* variant from
/// the seeded `bench/families/` corpus, expanded deterministically by
/// `kernelgen`. Untranslatable idioms (which lower to raw assembly,
/// not vector IR) are excluded here — `kernelgen::expand_corpus`
/// exposes the full set including those.
///
/// # Panics
/// The embedded corpus is validated by kernelgen's own tests; a parse
/// or expansion failure here means the checked-in corpus is broken.
#[must_use]
pub fn generated() -> Vec<Workload> {
    liquid_simd_kernelgen::expand_corpus()
        .expect("embedded kernelgen corpus must expand")
        .into_iter()
        .filter_map(|v| match v.payload {
            liquid_simd_kernelgen::Payload::Kernel(w) => Some(*w),
            liquid_simd_kernelgen::Payload::Asm { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_validate() {
        let ws = all();
        assert_eq!(ws.len(), 15);
        for w in &ws {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        // Names are unique.
        let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn all_benchmarks_evaluate_under_gold() {
        for w in all() {
            liquid_simd_compiler::gold::run_gold(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn generated_frontier_validates_and_evaluates_under_gold() {
        let ws = generated();
        assert!(ws.len() >= 90, "generated frontier: {} workloads", ws.len());
        for w in &ws {
            w.validate().unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            liquid_simd_compiler::gold::run_gold(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
