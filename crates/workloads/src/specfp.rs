//! SPECfp-style benchmarks: the eight floating-point codes of the paper's
//! suite, reduced to their SIMDized hot loops.

use liquid_simd_compiler::{ArrayBuilder, Kernel, KernelBuilder, ReduceInit, Workload};
use liquid_simd_isa::{ElemType, RedOp, VAluOp};

use crate::util::fvec;

/// 052.alvinn: MLP forward passes — two small multiply/accumulate loops
/// (the paper's smallest outlined functions, ~12 instructions).
#[must_use]
pub fn alvinn() -> Workload {
    const N: u32 = 256;
    let mut l1 = KernelBuilder::new("layer1", N);
    let x = l1.load("input", ElemType::F32);
    let w = l1.load("w1", ElemType::F32);
    let h = l1.bin(VAluOp::Mul, x, w);
    l1.store("hidden", h);
    l1.reduce(RedOp::Sum, h, "hsum", ReduceInit::F32(0.0));

    let mut l2 = KernelBuilder::new("layer2", N);
    let h = l2.load("hidden", ElemType::F32);
    let w = l2.load("w2", ElemType::F32);
    let o = l2.bin(VAluOp::Mul, h, w);
    let bias = l2.constf(vec![0.125]);
    let o = l2.bin(VAluOp::Add, o, bias);
    l2.store("output", o);

    let data = ArrayBuilder::new()
        .f32("input", fvec(0xA1, N as usize, -1.0, 1.0))
        .f32("w1", fvec(0xA2, N as usize, -0.5, 0.5))
        .f32("w2", fvec(0xA3, N as usize, -0.5, 0.5))
        .zeroed("hidden", ElemType::F32, N as usize)
        .zeroed("output", ElemType::F32, N as usize)
        .zeroed("hsum", ElemType::F32, 1)
        .build();
    Workload::new(
        "052.alvinn",
        vec![l1.build().expect("layer1"), l2.build().expect("layer2")],
        data,
        100,
    )
}

/// 056.ear: a two-section gammatone-style filter cascade with per-section
/// gains and feedback taps.
#[must_use]
pub fn ear() -> Workload {
    const N: u32 = 512;
    let mut k = KernelBuilder::new("cochlea", N);
    // Section 1: three-tap weighted sum with gain.
    let x0 = k.load("sig", ElemType::F32);
    let x1 = k.load_at("sig", ElemType::F32, 1);
    let x2 = k.load_at("sig", ElemType::F32, 2);
    let a0 = k.constf(vec![0.43]);
    let a1 = k.constf(vec![0.31]);
    let a2 = k.constf(vec![0.18]);
    let t0 = k.bin(VAluOp::Mul, x0, a0);
    let t1 = k.bin(VAluOp::Mul, x1, a1);
    let t2 = k.bin(VAluOp::Mul, x2, a2);
    let s1 = k.bin(VAluOp::Add, t0, t1);
    let s1 = k.bin(VAluOp::Add, s1, t2);
    let g1 = k.constf(vec![1.8]);
    let y1 = k.bin(VAluOp::Mul, s1, g1);
    // Section 2: feed-forward of section 1 with a feedback estimate.
    let fb = k.load("state", ElemType::F32);
    let beta = k.constf(vec![0.6]);
    let fbs = k.bin(VAluOp::Mul, fb, beta);
    let y2 = k.bin(VAluOp::Sub, y1, fbs);
    // Half-wave rectification (max with 0) models the hair-cell stage.
    let zero = k.constf(vec![0.0]);
    let rect = k.bin(VAluOp::Max, y2, zero);
    k.store("bm", y2);
    k.store("ihc", rect);
    k.reduce(RedOp::Max, rect, "envpeak", ReduceInit::F32(0.0));

    let data = ArrayBuilder::new()
        .f32("sig", fvec(0xEA, N as usize + 2, -1.0, 1.0))
        .f32("state", fvec(0xEB, N as usize, -0.2, 0.2))
        .zeroed("bm", ElemType::F32, N as usize)
        .zeroed("ihc", ElemType::F32, N as usize)
        .zeroed("envpeak", ElemType::F32, 1)
        .build();
    Workload::new("056.ear", vec![k.build().expect("cochlea")], data, 80)
}

/// 093.nasa7: three of the NAS kernels — an unrolled matrix-multiply
/// inner loop, a Cholesky-style update, and a pentadiagonal solve step.
/// These are the suite's larger loop bodies (paper mean ~45).
#[must_use]
pub fn nasa7() -> Workload {
    const N: u32 = 256;

    // MXM: c[i] = sum_{j<8} a[i+j] * b[i+j mirrored], fully unrolled.
    let mut mxm = KernelBuilder::new("mxm", N);
    let mut acc = None;
    for j in 0..8u32 {
        let a = mxm.load_at("ma", ElemType::F32, j);
        let b = mxm.load_at("mb", ElemType::F32, 7 - j);
        let p = mxm.bin(VAluOp::Mul, a, b);
        acc = Some(match acc {
            None => p,
            Some(s) => mxm.bin(VAluOp::Add, s, p),
        });
    }
    mxm.store("mc", acc.expect("unrolled"));

    // CHOLSKY-style update: x = (a - l0*l1 - l2*l3) * dinv.
    let mut chol = KernelBuilder::new("cholsky", N);
    let a = chol.load("ca", ElemType::F32);
    let l0 = chol.load("cl", ElemType::F32);
    let l1 = chol.load_at("cl", ElemType::F32, 1);
    let l2 = chol.load_at("cl", ElemType::F32, 2);
    let l3 = chol.load_at("cl", ElemType::F32, 3);
    let p0 = chol.bin(VAluOp::Mul, l0, l1);
    let p1 = chol.bin(VAluOp::Mul, l2, l3);
    let s = chol.bin(VAluOp::Sub, a, p0);
    let s = chol.bin(VAluOp::Sub, s, p1);
    let dinv = chol.load("cdinv", ElemType::F32);
    let x = chol.bin(VAluOp::Mul, s, dinv);
    chol.store("cx", x);

    // VPENTA: five-point recurrence update against two coefficient arrays.
    let mut vp = KernelBuilder::new("vpenta", N);
    let mut terms = Vec::new();
    for j in 0..5u32 {
        let f = vp.load_at("vf", ElemType::F32, j);
        let c = vp.load_at("vc", ElemType::F32, j);
        terms.push(vp.bin(VAluOp::Mul, f, c));
    }
    let mut s = terms[0];
    for &t in &terms[1..] {
        s = vp.bin(VAluOp::Add, s, t);
    }
    let rhs = vp.load("vrhs", ElemType::F32);
    let upd = vp.bin(VAluOp::Sub, rhs, s);
    let scale = vp.constf(vec![0.25, 0.5, 0.75, 1.0]);
    let upd = vp.bin(VAluOp::Mul, upd, scale);
    vp.store("vx", upd);

    let n = N as usize;
    let data = ArrayBuilder::new()
        .f32("ma", fvec(0xB1, n + 8, -2.0, 2.0))
        .f32("mb", fvec(0xB2, n + 8, -2.0, 2.0))
        .zeroed("mc", ElemType::F32, n)
        .f32("ca", fvec(0xB3, n, -2.0, 2.0))
        .f32("cl", fvec(0xB4, n + 3, -1.0, 1.0))
        .f32("cdinv", fvec(0xB5, n, 0.5, 1.5))
        .zeroed("cx", ElemType::F32, n)
        .f32("vf", fvec(0xB6, n + 4, -1.0, 1.0))
        .f32("vc", fvec(0xB7, n + 4, -1.0, 1.0))
        .f32("vrhs", fvec(0xB8, n, -4.0, 4.0))
        .zeroed("vx", ElemType::F32, n)
        .build();
    Workload::new(
        "093.nasa7",
        vec![
            mxm.build().expect("mxm"),
            chol.build().expect("cholsky"),
            vp.build().expect("vpenta"),
        ],
        data,
        50,
    )
}

/// Builds a wide weighted-stencil kernel: `out[i] = sum_j w_j * in_j[i+o_j]`
/// over `taps` (array, offset, weight) terms.
fn stencil(name: &str, trip: u32, taps: &[(&str, u32, f32)], out: &str) -> Kernel {
    let mut k = KernelBuilder::new(name, trip);
    let mut acc = None;
    for &(arr, off, w) in taps {
        let x = k.load_at(arr, ElemType::F32, off);
        let c = k.constf(vec![w]);
        let p = k.bin(VAluOp::Mul, x, c);
        acc = Some(match acc {
            None => p,
            Some(s) => k.bin(VAluOp::Add, s, p),
        });
    }
    k.store(out, acc.expect("taps"));
    k.build().expect("stencil kernel")
}

/// 101.tomcatv: mesh-generation stencils. The residual-smoothing loop is
/// large enough that the compiler must fission it — the paper notes
/// exactly this for tomcatv's 61-instruction maximum.
#[must_use]
pub fn tomcatv() -> Workload {
    const N: u32 = 512;
    // A 9-term, two-array relaxation: big enough to overflow one outlined
    // function and get split.
    let relax = stencil(
        "relax",
        N,
        &[
            ("xg", 0, 0.05),
            ("xg", 1, 0.20),
            ("xg", 2, 0.05),
            ("yg", 0, 0.10),
            ("yg", 1, 0.30),
            ("yg", 2, 0.10),
            ("rxg", 0, 0.07),
            ("rxg", 1, 0.06),
            ("rxg", 2, 0.07),
            ("xg", 3, 0.02),
            ("yg", 3, 0.02),
            ("rxg", 3, 0.01),
            ("xg", 4, 0.01),
            ("yg", 4, 0.01),
            ("rxg", 4, 0.03),
            ("xg", 5, 0.02),
            ("yg", 5, 0.03),
            ("rxg", 5, 0.02),
        ],
        "xout",
    );
    let resid = stencil(
        "resid",
        N,
        &[("xout", 0, 1.0), ("xg", 1, -2.0), ("yg", 1, 1.0)],
        "rout",
    );
    let n = N as usize;
    let data = ArrayBuilder::new()
        .f32("xg", fvec(0xC1, n + 5, -1.0, 1.0))
        .f32("yg", fvec(0xC2, n + 5, -1.0, 1.0))
        .f32("rxg", fvec(0xC3, n + 5, -1.0, 1.0))
        .zeroed("xout", ElemType::F32, n)
        .zeroed("rout", ElemType::F32, n)
        .build();
    Workload::new("101.tomcatv", vec![relax, resid], data, 50)
}

/// 104.hydro2d: the suite's many-small-loops benchmark (the paper counts
/// 18 outlined loops; we model eight hydrodynamic update steps).
#[must_use]
pub fn hydro2d() -> Workload {
    const N: u32 = 256;
    let n = N as usize;
    let mut kernels = Vec::new();
    // Flux updates in each direction.
    for (i, (src, dst)) in [("rho", "fx"), ("mx", "fy"), ("my", "fz"), ("en", "fw")]
        .iter()
        .enumerate()
    {
        let mut k = KernelBuilder::new(&format!("flux{i}"), N);
        let u = k.load(src, ElemType::F32);
        let u1 = k.load_at(src, ElemType::F32, 1);
        let du = k.bin(VAluOp::Sub, u1, u);
        let c = k.constf(vec![0.5]);
        let f = k.bin(VAluOp::Mul, du, c);
        let f = k.bin(VAluOp::Add, f, u);
        k.store(dst, f);
        kernels.push(k.build().expect("flux kernel"));
    }
    // Conservative variable advances.
    for (i, (state, flux)) in [("rho2", "fx"), ("mx2", "fy"), ("my2", "fz"), ("en2", "fw")]
        .iter()
        .enumerate()
    {
        let mut k = KernelBuilder::new(&format!("adv{i}"), N);
        let u = k.load(flux, ElemType::F32);
        let u1 = k.load_at(flux, ElemType::F32, 1);
        let div = k.bin(VAluOp::Sub, u1, u);
        let dt = k.constf(vec![0.05]);
        let d = k.bin(VAluOp::Mul, div, dt);
        let base = k.load(flux, ElemType::F32);
        let nu = k.bin(VAluOp::Sub, base, d);
        // Positivity clamp on the advanced quantity.
        let floor = k.constf(vec![1e-3]);
        let nu = k.bin(VAluOp::Max, nu, floor);
        k.store(state, nu);
        kernels.push(k.build().expect("advance kernel"));
    }
    let mut data = ArrayBuilder::new()
        .f32("rho", fvec(0xD1, n + 1, 0.5, 2.0))
        .f32("mx", fvec(0xD2, n + 1, -1.0, 1.0))
        .f32("my", fvec(0xD3, n + 1, -1.0, 1.0))
        .f32("en", fvec(0xD4, n + 1, 1.0, 3.0));
    for name in ["fx", "fy", "fz", "fw"] {
        data = data.zeroed(name, ElemType::F32, n + 1);
    }
    for name in ["rho2", "mx2", "my2", "en2"] {
        data = data.zeroed(name, ElemType::F32, n);
    }
    Workload::new("104.hydro2d", kernels, data.build(), 50)
}

/// 171.swim: the shallow-water U/V/P update stencils.
#[must_use]
pub fn swim() -> Workload {
    const N: u32 = 512;
    let n = N as usize;
    let u = stencil(
        "calc_u",
        N,
        &[
            ("p", 0, -0.45),
            ("p", 1, 0.45),
            ("v", 0, 0.25),
            ("v", 1, 0.25),
            ("u", 1, 1.0),
            ("z", 0, 0.125),
            ("z", 1, -0.125),
        ],
        "unew",
    );
    let v = stencil(
        "calc_v",
        N,
        &[
            ("p", 0, -0.45),
            ("p", 2, 0.45),
            ("u", 0, -0.25),
            ("u", 2, -0.25),
            ("v", 1, 1.0),
            ("z", 0, -0.125),
            ("z", 2, 0.125),
        ],
        "vnew",
    );
    let p = stencil(
        "calc_p",
        N,
        &[
            ("u", 0, -0.6),
            ("u", 1, 0.6),
            ("v", 0, -0.6),
            ("v", 2, 0.6),
            ("p", 1, 1.0),
        ],
        "pnew",
    );
    let data = ArrayBuilder::new()
        .f32("u", fvec(0xE1, n + 2, -1.0, 1.0))
        .f32("v", fvec(0xE2, n + 2, -1.0, 1.0))
        .f32("p", fvec(0xE3, n + 2, 40.0, 60.0))
        .f32("z", fvec(0xE4, n + 2, -0.1, 0.1))
        .zeroed("unew", ElemType::F32, n)
        .zeroed("vnew", ElemType::F32, n)
        .zeroed("pnew", ElemType::F32, n)
        .build();
    Workload::new("171.swim", vec![u, v, p], data, 40)
}

/// 172.mgrid: multigrid relaxation — the paper's largest loop bodies
/// (maximum 62 instructions after splitting). The 27-point-style resid
/// kernel is deliberately oversized so fission has to split it.
#[must_use]
pub fn mgrid() -> Workload {
    const N: u32 = 512;
    let n = N as usize;
    let taps: Vec<(&str, u32, f32)> = (0..9)
        .map(|j| ("gu", j as u32, [0.5, 0.25, 0.125][j % 3] / (1.0 + j as f32)))
        .chain((0..9).map(|j| ("gr", j as u32, [0.4, 0.2, 0.1][j % 3] / (2.0 + j as f32))))
        .chain((0..6).map(|j| ("gv", j as u32, 0.03 * (j as f32 + 1.0))))
        .collect();
    let resid = stencil("resid3d", N, &taps, "gout");
    let interp = stencil(
        "interp",
        N,
        &[
            ("gout", 0, 0.5),
            ("gout", 1, 0.25),
            ("gout", 2, 0.25),
            ("gu", 0, 1.0),
            ("gu", 1, -0.5),
            ("gv", 0, 0.75),
            ("gv", 1, -0.25),
            ("gr", 0, 0.1),
        ],
        "gfine",
    );
    let data = ArrayBuilder::new()
        .f32("gu", fvec(0xF1, n + 9, -1.0, 1.0))
        .f32("gr", fvec(0xF2, n + 9, -1.0, 1.0))
        .f32("gv", fvec(0xF3, n + 9, -1.0, 1.0))
        .zeroed("gout", ElemType::F32, n + 2)
        .zeroed("gfine", ElemType::F32, n)
        .build();
    Workload::new("172.mgrid", vec![resid, interp], data, 40)
}

/// 179.art: adaptive-resonance matching over a working set far larger
/// than the 16 KB data cache — its speedup is memory-bound, the lowest in
/// the suite (paper Figure 6).
#[must_use]
pub fn art() -> Workload {
    const N: u32 = 16384; // 64 KB per f32 array, 4 arrays resident
    let n = N as usize;
    let mut mtc = KernelBuilder::new("match_f1", N);
    let f1 = mtc.load("f1act", ElemType::F32);
    let w = mtc.load("btweights", ElemType::F32);
    let p = mtc.bin(VAluOp::Mul, f1, w);
    let m = mtc.bin(VAluOp::Min, p, f1);
    mtc.store("matchv", m);
    mtc.reduce(RedOp::Sum, m, "matchsum", ReduceInit::F32(0.0));

    let mut upd = KernelBuilder::new("update_w", N);
    let w = upd.load("btweights", ElemType::F32);
    let x = upd.load("matchv", ElemType::F32);
    let d = upd.bin(VAluOp::Sub, x, w);
    let lr = upd.constf(vec![0.05]);
    let step = upd.bin(VAluOp::Mul, d, lr);
    let nw = upd.bin(VAluOp::Add, w, step);
    upd.store("wnew", nw);

    let data = ArrayBuilder::new()
        .f32("f1act", fvec(0xA7, n, 0.0, 1.0))
        .f32("btweights", fvec(0xA8, n, 0.0, 1.0))
        .zeroed("matchv", ElemType::F32, n)
        .zeroed("wnew", ElemType::F32, n)
        .zeroed("matchsum", ElemType::F32, 1)
        .build();
    Workload::new(
        "179.art",
        vec![mtc.build().expect("match"), upd.build().expect("update")],
        data,
        6,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_compiler::{build_liquid, MAX_OUTLINED_INSTRS};

    #[test]
    fn specfp_benchmarks_validate() {
        for w in [
            alvinn(),
            ear(),
            nasa7(),
            tomcatv(),
            hydro2d(),
            swim(),
            mgrid(),
            art(),
        ] {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn mgrid_and_tomcatv_require_fission() {
        for w in [mgrid(), tomcatv()] {
            let b = build_liquid(&w).unwrap();
            assert!(
                b.outlined.len() > w.kernels.len(),
                "{} should split: {} functions from {} kernels",
                w.name,
                b.outlined.len(),
                w.kernels.len()
            );
            for f in &b.outlined {
                assert!(f.instrs <= MAX_OUTLINED_INSTRS, "{}: {}", f.name, f.instrs);
            }
        }
    }
}
