//! Textual assembler and disassembler.
//!
//! The syntax mirrors the listings in the paper (Figure 4). A module has an
//! optional data section followed by code:
//!
//! ```text
//! .data
//! .f32 RealOut: 1.0, 2.0, 3.0, 4.0
//! .i32 bfly: 4, 4, 4, 4, -4, -4, -4, -4
//! .zero tmp0: 128 x 4
//!
//! .text
//! main:
//!     mov r0, #0
//! loop:
//!     ldw r1, [bfly + r0]
//!     add r1, r0, r1
//!     ldf f0, [RealOut + r1]
//!     add r0, r0, #1
//!     cmp r0, #8
//!     blt loop
//!     halt
//! ```
//!
//! [`disassemble`] produces text in exactly this syntax, and
//! [`assemble`]`(`[`disassemble`]`(p))` reproduces the program's code and
//! symbols (round-trip tested).

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::cond::Cond;
use crate::error::IsaError;
use crate::inst::Inst;
use crate::op::{AluOp, Base, ElemType, FpOp, MemWidth, Operand2, RedOp, VAluOp};
use crate::perm::PermKind;
use crate::program::Program;
use crate::reg::{FReg, Reg, VReg};
use crate::scalar::ScalarInst;
use crate::vector::VectorInst;

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

/// Renders a program as assembly text (see module docs for the syntax).
#[must_use]
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    if !p.symbols.is_empty() {
        out.push_str(".data\n");
        for sym in &p.symbols {
            let start = (sym.addr - p.data_base) as usize;
            let bytes = &p.data[start..start + sym.size as usize];
            let all_zero = bytes.iter().all(|&b| b == 0);
            if all_zero && sym.size > 0 {
                let elems = sym.size / sym.elem_bytes;
                out.push_str(&format!(
                    ".zero {}: {} x {}\n",
                    sym.name, elems, sym.elem_bytes
                ));
                continue;
            }
            match sym.elem_bytes {
                2 => {
                    let vals: Vec<String> = bytes
                        .chunks_exact(2)
                        .map(|c| i16::from_le_bytes([c[0], c[1]]).to_string())
                        .collect();
                    out.push_str(&format!(".i16 {}: {}\n", sym.name, vals.join(", ")));
                }
                4 => {
                    let vals: Vec<String> = bytes
                        .chunks_exact(4)
                        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]).to_string())
                        .collect();
                    out.push_str(&format!(".i32 {}: {}\n", sym.name, vals.join(", ")));
                }
                _ => {
                    let vals: Vec<String> = bytes.iter().map(|&b| (b as i8).to_string()).collect();
                    out.push_str(&format!(".i8 {}: {}\n", sym.name, vals.join(", ")));
                }
            }
        }
        out.push('\n');
    }
    out.push_str(".text\n");

    // Collect branch targets so we can emit local labels.
    let mut targets: Vec<u32> = Vec::new();
    for inst in &p.code {
        match inst {
            Inst::S(ScalarInst::B { target, .. }) | Inst::S(ScalarInst::Bl { target, .. })
                if !targets.contains(target) =>
            {
                targets.push(*target);
            }
            _ => {}
        }
    }
    let label_for = |idx: u32| -> Option<String> {
        if let Some(name) = p.label_at(idx) {
            Some(name.to_string())
        } else if targets.contains(&idx) {
            Some(format!("L{idx}"))
        } else {
            None
        }
    };

    for (idx, inst) in p.code.iter().enumerate() {
        let idx = idx as u32;
        if let Some(l) = label_for(idx) {
            out.push_str(&format!("{l}:\n"));
        }
        let text = match inst {
            Inst::S(ScalarInst::B { cond, target }) => {
                format!(
                    "b{cond} {}",
                    label_for(*target).unwrap_or(format!("@{target}"))
                )
            }
            Inst::S(ScalarInst::Bl {
                target,
                vectorizable,
            }) => {
                let m = if *vectorizable { "bl.v" } else { "bl" };
                format!("{m} {}", label_for(*target).unwrap_or(format!("@{target}")))
            }
            other => render_with_symbols(other, p),
        };
        out.push_str(&format!("    {text}\n"));
    }
    out
}

/// Renders a slice of a program's code (e.g. one outlined function) with
/// symbol names substituted — the pretty-printer examples and reports use.
#[must_use]
pub fn disassemble_range(p: &Program, entry: u32, len: usize) -> String {
    let mut out = String::new();
    for (i, inst) in p.code.iter().enumerate().skip(entry as usize).take(len) {
        if let Some(name) = p.label_at(i as u32) {
            out.push_str(&format!("{name}:\n"));
        }
        out.push_str(&format!("    {}\n", render_with_symbols(inst, p)));
    }
    out
}

/// Renders instructions that are not part of a program (translated
/// microcode) — no symbol table is available, so `symN` ids remain.
#[must_use]
pub fn disassemble_microcode(code: &[Inst], p: &Program) -> String {
    let mut out = String::new();
    for inst in code {
        out.push_str(&format!("    {}\n", render_with_symbols(inst, p)));
    }
    out
}

/// Renders one instruction substituting symbol names for `symN` ids.
fn render_with_symbols(inst: &Inst, p: &Program) -> String {
    let mut text = inst.to_string();
    // Replace any `symN` occurrence with its name.
    while let Some(pos) = text.find("sym") {
        let tail = &text[pos + 3..];
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            break;
        }
        let id: usize = digits.parse().expect("digits parse");
        let name = p
            .symbols
            .get(id)
            .map_or_else(|| format!("sym{id}"), |s| s.name.clone());
        text = format!(
            "{}{}{}",
            &text[..pos],
            name,
            &text[pos + 3 + digits.len()..]
        );
    }
    text
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

/// Assembles a module from text (see module docs for the syntax).
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a line number for syntax errors, and
/// label/symbol errors from program finalisation.
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    Assembler::new().assemble(source)
}

struct Assembler {
    builder: ProgramBuilder,
    labels: HashMap<String, crate::builder::Label>,
}

fn perr(line: usize, message: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        message: message.into(),
    }
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            builder: ProgramBuilder::new(),
            labels: HashMap::new(),
        }
    }

    fn label(&mut self, name: &str) -> crate::builder::Label {
        if let Some(&l) = self.labels.get(name) {
            l
        } else {
            let l = self.builder.new_label();
            self.labels.insert(name.to_string(), l);
            l
        }
    }

    fn assemble(mut self, source: &str) -> Result<Program, IsaError> {
        let lines: Vec<&str> = source.lines().collect();
        let mut idx = 0;
        while idx < lines.len() {
            let lineno = idx + 1;
            let raw_line = lines[idx];
            idx += 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() || line == ".data" || line == ".text" {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                // Data directives continue across lines while the value
                // list ends with a trailing comma.
                let mut body = rest.to_string();
                while body.trim_end().ends_with(',') && idx < lines.len() {
                    body.push(' ');
                    body.push_str(strip_comment(lines[idx]).trim());
                    idx += 1;
                }
                self.parse_directive(lineno, &body)?;
                continue;
            }
            if let Some(name) = line.strip_suffix(':') {
                let name = name.trim();
                let l = self.label(name);
                self.builder.bind_named(l, name);
                continue;
            }
            let inst = self.parse_inst(lineno, line)?;
            match inst {
                ParsedInst::Plain(i) => {
                    self.builder.push(i);
                }
                ParsedInst::Branch { cond, label } => {
                    let l = self.label(&label);
                    self.builder.b(cond, l);
                }
                ParsedInst::Call {
                    label,
                    vectorizable,
                } => {
                    let l = self.label(&label);
                    if vectorizable {
                        self.builder.bl_v(l);
                    } else {
                        self.builder.bl(l);
                    }
                }
            }
        }
        self.builder.finish()
    }

    fn parse_directive(&mut self, lineno: usize, rest: &str) -> Result<(), IsaError> {
        let (kind, body) = rest
            .split_once(' ')
            .ok_or_else(|| perr(lineno, "directive needs a body"))?;
        let (name, values) = body
            .split_once(':')
            .ok_or_else(|| perr(lineno, "directive needs `name: values`"))?;
        let name = name.trim();
        let values = values.trim();
        match kind {
            "i8" => {
                let vals = parse_list::<i8>(lineno, values)?;
                self.builder.add_i8s(name, &vals);
            }
            "i16" => {
                let vals = parse_list::<i16>(lineno, values)?;
                self.builder.add_i16s(name, &vals);
            }
            "i32" => {
                let vals = parse_list::<i32>(lineno, values)?;
                self.builder.add_i32s(name, &vals);
            }
            "f32" => {
                let vals = parse_list::<f32>(lineno, values)?;
                self.builder.add_f32s(name, &vals);
            }
            "zero" => {
                let (elems, bytes) = values
                    .split_once('x')
                    .ok_or_else(|| perr(lineno, "`.zero name: N x BYTES`"))?;
                let elems: usize = elems
                    .trim()
                    .parse()
                    .map_err(|_| perr(lineno, "bad element count"))?;
                let bytes: u32 = bytes
                    .trim()
                    .parse()
                    .map_err(|_| perr(lineno, "bad element size"))?;
                self.builder.reserve(name, elems, bytes);
            }
            other => return Err(perr(lineno, format!("unknown directive .{other}"))),
        }
        Ok(())
    }

    fn parse_base(&mut self, lineno: usize, token: &str) -> Result<Base, IsaError> {
        if let Some(r) = parse_reg(token) {
            Ok(Base::Reg(r))
        } else if let Some(id) = self.builder.symbol_named(token) {
            Ok(Base::Sym(id))
        } else {
            Err(perr(lineno, format!("unknown base `{token}`")))
        }
    }

    /// Parses a `[base + index]` memory operand.
    fn parse_mem(&mut self, lineno: usize, token: &str) -> Result<(Base, Reg), IsaError> {
        let inner = token
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| perr(lineno, format!("expected [base + index], got `{token}`")))?;
        let (b, i) = inner
            .split_once('+')
            .ok_or_else(|| perr(lineno, "memory operand needs `base + index`"))?;
        let base = self.parse_base(lineno, b.trim())?;
        let index =
            parse_reg(i.trim()).ok_or_else(|| perr(lineno, format!("bad index `{}`", i.trim())))?;
        Ok((base, index))
    }

    #[allow(clippy::too_many_lines)]
    fn parse_inst(&mut self, lineno: usize, line: &str) -> Result<ParsedInst, IsaError> {
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m.trim(), r.trim()),
            None => (line, ""),
        };
        let ops: Vec<String> = split_operands(rest);
        let op_str = |i: usize| -> Result<&str, IsaError> {
            ops.get(i)
                .map(String::as_str)
                .ok_or_else(|| perr(lineno, format!("missing operand {i}")))
        };
        let int_reg = |i: usize| -> Result<Reg, IsaError> {
            let t = op_str(i)?;
            parse_reg(t).ok_or_else(|| perr(lineno, format!("bad register `{t}`")))
        };
        let f_reg = |i: usize| -> Result<FReg, IsaError> {
            let t = op_str(i)?;
            parse_freg(t).ok_or_else(|| perr(lineno, format!("bad fp register `{t}`")))
        };
        let operand2 = |i: usize| -> Result<Operand2, IsaError> {
            let t = op_str(i)?;
            if let Some(imm) = t.strip_prefix('#') {
                Ok(Operand2::Imm(parse_int(lineno, imm)?))
            } else {
                parse_reg(t)
                    .map(Operand2::Reg)
                    .ok_or_else(|| perr(lineno, format!("bad operand `{t}`")))
            }
        };

        // Fixed mnemonics first.
        match mnemonic {
            "ret" => return Ok(ParsedInst::Plain(Inst::S(ScalarInst::Ret))),
            "halt" => return Ok(ParsedInst::Plain(Inst::S(ScalarInst::Halt))),
            "nop" => return Ok(ParsedInst::Plain(Inst::S(ScalarInst::Nop))),
            "cmp" => {
                return Ok(ParsedInst::Plain(Inst::S(ScalarInst::Cmp {
                    rn: int_reg(0)?,
                    op2: operand2(1)?,
                })))
            }
            "bl" | "bl.v" => {
                return Ok(ParsedInst::Call {
                    label: op_str(0)?.to_string(),
                    vectorizable: mnemonic == "bl.v",
                })
            }
            _ => {}
        }

        // Vector mnemonics carry dot-separated suffixes.
        if mnemonic.starts_with('v') {
            return self.parse_vector(lineno, mnemonic, &ops);
        }

        // Branches: `b` + condition suffix.
        if let Some(suffix) = mnemonic.strip_prefix('b') {
            if let Some(cond) = parse_cond(suffix) {
                return Ok(ParsedInst::Branch {
                    cond,
                    label: op_str(0)?.to_string(),
                });
            }
        }

        // Loads/stores.
        if let Some(tail) = mnemonic.strip_prefix("ld").or(mnemonic.strip_prefix("st")) {
            let is_load = mnemonic.starts_with("ld");
            if tail == "f" {
                return Ok(ParsedInst::Plain(Inst::S(if is_load {
                    let fd = f_reg(0)?;
                    let (base, index) = self.parse_mem(lineno, op_str(1)?)?;
                    ScalarInst::LdF { fd, base, index }
                } else {
                    let (base, index) = self.parse_mem(lineno, op_str(0)?)?;
                    let fs = f_reg(1)?;
                    ScalarInst::StF { fs, base, index }
                })));
            }
            let (width, signed) = match tail {
                "b" => (MemWidth::B, false),
                "bs" => (MemWidth::B, true),
                "h" => (MemWidth::H, false),
                "hs" => (MemWidth::H, true),
                "w" => (MemWidth::W, false),
                "ws" => (MemWidth::W, true),
                _ => {
                    return Err(perr(lineno, format!("unknown mnemonic `{mnemonic}`")));
                }
            };
            return Ok(ParsedInst::Plain(Inst::S(if is_load {
                let rd = int_reg(0)?;
                let (base, index) = self.parse_mem(lineno, op_str(1)?)?;
                ScalarInst::LdInt {
                    width,
                    signed,
                    rd,
                    base,
                    index,
                }
            } else {
                let (base, index) = self.parse_mem(lineno, op_str(0)?)?;
                let rs = int_reg(1)?;
                ScalarInst::StInt {
                    width,
                    rs,
                    base,
                    index,
                }
            })));
        }

        // fmov / fp alu (no conditional fp-alu).
        if let Some(suffix) = mnemonic.strip_prefix("fmov") {
            let cond = parse_cond(suffix)
                .ok_or_else(|| perr(lineno, format!("bad condition `{suffix}`")))?;
            return Ok(ParsedInst::Plain(Inst::S(ScalarInst::FMov {
                cond,
                fd: f_reg(0)?,
                fm: f_reg(1)?,
            })));
        }
        for op in FpOp::ALL {
            if mnemonic == op.mnemonic() {
                return Ok(ParsedInst::Plain(Inst::S(ScalarInst::FAlu {
                    op,
                    fd: f_reg(0)?,
                    fn_: f_reg(1)?,
                    fm: f_reg(2)?,
                })));
            }
        }

        // mov with condition suffix.
        if let Some(suffix) = mnemonic.strip_prefix("mov") {
            let cond = parse_cond(suffix)
                .ok_or_else(|| perr(lineno, format!("bad condition `{suffix}`")))?;
            let rd = int_reg(0)?;
            return Ok(ParsedInst::Plain(Inst::S(match operand2(1)? {
                Operand2::Imm(imm) => ScalarInst::MovImm { cond, rd, imm },
                Operand2::Reg(rm) => ScalarInst::Mov { cond, rd, rm },
            })));
        }

        // Integer ALU with condition suffix (longest mnemonic match first).
        let mut alu_match: Option<(AluOp, Cond)> = None;
        for op in AluOp::ALL {
            if let Some(suffix) = mnemonic.strip_prefix(op.mnemonic()) {
                if let Some(cond) = parse_cond(suffix) {
                    alu_match = Some((op, cond));
                    break;
                }
            }
        }
        if let Some((op, cond)) = alu_match {
            return Ok(ParsedInst::Plain(Inst::S(ScalarInst::Alu {
                cond,
                op,
                rd: int_reg(0)?,
                rn: int_reg(1)?,
                op2: operand2(2)?,
            })));
        }

        Err(perr(lineno, format!("unknown mnemonic `{mnemonic}`")))
    }

    fn parse_vector(
        &mut self,
        lineno: usize,
        mnemonic: &str,
        ops: &[String],
    ) -> Result<ParsedInst, IsaError> {
        let parts: Vec<&str> = mnemonic.split('.').collect();
        let stem = parts[0];
        let elem_part = parts
            .last()
            .ok_or_else(|| perr(lineno, "vector mnemonic needs .elem suffix"))?;
        let elem = parse_elem(elem_part)
            .ok_or_else(|| perr(lineno, format!("bad element type `{elem_part}`")))?;
        let op_str = |i: usize| -> Result<&str, IsaError> {
            ops.get(i)
                .map(String::as_str)
                .ok_or_else(|| perr(lineno, format!("missing operand {i}")))
        };
        let v_reg = |i: usize| -> Result<VReg, IsaError> {
            let t = op_str(i)?;
            parse_vreg(t).ok_or_else(|| perr(lineno, format!("bad vector register `{t}`")))
        };

        // Permutations: vbfly.b8.f32 / vrev.b4.i16 / vrot.b8.k3.i32
        let perm = match stem {
            "vbfly" | "vrev" | "vrot" => {
                let block_part = parts
                    .get(1)
                    .and_then(|p| p.strip_prefix('b'))
                    .ok_or_else(|| perr(lineno, "permutation needs .bN block suffix"))?;
                let block: u8 = block_part
                    .parse()
                    .map_err(|_| perr(lineno, "bad block size"))?;
                Some(match stem {
                    "vbfly" => PermKind::Bfly { block },
                    "vrev" => PermKind::Rev { block },
                    _ => {
                        let amt_part = parts
                            .get(2)
                            .and_then(|p| p.strip_prefix('k'))
                            .ok_or_else(|| perr(lineno, "vrot needs .kN amount suffix"))?;
                        let amt: u8 = amt_part.parse().map_err(|_| perr(lineno, "bad amount"))?;
                        PermKind::Rot { block, amt }
                    }
                })
            }
            _ => None,
        };
        if let Some(kind) = perm {
            return Ok(ParsedInst::Plain(Inst::V(VectorInst::VPerm {
                kind,
                elem,
                vd: v_reg(0)?,
                vn: v_reg(1)?,
            })));
        }

        match stem {
            "vld" | "vlds" => {
                let vd = v_reg(0)?;
                let (base, index) = self.parse_mem(lineno, op_str(1)?)?;
                Ok(ParsedInst::Plain(Inst::V(VectorInst::VLd {
                    elem,
                    signed: stem == "vlds",
                    vd,
                    base,
                    index,
                })))
            }
            "vst" => {
                let (base, index) = self.parse_mem(lineno, op_str(0)?)?;
                let vs = v_reg(1)?;
                Ok(ParsedInst::Plain(Inst::V(VectorInst::VSt {
                    elem,
                    vs,
                    base,
                    index,
                })))
            }
            "vsplat" => {
                let vd = v_reg(0)?;
                let imm = op_str(1)?
                    .strip_prefix('#')
                    .ok_or_else(|| perr(lineno, "vsplat needs #imm"))?;
                Ok(ParsedInst::Plain(Inst::V(VectorInst::VSplat {
                    elem,
                    vd,
                    imm: parse_int(lineno, imm)?,
                })))
            }
            "vredmin" | "vredmax" | "vredsum" => {
                let op = match stem {
                    "vredmin" => RedOp::Min,
                    "vredmax" => RedOp::Max,
                    _ => RedOp::Sum,
                };
                let dst = op_str(0)?;
                if let Some(fd) = parse_freg(dst) {
                    Ok(ParsedInst::Plain(Inst::V(VectorInst::VRedF {
                        op,
                        fd,
                        vn: v_reg(1)?,
                    })))
                } else if let Some(rd) = parse_reg(dst) {
                    Ok(ParsedInst::Plain(Inst::V(VectorInst::VRedI {
                        op,
                        elem,
                        rd,
                        vn: v_reg(1)?,
                    })))
                } else {
                    Err(perr(lineno, format!("bad reduction destination `{dst}`")))
                }
            }
            _ => {
                let op = VAluOp::ALL
                    .into_iter()
                    .find(|op| op.mnemonic() == stem)
                    .ok_or_else(|| perr(lineno, format!("unknown vector mnemonic `{stem}`")))?;
                let vd = v_reg(0)?;
                let vn = v_reg(1)?;
                let third = op_str(2)?;
                let inst = if let Some(imm) = third.strip_prefix('#') {
                    VectorInst::VAluImm {
                        op,
                        elem,
                        vd,
                        vn,
                        imm: parse_int(lineno, imm)?,
                    }
                } else if let Some(sym) = third.strip_prefix('=') {
                    let cnst = self
                        .builder
                        .symbol_named(sym)
                        .ok_or_else(|| perr(lineno, format!("unknown symbol `{sym}`")))?;
                    VectorInst::VAluConst {
                        op,
                        elem,
                        vd,
                        vn,
                        cnst,
                    }
                } else if let Some(vm) = parse_vreg(third) {
                    VectorInst::VAlu {
                        op,
                        elem,
                        vd,
                        vn,
                        vm,
                    }
                } else if let Some(fs) = parse_freg(third) {
                    VectorInst::VAluScalar {
                        op,
                        elem,
                        vd,
                        vn,
                        src: crate::vector::ScalarSrc::F(fs),
                    }
                } else if let Some(rs) = parse_reg(third) {
                    VectorInst::VAluScalar {
                        op,
                        elem,
                        vd,
                        vn,
                        src: crate::vector::ScalarSrc::R(rs),
                    }
                } else {
                    return Err(perr(lineno, format!("bad vector operand `{third}`")));
                };
                Ok(ParsedInst::Plain(Inst::V(inst)))
            }
        }
    }
}

enum ParsedInst {
    Plain(Inst),
    Branch { cond: Cond, label: String },
    Call { label: String, vectorizable: bool },
}

/// Strips a trailing comment. `;` always starts a comment; `#` starts one
/// only when followed by whitespace or end-of-line, so immediates (`#0`,
/// `#-4`, `#0xFF`) survive while paper-style `# load the vectors` comments
/// are removed.
fn strip_comment(line: &str) -> &str {
    if let Some(pos) = line.find(';') {
        return &line[..pos];
    }
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' {
            let next = bytes.get(i + 1);
            if next.is_none() || next.is_some_and(u8::is_ascii_whitespace) {
                return &line[..i];
            }
        }
    }
    line
}

/// Splits an operand string on commas, respecting `[...]` brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_int(lineno: usize, s: &str) -> Result<i32, IsaError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or(body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| perr(lineno, format!("bad integer `{s}`")))?;
    let value = if neg { -value } else { value };
    i32::try_from(value).map_err(|_| perr(lineno, format!("integer `{s}` out of range")))
}

fn parse_list<T: std::str::FromStr>(lineno: usize, s: &str) -> Result<Vec<T>, IsaError> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<T>()
                .map_err(|_| perr(lineno, format!("bad value `{t}`")))
        })
        .collect()
}

fn parse_indexed(token: &str, prefix: char, max: u8) -> Option<u8> {
    let rest = token.strip_prefix(prefix)?;
    let idx: u8 = rest.parse().ok()?;
    (idx < max).then_some(idx)
}

fn parse_reg(t: &str) -> Option<Reg> {
    parse_indexed(t, 'r', 16).map(Reg::of)
}

fn parse_freg(t: &str) -> Option<FReg> {
    parse_indexed(t, 'f', 16).map(FReg::of)
}

fn parse_vreg(t: &str) -> Option<VReg> {
    parse_indexed(t, 'v', 16).map(VReg::of)
}

fn parse_cond(suffix: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.suffix() == suffix)
}

fn parse_elem(s: &str) -> Option<ElemType> {
    ElemType::ALL.into_iter().find(|e| e.suffix() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
.data
.i32 bfly: 4, 4, 4, 4, -4, -4, -4, -4
.f32 RealOut: 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5
.zero tmp0: 8 x 4

.text
main:
    mov r0, #0
loop:
    ldw r1, [bfly + r0]      # load offset for butterfly
    add r1, r0, r1
    ldf f0, [RealOut + r1]
    stf [tmp0 + r0], f0
    add r0, r0, #1
    cmp r0, #8
    blt loop
    halt
";

    #[test]
    fn assembles_the_paper_shape() {
        let p = assemble(SAMPLE).expect("assembles");
        assert_eq!(p.code.len(), 9);
        assert_eq!(p.symbols.len(), 3);
        assert_eq!(p.symbol_by_name("bfly").unwrap().1.size, 32);
        match p.code[1] {
            Inst::S(ScalarInst::LdInt { width, base, .. }) => {
                assert_eq!(width, MemWidth::W);
                assert!(matches!(base, Base::Sym(_)));
            }
            ref other => panic!("unexpected {other:?}"),
        }
        match p.code[7] {
            Inst::S(ScalarInst::B { cond, target }) => {
                assert_eq!(cond, Cond::Lt);
                assert_eq!(target, 1);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disassemble_assemble_roundtrip() {
        let p = assemble(SAMPLE).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).expect("reassembles");
        assert_eq!(p.code, p2.code);
        assert_eq!(p.symbols.len(), p2.symbols.len());
        for (a, b) in p.symbols.iter().zip(&p2.symbols) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.size, b.size);
        }
        // Float data encodes bit-exactly through the .i32 fallback.
        assert_eq!(p.data, p2.data);
    }

    #[test]
    fn vector_syntax() {
        let src = r"
.data
.i32 A: 1, 2, 3, 4
.i32 mask: 255, 255, 255, 255

.text
main:
    mov r0, #0
    vld.i32 v0, [A + r0]
    vadd.i32 v1, v0, v0
    vand.i32 v1, v1, =mask
    vlsr.i32 v1, v1, #2
    vbfly.b4.i32 v1, v1
    vrot.b4.k1.i32 v1, v1
    vredsum.i32 r1, v1
    vredmax.f32 f1, v1
    vsplat.i32 v2, #42
    vst.i32 [A + r0], v1
    halt
";
        let p = assemble(src).expect("assembles");
        assert_eq!(p.code.len(), 12);
        assert!(matches!(
            p.code[5],
            Inst::V(VectorInst::VPerm {
                kind: PermKind::Bfly { block: 4 },
                ..
            })
        ));
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.code, p2.code);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble(".text\n    frobnicate r1, r2\n").unwrap_err();
        match err {
            IsaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_mnemonics() {
        let src =
            ".text\nmain:\n    cmp r1, #255\n    movgt r1, #255\n    addlt r2, r2, #1\n    halt\n";
        let p = assemble(src).unwrap();
        assert!(matches!(
            p.code[1],
            Inst::S(ScalarInst::MovImm {
                cond: Cond::Gt,
                imm: 255,
                ..
            })
        ));
        assert!(matches!(
            p.code[2],
            Inst::S(ScalarInst::Alu {
                cond: Cond::Lt,
                op: AluOp::Add,
                ..
            })
        ));
    }
}
