//! Fixed 32-bit binary encoding for SRISC and VSIMD instructions.
//!
//! Every instruction encodes to exactly one 32-bit word (the paper sizes the
//! microcode buffer at "32 bits per instruction", §4.1, and measures code
//! size in these units). The format is:
//!
//! ```text
//!  31    28 27    23 22                               0
//! ┌────────┬────────┬──────────────────────────────────┐
//! │  cond  │ class  │        class-specific fields     │
//! └────────┴────────┴──────────────────────────────────┘
//! ```
//!
//! Branch targets are encoded PC-relative (in instructions); memory bases
//! that reference data symbols use an 11-bit symbol index, playing the role
//! of an ARM literal pool. Immediates are bounded by their field widths —
//! [`encode`] reports overflow as [`IsaError::ImmOutOfRange`], and the
//! compiler materialises anything larger through `mov` or constant-pool
//! loads (which is what lets the translator spot "non-scalar-supported
//! constants", paper Table 1 category 3).

use crate::cond::Cond;
use crate::error::IsaError;
use crate::inst::Inst;
use crate::op::{AluOp, Base, ElemType, FpOp, MemWidth, Operand2, RedOp, VAluOp};
use crate::perm::PermKind;
use crate::program::SymId;
use crate::reg::{FReg, Reg, VReg};
use crate::scalar::ScalarInst;
use crate::vector::{ScalarSrc, VectorInst};

/// Instruction class encodings (bits 27:23).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum Class {
    MovImm = 0,
    Mov = 1,
    AluReg = 2,
    AluImm = 3,
    Cmp = 4,
    FAlu = 5,
    FMov = 6,
    LdInt = 7,
    StInt = 8,
    LdF = 9,
    StF = 10,
    B = 11,
    Bl = 12,
    Ret = 13,
    Halt = 14,
    Nop = 15,
    VLd = 16,
    VSt = 17,
    VAlu = 18,
    VAluImm = 19,
    VAluConst = 20,
    VRedI = 21,
    VRedF = 22,
    VPerm = 23,
    VSplat = 24,
    VAluS = 25,
}

const CLASSES: [Class; 26] = [
    Class::MovImm,
    Class::Mov,
    Class::AluReg,
    Class::AluImm,
    Class::Cmp,
    Class::FAlu,
    Class::FMov,
    Class::LdInt,
    Class::StInt,
    Class::LdF,
    Class::StF,
    Class::B,
    Class::Bl,
    Class::Ret,
    Class::Halt,
    Class::Nop,
    Class::VLd,
    Class::VSt,
    Class::VAlu,
    Class::VAluImm,
    Class::VAluConst,
    Class::VRedI,
    Class::VRedF,
    Class::VPerm,
    Class::VSplat,
    Class::VAluS,
];

fn signed_field(what: &'static str, value: i64, bits: u32) -> Result<u32, IsaError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(IsaError::ImmOutOfRange {
            what,
            value,
            min,
            max,
        });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

fn unsigned_field(what: &'static str, value: u32, bits: u32) -> Result<u32, IsaError> {
    let max = (1u64 << bits) - 1;
    if u64::from(value) > max {
        return Err(IsaError::ImmOutOfRange {
            what,
            value: i64::from(value),
            min: 0,
            max: max as i64,
        });
    }
    Ok(value)
}

fn sext(field: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((field << shift) as i32) >> shift
}

fn base_fields(base: Base) -> Result<(u32, u32), IsaError> {
    match base {
        Base::Reg(r) => Ok((0, u32::from(r.index()))),
        Base::Sym(s) => Ok((1, unsigned_field("symbol id", s.index() as u32, 11)?)),
    }
}

fn decode_base(flag: u32, field: u32) -> Result<Base, IsaError> {
    if flag == 0 {
        Ok(Base::Reg(Reg::new((field & 0xF) as u8).map_err(|_| {
            IsaError::Decode {
                what: "base register",
                value: field,
            }
        })?))
    } else {
        Ok(Base::Sym(SymId::new(field as u16)))
    }
}

/// The maximum signed immediate encodable by `mov rd, #imm` (19-bit field).
pub const MOV_IMM_MAX: i32 = (1 << 18) - 1;
/// The minimum signed immediate encodable by `mov rd, #imm`.
pub const MOV_IMM_MIN: i32 = -(1 << 18);
/// The maximum signed immediate of ALU-immediate forms (11-bit field).
pub const ALU_IMM_MAX: i32 = (1 << 10) - 1;
/// The minimum signed immediate of ALU-immediate forms.
pub const ALU_IMM_MIN: i32 = -(1 << 10);
/// The maximum signed immediate of `cmp` (18-bit field).
pub const CMP_IMM_MAX: i32 = (1 << 17) - 1;
/// The maximum signed immediate of vector ALU-immediate forms (9-bit field).
pub const VALU_IMM_MAX: i32 = (1 << 8) - 1;
/// The minimum signed immediate of vector ALU-immediate forms.
pub const VALU_IMM_MIN: i32 = -(1 << 8);

/// Encodes one instruction at code index `pc` to its 32-bit word.
///
/// # Errors
///
/// Returns [`IsaError::ImmOutOfRange`] if an immediate, branch offset, or
/// symbol index exceeds its field, and [`IsaError::InvalidCombination`] for
/// invalid op/element combinations.
pub fn encode(inst: &Inst, pc: u32) -> Result<u32, IsaError> {
    inst.validate()?;
    let word = |cond: Cond, class: Class, fields: u32| -> u32 {
        debug_assert_eq!(fields >> 23, 0, "fields overflow class payload");
        (cond.bits() << 28) | ((class as u32) << 23) | fields
    };
    let rel = |target: u32, bits: u32, what: &'static str| -> Result<u32, IsaError> {
        signed_field(what, i64::from(target) - i64::from(pc), bits)
    };
    match inst {
        Inst::S(s) => match *s {
            ScalarInst::MovImm { cond, rd, imm } => {
                let f = (u32::from(rd.index()) << 19) | signed_field("mov imm", imm.into(), 19)?;
                Ok(word(cond, Class::MovImm, f))
            }
            ScalarInst::Mov { cond, rd, rm } => {
                let f = (u32::from(rd.index()) << 19) | (u32::from(rm.index()) << 15);
                Ok(word(cond, Class::Mov, f))
            }
            ScalarInst::Alu {
                cond,
                op,
                rd,
                rn,
                op2,
            } => match op2 {
                Operand2::Reg(rm) => {
                    let f = (op.bits() << 19)
                        | (u32::from(rd.index()) << 15)
                        | (u32::from(rn.index()) << 11)
                        | (u32::from(rm.index()) << 7);
                    Ok(word(cond, Class::AluReg, f))
                }
                Operand2::Imm(imm) => {
                    let f = (op.bits() << 19)
                        | (u32::from(rd.index()) << 15)
                        | (u32::from(rn.index()) << 11)
                        | signed_field("alu imm", imm.into(), 11)?;
                    Ok(word(cond, Class::AluImm, f))
                }
            },
            ScalarInst::Cmp { rn, op2 } => {
                let f = match op2 {
                    Operand2::Imm(imm) => {
                        (u32::from(rn.index()) << 19)
                            | (1 << 18)
                            | signed_field("cmp imm", imm.into(), 18)?
                    }
                    Operand2::Reg(rm) => {
                        (u32::from(rn.index()) << 19) | (u32::from(rm.index()) << 14)
                    }
                };
                Ok(word(Cond::Al, Class::Cmp, f))
            }
            ScalarInst::FAlu { op, fd, fn_, fm } => {
                let f = (op.bits() << 20)
                    | (u32::from(fd.index()) << 16)
                    | (u32::from(fn_.index()) << 12)
                    | (u32::from(fm.index()) << 8);
                Ok(word(Cond::Al, Class::FAlu, f))
            }
            ScalarInst::FMov { cond, fd, fm } => {
                let f = (u32::from(fd.index()) << 19) | (u32::from(fm.index()) << 15);
                Ok(word(cond, Class::FMov, f))
            }
            ScalarInst::LdInt {
                width,
                signed,
                rd,
                base,
                index,
            } => {
                let (flag, b) = base_fields(base)?;
                let f = (width.bits() << 21)
                    | (u32::from(signed) << 20)
                    | (u32::from(rd.index()) << 16)
                    | (u32::from(index.index()) << 12)
                    | (flag << 11)
                    | b;
                Ok(word(Cond::Al, Class::LdInt, f))
            }
            ScalarInst::StInt {
                width,
                rs,
                base,
                index,
            } => {
                let (flag, b) = base_fields(base)?;
                let f = (width.bits() << 21)
                    | (u32::from(rs.index()) << 17)
                    | (u32::from(index.index()) << 13)
                    | (flag << 12)
                    | b;
                Ok(word(Cond::Al, Class::StInt, f))
            }
            ScalarInst::LdF { fd, base, index } => {
                let (flag, b) = base_fields(base)?;
                let f = (u32::from(fd.index()) << 19)
                    | (u32::from(index.index()) << 15)
                    | (flag << 14)
                    | b;
                Ok(word(Cond::Al, Class::LdF, f))
            }
            ScalarInst::StF { fs, base, index } => {
                let (flag, b) = base_fields(base)?;
                let f = (u32::from(fs.index()) << 19)
                    | (u32::from(index.index()) << 15)
                    | (flag << 14)
                    | b;
                Ok(word(Cond::Al, Class::StF, f))
            }
            ScalarInst::B { cond, target } => {
                Ok(word(cond, Class::B, rel(target, 23, "branch offset")?))
            }
            ScalarInst::Bl {
                target,
                vectorizable,
            } => {
                let f = (u32::from(vectorizable) << 22) | rel(target, 22, "call offset")?;
                Ok(word(Cond::Al, Class::Bl, f))
            }
            ScalarInst::Ret => Ok(word(Cond::Al, Class::Ret, 0)),
            ScalarInst::Halt => Ok(word(Cond::Al, Class::Halt, 0)),
            ScalarInst::Nop => Ok(word(Cond::Al, Class::Nop, 0)),
        },
        Inst::V(v) => match *v {
            VectorInst::VLd {
                elem,
                signed,
                vd,
                base,
                index,
            } => {
                let (flag, b) = base_fields(base)?;
                let f = (elem.bits() << 21)
                    | (u32::from(vd.index()) << 17)
                    | (u32::from(index.index()) << 13)
                    | (flag << 12)
                    | (u32::from(signed) << 11)
                    | b;
                Ok(word(Cond::Al, Class::VLd, f))
            }
            VectorInst::VSt {
                elem,
                vs,
                base,
                index,
            } => {
                let (flag, b) = base_fields(base)?;
                let f = (elem.bits() << 21)
                    | (u32::from(vs.index()) << 17)
                    | (u32::from(index.index()) << 13)
                    | (flag << 12)
                    | b;
                Ok(word(Cond::Al, Class::VSt, f))
            }
            VectorInst::VAlu {
                op,
                elem,
                vd,
                vn,
                vm,
            } => {
                let f = (op.bits() << 19)
                    | (elem.bits() << 17)
                    | (u32::from(vd.index()) << 13)
                    | (u32::from(vn.index()) << 9)
                    | (u32::from(vm.index()) << 5);
                Ok(word(Cond::Al, Class::VAlu, f))
            }
            VectorInst::VAluImm {
                op,
                elem,
                vd,
                vn,
                imm,
            } => {
                let f = (op.bits() << 19)
                    | (elem.bits() << 17)
                    | (u32::from(vd.index()) << 13)
                    | (u32::from(vn.index()) << 9)
                    | signed_field("vector imm", imm.into(), 9)?;
                Ok(word(Cond::Al, Class::VAluImm, f))
            }
            VectorInst::VAluConst {
                op,
                elem,
                vd,
                vn,
                cnst,
            } => {
                let f = (op.bits() << 19)
                    | (elem.bits() << 17)
                    | (u32::from(vd.index()) << 13)
                    | (u32::from(vn.index()) << 9)
                    | unsigned_field("constant symbol id", cnst.index() as u32, 9)?;
                Ok(word(Cond::Al, Class::VAluConst, f))
            }
            VectorInst::VRedI { op, elem, rd, vn } => {
                let f = (op.bits() << 21)
                    | (elem.bits() << 19)
                    | (u32::from(rd.index()) << 15)
                    | (u32::from(vn.index()) << 11);
                Ok(word(Cond::Al, Class::VRedI, f))
            }
            VectorInst::VRedF { op, fd, vn } => {
                let f = (op.bits() << 21)
                    | (u32::from(fd.index()) << 17)
                    | (u32::from(vn.index()) << 13);
                Ok(word(Cond::Al, Class::VRedF, f))
            }
            VectorInst::VPerm { kind, elem, vd, vn } => {
                let (tag, block, amt) = match kind {
                    PermKind::Bfly { block } => (0u32, block, 0u8),
                    PermKind::Rev { block } => (1, block, 0),
                    PermKind::Rot { block, amt } => (2, block, amt),
                };
                let log2 = block.trailing_zeros(); // validated power of two
                let f = (tag << 21)
                    | (log2 << 18)
                    | (u32::from(amt) << 13)
                    | (elem.bits() << 11)
                    | (u32::from(vd.index()) << 7)
                    | (u32::from(vn.index()) << 3);
                Ok(word(Cond::Al, Class::VPerm, f))
            }
            VectorInst::VSplat { elem, vd, imm } => {
                let f = (elem.bits() << 21)
                    | (u32::from(vd.index()) << 17)
                    | signed_field("splat imm", imm.into(), 17)?;
                Ok(word(Cond::Al, Class::VSplat, f))
            }
            VectorInst::VAluScalar {
                op,
                elem,
                vd,
                vn,
                src,
            } => {
                let (bank, reg) = match src {
                    ScalarSrc::R(r) => (0u32, u32::from(r.index())),
                    ScalarSrc::F(fr) => (1, u32::from(fr.index())),
                };
                let f = (op.bits() << 19)
                    | (elem.bits() << 17)
                    | (u32::from(vd.index()) << 13)
                    | (u32::from(vn.index()) << 9)
                    | (bank << 8)
                    | (reg << 4);
                Ok(word(Cond::Al, Class::VAluS, f))
            }
        },
    }
}

/// Decodes a 32-bit word at code index `pc` back to an instruction.
///
/// # Errors
///
/// Returns [`IsaError::Decode`] for malformed words.
pub fn decode(raw: u32, pc: u32) -> Result<Inst, IsaError> {
    let cond = Cond::from_bits(raw >> 28)?;
    let class_bits = (raw >> 23) & 0x1F;
    let class = *CLASSES.get(class_bits as usize).ok_or(IsaError::Decode {
        what: "instruction class",
        value: class_bits,
    })?;
    let reg = |shift: u32| Reg::of(((raw >> shift) & 0xF) as u8);
    let freg = |shift: u32| FReg::of(((raw >> shift) & 0xF) as u8);
    let vreg = |shift: u32| VReg::of(((raw >> shift) & 0xF) as u8);
    let abs = |bits: u32| -> Result<u32, IsaError> {
        let off = sext(raw & ((1 << bits) - 1), bits);
        let target = i64::from(pc) + i64::from(off);
        u32::try_from(target).map_err(|_| IsaError::Decode {
            what: "branch target",
            value: raw,
        })
    };
    let inst = match class {
        Class::MovImm => Inst::S(ScalarInst::MovImm {
            cond,
            rd: reg(19),
            imm: sext(raw & 0x7FFFF, 19),
        }),
        Class::Mov => Inst::S(ScalarInst::Mov {
            cond,
            rd: reg(19),
            rm: reg(15),
        }),
        Class::AluReg => Inst::S(ScalarInst::Alu {
            cond,
            op: AluOp::from_bits((raw >> 19) & 0xF)?,
            rd: reg(15),
            rn: reg(11),
            op2: Operand2::Reg(reg(7)),
        }),
        Class::AluImm => Inst::S(ScalarInst::Alu {
            cond,
            op: AluOp::from_bits((raw >> 19) & 0xF)?,
            rd: reg(15),
            rn: reg(11),
            op2: Operand2::Imm(sext(raw & 0x7FF, 11)),
        }),
        Class::Cmp => {
            let rn = reg(19);
            let op2 = if (raw >> 18) & 1 == 1 {
                Operand2::Imm(sext(raw & 0x3FFFF, 18))
            } else {
                Operand2::Reg(reg(14))
            };
            Inst::S(ScalarInst::Cmp { rn, op2 })
        }
        Class::FAlu => Inst::S(ScalarInst::FAlu {
            op: FpOp::from_bits((raw >> 20) & 0x7)?,
            fd: freg(16),
            fn_: freg(12),
            fm: freg(8),
        }),
        Class::FMov => Inst::S(ScalarInst::FMov {
            cond,
            fd: freg(19),
            fm: freg(15),
        }),
        Class::LdInt => Inst::S(ScalarInst::LdInt {
            width: MemWidth::from_bits((raw >> 21) & 0x3)?,
            signed: (raw >> 20) & 1 == 1,
            rd: reg(16),
            base: decode_base((raw >> 11) & 1, raw & 0x7FF)?,
            index: reg(12),
        }),
        Class::StInt => Inst::S(ScalarInst::StInt {
            width: MemWidth::from_bits((raw >> 21) & 0x3)?,
            rs: reg(17),
            base: decode_base((raw >> 12) & 1, raw & 0x7FF)?,
            index: reg(13),
        }),
        Class::LdF => Inst::S(ScalarInst::LdF {
            fd: freg(19),
            base: decode_base((raw >> 14) & 1, raw & 0x7FF)?,
            index: reg(15),
        }),
        Class::StF => Inst::S(ScalarInst::StF {
            fs: freg(19),
            base: decode_base((raw >> 14) & 1, raw & 0x7FF)?,
            index: reg(15),
        }),
        Class::B => Inst::S(ScalarInst::B {
            cond,
            target: abs(23)?,
        }),
        Class::Bl => Inst::S(ScalarInst::Bl {
            target: abs(22)?,
            vectorizable: (raw >> 22) & 1 == 1,
        }),
        Class::Ret => Inst::S(ScalarInst::Ret),
        Class::Halt => Inst::S(ScalarInst::Halt),
        Class::Nop => Inst::S(ScalarInst::Nop),
        Class::VLd => Inst::V(VectorInst::VLd {
            elem: ElemType::from_bits((raw >> 21) & 0x3)?,
            signed: (raw >> 11) & 1 == 1,
            vd: vreg(17),
            base: decode_base((raw >> 12) & 1, raw & 0x7FF)?,
            index: reg(13),
        }),
        Class::VSt => Inst::V(VectorInst::VSt {
            elem: ElemType::from_bits((raw >> 21) & 0x3)?,
            vs: vreg(17),
            base: decode_base((raw >> 12) & 1, raw & 0x7FF)?,
            index: reg(13),
        }),
        Class::VAlu => Inst::V(VectorInst::VAlu {
            op: VAluOp::from_bits((raw >> 19) & 0xF)?,
            elem: ElemType::from_bits((raw >> 17) & 0x3)?,
            vd: vreg(13),
            vn: vreg(9),
            vm: vreg(5),
        }),
        Class::VAluImm => Inst::V(VectorInst::VAluImm {
            op: VAluOp::from_bits((raw >> 19) & 0xF)?,
            elem: ElemType::from_bits((raw >> 17) & 0x3)?,
            vd: vreg(13),
            vn: vreg(9),
            imm: sext(raw & 0x1FF, 9),
        }),
        Class::VAluConst => Inst::V(VectorInst::VAluConst {
            op: VAluOp::from_bits((raw >> 19) & 0xF)?,
            elem: ElemType::from_bits((raw >> 17) & 0x3)?,
            vd: vreg(13),
            vn: vreg(9),
            cnst: SymId::new((raw & 0x1FF) as u16),
        }),
        Class::VRedI => Inst::V(VectorInst::VRedI {
            op: RedOp::from_bits((raw >> 21) & 0x3)?,
            elem: ElemType::from_bits((raw >> 19) & 0x3)?,
            rd: reg(15),
            vn: vreg(11),
        }),
        Class::VRedF => Inst::V(VectorInst::VRedF {
            op: RedOp::from_bits((raw >> 21) & 0x3)?,
            fd: freg(17),
            vn: vreg(13),
        }),
        Class::VPerm => {
            let tag = (raw >> 21) & 0x3;
            let block = 1u8 << ((raw >> 18) & 0x7);
            let amt = ((raw >> 13) & 0x1F) as u8;
            let kind = match tag {
                0 => PermKind::Bfly { block },
                1 => PermKind::Rev { block },
                2 => PermKind::Rot { block, amt },
                other => {
                    return Err(IsaError::Decode {
                        what: "permutation kind",
                        value: other,
                    })
                }
            };
            Inst::V(VectorInst::VPerm {
                kind,
                elem: ElemType::from_bits((raw >> 11) & 0x3)?,
                vd: vreg(7),
                vn: vreg(3),
            })
        }
        Class::VSplat => Inst::V(VectorInst::VSplat {
            elem: ElemType::from_bits((raw >> 21) & 0x3)?,
            vd: vreg(17),
            imm: sext(raw & 0x1FFFF, 17),
        }),
        Class::VAluS => {
            let src = if (raw >> 8) & 1 == 0 {
                ScalarSrc::R(reg(4))
            } else {
                ScalarSrc::F(freg(4))
            };
            Inst::V(VectorInst::VAluScalar {
                op: VAluOp::from_bits((raw >> 19) & 0xF)?,
                elem: ElemType::from_bits((raw >> 17) & 0x3)?,
                vd: vreg(13),
                vn: vreg(9),
                src,
            })
        }
    };
    inst.validate()?;
    Ok(inst)
}

/// Encodes a whole code section.
///
/// # Errors
///
/// Returns the first encoding failure with its code index folded into the
/// error message.
pub fn encode_code(code: &[Inst]) -> Result<Vec<u32>, IsaError> {
    code.iter()
        .enumerate()
        .map(|(pc, inst)| encode(inst, pc as u32))
        .collect()
}

/// Decodes a whole code section.
///
/// # Errors
///
/// Returns the first decoding failure.
pub fn decode_code(words: &[u32]) -> Result<Vec<Inst>, IsaError> {
    words
        .iter()
        .enumerate()
        .map(|(pc, &w)| decode(w, pc as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst, pc: u32) {
        let w = encode(&inst, pc).unwrap_or_else(|e| panic!("encode {inst}: {e}"));
        let back = decode(w, pc).unwrap_or_else(|e| panic!("decode {inst}: {e}"));
        assert_eq!(back, inst, "word {w:#010x}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(
            Inst::S(ScalarInst::MovImm {
                cond: Cond::Gt,
                rd: Reg::R1,
                imm: -1234,
            }),
            0,
        );
        roundtrip(
            Inst::S(ScalarInst::Alu {
                cond: Cond::Al,
                op: AluOp::Min,
                rd: Reg::R3,
                rn: Reg::R3,
                op2: Operand2::Imm(-7),
            }),
            5,
        );
        roundtrip(
            Inst::S(ScalarInst::Cmp {
                rn: Reg::R0,
                op2: Operand2::Imm(65535),
            }),
            5,
        );
        roundtrip(
            Inst::S(ScalarInst::LdInt {
                width: MemWidth::H,
                signed: true,
                rd: Reg::R9,
                base: Base::Sym(SymId::new(2000)),
                index: Reg::R0,
            }),
            1,
        );
        roundtrip(
            Inst::S(ScalarInst::StF {
                fs: FReg::F7,
                base: Base::Reg(Reg::R12),
                index: Reg::R1,
            }),
            1,
        );
        roundtrip(
            Inst::S(ScalarInst::B {
                cond: Cond::Lt,
                target: 2,
            }),
            40,
        );
        roundtrip(
            Inst::S(ScalarInst::Bl {
                target: 100,
                vectorizable: true,
            }),
            3,
        );
        for s in [ScalarInst::Ret, ScalarInst::Halt, ScalarInst::Nop] {
            roundtrip(Inst::S(s), 9);
        }
    }

    #[test]
    fn vector_roundtrips() {
        roundtrip(
            Inst::V(VectorInst::VLd {
                elem: ElemType::F32,
                signed: false,
                vd: VReg::V3,
                base: Base::Sym(SymId::new(17)),
                index: Reg::R0,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VLd {
                elem: ElemType::I16,
                signed: true,
                vd: VReg::V4,
                base: Base::Reg(Reg::R3),
                index: Reg::R0,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VAlu {
                op: VAluOp::SatAdd,
                elem: ElemType::I8,
                vd: VReg::V1,
                vn: VReg::V2,
                vm: VReg::V3,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VAluImm {
                op: VAluOp::And,
                elem: ElemType::I16,
                vd: VReg::V1,
                vn: VReg::V1,
                imm: 255,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VPerm {
                kind: PermKind::Rot { block: 8, amt: 3 },
                elem: ElemType::I32,
                vd: VReg::V5,
                vn: VReg::V6,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VRedF {
                op: RedOp::Sum,
                fd: FReg::F2,
                vn: VReg::V0,
            }),
            0,
        );
        roundtrip(
            Inst::V(VectorInst::VSplat {
                elem: ElemType::I32,
                vd: VReg::V0,
                imm: -40000,
            }),
            0,
        );
    }

    #[test]
    fn out_of_range_immediates_error() {
        let too_big = Inst::S(ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Add,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Imm(5000),
        });
        assert!(matches!(
            encode(&too_big, 0),
            Err(IsaError::ImmOutOfRange { .. })
        ));

        let far = Inst::S(ScalarInst::B {
            cond: Cond::Al,
            target: 10_000_000,
        });
        assert!(matches!(
            encode(&far, 0),
            Err(IsaError::ImmOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_combination_rejected_at_encode() {
        let bad = Inst::V(VectorInst::VAlu {
            op: VAluOp::And,
            elem: ElemType::F32,
            vd: VReg::V0,
            vn: VReg::V0,
            vm: VReg::V0,
        });
        assert!(matches!(
            encode(&bad, 0),
            Err(IsaError::InvalidCombination { .. })
        ));
    }

    #[test]
    fn garbage_class_rejected_at_decode() {
        let raw = 31u32 << 23; // class 31 unused
        assert!(decode(raw, 0).is_err());
    }
}
