//! A simple object-file container for programs: magic, version, encoded
//! code words, data image, and symbol table. This is what `liquid-simd
//! asm` writes and `liquid-simd run`/`disasm` read — one `.lsim` file is
//! the "binary" whose forward compatibility the paper is about.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! 0    4  magic  "LSIM"
//! 4    4  format version (1)
//! 8    4  entry point (code index)
//! 12   4  data base address
//! 16   4  code word count N
//! 20   4  data byte count D
//! 24   4  symbol count S
//! 28   4  label count L
//! 32   4N encoded instructions
//! ..   D  data image
//! ..      S * { addr:u32, size:u32, elem_bytes:u32, name_len:u32, name }
//! ..      L * { index:u32, name_len:u32, name }
//! ```

use crate::encode::{decode_code, encode_code};
use crate::error::IsaError;
use crate::program::{Program, Symbol};

/// File magic.
pub const MAGIC: &[u8; 4] = b"LSIM";
/// Current format version.
pub const VERSION: u32 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, IsaError> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or(IsaError::Decode {
            what: "object file (truncated)",
            value: self.pos as u32,
        })?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], IsaError> {
        let end = self.pos + n;
        let slice = self.bytes.get(self.pos..end).ok_or(IsaError::Decode {
            what: "object file (truncated)",
            value: self.pos as u32,
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn string(&mut self) -> Result<String, IsaError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| IsaError::Decode {
            what: "object file (symbol name)",
            value: self.pos as u32,
        })
    }
}

/// Serialises a program to the object format.
///
/// # Errors
///
/// Returns an encoding error if any instruction does not fit the binary
/// format (programs built by this crate's tools always fit).
pub fn write(program: &Program) -> Result<Vec<u8>, IsaError> {
    let words = encode_code(&program.code)?;
    let mut out = Vec::with_capacity(64 + words.len() * 4 + program.data.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, program.entry);
    put_u32(&mut out, program.data_base);
    put_u32(&mut out, words.len() as u32);
    put_u32(&mut out, program.data.len() as u32);
    put_u32(&mut out, program.symbols.len() as u32);
    put_u32(&mut out, program.labels.len() as u32);
    for w in words {
        put_u32(&mut out, w);
    }
    out.extend_from_slice(&program.data);
    for sym in &program.symbols {
        put_u32(&mut out, sym.addr);
        put_u32(&mut out, sym.size);
        put_u32(&mut out, sym.elem_bytes);
        put_str(&mut out, &sym.name);
    }
    for (index, name) in &program.labels {
        put_u32(&mut out, *index);
        put_str(&mut out, name);
    }
    Ok(out)
}

/// Loads a program from the object format.
///
/// # Errors
///
/// Returns [`IsaError::Decode`] for malformed files and propagates
/// validation errors for structurally invalid programs.
pub fn read(bytes: &[u8]) -> Result<Program, IsaError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(IsaError::Decode {
            what: "object file magic",
            value: 0,
        });
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(IsaError::Decode {
            what: "object file version",
            value: version,
        });
    }
    let entry = r.u32()?;
    let data_base = r.u32()?;
    let n_code = r.u32()? as usize;
    let n_data = r.u32()? as usize;
    let n_syms = r.u32()? as usize;
    let n_labels = r.u32()? as usize;
    let mut words = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        words.push(r.u32()?);
    }
    let code = decode_code(&words)?;
    let data = r.bytes(n_data)?.to_vec();
    let mut symbols = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let addr = r.u32()?;
        let size = r.u32()?;
        let elem_bytes = r.u32()?;
        let name = r.string()?;
        symbols.push(Symbol {
            name,
            addr,
            size,
            elem_bytes,
        });
    }
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let index = r.u32()?;
        let name = r.string()?;
        labels.push((index, name));
    }
    let program = Program {
        code,
        data,
        symbols,
        entry,
        data_base,
        labels,
    };
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    const SAMPLE: &str = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8
.f32 B: 1.5, -2.5

.text
main:
    mov r0, #0
loop:
    ldw r1, [A + r0]
    add r1, r1, #3
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #8
    blt loop
    halt
";

    #[test]
    fn object_roundtrip() {
        let p = asm::assemble(SAMPLE).unwrap();
        let bytes = write(&p).unwrap();
        let q = read(&bytes).unwrap();
        assert_eq!(p.code, q.code);
        assert_eq!(p.data, q.data);
        assert_eq!(p.symbols, q.symbols);
        assert_eq!(p.labels, q.labels);
        assert_eq!(p.entry, q.entry);
        assert_eq!(p.data_base, q.data_base);
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let p = asm::assemble(SAMPLE).unwrap();
        let mut bytes = write(&p).unwrap();
        assert!(read(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let p = asm::assemble(SAMPLE).unwrap();
        let mut bytes = write(&p).unwrap();
        bytes[4] = 99;
        assert!(read(&bytes).is_err());
    }
}
