//! Instruction-set definitions for the Liquid SIMD reproduction.
//!
//! This crate defines the two instruction sets the paper's system is built
//! around, plus the binary-format and text-format tooling:
//!
//! * **SRISC** — an ARM-like baseline *scalar* ISA: sixteen 32-bit integer
//!   registers, sixteen 32-bit floating-point registers, condition flags,
//!   fully-predicated data-processing instructions, base+index memory
//!   addressing, and `bl`/`ret` procedure linkage (see [`ScalarInst`]).
//! * **VSIMD** — a Neon-like *vector* ISA executed by the SIMD accelerator:
//!   element-wise arithmetic/logic, saturating arithmetic, reductions,
//!   permutations and vector memory operations, all parameterised by element
//!   type and executed at the accelerator's lane width (see [`VectorInst`]).
//!
//! On top of the instruction types, the crate provides:
//!
//! * [`Program`] / [`ProgramBuilder`] — a binary container (code, data
//!   segment, symbols) and a label-aware builder for constructing programs.
//! * [`encode`] — a fixed 32-bit binary encoding with exact round-tripping,
//!   used for the paper's code-size measurements and the microcode-buffer
//!   sizing (32 bits per microcode slot, §4.1 of the paper).
//! * [`asm`] — a textual assembler and disassembler whose syntax mirrors the
//!   listings in the paper (e.g. `ld f0, [RealOut + r1]`,
//!   `vadd.f32 v2, v2, v0`).
//!
//! # Example
//!
//! ```
//! use liquid_simd_isa::{ProgramBuilder, Reg, AluOp, Operand2, Cond};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.new_label();
//! b.mov_imm(Reg::R0, 0);
//! b.bind(loop_top);
//! b.alu(AluOp::Add, Reg::R1, Reg::R1, Operand2::Reg(Reg::R0));
//! b.alu(AluOp::Add, Reg::R0, Reg::R0, Operand2::Imm(1));
//! b.cmp(Reg::R0, Operand2::Imm(16));
//! b.b(Cond::Lt, loop_top);
//! b.halt();
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.code.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod cond;
pub mod encode;
mod error;
mod inst;
pub mod object;
mod op;
mod perm;
mod program;
mod reg;
mod scalar;
mod vector;

pub use builder::{Label, ProgramBuilder};
pub use cond::{Cond, Flags};
pub use error::IsaError;
pub use inst::Inst;
pub use op::{AluOp, Base, ElemType, FpOp, MemWidth, Operand2, RedOp, VAluOp};
pub use perm::PermKind;
pub use program::{Program, SymId, Symbol};
pub use reg::{FReg, Reg, VReg};
pub use scalar::ScalarInst;
pub use vector::{ScalarSrc, VectorInst};

/// The maximum vectorizable width a Liquid SIMD binary is compiled for
/// (paper §3.1: data is aligned to an assumed maximum width; accelerators of
/// any power-of-two width `<= MAX_VECTOR_WIDTH` can be targeted dynamically).
pub const MAX_VECTOR_WIDTH: usize = 16;

/// Supported SIMD accelerator widths, in lanes (paper Figure 6 sweeps these).
pub const SUPPORTED_WIDTHS: [usize; 4] = [2, 4, 8, 16];
