//! Register newtypes for the scalar and vector register files.

use std::fmt;

use crate::error::IsaError;

macro_rules! reg_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $count:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u8);

        impl $name {
            /// Number of architectural registers in this file.
            pub const COUNT: usize = $count;

            /// Creates a register from its index.
            ///
            /// # Errors
            ///
            /// Returns [`IsaError::InvalidRegister`] if `index >= COUNT`.
            pub fn new(index: u8) -> Result<Self, IsaError> {
                if (index as usize) < Self::COUNT {
                    Ok(Self(index))
                } else {
                    Err(IsaError::InvalidRegister {
                        file: $prefix,
                        index,
                    })
                }
            }

            /// Creates a register from its index, panicking on overflow.
            ///
            /// # Panics
            ///
            /// Panics if `index >= COUNT`. Intended for compiler-internal
            /// register allocation where indices are known valid.
            #[must_use]
            pub fn of(index: u8) -> Self {
                Self::new(index).expect("register index in range")
            }

            /// The register's index within its file.
            #[must_use]
            pub fn index(self) -> u8 {
                self.0
            }

            /// Iterates over every register in the file, in index order.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..Self::COUNT as u8).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_type!(
    /// An integer (general-purpose) register, `r0`–`r15`.
    ///
    /// `r13`/`r14` follow the ARM convention (`sp`/`lr`) but carry no special
    /// semantics in this ISA besides `bl` writing the return address to `lr`.
    Reg,
    "r",
    16
);

reg_type!(
    /// A scalar floating-point register, `f0`–`f15` (32-bit IEEE-754).
    FReg,
    "f",
    16
);

reg_type!(
    /// A vector register, `v0`–`v15`.
    ///
    /// A vector register holds one 32-bit lane per accelerator lane; the
    /// element type (`i8`/`i16`/`i32`/`f32`) is carried by each instruction,
    /// not by the register (paper §3.2: element width is derived from the
    /// type of load used to read the vector).
    VReg,
    "v",
    16
);

impl Reg {
    /// `r0` — conventionally the loop induction variable in scalarized code.
    pub const R0: Reg = Reg(0);
    /// `r1`.
    pub const R1: Reg = Reg(1);
    /// `r2`.
    pub const R2: Reg = Reg(2);
    /// `r3`.
    pub const R3: Reg = Reg(3);
    /// `r4`.
    pub const R4: Reg = Reg(4);
    /// `r5`.
    pub const R5: Reg = Reg(5);
    /// `r6`.
    pub const R6: Reg = Reg(6);
    /// `r7`.
    pub const R7: Reg = Reg(7);
    /// `r8`.
    pub const R8: Reg = Reg(8);
    /// `r9`.
    pub const R9: Reg = Reg(9);
    /// `r10`.
    pub const R10: Reg = Reg(10);
    /// `r11`.
    pub const R11: Reg = Reg(11);
    /// `r12`.
    pub const R12: Reg = Reg(12);
    /// `r13` — stack pointer by convention.
    pub const SP: Reg = Reg(13);
    /// `r14` — link register; `bl` writes the return address here.
    pub const LR: Reg = Reg(14);
    /// `r15` — reserved (program counter alias); never a valid operand in
    /// well-formed programs, but representable for decoder completeness.
    pub const PC: Reg = Reg(15);
}

impl FReg {
    /// `f0`.
    pub const F0: FReg = FReg(0);
    /// `f1`.
    pub const F1: FReg = FReg(1);
    /// `f2`.
    pub const F2: FReg = FReg(2);
    /// `f3`.
    pub const F3: FReg = FReg(3);
    /// `f4`.
    pub const F4: FReg = FReg(4);
    /// `f5`.
    pub const F5: FReg = FReg(5);
    /// `f6`.
    pub const F6: FReg = FReg(6);
    /// `f7`.
    pub const F7: FReg = FReg(7);
}

impl VReg {
    /// `v0`.
    pub const V0: VReg = VReg(0);
    /// `v1`.
    pub const V1: VReg = VReg(1);
    /// `v2`.
    pub const V2: VReg = VReg(2);
    /// `v3`.
    pub const V3: VReg = VReg(3);
    /// `v4`.
    pub const V4: VReg = VReg(4);
    /// `v5`.
    pub const V5: VReg = VReg(5);
    /// `v6`.
    pub const V6: VReg = VReg(6);
    /// `v7`.
    pub const V7: VReg = VReg(7);
    /// `v15` — conventionally the code generators' permutation scratch.
    pub const V15: VReg = VReg(15);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_bounds() {
        for i in 0..16u8 {
            assert_eq!(Reg::new(i).unwrap().index(), i);
        }
        assert!(Reg::new(16).is_err());
        assert!(FReg::new(16).is_err());
        assert!(VReg::new(16).is_err());
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(FReg::F3.to_string(), "f3");
        assert_eq!(VReg::V7.to_string(), "v7");
        assert_eq!(Reg::LR.to_string(), "r14");
    }

    #[test]
    fn all_iterates_in_order() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 16);
        assert_eq!(regs[0], Reg::R0);
        assert_eq!(regs[15], Reg::PC);
    }
}
