//! Error type shared across the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding, decoding, or assembling
/// instructions and programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsaError {
    /// A register index was out of range for its file.
    InvalidRegister {
        /// Register-file prefix (`"r"`, `"f"`, or `"v"`).
        file: &'static str,
        /// The offending index.
        index: u8,
    },
    /// An immediate does not fit in the instruction encoding's field.
    ImmOutOfRange {
        /// Which field overflowed.
        what: &'static str,
        /// The offending value.
        value: i64,
        /// Inclusive field bounds.
        min: i64,
        /// Inclusive field bounds.
        max: i64,
    },
    /// A field could not be decoded from a binary word.
    Decode {
        /// What was being decoded.
        what: &'static str,
        /// The raw field value.
        value: u32,
    },
    /// An instruction combines fields illegally (e.g. bitwise AND on `f32`
    /// elements, or a saturating op on floats).
    InvalidCombination {
        /// Explanation of the illegal combination.
        reason: String,
    },
    /// A branch target or label was never bound.
    UnboundLabel {
        /// The label's numeric id.
        label: u32,
    },
    /// A symbol name was defined twice in one program.
    DuplicateSymbol {
        /// The symbol name.
        name: String,
    },
    /// A referenced symbol does not exist.
    UnknownSymbol {
        /// The symbol name or id as text.
        name: String,
    },
    /// Assembler parse error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister { file, index } => {
                write!(f, "register {file}{index} is out of range")
            }
            IsaError::ImmOutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} {value} does not fit in [{min}, {max}]"),
            IsaError::Decode { what, value } => {
                write!(f, "cannot decode {what} from value {value:#x}")
            }
            IsaError::InvalidCombination { reason } => {
                write!(f, "invalid instruction: {reason}")
            }
            IsaError::UnboundLabel { label } => write!(f, "label L{label} was never bound"),
            IsaError::DuplicateSymbol { name } => write!(f, "symbol `{name}` defined twice"),
            IsaError::UnknownSymbol { name } => write!(f, "unknown symbol `{name}`"),
            IsaError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl Error for IsaError {}
