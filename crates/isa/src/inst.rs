//! The unified instruction type.

use std::fmt;

use crate::error::IsaError;
use crate::scalar::ScalarInst;
use crate::vector::VectorInst;

/// Any instruction: scalar (baseline pipeline) or vector (SIMD accelerator).
///
/// Liquid SIMD *binaries* contain only scalar instructions; vector
/// instructions appear in natively-SIMD programs and in translated microcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// A scalar instruction.
    S(ScalarInst),
    /// A vector instruction.
    V(VectorInst),
}

impl Inst {
    /// Validates instruction-internal constraints.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidCombination`] for undefined op/element
    /// combinations (scalar instructions are valid by construction).
    pub fn validate(&self) -> Result<(), IsaError> {
        match self {
            Inst::S(_) => Ok(()),
            Inst::V(v) => v.validate(),
        }
    }

    /// Returns the scalar instruction, if this is one.
    #[must_use]
    pub fn as_scalar(&self) -> Option<&ScalarInst> {
        match self {
            Inst::S(s) => Some(s),
            Inst::V(_) => None,
        }
    }

    /// Returns the vector instruction, if this is one.
    #[must_use]
    pub fn as_vector(&self) -> Option<&VectorInst> {
        match self {
            Inst::V(v) => Some(v),
            Inst::S(_) => None,
        }
    }

    /// Whether this is a vector instruction.
    #[must_use]
    pub fn is_vector(&self) -> bool {
        matches!(self, Inst::V(_))
    }
}

impl From<ScalarInst> for Inst {
    fn from(s: ScalarInst) -> Inst {
        Inst::S(s)
    }
}

impl From<VectorInst> for Inst {
    fn from(v: VectorInst) -> Inst {
        Inst::V(v)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::S(s) => s.fmt(f),
            Inst::V(v) => v.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg, ScalarInst};

    #[test]
    fn conversions() {
        let s = ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        };
        let i: Inst = s.into();
        assert_eq!(i.as_scalar(), Some(&s));
        assert!(i.as_vector().is_none());
        assert!(!i.is_vector());
        assert_eq!(i.to_string(), "mov r0, #0");
    }
}
