//! Operation kinds, operand forms, and element types shared by the scalar
//! and vector instruction sets.

use std::fmt;

use crate::error::IsaError;
use crate::program::SymId;
use crate::reg::Reg;

/// Integer ALU operations available to scalar data-processing instructions
/// and (through [`VAluOp`]) to the vector unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// `rd = rn + op2`
    Add = 0,
    /// `rd = rn - op2`
    Sub = 1,
    /// `rd = op2 - rn` (reverse subtract; used for negation idioms)
    Rsb = 2,
    /// `rd = rn * op2` (low 32 bits)
    Mul = 3,
    /// `rd = rn & op2`
    And = 4,
    /// `rd = rn | op2`
    Orr = 5,
    /// `rd = rn ^ op2`
    Eor = 6,
    /// `rd = rn & !op2`
    Bic = 7,
    /// `rd = rn << op2` (logical)
    Lsl = 8,
    /// `rd = rn >> op2` (logical)
    Lsr = 9,
    /// `rd = rn >> op2` (arithmetic)
    Asr = 10,
    /// `rd = min(rn, op2)` signed (paper Table 1 category 4 uses scalar `min`)
    Min = 11,
    /// `rd = max(rn, op2)` signed
    Max = 12,
}

impl AluOp {
    /// All operations in encoding order.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Rsb,
        AluOp::Mul,
        AluOp::And,
        AluOp::Orr,
        AluOp::Eor,
        AluOp::Bic,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
        AluOp::Min,
        AluOp::Max,
    ];

    /// The operation's 4-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes an operation from its 4-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<AluOp, IsaError> {
        AluOp::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "alu op",
                value: bits,
            })
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Rsb => "rsb",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Bic => "bic",
            AluOp::Lsl => "lsl",
            AluOp::Lsr => "lsr",
            AluOp::Asr => "asr",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }

    /// Evaluates the operation on 32-bit integer values (wrapping), the
    /// single source of truth shared by the simulator and the compiler's
    /// gold evaluator.
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Rsb => b.wrapping_sub(a),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Orr => a | b,
            AluOp::Eor => a ^ b,
            AluOp::Bic => a & !b,
            AluOp::Lsl => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Lsr => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Asr => a >> (b as u32 & 31),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    /// Whether `op(a, b) == op(b, a)` for all inputs.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            AluOp::Add
                | AluOp::Mul
                | AluOp::And
                | AluOp::Orr
                | AluOp::Eor
                | AluOp::Min
                | AluOp::Max
        )
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Scalar floating-point operations (`f32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpOp {
    /// `fd = fn + fm`
    Add = 0,
    /// `fd = fn - fm`
    Sub = 1,
    /// `fd = fn * fm`
    Mul = 2,
    /// `fd = fn / fm`
    Div = 3,
    /// `fd = min(fn, fm)`
    Min = 4,
    /// `fd = max(fn, fm)`
    Max = 5,
}

impl FpOp {
    /// All operations in encoding order.
    pub const ALL: [FpOp; 6] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Min,
        FpOp::Max,
    ];

    /// The operation's 3-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes an operation from its 3-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<FpOp, IsaError> {
        FpOp::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "fp op",
                value: bits,
            })
    }

    /// Evaluates the operation on `f32` values.
    #[must_use]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            FpOp::Add => a + b,
            FpOp::Sub => a - b,
            FpOp::Mul => a * b,
            FpOp::Div => a / b,
            FpOp::Min => a.min(b),
            FpOp::Max => a.max(b),
        }
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        }
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Width of a scalar integer memory access.
///
/// Memory operands are *element indexed*: the effective address is
/// `base + index * width_bytes`, so the same induction variable walks arrays
/// of any element width. This is how the translator derives the vector
/// element size from the load opcode (paper Table 1 category 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MemWidth {
    /// Byte (8-bit).
    B = 0,
    /// Half-word (16-bit).
    H = 1,
    /// Word (32-bit).
    W = 2,
}

impl MemWidth {
    /// All widths in encoding order.
    pub const ALL: [MemWidth; 3] = [MemWidth::B, MemWidth::H, MemWidth::W];

    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
        }
    }

    /// The width's 2-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes a width from its 2-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<MemWidth, IsaError> {
        MemWidth::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "memory width",
                value: bits,
            })
    }

    /// The assembler suffix (`b`, `h`, `w`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::B => "b",
            MemWidth::H => "h",
            MemWidth::W => "w",
        }
    }
}

/// Element type of a vector operation or vector memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ElemType {
    /// 8-bit integer elements.
    I8 = 0,
    /// 16-bit integer elements.
    I16 = 1,
    /// 32-bit integer elements.
    I32 = 2,
    /// 32-bit IEEE-754 elements.
    F32 = 3,
}

impl ElemType {
    /// All element types in encoding order.
    pub const ALL: [ElemType; 4] = [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::F32];

    /// Element size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            ElemType::I8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 | ElemType::F32 => 4,
        }
    }

    /// Whether the elements are floating point.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, ElemType::F32)
    }

    /// The 2-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes an element type from its 2-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<ElemType, IsaError> {
        ElemType::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "element type",
                value: bits,
            })
    }

    /// The assembler suffix (`i8`, `i16`, `i32`, `f32`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            ElemType::I8 => "i8",
            ElemType::I16 => "i16",
            ElemType::I32 => "i32",
            ElemType::F32 => "f32",
        }
    }

    /// The scalar memory width that loads one element of this type, or
    /// `None` for `f32` (which uses the dedicated `ldf`/`stf` opcodes).
    #[must_use]
    pub fn mem_width(self) -> Option<MemWidth> {
        match self {
            ElemType::I8 => Some(MemWidth::B),
            ElemType::I16 => Some(MemWidth::H),
            ElemType::I32 => Some(MemWidth::W),
            ElemType::F32 => None,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Reduction operations (paper Table 1 category 4: "multiple vector elements
/// used to compute one result").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RedOp {
    /// Running minimum.
    Min = 0,
    /// Running maximum.
    Max = 1,
    /// Running sum.
    Sum = 2,
}

impl RedOp {
    /// All reductions in encoding order.
    pub const ALL: [RedOp; 3] = [RedOp::Min, RedOp::Max, RedOp::Sum];

    /// The 2-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes a reduction from its 2-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<RedOp, IsaError> {
        RedOp::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "reduction op",
                value: bits,
            })
    }

    /// Folds one integer lane into an accumulator.
    #[must_use]
    pub fn eval_i(self, acc: i32, lane: i32) -> i32 {
        match self {
            RedOp::Min => acc.min(lane),
            RedOp::Max => acc.max(lane),
            RedOp::Sum => acc.wrapping_add(lane),
        }
    }

    /// Folds one `f32` lane into an accumulator.
    #[must_use]
    pub fn eval_f(self, acc: f32, lane: f32) -> f32 {
        match self {
            RedOp::Min => acc.min(lane),
            RedOp::Max => acc.max(lane),
            RedOp::Sum => acc + lane,
        }
    }

    /// The assembler mnemonic stem (`vredmin`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            RedOp::Min => "vredmin",
            RedOp::Max => "vredmax",
            RedOp::Sum => "vredsum",
        }
    }
}

/// Vector ALU operations. The element type on the instruction selects the
/// integer/float interpretation; [`VAluOp::valid_for`] rejects meaningless
/// combinations (e.g. bitwise ops on `f32`, saturating ops on `i32`/`f32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum VAluOp {
    /// Element-wise add (wrapping for integers).
    Add = 0,
    /// Element-wise subtract (wrapping for integers).
    Sub = 1,
    /// Element-wise multiply (low bits for integers).
    Mul = 2,
    /// Element-wise divide (`f32` only).
    Div = 3,
    /// Element-wise bitwise AND (integer only).
    And = 4,
    /// Element-wise bitwise OR (integer only).
    Orr = 5,
    /// Element-wise bitwise XOR (integer only).
    Eor = 6,
    /// Element-wise signed minimum (or `f32` minimum).
    Min = 7,
    /// Element-wise signed maximum (or `f32` maximum).
    Max = 8,
    /// Unsigned saturating add (`i8`/`i16`; clamps to `[0, 2^n - 1]`).
    SatAdd = 9,
    /// Unsigned saturating subtract (`i8`/`i16`; clamps at 0).
    SatSub = 10,
    /// Signed saturating add (`i8`/`i16`).
    SSatAdd = 11,
    /// Signed saturating subtract (`i8`/`i16`).
    SSatSub = 12,
    /// Element-wise logical shift left (integer only).
    Lsl = 13,
    /// Element-wise logical shift right (integer only).
    Lsr = 14,
    /// Element-wise arithmetic shift right (integer only).
    Asr = 15,
}

impl VAluOp {
    /// All operations in encoding order.
    pub const ALL: [VAluOp; 16] = [
        VAluOp::Add,
        VAluOp::Sub,
        VAluOp::Mul,
        VAluOp::Div,
        VAluOp::And,
        VAluOp::Orr,
        VAluOp::Eor,
        VAluOp::Min,
        VAluOp::Max,
        VAluOp::SatAdd,
        VAluOp::SatSub,
        VAluOp::SSatAdd,
        VAluOp::SSatSub,
        VAluOp::Lsl,
        VAluOp::Lsr,
        VAluOp::Asr,
    ];

    /// The 4-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes an operation from its 4-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<VAluOp, IsaError> {
        VAluOp::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "vector alu op",
                value: bits,
            })
    }

    /// Evaluates one 32-bit lane. Lanes carry full 32-bit values (loads
    /// extend, stores truncate); the element type matters only for the
    /// float interpretation and saturating clamp bounds. This exact-match
    /// property with the scalar ALU is what makes the Liquid scalar
    /// representation lossless.
    #[must_use]
    pub fn eval_lane(self, elem: ElemType, a: u32, b: u32) -> u32 {
        if elem == ElemType::F32 {
            let fa = f32::from_bits(a);
            let fb = f32::from_bits(b);
            let r = match self {
                VAluOp::Add => fa + fb,
                VAluOp::Sub => fa - fb,
                VAluOp::Mul => fa * fb,
                VAluOp::Div => fa / fb,
                VAluOp::Min => fa.min(fb),
                VAluOp::Max => fa.max(fb),
                // Undefined combinations are rejected by `valid_for`; fall
                // back to integer semantics for robustness.
                _ => return self.eval_lane(ElemType::I32, a, b),
            };
            return r.to_bits();
        }
        let ai = a as i32;
        let bi = b as i32;
        let sat_u_max: i64 = if elem == ElemType::I8 { 255 } else { 65535 };
        let sat_s: (i64, i64) = if elem == ElemType::I8 {
            (-128, 127)
        } else {
            (-32768, 32767)
        };
        match self {
            VAluOp::Add => ai.wrapping_add(bi) as u32,
            VAluOp::Sub => ai.wrapping_sub(bi) as u32,
            VAluOp::Mul => ai.wrapping_mul(bi) as u32,
            VAluOp::Div => {
                // f32-only op; integer fallback mirrors eval_lane's float
                // branch never reaching here through valid instructions.
                (f32::from_bits(a) / f32::from_bits(b)).to_bits()
            }
            VAluOp::And => a & b,
            VAluOp::Orr => a | b,
            VAluOp::Eor => a ^ b,
            VAluOp::Min => ai.min(bi) as u32,
            VAluOp::Max => ai.max(bi) as u32,
            // Saturating ops are defined as *32-bit wrapping arithmetic
            // followed by a clamp* — exactly what the scalar idiom
            // (`add; cmp; movgt; cmp; movlt`) computes, so translation is
            // lossless for every input. On element-range inputs this is
            // identical to true saturating hardware.
            VAluOp::SatAdd => i64::from(ai.wrapping_add(bi)).clamp(0, sat_u_max) as u32,
            VAluOp::SatSub => i64::from(ai.wrapping_sub(bi)).clamp(0, sat_u_max) as u32,
            VAluOp::SSatAdd => i64::from(ai.wrapping_add(bi)).clamp(sat_s.0, sat_s.1) as u32,
            VAluOp::SSatSub => i64::from(ai.wrapping_sub(bi)).clamp(sat_s.0, sat_s.1) as u32,
            VAluOp::Lsl => a << (b & 31),
            VAluOp::Lsr => a >> (b & 31),
            VAluOp::Asr => (ai >> (b & 31)) as u32,
        }
    }

    /// Whether `op(a, b) == op(b, a)` for all lanes.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            VAluOp::Add
                | VAluOp::Mul
                | VAluOp::And
                | VAluOp::Orr
                | VAluOp::Eor
                | VAluOp::Min
                | VAluOp::Max
        )
    }

    /// Whether this operation is defined for the given element type.
    #[must_use]
    pub fn valid_for(self, elem: ElemType) -> bool {
        match self {
            VAluOp::Add | VAluOp::Sub | VAluOp::Mul | VAluOp::Min | VAluOp::Max => true,
            VAluOp::Div => elem == ElemType::F32,
            VAluOp::And | VAluOp::Orr | VAluOp::Eor | VAluOp::Lsl | VAluOp::Lsr | VAluOp::Asr => {
                !elem.is_float()
            }
            VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub => {
                matches!(elem, ElemType::I8 | ElemType::I16)
            }
        }
    }

    /// The assembler mnemonic (element suffix added separately).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            VAluOp::Add => "vadd",
            VAluOp::Sub => "vsub",
            VAluOp::Mul => "vmul",
            VAluOp::Div => "vdiv",
            VAluOp::And => "vand",
            VAluOp::Orr => "vorr",
            VAluOp::Eor => "veor",
            VAluOp::Min => "vmin",
            VAluOp::Max => "vmax",
            VAluOp::SatAdd => "vqaddu",
            VAluOp::SatSub => "vqsubu",
            VAluOp::SSatAdd => "vqadds",
            VAluOp::SSatSub => "vqsubs",
            VAluOp::Lsl => "vlsl",
            VAluOp::Lsr => "vlsr",
            VAluOp::Asr => "vasr",
        }
    }

    /// The scalar [`AluOp`] with identical per-element semantics, if one
    /// exists (saturating ops have none — they need idioms, paper §3.2).
    #[must_use]
    pub fn scalar_equivalent(self) -> Option<AluOp> {
        match self {
            VAluOp::Add => Some(AluOp::Add),
            VAluOp::Sub => Some(AluOp::Sub),
            VAluOp::Mul => Some(AluOp::Mul),
            VAluOp::And => Some(AluOp::And),
            VAluOp::Orr => Some(AluOp::Orr),
            VAluOp::Eor => Some(AluOp::Eor),
            VAluOp::Min => Some(AluOp::Min),
            VAluOp::Max => Some(AluOp::Max),
            VAluOp::Lsl => Some(AluOp::Lsl),
            VAluOp::Lsr => Some(AluOp::Lsr),
            VAluOp::Asr => Some(AluOp::Asr),
            VAluOp::Div | VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub => {
                None
            }
        }
    }

    /// The vector op with identical per-element semantics to a scalar op.
    #[must_use]
    pub fn from_scalar(op: AluOp) -> Option<VAluOp> {
        match op {
            AluOp::Add => Some(VAluOp::Add),
            AluOp::Sub => Some(VAluOp::Sub),
            AluOp::Mul => Some(VAluOp::Mul),
            AluOp::And => Some(VAluOp::And),
            AluOp::Orr => Some(VAluOp::Orr),
            AluOp::Eor => Some(VAluOp::Eor),
            AluOp::Min => Some(VAluOp::Min),
            AluOp::Max => Some(VAluOp::Max),
            AluOp::Lsl => Some(VAluOp::Lsl),
            AluOp::Lsr => Some(VAluOp::Lsr),
            AluOp::Asr => Some(VAluOp::Asr),
            AluOp::Rsb | AluOp::Bic => None,
        }
    }
}

impl fmt::Display for VAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The flexible second operand of scalar data-processing instructions
/// (register or small immediate, like ARM's `Operand2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand. Encodable range depends on the instruction
    /// format (see [`crate::encode`]); out-of-range values must be
    /// materialised via `mov` or a constant-pool load.
    Imm(i32),
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// The base of a memory operand: either a register or a data-segment symbol
/// (the paper writes `[RealOut + r1]` — `RealOut` is a symbol base).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Base {
    /// Register base.
    Reg(Reg),
    /// Symbol base, resolved against the program's symbol table.
    Sym(SymId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_encodings_roundtrip() {
        for &op in &AluOp::ALL {
            assert_eq!(AluOp::from_bits(op.bits()).unwrap(), op);
        }
        for &op in &FpOp::ALL {
            assert_eq!(FpOp::from_bits(op.bits()).unwrap(), op);
        }
        for &op in &VAluOp::ALL {
            assert_eq!(VAluOp::from_bits(op.bits()).unwrap(), op);
        }
        for &w in &MemWidth::ALL {
            assert_eq!(MemWidth::from_bits(w.bits()).unwrap(), w);
        }
        for &e in &ElemType::ALL {
            assert_eq!(ElemType::from_bits(e.bits()).unwrap(), e);
        }
        for &r in &RedOp::ALL {
            assert_eq!(RedOp::from_bits(r.bits()).unwrap(), r);
        }
        assert!(AluOp::from_bits(13).is_err());
        assert!(VAluOp::from_bits(16).is_err());
    }

    #[test]
    fn scalar_vector_equivalence_is_consistent() {
        for &v in &VAluOp::ALL {
            if let Some(s) = v.scalar_equivalent() {
                assert_eq!(VAluOp::from_scalar(s), Some(v));
            }
        }
    }

    #[test]
    fn validity_rules() {
        assert!(VAluOp::Add.valid_for(ElemType::F32));
        assert!(!VAluOp::And.valid_for(ElemType::F32));
        assert!(!VAluOp::SatAdd.valid_for(ElemType::I32));
        assert!(VAluOp::SatAdd.valid_for(ElemType::I8));
        assert!(VAluOp::Div.valid_for(ElemType::F32));
        assert!(!VAluOp::Div.valid_for(ElemType::I16));
    }
}
