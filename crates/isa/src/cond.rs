//! Condition codes and the processor flags they test.

use std::fmt;

use crate::error::IsaError;

/// ARM-style condition flags, set by [`ScalarInst::Cmp`](crate::ScalarInst).
///
/// Flags are produced from the subtraction `rn - op2`:
/// `n` (negative), `z` (zero), `c` (carry / no-borrow), `v` (overflow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Result was negative.
    pub n: bool,
    /// Result was zero.
    pub z: bool,
    /// Unsigned no-borrow (i.e. `rn >= op2` unsigned).
    pub c: bool,
    /// Signed overflow occurred.
    pub v: bool,
}

impl Flags {
    /// Computes flags for the comparison `a cmp b` (as `a - b`), mirroring
    /// ARM `CMP` semantics.
    #[must_use]
    pub fn from_cmp(a: i32, b: i32) -> Flags {
        let (result, overflow) = a.overflowing_sub(b);
        Flags {
            n: result < 0,
            z: result == 0,
            c: (a as u32) >= (b as u32),
            v: overflow,
        }
    }
}

/// A condition code predicating a scalar instruction (paper §3.2 uses
/// predication to build idioms, e.g. `movgt r1, 0xFF` for saturation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Always execute (the unpredicated case).
    #[default]
    Al = 0,
    /// Equal (`z`).
    Eq = 1,
    /// Not equal (`!z`).
    Ne = 2,
    /// Signed less-than (`n != v`).
    Lt = 3,
    /// Signed less-or-equal (`z || n != v`).
    Le = 4,
    /// Signed greater-than (`!z && n == v`).
    Gt = 5,
    /// Signed greater-or-equal (`n == v`).
    Ge = 6,
    /// Unsigned lower (`!c`).
    Lo = 7,
    /// Unsigned lower-or-same (`!c || z`).
    Ls = 8,
    /// Unsigned higher (`c && !z`).
    Hi = 9,
    /// Unsigned higher-or-same (`c`).
    Hs = 10,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 11] = [
        Cond::Al,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Lo,
        Cond::Ls,
        Cond::Hi,
        Cond::Hs,
    ];

    /// Evaluates this condition against the current flags.
    #[must_use]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Al => true,
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => f.n != f.v,
            Cond::Le => f.z || (f.n != f.v),
            Cond::Gt => !f.z && (f.n == f.v),
            Cond::Ge => f.n == f.v,
            Cond::Lo => !f.c,
            Cond::Ls => !f.c || f.z,
            Cond::Hi => f.c && !f.z,
            Cond::Hs => f.c,
        }
    }

    /// The inverse condition (`eval` of the inverse is the negation).
    #[must_use]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Al => Cond::Al, // no encodable "never"; callers must not rely on it
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Lo => Cond::Hs,
            Cond::Ls => Cond::Hi,
            Cond::Hi => Cond::Ls,
            Cond::Hs => Cond::Lo,
        }
    }

    /// Decodes a condition from its 4-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Decode`] for out-of-range encodings.
    pub fn from_bits(bits: u32) -> Result<Cond, IsaError> {
        Cond::ALL
            .get(bits as usize)
            .copied()
            .ok_or(IsaError::Decode {
                what: "condition code",
                value: bits,
            })
    }

    /// The condition's 4-bit encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// The assembler suffix (`""` for always, `"gt"`, `"lt"`, ...).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Al => "",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Lo => "lo",
            Cond::Ls => "ls",
            Cond::Hi => "hi",
            Cond::Hs => "hs",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flag_semantics() {
        let f = Flags::from_cmp(3, 5);
        assert!(Cond::Lt.eval(f));
        assert!(!Cond::Ge.eval(f));
        assert!(Cond::Ne.eval(f));
        assert!(Cond::Lo.eval(f));

        let f = Flags::from_cmp(5, 5);
        assert!(Cond::Eq.eval(f));
        assert!(Cond::Le.eval(f));
        assert!(Cond::Ge.eval(f));
        assert!(Cond::Hs.eval(f));
        assert!(!Cond::Hi.eval(f));

        // Signed overflow: i32::MIN - 1 wraps positive; LT must still hold.
        let f = Flags::from_cmp(i32::MIN, 1);
        assert!(Cond::Lt.eval(f));

        // Unsigned view: -1 is huge, so it is HI relative to 1.
        let f = Flags::from_cmp(-1, 1);
        assert!(Cond::Hi.eval(f));
        assert!(Cond::Lt.eval(f));
    }

    #[test]
    fn invert_is_involutive_and_negating() {
        for &c in &Cond::ALL {
            assert_eq!(c.invert().invert(), c);
            if c != Cond::Al {
                for a in [-5i32, 0, 5] {
                    for b in [-5i32, 0, 5] {
                        let f = Flags::from_cmp(a, b);
                        assert_ne!(c.eval(f), c.invert().eval(f), "{c:?} {a} {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn bits_roundtrip() {
        for &c in &Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()).unwrap(), c);
        }
        assert!(Cond::from_bits(15).is_err());
    }
}
