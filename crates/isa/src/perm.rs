//! Vector permutations and their width-independent offset encoding.
//!
//! The paper encodes element-reordering operations in scalar code through
//! read-only *offset arrays* (`bfly` in Figure 4): iteration `i` of the
//! scalar loop loads `off[i]`, adds it to the induction variable, and uses
//! the sum as the memory index, so element `i` of the (conceptual) vector is
//! taken from position `i + off[i]`. Offsets — rather than absolute indices
//! — make the representation independent of the hardware vector width
//! (paper §3.2).
//!
//! Every permutation here is *blocked*: the same reordering is applied to
//! each consecutive block of `block` elements, so the offset pattern is
//! periodic with period `block`. A `W`-lane accelerator can execute a
//! permutation directly iff `block <= W` (and `block | W`); the dynamic
//! translator's CAM enforces this (see paper §4.1 — a CAM miss aborts
//! translation).

use std::fmt;

use crate::error::IsaError;

/// A blocked vector permutation.
///
/// All blocks must be powers of two `>= 2` (paper §3.1 assumes power-of-two
/// accelerator widths; blocked permutations inherit the restriction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PermKind {
    /// Butterfly: exchange the two halves of each block (the paper's
    /// `vbfly`; for `block = 2` this swaps adjacent pairs).
    Bfly {
        /// Block size (power of two, `>= 2`).
        block: u8,
    },
    /// Reverse the elements of each block.
    Rev {
        /// Block size (power of two, `>= 2`).
        block: u8,
    },
    /// Rotate each block left by `amt` (element `i` receives element
    /// `(i + amt) mod block`).
    Rot {
        /// Block size (power of two, `>= 2`).
        block: u8,
        /// Rotation amount, `1 <= amt < block`.
        amt: u8,
    },
}

impl PermKind {
    /// The block size the permutation operates on.
    #[must_use]
    pub fn block(self) -> u8 {
        match self {
            PermKind::Bfly { block } | PermKind::Rev { block } | PermKind::Rot { block, .. } => {
                block
            }
        }
    }

    /// Validates block/amount constraints.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidCombination`] if the block is not a power
    /// of two `>= 2`, or a rotation amount is out of range.
    pub fn validate(self) -> Result<(), IsaError> {
        let b = self.block();
        if b < 2 || !b.is_power_of_two() {
            return Err(IsaError::InvalidCombination {
                reason: format!("permutation block {b} must be a power of two >= 2"),
            });
        }
        if let PermKind::Rot { block, amt } = self {
            if amt == 0 || amt >= block {
                return Err(IsaError::InvalidCombination {
                    reason: format!("rotation amount {amt} out of range for block {block}"),
                });
            }
        }
        Ok(())
    }

    /// The source position (within a block) that destination position `i`
    /// reads from: `dst[i] = src[source_index(i)]` with both indices taken
    /// modulo the block.
    #[must_use]
    pub fn source_index(self, i: usize) -> usize {
        let b = self.block() as usize;
        let i = i % b;
        match self {
            PermKind::Bfly { .. } => (i + b / 2) % b,
            PermKind::Rev { .. } => b - 1 - i,
            PermKind::Rot { amt, .. } => (i + amt as usize) % b,
        }
    }

    /// The per-element offsets for a loop of `n` iterations:
    /// `off[i] = source_index(i) - (i mod block)`, replicated per block.
    /// These are exactly the values the Liquid compiler stores in the
    /// read-only offset array.
    #[must_use]
    pub fn offsets(self, n: usize) -> Vec<i32> {
        let b = self.block() as usize;
        (0..n)
            .map(|i| {
                let within = i % b;
                self.source_index(within) as i32 - within as i32
            })
            .collect()
    }

    /// Applies the permutation to a slice whose length is a multiple of the
    /// block size, returning the permuted vector.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` is not a multiple of the block size.
    #[must_use]
    pub fn apply<T: Copy>(self, src: &[T]) -> Vec<T> {
        let b = self.block() as usize;
        assert!(
            src.len().is_multiple_of(b),
            "vector length {} not a multiple of permutation block {b}",
            src.len()
        );
        (0..src.len())
            .map(|i| {
                let base = i - (i % b);
                src[base + self.source_index(i)]
            })
            .collect()
    }

    /// The inverse permutation (`inverse().apply(apply(x)) == x`).
    ///
    /// Butterfly and reverse are self-inverse; rotation inverts its amount.
    /// Store-side permutations translate to the inverse of the load-side
    /// pattern (see `liquid-simd-translator`).
    #[must_use]
    pub fn inverse(self) -> PermKind {
        match self {
            PermKind::Bfly { .. } | PermKind::Rev { .. } => self,
            PermKind::Rot { block, amt } => PermKind::Rot {
                block,
                amt: block - amt,
            },
        }
    }

    /// Whether a `lanes`-wide accelerator can execute this permutation as a
    /// single register permutation (paper abort rule: the block must fit in
    /// — and tile — the hardware vector).
    #[must_use]
    pub fn executable_at(self, lanes: usize) -> bool {
        let b = self.block() as usize;
        b <= lanes && lanes.is_multiple_of(b)
    }

    /// Attempts to recognise an offset pattern as a known permutation at the
    /// given lane width. This is the software model of the translator's CAM:
    /// `offsets` are the first `lanes` values loaded from a suspected offset
    /// array. Returns `None` on a CAM miss.
    #[must_use]
    pub fn match_offsets(offsets: &[i32], lanes: usize) -> Option<PermKind> {
        if offsets.len() < lanes || lanes < 2 {
            return None;
        }
        let candidates = Self::cam_entries(lanes);
        candidates
            .into_iter()
            .find(|&k| k.offsets(lanes) == offsets[..lanes])
    }

    /// All permutations representable at a given lane count — the contents
    /// of the translator's CAM for a `lanes`-wide accelerator.
    #[must_use]
    pub fn cam_entries(lanes: usize) -> Vec<PermKind> {
        let mut out = Vec::new();
        let mut b = 2u8;
        while (b as usize) <= lanes && lanes.is_multiple_of(b as usize) {
            out.push(PermKind::Bfly { block: b });
            out.push(PermKind::Rev { block: b });
            for amt in 1..b {
                out.push(PermKind::Rot { block: b, amt });
            }
            b = b.saturating_mul(2);
        }
        // Deduplicate aliases (e.g. Bfly{2}, Rev{2} and Rot{2,1} coincide):
        // keep the first pattern for each distinct offset vector.
        let mut seen: Vec<Vec<i32>> = Vec::new();
        out.retain(|k| {
            let offs = k.offsets(lanes);
            if seen.contains(&offs) {
                false
            } else {
                seen.push(offs);
                true
            }
        });
        out
    }
}

impl fmt::Display for PermKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermKind::Bfly { block } => write!(f, "vbfly.b{block}"),
            PermKind::Rev { block } => write!(f, "vrev.b{block}"),
            PermKind::Rot { block, amt } => write!(f, "vrot.b{block}.k{amt}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfly_exchanges_halves() {
        let k = PermKind::Bfly { block: 8 };
        let v: Vec<i32> = (0..8).collect();
        assert_eq!(k.apply(&v), vec![4, 5, 6, 7, 0, 1, 2, 3]);
        // Matches the paper's FFT example: offsets +4 x4 then -4 x4.
        assert_eq!(k.offsets(8), vec![4, 4, 4, 4, -4, -4, -4, -4]);
    }

    #[test]
    fn rev_reverses_blocks() {
        let k = PermKind::Rev { block: 4 };
        let v: Vec<i32> = (0..8).collect();
        assert_eq!(k.apply(&v), vec![3, 2, 1, 0, 7, 6, 5, 4]);
    }

    #[test]
    fn rot_rotates_left() {
        let k = PermKind::Rot { block: 4, amt: 1 };
        let v: Vec<i32> = (0..4).collect();
        assert_eq!(k.apply(&v), vec![1, 2, 3, 0]);
    }

    #[test]
    fn inverse_roundtrips() {
        let v: Vec<i32> = (0..16).collect();
        for k in PermKind::cam_entries(16) {
            assert_eq!(k.inverse().apply(&k.apply(&v)), v, "{k}");
        }
    }

    #[test]
    fn offsets_are_blocked_and_periodic() {
        let k = PermKind::Rev { block: 4 };
        let offs = k.offsets(12);
        assert_eq!(&offs[0..4], &offs[4..8]);
        assert_eq!(&offs[0..4], &offs[8..12]);
        assert_eq!(&offs[0..4], &[3, 1, -1, -3]);
    }

    #[test]
    fn cam_matching_recovers_kind() {
        for lanes in [2usize, 4, 8, 16] {
            for k in PermKind::cam_entries(lanes) {
                let offs = k.offsets(lanes);
                let found = PermKind::match_offsets(&offs, lanes).unwrap();
                // Matching may alias (e.g. Bfly{2} == Rot{2,1}); require the
                // *behaviour* to be identical, not the constructor.
                let v: Vec<i32> = (0..lanes as i32).collect();
                assert_eq!(found.apply(&v), k.apply(&v));
            }
        }
    }

    #[test]
    fn cam_miss_on_unknown_pattern() {
        // A "gather" pattern no blocked permutation produces.
        let offs = vec![0, 2, -1, 3];
        assert!(PermKind::match_offsets(&offs, 4).is_none());
    }

    #[test]
    fn executability_respects_block_vs_lanes() {
        let k = PermKind::Bfly { block: 8 };
        assert!(k.executable_at(8));
        assert!(k.executable_at(16));
        assert!(!k.executable_at(4)); // paper abort case: block wider than HW
    }

    #[test]
    fn validation_rejects_bad_blocks() {
        assert!(PermKind::Bfly { block: 3 }.validate().is_err());
        assert!(PermKind::Bfly { block: 1 }.validate().is_err());
        assert!(PermKind::Rot { block: 4, amt: 0 }.validate().is_err());
        assert!(PermKind::Rot { block: 4, amt: 4 }.validate().is_err());
        assert!(PermKind::Rot { block: 4, amt: 3 }.validate().is_ok());
    }
}
