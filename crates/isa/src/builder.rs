//! Label-aware program construction.

use crate::cond::Cond;
use crate::error::IsaError;
use crate::inst::Inst;
use crate::op::{AluOp, Base, FpOp, MemWidth, Operand2};
use crate::program::{Program, SymId, Symbol, DEFAULT_DATA_BASE};
use crate::reg::{FReg, Reg};
use crate::scalar::ScalarInst;

/// A forward-referenceable code label issued by [`ProgramBuilder::new_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds a [`Program`] incrementally: instructions, labels with forward
/// references, and data-segment symbols.
///
/// # Example
///
/// ```
/// use liquid_simd_isa::{ProgramBuilder, Reg, Base, MemWidth, Operand2, Cond, AluOp};
///
/// let mut b = ProgramBuilder::new();
/// let arr = b.add_i32s("numbers", &[5, 3, 9, 1]);
/// let top = b.new_label();
/// b.mov_imm(Reg::R0, 0);
/// b.mov_imm(Reg::R1, i32::MAX);
/// b.bind(top);
/// b.ld(MemWidth::W, Reg::R2, Base::Sym(arr), Reg::R0);
/// b.alu(AluOp::Min, Reg::R1, Reg::R1, Operand2::Reg(Reg::R2));
/// b.alu(AluOp::Add, Reg::R0, Reg::R0, Operand2::Imm(1));
/// b.cmp(Reg::R0, Operand2::Imm(4));
/// b.b(Cond::Lt, top);
/// b.halt();
/// let p = b.finish().expect("program resolves");
/// assert_eq!(p.code.len(), 8);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Inst>,
    data: Vec<u8>,
    symbols: Vec<Symbol>,
    bound: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    named: Vec<(u32, String)>,
    data_base: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default data base address.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            data_base: DEFAULT_DATA_BASE,
            ..ProgramBuilder::default()
        }
    }

    /// Current code position (index of the next instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Issues a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() as u32 - 1)
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.bound[label.0 as usize];
        assert!(slot.is_none(), "label L{} bound twice", label.0);
        *slot = Some(here);
    }

    /// Binds a label and records a human-readable name for it (function
    /// entry points, loop heads).
    pub fn bind_named(&mut self, label: Label, name: &str) {
        self.bind(label);
        self.named.push((self.here(), name.to_string()));
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: impl Into<Inst>) -> &mut Self {
        self.code.push(inst.into());
        self
    }

    // ---- scalar conveniences -------------------------------------------

    /// `mov rd, #imm`
    pub fn mov_imm(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.push(ScalarInst::MovImm {
            cond: Cond::Al,
            rd,
            imm,
        })
    }

    /// `mov{cond} rd, #imm`
    pub fn mov_imm_cond(&mut self, cond: Cond, rd: Reg, imm: i32) -> &mut Self {
        self.push(ScalarInst::MovImm { cond, rd, imm })
    }

    /// `mov rd, rm`
    pub fn mov(&mut self, rd: Reg, rm: Reg) -> &mut Self {
        self.push(ScalarInst::Mov {
            cond: Cond::Al,
            rd,
            rm,
        })
    }

    /// `op rd, rn, op2`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rn: Reg, op2: Operand2) -> &mut Self {
        self.push(ScalarInst::Alu {
            cond: Cond::Al,
            op,
            rd,
            rn,
            op2,
        })
    }

    /// `op{cond} rd, rn, op2`
    pub fn alu_cond(
        &mut self,
        cond: Cond,
        op: AluOp,
        rd: Reg,
        rn: Reg,
        op2: Operand2,
    ) -> &mut Self {
        self.push(ScalarInst::Alu {
            cond,
            op,
            rd,
            rn,
            op2,
        })
    }

    /// `cmp rn, op2`
    pub fn cmp(&mut self, rn: Reg, op2: Operand2) -> &mut Self {
        self.push(ScalarInst::Cmp { rn, op2 })
    }

    /// `fop fd, fn, fm`
    pub fn falu(&mut self, op: FpOp, fd: FReg, fn_: FReg, fm: FReg) -> &mut Self {
        self.push(ScalarInst::FAlu { op, fd, fn_, fm })
    }

    /// `ld{w} rd, [base + index]` (zero-extending)
    pub fn ld(&mut self, width: MemWidth, rd: Reg, base: Base, index: Reg) -> &mut Self {
        self.push(ScalarInst::LdInt {
            width,
            signed: false,
            rd,
            base,
            index,
        })
    }

    /// `ld{w}s rd, [base + index]` (sign-extending)
    pub fn lds(&mut self, width: MemWidth, rd: Reg, base: Base, index: Reg) -> &mut Self {
        self.push(ScalarInst::LdInt {
            width,
            signed: true,
            rd,
            base,
            index,
        })
    }

    /// `st{w} [base + index], rs`
    pub fn st(&mut self, width: MemWidth, rs: Reg, base: Base, index: Reg) -> &mut Self {
        self.push(ScalarInst::StInt {
            width,
            rs,
            base,
            index,
        })
    }

    /// `ldf fd, [base + index]`
    pub fn ldf(&mut self, fd: FReg, base: Base, index: Reg) -> &mut Self {
        self.push(ScalarInst::LdF { fd, base, index })
    }

    /// `stf [base + index], fs`
    pub fn stf(&mut self, fs: FReg, base: Base, index: Reg) -> &mut Self {
        self.push(ScalarInst::StF { fs, base, index })
    }

    /// `b{cond} label`
    pub fn b(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.push(ScalarInst::B {
            cond,
            target: u32::MAX,
        })
    }

    /// `bl label` (plain call)
    pub fn bl(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.push(ScalarInst::Bl {
            target: u32::MAX,
            vectorizable: false,
        })
    }

    /// `bl.v label` (call marked as a translatable outlined region)
    pub fn bl_v(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.push(ScalarInst::Bl {
            target: u32::MAX,
            vectorizable: true,
        })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.push(ScalarInst::Ret)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.push(ScalarInst::Halt)
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.push(ScalarInst::Nop)
    }

    // ---- data segment ---------------------------------------------------

    fn add_symbol(&mut self, name: &str, bytes: &[u8], elem_bytes: u32) -> SymId {
        assert!(
            !self.symbols.iter().any(|s| s.name == name),
            "symbol `{name}` defined twice"
        );
        // Align every region to 64 bytes: MAX_VECTOR_WIDTH (16) elements of
        // the widest element type (4 bytes) — the paper's §3.1 alignment rule.
        while !self.data.len().is_multiple_of(64) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        let id = SymId::new(self.symbols.len() as u16);
        self.symbols.push(Symbol {
            name: name.to_string(),
            addr,
            size: bytes.len() as u32,
            elem_bytes,
        });
        id
    }

    /// Adds a named byte region.
    pub fn add_bytes(&mut self, name: &str, bytes: &[u8]) -> SymId {
        self.add_symbol(name, bytes, 1)
    }

    /// Adds a named `i8` array.
    pub fn add_i8s(&mut self, name: &str, values: &[i8]) -> SymId {
        let bytes: Vec<u8> = values.iter().map(|&v| v as u8).collect();
        self.add_symbol(name, &bytes, 1)
    }

    /// Adds a named `i16` array (little-endian).
    pub fn add_i16s(&mut self, name: &str, values: &[i16]) -> SymId {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.add_symbol(name, &bytes, 2)
    }

    /// Adds a named `i32` array (little-endian).
    pub fn add_i32s(&mut self, name: &str, values: &[i32]) -> SymId {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.add_symbol(name, &bytes, 4)
    }

    /// Adds a named `f32` array (little-endian IEEE-754).
    pub fn add_f32s(&mut self, name: &str, values: &[f32]) -> SymId {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.add_symbol(name, &bytes, 4)
    }

    /// Reserves a zero-initialised region of `elems` elements of
    /// `elem_bytes` bytes each.
    pub fn reserve(&mut self, name: &str, elems: usize, elem_bytes: u32) -> SymId {
        let bytes = vec![0u8; elems * elem_bytes as usize];
        self.add_symbol(name, &bytes, elem_bytes)
    }

    /// Adds an *alias* symbol: a window into an existing region starting
    /// `byte_offset` bytes in. Code generators use aliases to express
    /// element-offset accesses (`A[i + k]`) as plain base+induction
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds the target region or the name is taken.
    pub fn add_alias(&mut self, name: &str, of: SymId, byte_offset: u32) -> SymId {
        assert!(
            !self.symbols.iter().any(|s| s.name == name),
            "symbol `{name}` defined twice"
        );
        let target = &self.symbols[of.index()];
        assert!(
            byte_offset <= target.size,
            "alias offset {byte_offset} exceeds region `{}` of {} bytes",
            target.name,
            target.size
        );
        let sym = Symbol {
            name: name.to_string(),
            addr: target.addr + byte_offset,
            size: target.size - byte_offset,
            elem_bytes: target.elem_bytes,
        };
        let id = SymId::new(self.symbols.len() as u16);
        self.symbols.push(sym);
        id
    }

    /// Looks up a previously defined symbol by name.
    #[must_use]
    pub fn symbol_named(&self, name: &str) -> Option<SymId> {
        self.symbols
            .iter()
            .position(|s| s.name == name)
            .map(|i| SymId::new(i as u16))
    }

    // ---- finishing ------------------------------------------------------

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if any referenced label was never
    /// bound, or a validation error if the assembled program is malformed.
    pub fn finish(self) -> Result<Program, IsaError> {
        let ProgramBuilder {
            mut code,
            data,
            symbols,
            bound,
            fixups,
            named,
            data_base,
        } = self;
        for (idx, label) in fixups {
            let target =
                bound[label.0 as usize].ok_or(IsaError::UnboundLabel { label: label.0 })?;
            match &mut code[idx] {
                Inst::S(ScalarInst::B { target: t, .. })
                | Inst::S(ScalarInst::Bl { target: t, .. }) => *t = target,
                other => unreachable!("fixup attached to non-branch {other}"),
            }
        }
        let program = Program {
            code,
            data,
            symbols,
            entry: 0,
            data_base,
            labels: named,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.b(Cond::Al, skip);
        b.nop();
        b.bind(skip);
        b.halt();
        let p = b.finish().unwrap();
        match p.code[0] {
            Inst::S(ScalarInst::B { target, .. }) => assert_eq!(target, 2),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let dangling = b.new_label();
        b.b(Cond::Al, dangling);
        b.halt();
        assert_eq!(b.finish().unwrap_err(), IsaError::UnboundLabel { label: 0 });
    }

    #[test]
    fn data_regions_are_aligned_and_named() {
        let mut b = ProgramBuilder::new();
        let a = b.add_i16s("a", &[1, 2, 3]);
        let c = b.add_f32s("c", &[1.0, 2.0]);
        b.halt();
        let p = b.finish().unwrap();
        let sa = p.symbol(a).unwrap();
        let sc = p.symbol(c).unwrap();
        assert_eq!(sa.addr % 64, 0);
        assert_eq!(sc.addr % 64, 0);
        assert_eq!(sa.size, 6);
        assert_eq!(sc.size, 8);
        assert_eq!(sa.elem_bytes, 2);
        assert!(sc.addr >= sa.addr + sa.size);
        assert_eq!(p.symbol_by_name("c").unwrap().0, c);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_symbol_panics() {
        let mut b = ProgramBuilder::new();
        b.add_bytes("x", &[0]);
        b.add_bytes("x", &[0]);
    }

    #[test]
    fn named_labels_reach_program() {
        let mut b = ProgramBuilder::new();
        let f = b.new_label();
        b.bind_named(f, "kernel_0");
        b.ret();
        let p = b.finish().unwrap();
        assert_eq!(p.label_at(0), Some("kernel_0"));
    }
}
