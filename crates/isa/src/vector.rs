//! The VSIMD vector instruction set executed by the SIMD accelerator.

use std::fmt;

use crate::error::IsaError;
use crate::op::{Base, ElemType, RedOp, VAluOp};
use crate::perm::PermKind;
use crate::program::SymId;
use crate::reg::{FReg, Reg, VReg};

/// The broadcast operand of a vector-by-scalar operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarSrc {
    /// An integer register, broadcast to all lanes.
    R(Reg),
    /// A floating-point register, broadcast to all lanes.
    F(FReg),
}

impl fmt::Display for ScalarSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarSrc::R(r) => r.fmt(f),
            ScalarSrc::F(fr) => fr.fmt(f),
        }
    }
}

/// A vector instruction.
///
/// Vector instructions operate on all lanes of the accelerator at once. Lane
/// count is a property of the *machine*, not of the instruction — the same
/// microcode semantics apply at any width, which is the essence of the
/// paper's width-independent representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorInst {
    /// `vld.<elem> vd, [base + index]` — contiguous vector load. Lane `i`
    /// reads element `index + i`; the index register is in *elements*.
    /// Narrow elements are sign-extended into the 32-bit lane when `signed`
    /// is set, zero-extended otherwise (mirroring scalar `lds` vs `ld`).
    VLd {
        /// Element type.
        elem: ElemType,
        /// Sign-extend narrow elements into lanes.
        signed: bool,
        /// Destination.
        vd: VReg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register (the vector loop's induction variable).
        index: Reg,
    },
    /// `vst.<elem> [base + index], vs` — contiguous vector store.
    VSt {
        /// Element type.
        elem: ElemType,
        /// Source.
        vs: VReg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register.
        index: Reg,
    },
    /// `vop.<elem> vd, vn, vm` — element-wise data processing.
    VAlu {
        /// Operation.
        op: VAluOp,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// First source.
        vn: VReg,
        /// Second source.
        vm: VReg,
    },
    /// `vop.<elem> vd, vn, #imm` — element-wise op against a splatted
    /// immediate (paper Table 1 category 2: "scalar supported constant").
    VAluImm {
        /// Operation.
        op: VAluOp,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
        /// Immediate, splat across lanes.
        imm: i32,
    },
    /// `vop.<elem> vd, vn, =sym` — element-wise op against a constant vector
    /// held in the data segment (paper Table 1 category 3: "non-scalar
    /// supported constant"; the translator regenerates this from observed
    /// `cnst` array loads). Lane `i` uses element `i mod period` of the
    /// constant region, where the period is the region's element count.
    VAluConst {
        /// Operation.
        op: VAluOp,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
        /// Symbol of the constant region.
        cnst: SymId,
    },
    /// `vop.<elem> vd, vn, rs|fs` — element-wise op against a *broadcast
    /// scalar register* (Neon-style vector-by-scalar, e.g.
    /// `VMUL Qd, Qn, Dm[0]`). The Liquid compiler hoists loop-invariant
    /// constants into scalar registers; the translator turns the resulting
    /// vector-scalar data processing into this form.
    VAluScalar {
        /// Operation.
        op: VAluOp,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// Vector source.
        vn: VReg,
        /// Broadcast scalar source.
        src: ScalarSrc,
    },
    /// `vred<op>.<elem> rd, vn` — integer reduction folded into a scalar
    /// register: `rd = op(rd, vn[0], ..., vn[W-1])` (paper Table 3 rule 9).
    VRedI {
        /// Reduction operation.
        op: RedOp,
        /// Element type (integer).
        elem: ElemType,
        /// Accumulator (source and destination).
        rd: Reg,
        /// Vector source.
        vn: VReg,
    },
    /// `vred<op>.f32 fd, vn` — floating-point reduction.
    VRedF {
        /// Reduction operation.
        op: RedOp,
        /// Accumulator (source and destination).
        fd: FReg,
        /// Vector source.
        vn: VReg,
    },
    /// `vperm vd, vn` — blocked register permutation (`vbfly`, `vrev`,
    /// `vrot`).
    VPerm {
        /// Permutation kind (carries its block size).
        kind: PermKind,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
    },
    /// `vsplat.<elem> vd, #imm` — broadcast an immediate to all lanes (used
    /// by native SIMD code generation; the Liquid representation never needs
    /// it because constants travel through `VAluImm`/`VAluConst`).
    VSplat {
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// Immediate.
        imm: i32,
    },
}

impl VectorInst {
    /// Validates operation/element-type combinations and permutation shape.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidCombination`] for undefined combinations
    /// (e.g. `vand.f32`, saturating `i32`, malformed permutation blocks).
    pub fn validate(&self) -> Result<(), IsaError> {
        match *self {
            VectorInst::VAlu { op, elem, .. }
            | VectorInst::VAluImm { op, elem, .. }
            | VectorInst::VAluConst { op, elem, .. }
            | VectorInst::VAluScalar { op, elem, .. } => {
                if !op.valid_for(elem) {
                    return Err(IsaError::InvalidCombination {
                        reason: format!("{op} is not defined for {elem} elements"),
                    });
                }
                Ok(())
            }
            VectorInst::VRedI { elem, .. } => {
                if elem.is_float() {
                    return Err(IsaError::InvalidCombination {
                        reason: "integer reduction with f32 elements (use vredf)".to_string(),
                    });
                }
                Ok(())
            }
            VectorInst::VPerm { kind, .. } => kind.validate(),
            _ => Ok(()),
        }
    }

    /// The vector register written, if any.
    #[must_use]
    pub fn vec_def(self) -> Option<VReg> {
        match self {
            VectorInst::VLd { vd, .. }
            | VectorInst::VAlu { vd, .. }
            | VectorInst::VAluImm { vd, .. }
            | VectorInst::VAluConst { vd, .. }
            | VectorInst::VAluScalar { vd, .. }
            | VectorInst::VPerm { vd, .. }
            | VectorInst::VSplat { vd, .. } => Some(vd),
            _ => None,
        }
    }

    /// The vector registers read.
    #[must_use]
    pub fn vec_uses(self) -> Vec<VReg> {
        match self {
            VectorInst::VSt { vs, .. } => vec![vs],
            VectorInst::VAlu { vn, vm, .. } => vec![vn, vm],
            VectorInst::VAluImm { vn, .. }
            | VectorInst::VAluConst { vn, .. }
            | VectorInst::VAluScalar { vn, .. } => vec![vn],
            VectorInst::VRedI { vn, .. } | VectorInst::VRedF { vn, .. } => vec![vn],
            VectorInst::VPerm { vn, .. } => vec![vn],
            _ => Vec::new(),
        }
    }

    /// Whether the instruction accesses memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, VectorInst::VLd { .. } | VectorInst::VSt { .. })
    }

    /// The element type this instruction operates on.
    #[must_use]
    pub fn elem(self) -> ElemType {
        match self {
            VectorInst::VLd { elem, .. }
            | VectorInst::VSt { elem, .. }
            | VectorInst::VAlu { elem, .. }
            | VectorInst::VAluImm { elem, .. }
            | VectorInst::VAluConst { elem, .. }
            | VectorInst::VAluScalar { elem, .. }
            | VectorInst::VRedI { elem, .. }
            | VectorInst::VPerm { elem, .. }
            | VectorInst::VSplat { elem, .. } => elem,
            VectorInst::VRedF { .. } => ElemType::F32,
        }
    }
}

impl fmt::Display for VectorInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VectorInst::VLd {
                elem,
                signed,
                vd,
                base,
                index,
            } => {
                let m = if signed { "vlds" } else { "vld" };
                match base {
                    Base::Reg(r) => write!(f, "{m}.{elem} {vd}, [{r} + {index}]"),
                    Base::Sym(s) => write!(f, "{m}.{elem} {vd}, [{s} + {index}]"),
                }
            }
            VectorInst::VSt {
                elem,
                vs,
                base,
                index,
            } => match base {
                Base::Reg(r) => write!(f, "vst.{elem} [{r} + {index}], {vs}"),
                Base::Sym(s) => write!(f, "vst.{elem} [{s} + {index}], {vs}"),
            },
            VectorInst::VAlu {
                op,
                elem,
                vd,
                vn,
                vm,
            } => write!(f, "{op}.{elem} {vd}, {vn}, {vm}"),
            VectorInst::VAluImm {
                op,
                elem,
                vd,
                vn,
                imm,
            } => write!(f, "{op}.{elem} {vd}, {vn}, #{imm}"),
            VectorInst::VAluConst {
                op,
                elem,
                vd,
                vn,
                cnst,
            } => write!(f, "{op}.{elem} {vd}, {vn}, ={cnst}"),
            VectorInst::VAluScalar {
                op,
                elem,
                vd,
                vn,
                src,
            } => write!(f, "{op}.{elem} {vd}, {vn}, {src}"),
            VectorInst::VRedI { op, elem, rd, vn } => {
                write!(f, "{}.{elem} {rd}, {vn}", op.mnemonic())
            }
            VectorInst::VRedF { op, fd, vn } => write!(f, "{}.f32 {fd}, {vn}", op.mnemonic()),
            VectorInst::VPerm { kind, elem, vd, vn } => {
                write!(f, "{kind}.{elem} {vd}, {vn}")
            }
            VectorInst::VSplat { elem, vd, imm } => write!(f, "vsplat.{elem} {vd}, #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let i = VectorInst::VAlu {
            op: VAluOp::Add,
            elem: ElemType::I16,
            vd: VReg::V1,
            vn: VReg::V2,
            vm: VReg::V3,
        };
        assert_eq!(i.to_string(), "vadd.i16 v1, v2, v3");

        let i = VectorInst::VPerm {
            kind: PermKind::Bfly { block: 8 },
            elem: ElemType::F32,
            vd: VReg::V0,
            vn: VReg::V0,
        };
        assert_eq!(i.to_string(), "vbfly.b8.f32 v0, v0");

        let i = VectorInst::VRedI {
            op: RedOp::Min,
            elem: ElemType::I32,
            rd: Reg::R1,
            vn: VReg::V2,
        };
        assert_eq!(i.to_string(), "vredmin.i32 r1, v2");
    }

    #[test]
    fn validation() {
        let bad = VectorInst::VAlu {
            op: VAluOp::And,
            elem: ElemType::F32,
            vd: VReg::V0,
            vn: VReg::V1,
            vm: VReg::V2,
        };
        assert!(bad.validate().is_err());

        let bad = VectorInst::VRedI {
            op: RedOp::Sum,
            elem: ElemType::F32,
            rd: Reg::R1,
            vn: VReg::V0,
        };
        assert!(bad.validate().is_err());

        let good = VectorInst::VAluImm {
            op: VAluOp::SatAdd,
            elem: ElemType::I8,
            vd: VReg::V0,
            vn: VReg::V0,
            imm: 10,
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn defs_uses() {
        let i = VectorInst::VAlu {
            op: VAluOp::Mul,
            elem: ElemType::I32,
            vd: VReg::V4,
            vn: VReg::V5,
            vm: VReg::V6,
        };
        assert_eq!(i.vec_def(), Some(VReg::V4));
        assert_eq!(i.vec_uses(), vec![VReg::V5, VReg::V6]);

        let st = VectorInst::VSt {
            elem: ElemType::I8,
            vs: VReg::V1,
            base: Base::Reg(Reg::R2),
            index: Reg::R0,
        };
        assert_eq!(st.vec_def(), None);
        assert_eq!(st.vec_uses(), vec![VReg::V1]);
        assert!(st.is_mem());
    }
}
