//! The SRISC scalar instruction set.

use std::fmt;

use crate::cond::Cond;
use crate::op::{AluOp, Base, FpOp, MemWidth, Operand2};
use crate::program::SymId;
use crate::reg::{FReg, Reg};

/// A scalar instruction.
///
/// Branch targets are absolute instruction indices within the program's code
/// section (the [`ProgramBuilder`](crate::ProgramBuilder) resolves labels to
/// these indices; the binary encoding stores PC-relative offsets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarInst {
    /// `mov{cond} rd, #imm`
    MovImm {
        /// Predicate.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// `mov{cond} rd, rm`
    Mov {
        /// Predicate.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Source.
        rm: Reg,
    },
    /// `op{cond} rd, rn, op2` — integer data processing.
    Alu {
        /// Predicate.
        cond: Cond,
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source (register or immediate).
        op2: Operand2,
    },
    /// `cmp rn, op2` — sets the flags from `rn - op2`.
    Cmp {
        /// First source.
        rn: Reg,
        /// Second source.
        op2: Operand2,
    },
    /// `fop fd, fn, fm` — floating-point data processing.
    FAlu {
        /// Operation.
        op: FpOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fn_: FReg,
        /// Second source.
        fm: FReg,
    },
    /// `fmov{cond} fd, fm`
    FMov {
        /// Predicate.
        cond: Cond,
        /// Destination.
        fd: FReg,
        /// Source.
        fm: FReg,
    },
    /// `ld{b,h,w}[s] rd, [base + index]` — integer load; effective address is
    /// `base + index * width.bytes()` (element-indexed addressing).
    LdInt {
        /// Access width.
        width: MemWidth,
        /// Sign-extend narrow loads when `true`, zero-extend otherwise.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register.
        index: Reg,
    },
    /// `st{b,h,w} [base + index], rs`
    StInt {
        /// Access width.
        width: MemWidth,
        /// Source register.
        rs: Reg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register.
        index: Reg,
    },
    /// `ldf fd, [base + index]` — 32-bit float load (element-indexed, x4).
    LdF {
        /// Destination.
        fd: FReg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register.
        index: Reg,
    },
    /// `stf [base + index], fs`
    StF {
        /// Source register.
        fs: FReg,
        /// Base (register or symbol).
        base: Base,
        /// Element index register.
        index: Reg,
    },
    /// `b{cond} target` — conditional branch to an instruction index.
    B {
        /// Predicate.
        cond: Cond,
        /// Absolute instruction index of the target.
        target: u32,
    },
    /// `bl target` / `bl.v target` — branch and link. `vectorizable` marks an
    /// outlined Liquid SIMD region (paper §3.5 discusses marking outlined
    /// functions uniquely to rule out false positives).
    Bl {
        /// Absolute instruction index of the callee.
        target: u32,
        /// `true` for the dedicated `bl.v` marker.
        vectorizable: bool,
    },
    /// `ret` — return through the link register.
    Ret,
    /// `halt` — stop simulation.
    Halt,
    /// `nop`
    Nop,
}

impl ScalarInst {
    /// Whether this instruction writes the integer register `rd`.
    #[must_use]
    pub fn int_def(self) -> Option<Reg> {
        match self {
            ScalarInst::MovImm { rd, .. }
            | ScalarInst::Mov { rd, .. }
            | ScalarInst::Alu { rd, .. }
            | ScalarInst::LdInt { rd, .. } => Some(rd),
            ScalarInst::Bl { .. } => Some(Reg::LR),
            _ => None,
        }
    }

    /// Whether this instruction writes a floating-point register.
    #[must_use]
    pub fn fp_def(self) -> Option<FReg> {
        match self {
            ScalarInst::FAlu { fd, .. }
            | ScalarInst::FMov { fd, .. }
            | ScalarInst::LdF { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Integer registers read by this instruction (up to three: sources and
    /// address components).
    #[must_use]
    pub fn int_uses(self) -> Vec<Reg> {
        let mut uses = Vec::new();
        let push_base = |base: Base, uses: &mut Vec<Reg>| {
            if let Base::Reg(r) = base {
                uses.push(r);
            }
        };
        match self {
            ScalarInst::Mov { rm, .. } => uses.push(rm),
            ScalarInst::Alu { rn, op2, .. } => {
                uses.push(rn);
                if let Operand2::Reg(r) = op2 {
                    uses.push(r);
                }
            }
            ScalarInst::Cmp { rn, op2 } => {
                uses.push(rn);
                if let Operand2::Reg(r) = op2 {
                    uses.push(r);
                }
            }
            ScalarInst::LdInt { base, index, .. } | ScalarInst::LdF { base, index, .. } => {
                push_base(base, &mut uses);
                uses.push(index);
            }
            ScalarInst::StInt {
                rs, base, index, ..
            } => {
                uses.push(rs);
                push_base(base, &mut uses);
                uses.push(index);
            }
            ScalarInst::StF { base, index, .. } => {
                push_base(base, &mut uses);
                uses.push(index);
            }
            ScalarInst::Ret => uses.push(Reg::LR),
            _ => {}
        }
        uses
    }

    /// Whether the instruction is a control-flow instruction.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            ScalarInst::B { .. } | ScalarInst::Bl { .. } | ScalarInst::Ret | ScalarInst::Halt
        )
    }

    /// Whether the instruction accesses memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            ScalarInst::LdInt { .. }
                | ScalarInst::StInt { .. }
                | ScalarInst::LdF { .. }
                | ScalarInst::StF { .. }
        )
    }

    /// Whether the instruction is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, ScalarInst::LdInt { .. } | ScalarInst::LdF { .. })
    }

    /// The symbol referenced by a memory base, if any.
    #[must_use]
    pub fn base_symbol(self) -> Option<SymId> {
        match self {
            ScalarInst::LdInt { base, .. }
            | ScalarInst::StInt { base, .. }
            | ScalarInst::LdF { base, .. }
            | ScalarInst::StF { base, .. } => match base {
                Base::Sym(s) => Some(s),
                Base::Reg(_) => None,
            },
            _ => None,
        }
    }
}

fn fmt_mem(f: &mut fmt::Formatter<'_>, mnemonic: &str, base: Base, index: Reg) -> fmt::Result {
    match base {
        Base::Reg(r) => write!(f, "{mnemonic} [{r} + {index}]"),
        Base::Sym(s) => write!(f, "{mnemonic} [{s} + {index}]"),
    }
}

impl fmt::Display for ScalarInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScalarInst::MovImm { cond, rd, imm } => write!(f, "mov{cond} {rd}, #{imm}"),
            ScalarInst::Mov { cond, rd, rm } => write!(f, "mov{cond} {rd}, {rm}"),
            ScalarInst::Alu {
                cond,
                op,
                rd,
                rn,
                op2,
            } => write!(f, "{op}{cond} {rd}, {rn}, {op2}"),
            ScalarInst::Cmp { rn, op2 } => write!(f, "cmp {rn}, {op2}"),
            ScalarInst::FAlu { op, fd, fn_, fm } => write!(f, "{op} {fd}, {fn_}, {fm}"),
            ScalarInst::FMov { cond, fd, fm } => write!(f, "fmov{cond} {fd}, {fm}"),
            ScalarInst::LdInt {
                width,
                signed,
                rd,
                base,
                index,
            } => {
                let s = if signed { "s" } else { "" };
                let m = format!("ld{}{s} {rd},", width.suffix());
                fmt_mem(f, &m, base, index)
            }
            ScalarInst::StInt {
                width,
                rs,
                base,
                index,
            } => {
                let m = format!("st{}", width.suffix());
                fmt_mem(f, &m, base, index)?;
                write!(f, ", {rs}")
            }
            ScalarInst::LdF { fd, base, index } => {
                let m = format!("ldf {fd},");
                fmt_mem(f, &m, base, index)
            }
            ScalarInst::StF { fs, base, index } => {
                fmt_mem(f, "stf", base, index)?;
                write!(f, ", {fs}")
            }
            ScalarInst::B { cond, target } => write!(f, "b{cond} @{target}"),
            ScalarInst::Bl {
                target,
                vectorizable,
            } => {
                if vectorizable {
                    write!(f, "bl.v @{target}")
                } else {
                    write!(f, "bl @{target}")
                }
            }
            ScalarInst::Ret => f.write_str("ret"),
            ScalarInst::Halt => f.write_str("halt"),
            ScalarInst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        let i = ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Add,
            rd: Reg::R1,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R3),
        };
        assert_eq!(i.to_string(), "add r1, r2, r3");

        let i = ScalarInst::MovImm {
            cond: Cond::Gt,
            rd: Reg::R1,
            imm: 255,
        };
        assert_eq!(i.to_string(), "movgt r1, #255");

        let i = ScalarInst::LdF {
            fd: FReg::F0,
            base: Base::Sym(SymId::new(2)),
            index: Reg::R1,
        };
        assert_eq!(i.to_string(), "ldf f0, [sym2 + r1]");
    }

    #[test]
    fn defs_and_uses() {
        let i = ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Sub,
            rd: Reg::R4,
            rn: Reg::R5,
            op2: Operand2::Reg(Reg::R6),
        };
        assert_eq!(i.int_def(), Some(Reg::R4));
        assert_eq!(i.int_uses(), vec![Reg::R5, Reg::R6]);

        let st = ScalarInst::StInt {
            width: MemWidth::H,
            rs: Reg::R2,
            base: Base::Reg(Reg::R7),
            index: Reg::R0,
        };
        assert_eq!(st.int_def(), None);
        assert_eq!(st.int_uses(), vec![Reg::R2, Reg::R7, Reg::R0]);
        assert!(st.is_mem());
        assert!(!st.is_load());

        let bl = ScalarInst::Bl {
            target: 10,
            vectorizable: true,
        };
        assert_eq!(bl.int_def(), Some(Reg::LR));
        assert!(bl.is_control());
    }
}
