//! Program container: code, data segment, and the symbol table.

use std::fmt;

use crate::error::IsaError;
use crate::inst::Inst;

/// Default virtual address at which a program's data segment is mapped.
pub const DEFAULT_DATA_BASE: u32 = 0x1000_0000;

/// An index into a program's symbol table.
///
/// Memory operands reference data-segment arrays by symbol (like an ARM
/// literal pool / GOT slot), which keeps the fixed 32-bit instruction
/// encoding possible while allowing full 32-bit data addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(u16);

impl SymId {
    /// Maximum encodable symbol id (11-bit field in memory instructions).
    pub const MAX: u16 = 2047;

    /// Creates a symbol id.
    ///
    /// # Panics
    ///
    /// Panics if `id > SymId::MAX`.
    #[must_use]
    pub fn new(id: u16) -> SymId {
        assert!(id <= Self::MAX, "symbol id {id} exceeds {}", Self::MAX);
        SymId(id)
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A named region in the data segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (unique within a program).
    pub name: String,
    /// Address of the region (absolute virtual address).
    pub addr: u32,
    /// Region size in bytes.
    pub size: u32,
    /// Element size this region is conventionally accessed with (bytes);
    /// informational, used by disassembly and the constant-pool machinery.
    pub elem_bytes: u32,
}

/// A complete executable image: instructions, initial data, symbols.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The code section. Instruction `i` lives at code index `i`; the binary
    /// encoding maps it to byte address `i * 4`.
    pub code: Vec<Inst>,
    /// Initial data-segment image, mapped at [`Program::data_base`].
    pub data: Vec<u8>,
    /// Symbol table; [`SymId`] values index into this.
    pub symbols: Vec<Symbol>,
    /// Entry point (code index).
    pub entry: u32,
    /// Virtual address of the start of the data segment.
    pub data_base: u32,
    /// Optional map from code index to a human-readable label (function
    /// entries); used by disassembly and reports.
    pub labels: Vec<(u32, String)>,
}

impl Program {
    /// Resolves a symbol id to its symbol.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownSymbol`] if the id is out of range.
    pub fn symbol(&self, id: SymId) -> Result<&Symbol, IsaError> {
        self.symbols.get(id.index()).ok_or(IsaError::UnknownSymbol {
            name: id.to_string(),
        })
    }

    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol_by_name(&self, name: &str) -> Option<(SymId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (SymId::new(i as u16), s))
    }

    /// The label bound to a code index, if any.
    #[must_use]
    pub fn label_at(&self, index: u32) -> Option<&str> {
        self.labels
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, n)| n.as_str())
    }

    /// Code size in bytes under the fixed 32-bit encoding — the paper's
    /// code-size-overhead metric (§5 "Code Size Overhead").
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.code.len() * 4
    }

    /// Data-segment size in bytes.
    #[must_use]
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Validates the whole program: every instruction is internally valid,
    /// branch targets are in range, and symbol references resolve.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self) -> Result<(), IsaError> {
        use crate::scalar::ScalarInst;
        for (idx, inst) in self.code.iter().enumerate() {
            inst.validate()?;
            let check_target = |t: u32| -> Result<(), IsaError> {
                if (t as usize) < self.code.len() {
                    Ok(())
                } else {
                    Err(IsaError::InvalidCombination {
                        reason: format!("instruction {idx}: branch target @{t} out of range"),
                    })
                }
            };
            match inst {
                Inst::S(ScalarInst::B { target, .. }) => check_target(*target)?,
                Inst::S(ScalarInst::Bl { target, .. }) => check_target(*target)?,
                _ => {}
            }
            let sym = match inst {
                Inst::S(s) => s.base_symbol(),
                Inst::V(v) => match v {
                    crate::vector::VectorInst::VLd { base, .. }
                    | crate::vector::VectorInst::VSt { base, .. } => match base {
                        crate::op::Base::Sym(s) => Some(*s),
                        crate::op::Base::Reg(_) => None,
                    },
                    crate::vector::VectorInst::VAluConst { cnst, .. } => Some(*cnst),
                    _ => None,
                },
            };
            if let Some(s) = sym {
                self.symbol(s)?;
            }
        }
        if self.entry as usize >= self.code.len() && !self.code.is_empty() {
            return Err(IsaError::InvalidCombination {
                reason: format!("entry point @{} out of range", self.entry),
            });
        }
        Ok(())
    }

    /// Renders the full program as assembly text (disassembly). The output
    /// round-trips through [`crate::asm::assemble`].
    #[must_use]
    pub fn disassemble(&self) -> String {
        crate::asm::disassemble(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg, ScalarInst};

    fn tiny() -> Program {
        Program {
            code: vec![
                Inst::S(ScalarInst::MovImm {
                    cond: Cond::Al,
                    rd: Reg::R0,
                    imm: 1,
                }),
                Inst::S(ScalarInst::Halt),
            ],
            data: vec![0; 16],
            symbols: vec![Symbol {
                name: "a".to_string(),
                addr: DEFAULT_DATA_BASE,
                size: 16,
                elem_bytes: 4,
            }],
            entry: 0,
            data_base: DEFAULT_DATA_BASE,
            labels: vec![(0, "main".to_string())],
        }
    }

    #[test]
    fn symbol_lookup() {
        let p = tiny();
        assert_eq!(p.symbol(SymId::new(0)).unwrap().name, "a");
        assert!(p.symbol(SymId::new(1)).is_err());
        let (id, s) = p.symbol_by_name("a").unwrap();
        assert_eq!(id, SymId::new(0));
        assert_eq!(s.size, 16);
        assert!(p.symbol_by_name("b").is_none());
    }

    #[test]
    fn sizes_and_labels() {
        let p = tiny();
        assert_eq!(p.code_bytes(), 8);
        assert_eq!(p.data_bytes(), 16);
        assert_eq!(p.label_at(0), Some("main"));
        assert_eq!(p.label_at(1), None);
    }

    #[test]
    fn validate_catches_bad_targets() {
        let mut p = tiny();
        p.code.push(Inst::S(ScalarInst::B {
            cond: Cond::Al,
            target: 99,
        }));
        assert!(p.validate().is_err());
    }
}
