//! Property-based round-trip testing of the binary encoding and the
//! assembler over the full instruction space.

use liquid_simd_isa::{
    asm,
    encode::{decode, encode, ALU_IMM_MAX, ALU_IMM_MIN, MOV_IMM_MAX, MOV_IMM_MIN, VALU_IMM_MAX,
             VALU_IMM_MIN},
    AluOp, Base, Cond, ElemType, FReg, FpOp, Inst, MemWidth, Operand2, PermKind, ProgramBuilder,
    RedOp, Reg, ScalarInst, ScalarSrc, SymId, VAluOp, VReg, VectorInst,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::of)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..16).prop_map(FReg::of)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..16).prop_map(VReg::of)
}

fn cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn elem() -> impl Strategy<Value = ElemType> {
    prop::sample::select(ElemType::ALL.to_vec())
}

fn base() -> impl Strategy<Value = Base> {
    prop_oneof![
        reg().prop_map(Base::Reg),
        (0u16..=SymId::MAX).prop_map(|i| Base::Sym(SymId::new(i))),
    ]
}

fn operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        reg().prop_map(Operand2::Reg),
        (ALU_IMM_MIN..=ALU_IMM_MAX).prop_map(Operand2::Imm),
    ]
}

fn perm_kind() -> impl Strategy<Value = PermKind> {
    prop_oneof![
        prop::sample::select(vec![2u8, 4, 8, 16]).prop_map(|block| PermKind::Bfly { block }),
        prop::sample::select(vec![2u8, 4, 8, 16]).prop_map(|block| PermKind::Rev { block }),
        prop::sample::select(vec![2u8, 4, 8, 16]).prop_flat_map(|block| {
            (1u8..block).prop_map(move |amt| PermKind::Rot { block, amt })
        }),
    ]
}

fn scalar_inst() -> impl Strategy<Value = ScalarInst> {
    prop_oneof![
        (cond(), reg(), MOV_IMM_MIN..=MOV_IMM_MAX)
            .prop_map(|(cond, rd, imm)| ScalarInst::MovImm { cond, rd, imm }),
        (cond(), reg(), reg()).prop_map(|(cond, rd, rm)| ScalarInst::Mov { cond, rd, rm }),
        (
            cond(),
            prop::sample::select(AluOp::ALL.to_vec()),
            reg(),
            reg(),
            operand2()
        )
            .prop_map(|(cond, op, rd, rn, op2)| ScalarInst::Alu {
                cond,
                op,
                rd,
                rn,
                op2
            }),
        (reg(), operand2()).prop_map(|(rn, op2)| ScalarInst::Cmp { rn, op2 }),
        (
            prop::sample::select(FpOp::ALL.to_vec()),
            freg(),
            freg(),
            freg()
        )
            .prop_map(|(op, fd, fn_, fm)| ScalarInst::FAlu { op, fd, fn_, fm }),
        (cond(), freg(), freg()).prop_map(|(cond, fd, fm)| ScalarInst::FMov { cond, fd, fm }),
        (
            prop::sample::select(MemWidth::ALL.to_vec()),
            any::<bool>(),
            reg(),
            base(),
            reg()
        )
            .prop_map(|(width, signed, rd, base, index)| ScalarInst::LdInt {
                width,
                signed,
                rd,
                base,
                index
            }),
        (
            prop::sample::select(MemWidth::ALL.to_vec()),
            reg(),
            base(),
            reg()
        )
            .prop_map(|(width, rs, base, index)| ScalarInst::StInt {
                width,
                rs,
                base,
                index
            }),
        (freg(), base(), reg()).prop_map(|(fd, base, index)| ScalarInst::LdF { fd, base, index }),
        (freg(), base(), reg()).prop_map(|(fs, base, index)| ScalarInst::StF { fs, base, index }),
        Just(ScalarInst::Ret),
        Just(ScalarInst::Halt),
        Just(ScalarInst::Nop),
    ]
}

fn valu_with_elem() -> impl Strategy<Value = (VAluOp, ElemType)> {
    (prop::sample::select(VAluOp::ALL.to_vec()), elem())
        .prop_filter("valid op/elem", |(op, e)| op.valid_for(*e))
}

fn vector_inst() -> impl Strategy<Value = VectorInst> {
    prop_oneof![
        (elem(), any::<bool>(), vreg(), base(), reg()).prop_map(
            |(elem, signed, vd, base, index)| VectorInst::VLd {
                elem,
                signed,
                vd,
                base,
                index
            }
        ),
        (elem(), vreg(), base(), reg()).prop_map(|(elem, vs, base, index)| VectorInst::VSt {
            elem,
            vs,
            base,
            index
        }),
        (valu_with_elem(), vreg(), vreg(), vreg()).prop_map(|((op, elem), vd, vn, vm)| {
            VectorInst::VAlu {
                op,
                elem,
                vd,
                vn,
                vm,
            }
        }),
        (valu_with_elem(), vreg(), vreg(), VALU_IMM_MIN..=VALU_IMM_MAX).prop_map(
            |((op, elem), vd, vn, imm)| VectorInst::VAluImm {
                op,
                elem,
                vd,
                vn,
                imm
            }
        ),
        (valu_with_elem(), vreg(), vreg(), 0u16..512).prop_map(
            |((op, elem), vd, vn, sym)| VectorInst::VAluConst {
                op,
                elem,
                vd,
                vn,
                cnst: SymId::new(sym)
            }
        ),
        (
            valu_with_elem(),
            vreg(),
            vreg(),
            prop_oneof![reg().prop_map(ScalarSrc::R), freg().prop_map(ScalarSrc::F)]
        )
            .prop_map(|((op, elem), vd, vn, src)| VectorInst::VAluScalar {
                op,
                elem,
                vd,
                vn,
                src
            }),
        (
            prop::sample::select(RedOp::ALL.to_vec()),
            prop::sample::select(vec![ElemType::I8, ElemType::I16, ElemType::I32]),
            reg(),
            vreg()
        )
            .prop_map(|(op, elem, rd, vn)| VectorInst::VRedI { op, elem, rd, vn }),
        (prop::sample::select(RedOp::ALL.to_vec()), freg(), vreg())
            .prop_map(|(op, fd, vn)| VectorInst::VRedF { op, fd, vn }),
        (perm_kind(), elem(), vreg(), vreg())
            .prop_map(|(kind, elem, vd, vn)| VectorInst::VPerm { kind, elem, vd, vn }),
        (elem(), vreg(), -(1 << 16)..(1i32 << 16) - 1)
            .prop_map(|(elem, vd, imm)| VectorInst::VSplat { elem, vd, imm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn scalar_encoding_roundtrips(inst in scalar_inst(), pc in 0u32..100_000) {
        let i = Inst::S(inst);
        let word = encode(&i, pc).expect("encodes");
        let back = decode(word, pc).expect("decodes");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn vector_encoding_roundtrips(inst in vector_inst(), pc in 0u32..100_000) {
        let i = Inst::V(inst);
        let word = encode(&i, pc).expect("encodes");
        let back = decode(word, pc).expect("decodes");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn branches_roundtrip_with_relative_offsets(pc in 0u32..1_000_000, delta in -100_000i64..100_000) {
        let target = i64::from(pc) + delta;
        prop_assume!(target >= 0);
        let i = Inst::S(ScalarInst::B { cond: Cond::Lt, target: target as u32 });
        let word = encode(&i, pc).expect("encodes");
        prop_assert_eq!(decode(word, pc).expect("decodes"), i);
        let c = Inst::S(ScalarInst::Bl { target: target as u32, vectorizable: delta % 2 == 0 });
        let word = encode(&c, pc).expect("encodes");
        prop_assert_eq!(decode(word, pc).expect("decodes"), c);
    }

    #[test]
    fn decode_never_panics_on_garbage(word in any::<u32>(), pc in 0u32..1_000_000) {
        let _ = decode(word, pc); // must return Ok or Err, never panic
    }

    /// Text round-trip: random (straight-line) programs survive
    /// disassemble → assemble intact.
    #[test]
    fn assembler_roundtrips_programs(insts in prop::collection::vec(
        prop_oneof![scalar_inst().prop_map(Inst::S), vector_inst().prop_map(Inst::V)],
        1..40,
    )) {
        let mut b = ProgramBuilder::new();
        // Enough symbols for every possible SymId reference below 512 would
        // be wasteful; instead, remap symbol references into a small table.
        for i in 0..8 {
            b.add_i32s(&format!("s{i}"), &[0, 1, 2, 3]);
        }
        let fixup_sym = |s: SymId| SymId::new((s.index() % 8) as u16);
        let fix_base = |base: Base| match base {
            Base::Sym(s) => Base::Sym(fixup_sym(s)),
            r => r,
        };
        for inst in &insts {
            let inst = match *inst {
                Inst::S(ScalarInst::LdInt { width, signed, rd, base, index }) =>
                    Inst::S(ScalarInst::LdInt { width, signed, rd, base: fix_base(base), index }),
                Inst::S(ScalarInst::StInt { width, rs, base, index }) =>
                    Inst::S(ScalarInst::StInt { width, rs, base: fix_base(base), index }),
                Inst::S(ScalarInst::LdF { fd, base, index }) =>
                    Inst::S(ScalarInst::LdF { fd, base: fix_base(base), index }),
                Inst::S(ScalarInst::StF { fs, base, index }) =>
                    Inst::S(ScalarInst::StF { fs, base: fix_base(base), index }),
                Inst::V(VectorInst::VLd { elem, signed, vd, base, index }) =>
                    Inst::V(VectorInst::VLd { elem, signed, vd, base: fix_base(base), index }),
                Inst::V(VectorInst::VSt { elem, vs, base, index }) =>
                    Inst::V(VectorInst::VSt { elem, vs, base: fix_base(base), index }),
                Inst::V(VectorInst::VAluConst { op, elem, vd, vn, cnst }) =>
                    Inst::V(VectorInst::VAluConst { op, elem, vd, vn, cnst: fixup_sym(cnst) }),
                // `ret`/`halt` would be fine, but keep the program shape
                // trivially valid by dropping nothing.
                other => other,
            };
            b.push(inst);
        }
        b.halt();
        let p = b.finish().expect("valid program");
        let text = p.disassemble();
        let p2 = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(&p.code, &p2.code, "text:\n{}", text);
    }
}
