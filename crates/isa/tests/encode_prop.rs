//! Property-based round-trip testing of the binary encoding and the
//! assembler over the full instruction space.
//!
//! Random instructions come from a small inline xorshift generator (the
//! ISA crate is dependency-free, so no external PRNG). Each case is
//! reproducible from its printed seed; build with `--features fuzz` for a
//! deeper sweep.

use liquid_simd_isa::{
    asm,
    encode::{
        decode, encode, ALU_IMM_MAX, ALU_IMM_MIN, MOV_IMM_MAX, MOV_IMM_MIN, VALU_IMM_MAX,
        VALU_IMM_MIN,
    },
    AluOp, Base, Cond, ElemType, FReg, FpOp, Inst, MemWidth, Operand2, PermKind, ProgramBuilder,
    RedOp, Reg, ScalarInst, ScalarSrc, SymId, VAluOp, VReg, VectorInst,
};

const CASES: u64 = if cfg!(feature = "fuzz") { 16_384 } else { 2048 };

/// Inline xorshift64* — enough randomness for instruction fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo.wrapping_add((self.next() % hi.wrapping_sub(lo) as u64) as i64)
    }

    fn index(&mut self, len: usize) -> usize {
        (self.next() % len as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.index(items.len())]
    }
}

fn reg(rng: &mut Rng) -> Reg {
    Reg::of(rng.range(0, 16) as u8)
}

fn freg(rng: &mut Rng) -> FReg {
    FReg::of(rng.range(0, 16) as u8)
}

fn vreg(rng: &mut Rng) -> VReg {
    VReg::of(rng.range(0, 16) as u8)
}

fn cond(rng: &mut Rng) -> Cond {
    rng.pick(&Cond::ALL)
}

fn elem(rng: &mut Rng) -> ElemType {
    rng.pick(&ElemType::ALL)
}

fn base(rng: &mut Rng) -> Base {
    if rng.bool() {
        Base::Reg(reg(rng))
    } else {
        Base::Sym(SymId::new(rng.range(0, i64::from(SymId::MAX) + 1) as u16))
    }
}

fn operand2(rng: &mut Rng) -> Operand2 {
    if rng.bool() {
        Operand2::Reg(reg(rng))
    } else {
        Operand2::Imm(rng.range(i64::from(ALU_IMM_MIN), i64::from(ALU_IMM_MAX) + 1) as i32)
    }
}

fn perm_kind(rng: &mut Rng) -> PermKind {
    let block = rng.pick(&[2u8, 4, 8, 16]);
    match rng.index(3) {
        0 => PermKind::Bfly { block },
        1 => PermKind::Rev { block },
        _ => PermKind::Rot {
            block,
            amt: rng.range(1, i64::from(block)) as u8,
        },
    }
}

fn scalar_inst(rng: &mut Rng) -> ScalarInst {
    match rng.index(13) {
        0 => ScalarInst::MovImm {
            cond: cond(rng),
            rd: reg(rng),
            imm: rng.range(i64::from(MOV_IMM_MIN), i64::from(MOV_IMM_MAX) + 1) as i32,
        },
        1 => ScalarInst::Mov {
            cond: cond(rng),
            rd: reg(rng),
            rm: reg(rng),
        },
        2 => ScalarInst::Alu {
            cond: cond(rng),
            op: rng.pick(&AluOp::ALL),
            rd: reg(rng),
            rn: reg(rng),
            op2: operand2(rng),
        },
        3 => ScalarInst::Cmp {
            rn: reg(rng),
            op2: operand2(rng),
        },
        4 => ScalarInst::FAlu {
            op: rng.pick(&FpOp::ALL),
            fd: freg(rng),
            fn_: freg(rng),
            fm: freg(rng),
        },
        5 => ScalarInst::FMov {
            cond: cond(rng),
            fd: freg(rng),
            fm: freg(rng),
        },
        6 => ScalarInst::LdInt {
            width: rng.pick(&MemWidth::ALL),
            signed: rng.bool(),
            rd: reg(rng),
            base: base(rng),
            index: reg(rng),
        },
        7 => ScalarInst::StInt {
            width: rng.pick(&MemWidth::ALL),
            rs: reg(rng),
            base: base(rng),
            index: reg(rng),
        },
        8 => ScalarInst::LdF {
            fd: freg(rng),
            base: base(rng),
            index: reg(rng),
        },
        9 => ScalarInst::StF {
            fs: freg(rng),
            base: base(rng),
            index: reg(rng),
        },
        10 => ScalarInst::Ret,
        11 => ScalarInst::Halt,
        _ => ScalarInst::Nop,
    }
}

fn valu_with_elem(rng: &mut Rng) -> (VAluOp, ElemType) {
    loop {
        let op = rng.pick(&VAluOp::ALL);
        let e = elem(rng);
        if op.valid_for(e) {
            return (op, e);
        }
    }
}

fn vector_inst(rng: &mut Rng) -> VectorInst {
    match rng.index(10) {
        0 => VectorInst::VLd {
            elem: elem(rng),
            signed: rng.bool(),
            vd: vreg(rng),
            base: base(rng),
            index: reg(rng),
        },
        1 => VectorInst::VSt {
            elem: elem(rng),
            vs: vreg(rng),
            base: base(rng),
            index: reg(rng),
        },
        2 => {
            let (op, elem) = valu_with_elem(rng);
            VectorInst::VAlu {
                op,
                elem,
                vd: vreg(rng),
                vn: vreg(rng),
                vm: vreg(rng),
            }
        }
        3 => {
            let (op, elem) = valu_with_elem(rng);
            VectorInst::VAluImm {
                op,
                elem,
                vd: vreg(rng),
                vn: vreg(rng),
                imm: rng.range(i64::from(VALU_IMM_MIN), i64::from(VALU_IMM_MAX) + 1) as i32,
            }
        }
        4 => {
            let (op, elem) = valu_with_elem(rng);
            VectorInst::VAluConst {
                op,
                elem,
                vd: vreg(rng),
                vn: vreg(rng),
                cnst: SymId::new(rng.range(0, 512) as u16),
            }
        }
        5 => {
            let (op, elem) = valu_with_elem(rng);
            VectorInst::VAluScalar {
                op,
                elem,
                vd: vreg(rng),
                vn: vreg(rng),
                src: if rng.bool() {
                    ScalarSrc::R(reg(rng))
                } else {
                    ScalarSrc::F(freg(rng))
                },
            }
        }
        6 => VectorInst::VRedI {
            op: rng.pick(&RedOp::ALL),
            elem: rng.pick(&[ElemType::I8, ElemType::I16, ElemType::I32]),
            rd: reg(rng),
            vn: vreg(rng),
        },
        7 => VectorInst::VRedF {
            op: rng.pick(&RedOp::ALL),
            fd: freg(rng),
            vn: vreg(rng),
        },
        8 => VectorInst::VPerm {
            kind: perm_kind(rng),
            elem: elem(rng),
            vd: vreg(rng),
            vn: vreg(rng),
        },
        _ => VectorInst::VSplat {
            elem: elem(rng),
            vd: vreg(rng),
            imm: rng.range(-(1 << 16), 1 << 16) as i32,
        },
    }
}

#[test]
fn scalar_encoding_roundtrips() {
    let mut rng = Rng::new(0x5CA1);
    for case in 0..CASES {
        let i = Inst::S(scalar_inst(&mut rng));
        let pc = rng.range(0, 100_000) as u32;
        let word = encode(&i, pc).expect("encodes");
        let back = decode(word, pc).expect("decodes");
        assert_eq!(back, i, "case {case} at pc {pc}");
    }
}

#[test]
fn vector_encoding_roundtrips() {
    let mut rng = Rng::new(0x7EC7);
    for case in 0..CASES {
        let i = Inst::V(vector_inst(&mut rng));
        let pc = rng.range(0, 100_000) as u32;
        let word = encode(&i, pc).expect("encodes");
        let back = decode(word, pc).expect("decodes");
        assert_eq!(back, i, "case {case} at pc {pc}");
    }
}

#[test]
fn branches_roundtrip_with_relative_offsets() {
    let mut rng = Rng::new(0xB4A9);
    let mut cases = 0;
    while cases < CASES {
        let pc = rng.range(0, 1_000_000) as u32;
        let delta = rng.range(-100_000, 100_000);
        let target = i64::from(pc) + delta;
        if target < 0 {
            continue;
        }
        cases += 1;
        let i = Inst::S(ScalarInst::B {
            cond: Cond::Lt,
            target: target as u32,
        });
        let word = encode(&i, pc).expect("encodes");
        assert_eq!(decode(word, pc).expect("decodes"), i);
        let c = Inst::S(ScalarInst::Bl {
            target: target as u32,
            vectorizable: delta % 2 == 0,
        });
        let word = encode(&c, pc).expect("encodes");
        assert_eq!(decode(word, pc).expect("decodes"), c);
    }
}

#[test]
fn decode_never_panics_on_garbage() {
    let mut rng = Rng::new(0xDEAD);
    for _ in 0..CASES * 4 {
        let word = rng.next() as u32;
        let pc = rng.range(0, 1_000_000) as u32;
        let _ = decode(word, pc); // must return Ok or Err, never panic
    }
}

/// Text round-trip: random (straight-line) programs survive
/// disassemble → assemble intact.
#[test]
fn assembler_roundtrips_programs() {
    let mut rng = Rng::new(0xA53B);
    for case in 0..CASES / 8 {
        let len = rng.range(1, 40) as usize;
        let insts: Vec<Inst> = (0..len)
            .map(|_| {
                if rng.bool() {
                    Inst::S(scalar_inst(&mut rng))
                } else {
                    Inst::V(vector_inst(&mut rng))
                }
            })
            .collect();

        let mut b = ProgramBuilder::new();
        // Enough symbols for every possible SymId reference below 512 would
        // be wasteful; instead, remap symbol references into a small table.
        for i in 0..8 {
            b.add_i32s(&format!("s{i}"), &[0, 1, 2, 3]);
        }
        let fixup_sym = |s: SymId| SymId::new((s.index() % 8) as u16);
        let fix_base = |base: Base| match base {
            Base::Sym(s) => Base::Sym(fixup_sym(s)),
            r => r,
        };
        for inst in &insts {
            let inst = match *inst {
                Inst::S(ScalarInst::LdInt {
                    width,
                    signed,
                    rd,
                    base,
                    index,
                }) => Inst::S(ScalarInst::LdInt {
                    width,
                    signed,
                    rd,
                    base: fix_base(base),
                    index,
                }),
                Inst::S(ScalarInst::StInt {
                    width,
                    rs,
                    base,
                    index,
                }) => Inst::S(ScalarInst::StInt {
                    width,
                    rs,
                    base: fix_base(base),
                    index,
                }),
                Inst::S(ScalarInst::LdF { fd, base, index }) => Inst::S(ScalarInst::LdF {
                    fd,
                    base: fix_base(base),
                    index,
                }),
                Inst::S(ScalarInst::StF { fs, base, index }) => Inst::S(ScalarInst::StF {
                    fs,
                    base: fix_base(base),
                    index,
                }),
                Inst::V(VectorInst::VLd {
                    elem,
                    signed,
                    vd,
                    base,
                    index,
                }) => Inst::V(VectorInst::VLd {
                    elem,
                    signed,
                    vd,
                    base: fix_base(base),
                    index,
                }),
                Inst::V(VectorInst::VSt {
                    elem,
                    vs,
                    base,
                    index,
                }) => Inst::V(VectorInst::VSt {
                    elem,
                    vs,
                    base: fix_base(base),
                    index,
                }),
                Inst::V(VectorInst::VAluConst {
                    op,
                    elem,
                    vd,
                    vn,
                    cnst,
                }) => Inst::V(VectorInst::VAluConst {
                    op,
                    elem,
                    vd,
                    vn,
                    cnst: fixup_sym(cnst),
                }),
                // `ret`/`halt` would be fine, but keep the program shape
                // trivially valid by dropping nothing.
                other => other,
            };
            b.push(inst);
        }
        b.halt();
        let p = b.finish().expect("valid program");
        let text = p.disassemble();
        let p2 = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("case {case}: reassembly failed: {e}\n{text}"));
        assert_eq!(&p.code, &p2.code, "case {case} text:\n{text}");
    }
}
