//! Retirement events — the translator's input interface.

use liquid_simd_isa::ScalarInst;

/// One retired scalar instruction, as delivered by the pipeline's
/// post-retirement tap (the `Inst`/`Data`/`Abort` inputs of paper Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retired {
    /// Code index the instruction retired from.
    pub pc: u32,
    /// The instruction itself (the "partial decoder" consumes this).
    pub inst: ScalarInst,
    /// Whether the instruction's predicate passed. Predicated instructions
    /// retire either way; the translator matches idioms on the *static*
    /// sequence, so this is informational.
    pub executed: bool,
    /// The integer value the instruction produced (load result or ALU
    /// result), if any — the `Data` input of the translator. Only values of
    /// integer loads are consulted (offset/constant array detection).
    pub value: Option<i64>,
    /// For branches: whether the branch was taken.
    pub taken: bool,
}

impl Retired {
    /// Convenience constructor for non-branch instructions.
    #[must_use]
    pub fn plain(pc: u32, inst: ScalarInst, value: Option<i64>) -> Retired {
        Retired {
            pc,
            inst,
            executed: true,
            value,
            taken: false,
        }
    }
}
