//! The translation automaton: loop discovery, rule application (paper
//! Table 3), iteration verification, and finalisation.
//!
//! Lifecycle, as driven by the pipeline:
//!
//! 1. [`Translator::begin`] when an outlined function is called and no
//!    microcode exists for it yet;
//! 2. [`Translator::observe`] for every subsequently retired instruction;
//! 3. the automaton recognises the loop structure from the *dynamic* stream:
//!    everything up to the first backward-taken branch is prologue + first
//!    iteration; later iterations are verified against the first and feed
//!    value trackers; `ret` finalises;
//! 4. [`Progress::Finished`] carries the microcode; [`Progress::Aborted`]
//!    reports the legality check that failed. Either way the translator
//!    returns to idle.

use liquid_simd_isa::{
    encode::{VALU_IMM_MAX, VALU_IMM_MIN},
    AluOp, Base, Cond, ElemType, FpOp, Inst, MemWidth, Operand2, RedOp, Reg, ScalarInst, ScalarSrc,
    VAluOp, VReg, VectorInst,
};

/// Whether a constant fits the vector-immediate field.
fn fits_valu_imm(value: i64) -> bool {
    i32::try_from(value).is_ok_and(|v| (VALU_IMM_MIN..=VALU_IMM_MAX).contains(&v))
}

use liquid_simd_trace::{SpanId, TraceEvent, Tracer, Track};

use crate::buffer::{Slot, UopBuffer};
use crate::event::Retired;
use crate::idiom::{collapse, BodyOp, BodyOpKind};
use crate::state::{AbortReason, RegClass, Tracker};
use crate::stats::{AbortRecord, TrackerSnapshot, TranslatorStats};

/// Configuration of a dynamic translator instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslatorConfig {
    /// Target accelerator width in lanes (paper sweeps 2/4/8/16).
    pub lanes: usize,
    /// Microcode buffer capacity in instructions (64 in the paper, §4.1).
    pub max_uops: usize,
    /// Bit width of each recorded previous value in the hardware register
    /// state. The paper's 56-bit budget gives 6 bits per value at 8 lanes;
    /// our default is 12 bits so that common mask constants (e.g. `0xFF`)
    /// remain representable and the splat optimisation (Table 3 rule 7) can
    /// fire. Values that do not fit degrade or abort exactly as the paper
    /// describes.
    pub value_bits: u32,
    /// Enforce `value_bits` (hardware translator). A software JIT
    /// translator keeps full-width values and sets this to `false`.
    pub hw_value_limit: bool,
}

impl Default for TranslatorConfig {
    fn default() -> TranslatorConfig {
        TranslatorConfig {
            lanes: 8,
            max_uops: 64,
            value_bits: 12,
            hw_value_limit: true,
        }
    }
}

impl TranslatorConfig {
    /// Half-range of the hardware value field, or `None` when unlimited.
    #[must_use]
    pub fn value_limit(&self) -> Option<i64> {
        self.hw_value_limit.then(|| 1i64 << (self.value_bits - 1))
    }
}

/// A finished translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Code index of the translated function's entry.
    pub func_pc: u32,
    /// The generated microcode. Branch targets are microcode-local indices;
    /// the final instruction is `ret`.
    pub code: Vec<Inst>,
    /// Dynamic scalar instructions observed during translation (drives the
    /// translation-latency model).
    pub dynamic_instrs: u64,
    /// Number of loops vectorised.
    pub loops: usize,
}

/// Outcome of feeding one retired instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Progress {
    /// Still translating.
    Ongoing,
    /// Translation finished successfully.
    Finished(Translation),
    /// Translation aborted; the scalar code remains the fallback.
    Aborted(AbortReason),
}

#[derive(Clone, Copy, Debug)]
struct Event {
    pc: u32,
    inst: ScalarInst,
    value: Option<i64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Bank {
    Int,
    Fp,
}

/// Maps scalar registers (by bank) to allocated vector registers.
#[derive(Clone, Debug, Default)]
struct VMap {
    int: [Option<VReg>; 16],
    fp: [Option<VReg>; 16],
    next: u8,
}

impl VMap {
    fn get(&mut self, bank: Bank, idx: u8) -> Result<VReg, AbortReason> {
        let slot = match bank {
            Bank::Int => &mut self.int[idx as usize],
            Bank::Fp => &mut self.fp[idx as usize],
        };
        if let Some(v) = *slot {
            return Ok(v);
        }
        if self.next >= 16 {
            return Err(AbortReason::RegisterPressure);
        }
        let v = VReg::of(self.next);
        self.next += 1;
        *slot = Some(v);
        Ok(v)
    }

    fn fresh(&mut self) -> Result<VReg, AbortReason> {
        if self.next >= 16 {
            return Err(AbortReason::RegisterPressure);
        }
        let v = VReg::of(self.next);
        self.next += 1;
        Ok(v)
    }
}

struct LoopState {
    body_pcs: Vec<u32>,
    pos: usize,
    iters_done: u64,
    bound: Option<i64>,
    /// `body position -> tracker` for value recording.
    tracked: Vec<(usize, usize)>,
}

enum Phase {
    Collect { events: Vec<Event> },
    Loop(LoopState),
}

struct Active {
    func_pc: u32,
    dynamic: u64,
    /// PC of the most recently observed retired instruction (abort
    /// provenance; stays 0 if the region aborts before observing any).
    last_pc: u32,
    /// The most recently observed instruction itself.
    last_inst: Option<ScalarInst>,
    regs: [RegClass; 16],
    fregs: [RegClass; 16],
    vmap: VMap,
    buffer: UopBuffer,
    trackers: Vec<Tracker>,
    loops: usize,
    induction: Option<Reg>,
    phase: Phase,
}

/// Snapshots the automaton state at the moment `reason` fired.
fn abort_record(active: &Active, reason: AbortReason) -> AbortRecord {
    fn classes(bank: &[RegClass; 16]) -> Vec<(u8, RegClass)> {
        bank.iter()
            .enumerate()
            .filter(|&(_, c)| *c != RegClass::Unknown)
            .map(|(i, c)| (i as u8, *c))
            .collect()
    }
    AbortRecord {
        func_pc: active.func_pc,
        pc: active.last_pc,
        opcode: active
            .last_inst
            .map_or_else(|| "-".to_string(), |inst| inst.to_string()),
        instr_index: active.dynamic,
        phase: match active.phase {
            Phase::Collect { .. } => "collect",
            Phase::Loop(_) => "loop",
        },
        regs: classes(&active.regs),
        fregs: classes(&active.fregs),
        trackers: active
            .trackers
            .iter()
            .map(|t| TrackerSnapshot {
                values: t.values.clone(),
                complete: t.complete(),
                consistent: t.consistent,
                wide: t.wide,
                address_use: t.address_use,
            })
            .collect(),
        loops_done: active.loops,
        reason,
    }
}

/// The post-retirement dynamic translator.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Default)]
pub struct Translator {
    config: TranslatorConfig,
    stats: TranslatorStats,
    active: Option<Active>,
    tracer: Option<Tracer>,
    /// Open `translate@pc` span for the in-flight attempt (tracer only).
    span: Option<SpanId>,
}

impl std::fmt::Debug for Translator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Translator")
            .field("config", &self.config)
            .field("active", &self.active.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Translator {
    /// Creates an idle translator.
    #[must_use]
    pub fn new(config: TranslatorConfig) -> Translator {
        Translator {
            config,
            stats: TranslatorStats::default(),
            active: None,
            tracer: None,
            span: None,
        }
    }

    /// Attaches a tracer; every lifecycle transition (begin / progress /
    /// commit / abort) then emits a matching [`TraceEvent`]. Without a
    /// tracer each site pays one branch.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The configured parameters.
    #[must_use]
    pub fn config(&self) -> &TranslatorConfig {
        &self.config
    }

    /// Whether a translation is in flight.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> &TranslatorStats {
        &self.stats
    }

    /// Starts shadowing an outlined function whose entry is `func_pc`.
    /// Call after the `bl` retires; feed every following retired
    /// instruction to [`Translator::observe`].
    ///
    /// # Panics
    ///
    /// Panics if a translation is already active (the hardware has a single
    /// translation unit; the pipeline must check [`Translator::is_active`]).
    pub fn begin(&mut self, func_pc: u32) {
        assert!(
            self.active.is_none(),
            "translator is single-threaded: finish or abort first"
        );
        self.stats.attempts += 1;
        if let Some(tracer) = &self.tracer {
            tracer.emit(TraceEvent::TranslationBegin { func_pc });
            self.span = Some(tracer.span_begin(Track::Translator, &format!("translate@{func_pc}")));
        }
        self.active = Some(Active {
            func_pc,
            dynamic: 0,
            last_pc: 0,
            last_inst: None,
            regs: Default::default(),
            fregs: Default::default(),
            vmap: VMap::default(),
            buffer: UopBuffer::new(),
            trackers: Vec::new(),
            loops: 0,
            induction: None,
            phase: Phase::Collect { events: Vec::new() },
        });
    }

    /// Aborts any in-flight translation from outside (interrupt / context
    /// switch — the pipeline `Abort` input of paper Figure 5).
    pub fn abort_external(&mut self, what: &'static str) {
        if let Some(active) = self.active.take() {
            let reason = AbortReason::External { what };
            let tag = reason.tag();
            self.stats.record_abort_with(abort_record(&active, reason));
            if let Some(tracer) = &self.tracer {
                tracer.emit(TraceEvent::TranslationAbort {
                    func_pc: active.func_pc,
                    reason: tag,
                });
            }
            self.end_span();
        }
    }

    /// Closes the open translation span, if any.
    fn end_span(&mut self) {
        if let (Some(tracer), Some(span)) = (&self.tracer, self.span.take()) {
            tracer.span_end(span);
        }
    }

    /// Feeds one retired instruction; returns the translation progress.
    pub fn observe(&mut self, r: &Retired) -> Progress {
        let Some(mut active) = self.active.take() else {
            return Progress::Ongoing;
        };
        active.dynamic += 1;
        active.last_pc = r.pc;
        active.last_inst = Some(r.inst);
        self.stats.instrs_observed += 1;
        match active.phase {
            Phase::Collect { .. } => self.stats.collect_observed += 1,
            Phase::Loop(_) => self.stats.loop_observed += 1,
        }
        let func_pc = active.func_pc;
        let outcome = step(&mut active, r, &self.config);
        self.stats.buffer_high_water = self.stats.buffer_high_water.max(active.buffer.len() as u64);
        match outcome {
            Ok(None) => {
                if let Some(tracer) = &self.tracer {
                    tracer.emit(TraceEvent::TranslationProgress {
                        func_pc,
                        observed: active.dynamic,
                    });
                }
                self.active = Some(active);
                Progress::Ongoing
            }
            Ok(Some(translation)) => {
                self.stats.successes += 1;
                self.stats.uops_emitted += translation.code.len() as u64;
                if let Some(tracer) = &self.tracer {
                    tracer.emit(TraceEvent::TranslationCommit {
                        func_pc,
                        uops: translation.code.len() as u64,
                        dynamic_instrs: translation.dynamic_instrs,
                    });
                }
                self.end_span();
                Progress::Finished(translation)
            }
            Err(reason) => {
                self.stats
                    .record_abort_with(abort_record(&active, reason.clone()));
                if let Some(tracer) = &self.tracer {
                    tracer.emit(TraceEvent::TranslationAbort {
                        func_pc,
                        reason: reason.tag(),
                    });
                }
                self.end_span();
                Progress::Aborted(reason)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Automaton steps
// ---------------------------------------------------------------------------

fn step(
    active: &mut Active,
    r: &Retired,
    config: &TranslatorConfig,
) -> Result<Option<Translation>, AbortReason> {
    match &mut active.phase {
        Phase::Collect { .. } => step_collect(active, r, config),
        Phase::Loop(_) => step_loop(active, r, config),
    }
}

fn step_collect(
    active: &mut Active,
    r: &Retired,
    config: &TranslatorConfig,
) -> Result<Option<Translation>, AbortReason> {
    match r.inst {
        ScalarInst::Bl { .. } => Err(AbortReason::NestedCall),
        ScalarInst::Halt => Err(AbortReason::UnsupportedOpcode { pc: r.pc }),
        ScalarInst::Ret => {
            // Function end: flush pending straight-line code and finish.
            let events = take_events(active);
            for ev in &events {
                classify_straightline(active, ev)?;
            }
            if active.loops == 0 {
                return Err(AbortReason::NoLoop);
            }
            active.buffer.push(Slot::Fixed(Inst::S(ScalarInst::Ret)));
            let code =
                active
                    .buffer
                    .materialize(&active.trackers, config.lanes, config.max_uops)?;
            Ok(Some(Translation {
                func_pc: active.func_pc,
                code,
                dynamic_instrs: active.dynamic,
                loops: active.loops,
            }))
        }
        ScalarInst::B { cond, target } => {
            if !(r.taken && target <= r.pc) {
                return Err(AbortReason::UnsupportedShape {
                    what: "forward or untaken control flow in outlined region",
                });
            }
            // Backward-taken branch: the loop's first iteration just ended.
            let events = take_events(active);
            let split = events.iter().position(|e| e.pc == target).ok_or(
                AbortReason::UnsupportedShape {
                    what: "loop entered other than at its top",
                },
            )?;
            let (prologue, body) = events.split_at(split);
            for ev in prologue {
                classify_straightline(active, ev)?;
            }
            active.buffer.push(Slot::LoopTop);
            let (bound, tracked) = classify_body(active, body, config)?;
            active.buffer.push(Slot::LoopBranch { cond });
            let mut body_pcs: Vec<u32> = body.iter().map(|e| e.pc).collect();
            body_pcs.push(r.pc);
            active.phase = Phase::Loop(LoopState {
                body_pcs,
                pos: 0,
                iters_done: 1,
                bound,
                tracked,
            });
            Ok(None)
        }
        _ => {
            let Phase::Collect { events } = &mut active.phase else {
                unreachable!()
            };
            events.push(Event {
                pc: r.pc,
                inst: r.inst,
                value: r.value,
            });
            Ok(None)
        }
    }
}

fn step_loop(
    active: &mut Active,
    r: &Retired,
    config: &TranslatorConfig,
) -> Result<Option<Translation>, AbortReason> {
    let Phase::Loop(ls) = &mut active.phase else {
        unreachable!()
    };
    let expected = ls.body_pcs[ls.pos];
    if r.pc != expected {
        return Err(AbortReason::IterationMismatch { pc: r.pc });
    }
    // Record tracked load values.
    if let Some(&(_, tracker)) = ls.tracked.iter().find(|&&(p, _)| p == ls.pos) {
        let value = r.value.unwrap_or(0);
        active.trackers[tracker].record(value, config.value_limit());
    }
    let last = ls.pos + 1 == ls.body_pcs.len();
    if last {
        ls.iters_done += 1;
        if r.taken {
            ls.pos = 0;
            return Ok(None);
        }
        // Loop complete.
        let trip = ls.iters_done;
        if trip % config.lanes as u64 != 0 {
            return Err(AbortReason::TripNotMultiple {
                trip,
                lanes: config.lanes,
            });
        }
        if let Some(bound) = ls.bound {
            if bound != trip as i64 {
                return Err(AbortReason::BoundMismatch);
            }
        } else {
            return Err(AbortReason::UnsupportedShape {
                what: "loop without induction-bound compare",
            });
        }
        active.loops += 1;
        active.phase = Phase::Collect { events: Vec::new() };
        Ok(None)
    } else {
        ls.pos += 1;
        Ok(None)
    }
}

fn take_events(active: &mut Active) -> Vec<Event> {
    match &mut active.phase {
        Phase::Collect { events } => std::mem::take(events),
        Phase::Loop(_) => unreachable!("take_events outside collect phase"),
    }
}

// ---------------------------------------------------------------------------
// Straight-line (prologue / epilogue) classification: everything must be
// scalar; vector values must not escape loops.
// ---------------------------------------------------------------------------

fn classify_straightline(active: &mut Active, ev: &Event) -> Result<(), AbortReason> {
    let scalarish = |c: RegClass| c.is_scalarish();
    match ev.inst {
        ScalarInst::MovImm { cond, rd, imm } => {
            if cond != Cond::Al {
                return Err(AbortReason::UnsupportedOpcode { pc: ev.pc });
            }
            active.regs[rd.index() as usize] = RegClass::Const(i64::from(imm));
        }
        ScalarInst::Mov { cond, rd, rm } => {
            if cond != Cond::Al || !scalarish(active.regs[rm.index() as usize]) {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar move outside loop",
                });
            }
            active.regs[rd.index() as usize] = active.regs[rm.index() as usize];
        }
        ScalarInst::Alu {
            cond, rd, rn, op2, ..
        } => {
            if cond != Cond::Al {
                return Err(AbortReason::UnsupportedOpcode { pc: ev.pc });
            }
            let rn_ok = scalarish(active.regs[rn.index() as usize]);
            let op2_ok = match op2 {
                Operand2::Imm(_) => true,
                Operand2::Reg(r) => scalarish(active.regs[r.index() as usize]),
            };
            if !rn_ok || !op2_ok {
                return Err(AbortReason::UnsupportedShape {
                    what: "vector or induction value used outside loop",
                });
            }
            active.regs[rd.index() as usize] = RegClass::Scalar;
        }
        ScalarInst::Cmp { rn, op2 } => {
            let ok = scalarish(active.regs[rn.index() as usize])
                && match op2 {
                    Operand2::Imm(_) => true,
                    Operand2::Reg(r) => scalarish(active.regs[r.index() as usize]),
                };
            if !ok {
                return Err(AbortReason::UnsupportedShape {
                    what: "vector compare outside loop",
                });
            }
        }
        ScalarInst::FAlu { fd, fn_, fm, .. } => {
            if !scalarish(active.fregs[fn_.index() as usize])
                || !scalarish(active.fregs[fm.index() as usize])
            {
                return Err(AbortReason::UnsupportedShape {
                    what: "vector fp value used outside loop",
                });
            }
            active.fregs[fd.index() as usize] = RegClass::Scalar;
        }
        ScalarInst::FMov { cond, fd, fm } => {
            if cond != Cond::Al || !scalarish(active.fregs[fm.index() as usize]) {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar fp move outside loop",
                });
            }
            active.fregs[fd.index() as usize] = RegClass::Scalar;
        }
        ScalarInst::LdInt { rd, index, .. } => {
            if !scalarish(active.regs[index.index() as usize]) {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar load index outside loop",
                });
            }
            active.regs[rd.index() as usize] = RegClass::Scalar;
        }
        ScalarInst::LdF { fd, index, .. } => {
            if !scalarish(active.regs[index.index() as usize]) {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar load index outside loop",
                });
            }
            active.fregs[fd.index() as usize] = RegClass::Scalar;
        }
        ScalarInst::StInt { rs, index, .. } => {
            if !scalarish(active.regs[rs.index() as usize])
                || !scalarish(active.regs[index.index() as usize])
            {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar store outside loop",
                });
            }
        }
        ScalarInst::StF { fs, index, .. } => {
            if !scalarish(active.fregs[fs.index() as usize])
                || !scalarish(active.regs[index.index() as usize])
            {
                return Err(AbortReason::UnsupportedShape {
                    what: "non-scalar store outside loop",
                });
            }
        }
        ScalarInst::Nop => {}
        ScalarInst::B { .. } | ScalarInst::Bl { .. } | ScalarInst::Ret | ScalarInst::Halt => {
            unreachable!("control flow handled by step_collect")
        }
    }
    active.buffer.push(Slot::Fixed(Inst::S(ev.inst)));
    Ok(())
}

// ---------------------------------------------------------------------------
// Loop-body classification (paper Table 3)
// ---------------------------------------------------------------------------

fn width_elem(width: MemWidth) -> ElemType {
    match width {
        MemWidth::B => ElemType::I8,
        MemWidth::H => ElemType::I16,
        MemWidth::W => ElemType::I32,
    }
}

fn red_op(op: AluOp) -> Option<RedOp> {
    match op {
        AluOp::Add => Some(RedOp::Sum),
        AluOp::Min => Some(RedOp::Min),
        AluOp::Max => Some(RedOp::Max),
        _ => None,
    }
}

fn fred_op(op: FpOp) -> Option<RedOp> {
    match op {
        FpOp::Add => Some(RedOp::Sum),
        FpOp::Min => Some(RedOp::Min),
        FpOp::Max => Some(RedOp::Max),
        _ => None,
    }
}

/// Classifies an index register for a memory access inside the body.
enum IndexKind {
    Induction,
    Offsets(usize),
}

fn classify_index(active: &mut Active, index: Reg) -> Result<IndexKind, AbortReason> {
    match active.regs[index.index() as usize] {
        RegClass::Const(0) => {
            active.regs[index.index() as usize] = RegClass::Induction;
            active.induction = Some(index);
            Ok(IndexKind::Induction)
        }
        RegClass::Const(_) => Err(AbortReason::UnsupportedShape {
            what: "induction variable must start at zero",
        }),
        RegClass::Induction => {
            active.induction = Some(index);
            Ok(IndexKind::Induction)
        }
        RegClass::AddrVector { tracker } => {
            active.trackers[tracker].address_use = true;
            Ok(IndexKind::Offsets(tracker))
        }
        RegClass::Vector { .. } => Err(AbortReason::RuntimeIndexedPermute),
        RegClass::Scalar | RegClass::Unknown => Err(AbortReason::UnsupportedShape {
            what: "scalar-indexed memory access in loop",
        }),
    }
}

fn induction_reg(active: &Active) -> Result<Reg, AbortReason> {
    active.induction.ok_or(AbortReason::UnsupportedShape {
        what: "permuted access before induction variable is known",
    })
}

/// Loop bound (if the body revealed one) plus `(position, register-slot)`
/// pairs of tracked loop-carried values.
type BodyClassification = (Option<i64>, Vec<(usize, usize)>);

#[allow(clippy::too_many_lines)]
fn classify_body(
    active: &mut Active,
    body: &[Event],
    config: &TranslatorConfig,
) -> Result<BodyClassification, AbortReason> {
    let insts: Vec<ScalarInst> = body.iter().map(|e| e.inst).collect();
    let ops: Vec<BodyOp> = collapse(&insts);
    let mut bound: Option<i64> = None;
    let mut tracked: Vec<(usize, usize)> = Vec::new();

    for bodyop in &ops {
        let pos = bodyop.pos;
        let ev = &body[pos];
        match bodyop.kind {
            BodyOpKind::Plain(inst) => match inst {
                ScalarInst::LdInt {
                    width,
                    signed,
                    rd,
                    base,
                    index,
                } => {
                    let elem = width_elem(width);
                    let vd = active.vmap.get(Bank::Int, rd.index())?;
                    match classify_index(active, index)? {
                        IndexKind::Induction => {
                            let mut tracker = None;
                            if let Base::Sym(_) = base {
                                let id = active.trackers.len();
                                let mut t = Tracker::new(config.lanes);
                                t.record(ev.value.unwrap_or(0), config.value_limit());
                                active.trackers.push(t);
                                tracked.push((pos, id));
                                tracker = Some(id);
                                active.buffer.push(Slot::TrackedLoad {
                                    tracker: id,
                                    inst: VectorInst::VLd {
                                        elem,
                                        signed,
                                        vd,
                                        base,
                                        index,
                                    },
                                });
                            } else {
                                active.buffer.push(Slot::Fixed(Inst::V(VectorInst::VLd {
                                    elem,
                                    signed,
                                    vd,
                                    base,
                                    index,
                                })));
                            }
                            active.regs[rd.index() as usize] = RegClass::Vector {
                                elem,
                                signed,
                                tracker,
                            };
                        }
                        IndexKind::Offsets(t) => {
                            let ind = induction_reg(active)?;
                            active.buffer.push(Slot::PermLoad {
                                tracker: t,
                                elem,
                                signed,
                                vd,
                                base,
                                index: ind,
                            });
                            active.regs[rd.index() as usize] = RegClass::Vector {
                                elem,
                                signed,
                                tracker: None,
                            };
                        }
                    }
                }
                ScalarInst::LdF { fd, base, index } => {
                    let vd = active.vmap.get(Bank::Fp, fd.index())?;
                    match classify_index(active, index)? {
                        IndexKind::Induction => {
                            active.buffer.push(Slot::Fixed(Inst::V(VectorInst::VLd {
                                elem: ElemType::F32,
                                signed: false,
                                vd,
                                base,
                                index,
                            })));
                        }
                        IndexKind::Offsets(t) => {
                            let ind = induction_reg(active)?;
                            active.buffer.push(Slot::PermLoad {
                                tracker: t,
                                elem: ElemType::F32,
                                signed: false,
                                vd,
                                base,
                                index: ind,
                            });
                        }
                    }
                    active.fregs[fd.index() as usize] = RegClass::Vector {
                        elem: ElemType::F32,
                        signed: false,
                        tracker: None,
                    };
                }
                ScalarInst::StInt {
                    width,
                    rs,
                    base,
                    index,
                } => {
                    let elem = width_elem(width);
                    if !active.regs[rs.index() as usize].is_vector() {
                        return Err(AbortReason::ScalarStore);
                    }
                    let vs = active.vmap.get(Bank::Int, rs.index())?;
                    emit_store(active, elem, vs, base, index)?;
                }
                ScalarInst::StF { fs, base, index } => {
                    if !active.fregs[fs.index() as usize].is_vector() {
                        return Err(AbortReason::ScalarStore);
                    }
                    let vs = active.vmap.get(Bank::Fp, fs.index())?;
                    emit_store(active, ElemType::F32, vs, base, index)?;
                }
                ScalarInst::MovImm { cond, rd, imm } => {
                    if cond != Cond::Al {
                        return Err(AbortReason::UnsupportedOpcode { pc: ev.pc });
                    }
                    active.regs[rd.index() as usize] = RegClass::Const(i64::from(imm));
                    active.buffer.push(Slot::Fixed(Inst::S(inst)));
                }
                ScalarInst::Mov { cond, rd, rm } => {
                    if cond != Cond::Al {
                        return Err(AbortReason::UnsupportedOpcode { pc: ev.pc });
                    }
                    let src = active.regs[rm.index() as usize];
                    if !src.is_scalarish() {
                        return Err(AbortReason::UnsupportedShape {
                            what: "vector register move",
                        });
                    }
                    active.regs[rd.index() as usize] = src;
                    active.buffer.push(Slot::Fixed(Inst::S(inst)));
                }
                ScalarInst::FMov { cond, fd, fm } => {
                    if cond != Cond::Al || !active.fregs[fm.index() as usize].is_scalarish() {
                        return Err(AbortReason::UnsupportedShape {
                            what: "vector fp move",
                        });
                    }
                    active.fregs[fd.index() as usize] = RegClass::Scalar;
                    active.buffer.push(Slot::Fixed(Inst::S(inst)));
                }
                ScalarInst::Cmp { rn, op2 } => {
                    let rn_class = active.regs[rn.index() as usize];
                    match (rn_class, op2) {
                        (RegClass::Induction, Operand2::Imm(n)) => {
                            bound = Some(i64::from(n));
                            active.buffer.push(Slot::Fixed(Inst::S(inst)));
                        }
                        (c, Operand2::Imm(_)) if c.is_scalarish() => {
                            active.buffer.push(Slot::Fixed(Inst::S(inst)));
                        }
                        (c, Operand2::Reg(r))
                            if c.is_scalarish()
                                && active.regs[r.index() as usize].is_scalarish() =>
                        {
                            active.buffer.push(Slot::Fixed(Inst::S(inst)));
                        }
                        _ => {
                            return Err(AbortReason::UnsupportedShape {
                                what: "vector compare",
                            })
                        }
                    }
                }
                ScalarInst::Alu {
                    cond,
                    op,
                    rd,
                    rn,
                    op2,
                } => {
                    if cond != Cond::Al {
                        return Err(AbortReason::UnsupportedOpcode { pc: ev.pc });
                    }
                    classify_alu(active, op, rd, rn, op2, config, ev.pc)?;
                }
                ScalarInst::FAlu { op, fd, fn_, fm } => {
                    classify_falu(active, op, fd, fn_, fm, ev.pc)?;
                }
                ScalarInst::Nop => {
                    active.buffer.push(Slot::Fixed(Inst::S(inst)));
                }
                ScalarInst::B { .. } => {
                    return Err(AbortReason::UnsupportedShape {
                        what: "control flow inside loop body",
                    })
                }
                ScalarInst::Bl { .. } => return Err(AbortReason::NestedCall),
                ScalarInst::Ret | ScalarInst::Halt => {
                    return Err(AbortReason::UnsupportedOpcode { pc: ev.pc })
                }
            },
            BodyOpKind::Sat {
                op,
                elem,
                rd,
                rn,
                op2,
            } => {
                let rn_class = active.regs[rn.index() as usize];
                let RegClass::Vector {
                    elem: rn_elem,
                    signed,
                    ..
                } = rn_class
                else {
                    return Err(AbortReason::UnsupportedShape {
                        what: "saturating idiom on non-vector operand",
                    });
                };
                let eff = elem.unwrap_or(rn_elem);
                if !op.valid_for(eff) {
                    return Err(AbortReason::UnsupportedShape {
                        what: "saturating idiom on unsupported element width",
                    });
                }
                let vd = active.vmap.get(Bank::Int, rd.index())?;
                let vn = active.vmap.get(Bank::Int, rn.index())?;
                let slot = match op2 {
                    Operand2::Reg(rm) if active.regs[rm.index() as usize].is_vector() => {
                        let vm = active.vmap.get(Bank::Int, rm.index())?;
                        Slot::Fixed(Inst::V(VectorInst::VAlu {
                            op,
                            elem: eff,
                            vd,
                            vn,
                            vm,
                        }))
                    }
                    Operand2::Reg(rm) => match active.regs[rm.index() as usize] {
                        RegClass::Const(c) if fits_valu_imm(c) => sat_imm_slot(op, eff, vd, vn, c)?,
                        c if c.is_scalarish() => Slot::Fixed(Inst::V(VectorInst::VAluScalar {
                            op,
                            elem: eff,
                            vd,
                            vn,
                            src: ScalarSrc::R(rm),
                        })),
                        _ => {
                            return Err(AbortReason::UnsupportedShape {
                                what: "saturating idiom with non-scalar operand",
                            })
                        }
                    },
                    Operand2::Imm(i) => sat_imm_slot(op, eff, vd, vn, i64::from(i))?,
                };
                active.buffer.push(slot);
                active.regs[rd.index() as usize] = RegClass::Vector {
                    elem: eff,
                    signed,
                    tracker: None,
                };
            }
        }
    }
    Ok((bound, tracked))
}

fn sat_imm_slot(
    op: VAluOp,
    elem: ElemType,
    vd: VReg,
    vn: VReg,
    value: i64,
) -> Result<Slot, AbortReason> {
    let imm = i32::try_from(value).map_err(|_| AbortReason::ValueTooWide { value })?;
    if !(VALU_IMM_MIN..=VALU_IMM_MAX).contains(&imm) {
        return Err(AbortReason::ValueTooWide { value });
    }
    Ok(Slot::Fixed(Inst::V(VectorInst::VAluImm {
        op,
        elem,
        vd,
        vn,
        imm,
    })))
}

fn emit_store(
    active: &mut Active,
    elem: ElemType,
    vs: VReg,
    base: Base,
    index: Reg,
) -> Result<(), AbortReason> {
    match classify_index(active, index)? {
        IndexKind::Induction => {
            active.buffer.push(Slot::Fixed(Inst::V(VectorInst::VSt {
                elem,
                vs,
                base,
                index,
            })));
        }
        IndexKind::Offsets(t) => {
            let ind = induction_reg(active)?;
            let vtmp = active.vmap.fresh()?;
            active.buffer.push(Slot::PermStore {
                tracker: t,
                elem,
                vtmp,
                vs,
                base,
                index: ind,
            });
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn classify_alu(
    active: &mut Active,
    op: AluOp,
    rd: Reg,
    rn: Reg,
    op2: Operand2,
    config: &TranslatorConfig,
    pc: u32,
) -> Result<(), AbortReason> {
    let rn_class = active.regs[rn.index() as usize];

    // Rule 10: induction increment `add r0, r0, #1` -> `add r0, r0, #W`.
    if rn_class == RegClass::Induction {
        if let Operand2::Imm(step) = op2 {
            if op == AluOp::Add && rd == rn && step == 1 {
                active.buffer.push(Slot::Fixed(Inst::S(ScalarInst::Alu {
                    cond: Cond::Al,
                    op: AluOp::Add,
                    rd,
                    rn,
                    op2: Operand2::Imm(config.lanes as i32),
                })));
                return Ok(());
            }
            return Err(AbortReason::UnsupportedShape {
                what: "unsupported induction arithmetic",
            });
        }
    }

    // Rule 8: offsets + induction -> address vector (emits nothing).
    if op == AluOp::Add {
        let as_rule8 = |a: RegClass, b: RegClass| -> Option<Result<usize, AbortReason>> {
            match (a, b) {
                (RegClass::Induction, RegClass::Vector { tracker, .. }) => {
                    Some(tracker.ok_or(AbortReason::RuntimeIndexedPermute))
                }
                _ => None,
            }
        };
        if let Operand2::Reg(rm) = op2 {
            let rm_class = active.regs[rm.index() as usize];
            if let Some(t) = as_rule8(rn_class, rm_class).or_else(|| as_rule8(rm_class, rn_class)) {
                let tracker = t?;
                active.regs[rd.index() as usize] = RegClass::AddrVector { tracker };
                return Ok(());
            }
        }
    }

    // Rule 9: reductions `r1 = dp r1, r2` with scalar accumulator.
    if let Operand2::Reg(rm) = op2 {
        let rm_class = active.regs[rm.index() as usize];
        let accum_vec = |acc: RegClass, vec: RegClass| acc.is_scalarish() && vec.is_vector();
        if rd == rn && accum_vec(rn_class, rm_class) {
            return emit_reduction(active, op, rd, rm);
        }
        if rd == rm && op.is_commutative() && accum_vec(rm_class, rn_class) {
            return emit_reduction(active, op, rd, rn);
        }
    }

    // Rules 2/6/7: vector data processing.
    if let RegClass::Vector {
        elem: rn_elem,
        signed,
        tracker: rn_tracker,
    } = rn_class
    {
        let vop = VAluOp::from_scalar(op).ok_or(AbortReason::UnsupportedOpcode { pc })?;
        let vd = active.vmap.get(Bank::Int, rd.index())?;
        let vn = active.vmap.get(Bank::Int, rn.index())?;
        let slot = match op2 {
            Operand2::Imm(imm) => sat_check_imm(vop, rn_elem, vd, vn, i64::from(imm))?,
            Operand2::Reg(rm) => {
                let rm_class = active.regs[rm.index() as usize];
                match rm_class {
                    RegClass::Vector {
                        tracker: rm_tracker,
                        ..
                    } => {
                        let vm = active.vmap.get(Bank::Int, rm.index())?;
                        if let Some(t) = rm_tracker.filter(|_| rn_tracker.is_none()) {
                            Slot::ConstAlu {
                                tracker: t,
                                op: vop,
                                elem: rn_elem,
                                vd,
                                vn,
                                vm,
                            }
                        } else {
                            Slot::Fixed(Inst::V(VectorInst::VAlu {
                                op: vop,
                                elem: rn_elem,
                                vd,
                                vn,
                                vm,
                            }))
                        }
                    }
                    // A constant that fits the immediate field becomes the
                    // splat-immediate form; anything else held in a scalar
                    // register becomes a Neon-style vector-by-scalar op
                    // (the broadcast form hoisted loop-invariant constants
                    // take).
                    RegClass::Const(c) if fits_valu_imm(c) => {
                        sat_check_imm(vop, rn_elem, vd, vn, c)?
                    }
                    RegClass::Const(_) | RegClass::Scalar | RegClass::Unknown => {
                        Slot::Fixed(Inst::V(VectorInst::VAluScalar {
                            op: vop,
                            elem: rn_elem,
                            vd,
                            vn,
                            src: ScalarSrc::R(rm),
                        }))
                    }
                    RegClass::Induction | RegClass::AddrVector { .. } => {
                        return Err(AbortReason::UnsupportedShape {
                            what: "induction or address vector as data operand",
                        })
                    }
                }
            }
        };
        active.buffer.push(slot);
        active.regs[rd.index() as usize] = RegClass::Vector {
            elem: rn_elem,
            signed,
            tracker: None,
        };
        return Ok(());
    }

    // Commutative vector-op with the vector on the right: `op rd, scalar, rv`.
    if let Operand2::Reg(rm) = op2 {
        if let RegClass::Vector {
            elem,
            signed,
            tracker: _,
        } = active.regs[rm.index() as usize]
        {
            if op.is_commutative() && rn_class.is_scalarish() {
                let vop = VAluOp::from_scalar(op).ok_or(AbortReason::UnsupportedOpcode { pc })?;
                let vd = active.vmap.get(Bank::Int, rd.index())?;
                let vn = active.vmap.get(Bank::Int, rm.index())?;
                let slot = match rn_class {
                    RegClass::Const(c) if fits_valu_imm(c) => sat_check_imm(vop, elem, vd, vn, c)?,
                    _ => Slot::Fixed(Inst::V(VectorInst::VAluScalar {
                        op: vop,
                        elem,
                        vd,
                        vn,
                        src: ScalarSrc::R(rn),
                    })),
                };
                active.buffer.push(slot);
                active.regs[rd.index() as usize] = RegClass::Vector {
                    elem,
                    signed,
                    tracker: None,
                };
                return Ok(());
            }
            return Err(AbortReason::UnsupportedShape {
                what: "vector operand in unsupported position",
            });
        }
    }

    // Rule 11: all-scalar data processing passes through unmodified.
    let op2_scalar = match op2 {
        Operand2::Imm(_) => true,
        Operand2::Reg(r) => active.regs[r.index() as usize].is_scalarish(),
    };
    if rn_class.is_scalarish() && op2_scalar {
        active.regs[rd.index() as usize] = RegClass::Scalar;
        active.buffer.push(Slot::Fixed(Inst::S(ScalarInst::Alu {
            cond: Cond::Al,
            op,
            rd,
            rn,
            op2,
        })));
        return Ok(());
    }

    Err(AbortReason::UnsupportedShape {
        what: "unsupported operand combination",
    })
}

fn sat_check_imm(
    op: VAluOp,
    elem: ElemType,
    vd: VReg,
    vn: VReg,
    value: i64,
) -> Result<Slot, AbortReason> {
    let imm = i32::try_from(value).map_err(|_| AbortReason::ValueTooWide { value })?;
    if !(VALU_IMM_MIN..=VALU_IMM_MAX).contains(&imm) {
        return Err(AbortReason::ValueTooWide { value });
    }
    Ok(Slot::Fixed(Inst::V(VectorInst::VAluImm {
        op,
        elem,
        vd,
        vn,
        imm,
    })))
}

fn emit_reduction(
    active: &mut Active,
    op: AluOp,
    rd: Reg,
    vec_reg: Reg,
) -> Result<(), AbortReason> {
    let red = red_op(op).ok_or(AbortReason::UnsupportedShape {
        what: "reduction op without vector equivalent",
    })?;
    let RegClass::Vector { elem, .. } = active.regs[vec_reg.index() as usize] else {
        unreachable!("caller checked vector class");
    };
    let vn = active.vmap.get(Bank::Int, vec_reg.index())?;
    active.buffer.push(Slot::Fixed(Inst::V(VectorInst::VRedI {
        op: red,
        elem,
        rd,
        vn,
    })));
    active.regs[rd.index() as usize] = RegClass::Scalar;
    Ok(())
}

fn classify_falu(
    active: &mut Active,
    op: FpOp,
    fd: liquid_simd_isa::FReg,
    fn_: liquid_simd_isa::FReg,
    fm: liquid_simd_isa::FReg,
    pc: u32,
) -> Result<(), AbortReason> {
    let fn_class = active.fregs[fn_.index() as usize];
    let fm_class = active.fregs[fm.index() as usize];

    // FP reduction: `fadd f1, f1, f2` with scalar accumulator.
    if fd == fn_ && fn_class.is_scalarish() && fm_class.is_vector() {
        let red = fred_op(op).ok_or(AbortReason::UnsupportedShape {
            what: "fp reduction op without vector equivalent",
        })?;
        let vn = active.vmap.get(Bank::Fp, fm.index())?;
        active
            .buffer
            .push(Slot::Fixed(Inst::V(VectorInst::VRedF { op: red, fd, vn })));
        active.fregs[fd.index() as usize] = RegClass::Scalar;
        return Ok(());
    }
    if fd == fm && fm_class.is_scalarish() && fn_class.is_vector() {
        if matches!(op, FpOp::Add | FpOp::Min | FpOp::Max) {
            let red = fred_op(op).expect("add/min/max have reductions");
            let vn = active.vmap.get(Bank::Fp, fn_.index())?;
            active
                .buffer
                .push(Slot::Fixed(Inst::V(VectorInst::VRedF { op: red, fd, vn })));
            active.fregs[fd.index() as usize] = RegClass::Scalar;
            return Ok(());
        }
        return Err(AbortReason::UnsupportedShape {
            what: "non-commutative fp reduction",
        });
    }

    let vop = match op {
        FpOp::Add => VAluOp::Add,
        FpOp::Sub => VAluOp::Sub,
        FpOp::Mul => VAluOp::Mul,
        FpOp::Div => VAluOp::Div,
        FpOp::Min => VAluOp::Min,
        FpOp::Max => VAluOp::Max,
    };

    // Element-wise: both vectors.
    if fn_class.is_vector() && fm_class.is_vector() {
        let vd = active.vmap.get(Bank::Fp, fd.index())?;
        let vn = active.vmap.get(Bank::Fp, fn_.index())?;
        let vm = active.vmap.get(Bank::Fp, fm.index())?;
        active.buffer.push(Slot::Fixed(Inst::V(VectorInst::VAlu {
            op: vop,
            elem: ElemType::F32,
            vd,
            vn,
            vm,
        })));
        active.fregs[fd.index() as usize] = RegClass::Vector {
            elem: ElemType::F32,
            signed: false,
            tracker: None,
        };
        return Ok(());
    }

    // Vector-by-scalar broadcast: the form hoisted fp constants take
    // (Neon-style `VMUL Qd, Qn, Dm[0]`).
    let broadcast = if fn_class.is_vector() && fm_class.is_scalarish() {
        Some((fn_, fm))
    } else if fm_class.is_vector() && fn_class.is_scalarish() && vop.is_commutative() {
        Some((fm, fn_))
    } else {
        None
    };
    if let Some((vec_reg, scalar_reg)) = broadcast {
        let vd = active.vmap.get(Bank::Fp, fd.index())?;
        let vn = active.vmap.get(Bank::Fp, vec_reg.index())?;
        active
            .buffer
            .push(Slot::Fixed(Inst::V(VectorInst::VAluScalar {
                op: vop,
                elem: ElemType::F32,
                vd,
                vn,
                src: ScalarSrc::F(scalar_reg),
            })));
        active.fregs[fd.index() as usize] = RegClass::Vector {
            elem: ElemType::F32,
            signed: false,
            tracker: None,
        };
        return Ok(());
    }

    // All scalar: pass through.
    if fn_class.is_scalarish() && fm_class.is_scalarish() {
        active.fregs[fd.index() as usize] = RegClass::Scalar;
        active
            .buffer
            .push(Slot::Fixed(Inst::S(ScalarInst::FAlu { op, fd, fn_, fm })));
        return Ok(());
    }

    Err(AbortReason::UnsupportedShape {
        what: "mixed scalar/vector fp operands",
    })
    .inspect_err(|_e| {
        let _ = pc;
    })
}
