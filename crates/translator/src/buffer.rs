//! The microcode buffer (paper §4.1).
//!
//! Classified instructions land here as [`Slot`]s. Some slots are fully
//! determined; others ("deferred" slots) depend on value patterns that are
//! only complete after `lanes` loop iterations have been observed —
//! permutations (CAM match) and constant operands (splat detection).
//! [`UopBuffer::materialize`] resolves them and performs the paper's
//! "alignment network" job: collapsing the buffer when offset-array loads
//! are removed or idioms invalidate previously generated instructions.

use liquid_simd_isa::{
    encode::{VALU_IMM_MAX, VALU_IMM_MIN},
    Base, Cond, ElemType, Inst, PermKind, Reg, ScalarInst, VAluOp, VReg, VectorInst,
};

use crate::state::{AbortReason, Tracker};

/// One microcode-buffer slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// A fully determined instruction, emitted as-is.
    Fixed(Inst),
    /// A vector load of a data-segment symbol whose values are being
    /// tracked. Removed at materialisation if a permutation or splat
    /// consumed the tracker, kept (as a plain vector load) otherwise.
    TrackedLoad {
        /// Tracker index.
        tracker: usize,
        /// The load to emit if kept.
        inst: VectorInst,
    },
    /// A load through an offsets-modified index: becomes `vld` + `vperm`
    /// once the CAM identifies the permutation (paper Table 3 rule 3).
    PermLoad {
        /// Tracker holding the offsets.
        tracker: usize,
        /// Element type of the data load.
        elem: ElemType,
        /// Sign extension of the data load.
        signed: bool,
        /// Destination vector register.
        vd: VReg,
        /// Base of the data array.
        base: Base,
        /// The loop induction register (the translated load is contiguous).
        index: Reg,
    },
    /// A store through an offsets-modified index: becomes `vperm` (inverse)
    /// + `vst` (paper Table 3 rule 5).
    PermStore {
        /// Tracker holding the offsets.
        tracker: usize,
        /// Element type of the store.
        elem: ElemType,
        /// Scratch register receiving the permuted value.
        vtmp: VReg,
        /// The vector register being stored.
        vs: VReg,
        /// Base of the data array.
        base: Base,
        /// The loop induction register.
        index: Reg,
    },
    /// A data-processing op whose second operand was loaded from a constant
    /// array: becomes `vop vd, vn, #imm` if the values splat to a small
    /// immediate (removing the array load, paper Table 3 rule 7), or a
    /// plain register-register `vop` otherwise.
    ConstAlu {
        /// Tracker holding the constant values.
        tracker: usize,
        /// The vector operation.
        op: VAluOp,
        /// Element type.
        elem: ElemType,
        /// Destination.
        vd: VReg,
        /// First source.
        vn: VReg,
        /// Mapped register of the loaded constant (used when the load is
        /// kept).
        vm: VReg,
    },
    /// Marks the start of a loop body (emits nothing; branch target).
    LoopTop,
    /// The loop's backward branch; its target resolves to the most recent
    /// [`Slot::LoopTop`].
    LoopBranch {
        /// Branch condition.
        cond: Cond,
    },
}

/// The microcode buffer: an ordered list of slots plus materialisation.
#[derive(Clone, Debug, Default)]
pub struct UopBuffer {
    slots: Vec<Slot>,
}

/// Per-tracker disposition decided during materialisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Disposition {
    /// Not referenced by any deferred slot: keep its load.
    Keep,
    /// Offsets matched permutation `kind` (load-side orientation); the
    /// tracked load is removed.
    Perm(PermKind),
    /// Values splat to an encodable immediate; the tracked load is removed.
    Splat(i32),
}

impl UopBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> UopBuffer {
        UopBuffer::default()
    }

    /// Appends a slot, returning its index.
    pub fn push(&mut self, slot: Slot) -> usize {
        self.slots.push(slot);
        self.slots.len() - 1
    }

    /// Number of slots currently buffered (the high-water-mark counter
    /// samples this after every observed instruction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Resolves deferred slots and produces the final microcode.
    ///
    /// # Errors
    ///
    /// * [`AbortReason::CamMiss`] — an offset pattern matches no permutation
    ///   executable at `lanes` lanes;
    /// * [`AbortReason::ValueTooWide`] — offsets exceeded the hardware
    ///   value-field width;
    /// * [`AbortReason::UnsupportedShape`] — a tracker was used both as an
    ///   address offset and as data;
    /// * [`AbortReason::TooManyUops`] — the result exceeds `max_uops`.
    pub fn materialize(
        &self,
        trackers: &[Tracker],
        lanes: usize,
        max_uops: usize,
    ) -> Result<Vec<Inst>, AbortReason> {
        // Pass 1: decide tracker dispositions.
        let mut disp: Vec<Disposition> = vec![Disposition::Keep; trackers.len()];
        let mut const_use: Vec<bool> = vec![false; trackers.len()];
        for slot in &self.slots {
            match *slot {
                Slot::PermLoad { tracker, .. } | Slot::PermStore { tracker, .. } => {
                    let t = &trackers[tracker];
                    if t.wide {
                        let value = *t.values.iter().max_by_key(|v| v.abs()).unwrap_or(&0);
                        return Err(AbortReason::ValueTooWide { value });
                    }
                    if !t.complete() || !t.consistent {
                        return Err(AbortReason::CamMiss);
                    }
                    let kind = PermKind::match_offsets(&t.offsets_i32(), lanes)
                        .filter(|k| k.executable_at(lanes))
                        .ok_or(AbortReason::CamMiss)?;
                    disp[tracker] = Disposition::Perm(kind);
                }
                Slot::ConstAlu { tracker, .. } => {
                    const_use[tracker] = true;
                }
                _ => {}
            }
        }
        for (id, t) in trackers.iter().enumerate() {
            if const_use[id] {
                if matches!(disp[id], Disposition::Perm(_)) {
                    return Err(AbortReason::UnsupportedShape {
                        what: "tracker used as both address offsets and data",
                    });
                }
                // Splat optimisation: uniform, narrow, consistent values
                // collapse to an immediate and the load disappears.
                if t.consistent && !t.wide {
                    if let Some(v) = t.is_splat() {
                        if let Ok(imm) = i32::try_from(v) {
                            if (VALU_IMM_MIN..=VALU_IMM_MAX).contains(&imm) {
                                disp[id] = Disposition::Splat(imm);
                            }
                        }
                    }
                }
            }
        }

        // Pass 2: emit.
        let mut out: Vec<Inst> = Vec::with_capacity(self.slots.len());
        let mut loop_top: Option<u32> = None;
        for slot in &self.slots {
            match *slot {
                Slot::Fixed(inst) => out.push(inst),
                Slot::TrackedLoad { tracker, inst } => {
                    if matches!(disp[tracker], Disposition::Keep) {
                        out.push(Inst::V(inst));
                    }
                    // Perm / Splat: the alignment network removed this load.
                }
                Slot::PermLoad {
                    tracker,
                    elem,
                    signed,
                    vd,
                    base,
                    index,
                } => {
                    let Disposition::Perm(kind) = disp[tracker] else {
                        unreachable!("perm slot without perm disposition");
                    };
                    out.push(Inst::V(VectorInst::VLd {
                        elem,
                        signed,
                        vd,
                        base,
                        index,
                    }));
                    out.push(Inst::V(VectorInst::VPerm {
                        kind,
                        elem,
                        vd,
                        vn: vd,
                    }));
                }
                Slot::PermStore {
                    tracker,
                    elem,
                    vtmp,
                    vs,
                    base,
                    index,
                } => {
                    let Disposition::Perm(kind) = disp[tracker] else {
                        unreachable!("perm slot without perm disposition");
                    };
                    // Store-side permutations apply the inverse pattern (see
                    // PermKind::inverse): scalar code wrote element i to
                    // position i + off[i]; the contiguous vst needs the value
                    // vector pre-permuted by the inverse.
                    out.push(Inst::V(VectorInst::VPerm {
                        kind: kind.inverse(),
                        elem,
                        vd: vtmp,
                        vn: vs,
                    }));
                    out.push(Inst::V(VectorInst::VSt {
                        elem,
                        vs: vtmp,
                        base,
                        index,
                    }));
                }
                Slot::ConstAlu {
                    tracker,
                    op,
                    elem,
                    vd,
                    vn,
                    vm,
                } => match disp[tracker] {
                    Disposition::Splat(imm) => out.push(Inst::V(VectorInst::VAluImm {
                        op,
                        elem,
                        vd,
                        vn,
                        imm,
                    })),
                    _ => out.push(Inst::V(VectorInst::VAlu {
                        op,
                        elem,
                        vd,
                        vn,
                        vm,
                    })),
                },
                Slot::LoopTop => loop_top = Some(out.len() as u32),
                Slot::LoopBranch { cond } => {
                    let target = loop_top.expect("loop branch after loop top");
                    out.push(Inst::S(ScalarInst::B { cond, target }));
                }
            }
        }
        if out.len() > max_uops {
            return Err(AbortReason::TooManyUops { limit: max_uops });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::SymId;

    fn tracker_with(values: &[i64], lanes: usize) -> Tracker {
        let mut t = Tracker::new(lanes);
        for &v in values {
            t.record(v, Some(2048)); // default 12-bit hardware value fields
        }
        t
    }

    #[test]
    fn perm_load_materialises_and_removes_offsets_load() {
        let mut buf = UopBuffer::new();
        let tracked = VectorInst::VLd {
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V0,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        };
        buf.push(Slot::LoopTop);
        buf.push(Slot::TrackedLoad {
            tracker: 0,
            inst: tracked,
        });
        buf.push(Slot::PermLoad {
            tracker: 0,
            elem: ElemType::F32,
            signed: false,
            vd: VReg::V1,
            base: Base::Sym(SymId::new(1)),
            index: Reg::R0,
        });
        buf.push(Slot::LoopBranch { cond: Cond::Lt });
        // Butterfly offsets for block 4.
        let trackers = vec![tracker_with(&[2, 2, -2, -2], 4)];
        let code = buf.materialize(&trackers, 4, 64).unwrap();
        // Offsets load removed; vld + vbfly + branch remain.
        assert_eq!(code.len(), 3);
        assert!(matches!(
            code[1],
            Inst::V(VectorInst::VPerm {
                kind: PermKind::Bfly { block: 4 },
                ..
            })
        ));
        // The loop branch targets instruction 0 (loop top).
        assert!(matches!(
            code[2],
            Inst::S(ScalarInst::B {
                cond: Cond::Lt,
                target: 0
            })
        ));
    }

    #[test]
    fn cam_miss_aborts() {
        let mut buf = UopBuffer::new();
        buf.push(Slot::PermLoad {
            tracker: 0,
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V1,
            base: Base::Sym(SymId::new(1)),
            index: Reg::R0,
        });
        let trackers = vec![tracker_with(&[0, 2, -1, 3], 4)];
        assert_eq!(buf.materialize(&trackers, 4, 64), Err(AbortReason::CamMiss));
    }

    #[test]
    fn block_wider_than_lanes_aborts() {
        // Butterfly over 8 elements cannot execute on a 4-lane machine: the
        // first 4 observed offsets are +4 +4 +4 +4, which matches nothing.
        let mut buf = UopBuffer::new();
        buf.push(Slot::PermLoad {
            tracker: 0,
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V1,
            base: Base::Sym(SymId::new(1)),
            index: Reg::R0,
        });
        let trackers = vec![tracker_with(&[4, 4, 4, 4], 4)];
        assert_eq!(buf.materialize(&trackers, 4, 64), Err(AbortReason::CamMiss));
    }

    #[test]
    fn splat_constant_becomes_immediate() {
        let mut buf = UopBuffer::new();
        let load = VectorInst::VLd {
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V0,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        };
        buf.push(Slot::TrackedLoad {
            tracker: 0,
            inst: load,
        });
        buf.push(Slot::ConstAlu {
            tracker: 0,
            op: VAluOp::And,
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V2,
            vm: VReg::V0,
        });
        let trackers = vec![tracker_with(&[255, 255, 255, 255], 4)];
        let code = buf.materialize(&trackers, 4, 64).unwrap();
        assert_eq!(code.len(), 1);
        assert!(matches!(
            code[0],
            Inst::V(VectorInst::VAluImm {
                op: VAluOp::And,
                imm: 255,
                ..
            })
        ));
    }

    #[test]
    fn non_splat_constant_keeps_load() {
        let mut buf = UopBuffer::new();
        let load = VectorInst::VLd {
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V0,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        };
        buf.push(Slot::TrackedLoad {
            tracker: 0,
            inst: load,
        });
        buf.push(Slot::ConstAlu {
            tracker: 0,
            op: VAluOp::Mul,
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V2,
            vm: VReg::V0,
        });
        let trackers = vec![tracker_with(&[1, -1, 1, -1], 4)];
        let code = buf.materialize(&trackers, 4, 64).unwrap();
        assert_eq!(code.len(), 2);
        assert!(matches!(code[0], Inst::V(VectorInst::VLd { .. })));
        assert!(matches!(
            code[1],
            Inst::V(VectorInst::VAlu {
                op: VAluOp::Mul,
                ..
            })
        ));
    }

    #[test]
    fn wide_splat_keeps_load_instead_of_immediate() {
        // 0xFF00 = 65280 exceeds the 9-bit immediate: keep the load.
        let mut buf = UopBuffer::new();
        let load = VectorInst::VLd {
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V0,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        };
        buf.push(Slot::TrackedLoad {
            tracker: 0,
            inst: load,
        });
        buf.push(Slot::ConstAlu {
            tracker: 0,
            op: VAluOp::And,
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V2,
            vm: VReg::V0,
        });
        let mut t = Tracker::new(2);
        t.record(65280, Some(32));
        t.record(65280, Some(32));
        assert!(t.wide);
        let code = buf.materialize(&[t], 2, 64).unwrap();
        assert_eq!(code.len(), 2);
        assert!(matches!(code[0], Inst::V(VectorInst::VLd { .. })));
    }

    #[test]
    fn mixed_tracker_use_aborts() {
        let mut buf = UopBuffer::new();
        buf.push(Slot::PermLoad {
            tracker: 0,
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V1,
            base: Base::Sym(SymId::new(1)),
            index: Reg::R0,
        });
        buf.push(Slot::ConstAlu {
            tracker: 0,
            op: VAluOp::Add,
            elem: ElemType::I32,
            vd: VReg::V2,
            vn: VReg::V3,
            vm: VReg::V0,
        });
        let trackers = vec![tracker_with(&[1, -1, 1, -1], 4)];
        assert!(matches!(
            buf.materialize(&trackers, 4, 64),
            Err(AbortReason::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn buffer_capacity_enforced() {
        let mut buf = UopBuffer::new();
        for _ in 0..65 {
            buf.push(Slot::Fixed(Inst::S(ScalarInst::Nop)));
        }
        assert_eq!(
            buf.materialize(&[], 4, 64),
            Err(AbortReason::TooManyUops { limit: 64 })
        );
        assert!(buf.materialize(&[], 4, 65).is_ok());
    }

    #[test]
    fn rotation_store_uses_inverse() {
        let mut buf = UopBuffer::new();
        buf.push(Slot::PermStore {
            tracker: 0,
            elem: ElemType::I32,
            vtmp: VReg::V7,
            vs: VReg::V1,
            base: Base::Sym(SymId::new(1)),
            index: Reg::R0,
        });
        // Rot{4,1} offsets: source_index(i)=(i+1)%4, off = [1,1,1,-3].
        let trackers = vec![tracker_with(&[1, 1, 1, -3], 4)];
        let code = buf.materialize(&trackers, 4, 64).unwrap();
        assert!(matches!(
            code[0],
            Inst::V(VectorInst::VPerm {
                kind: PermKind::Rot { block: 4, amt: 3 },
                vd: VReg::V7,
                vn: VReg::V1,
                ..
            })
        ));
        assert!(matches!(
            code[1],
            Inst::V(VectorInst::VSt { vs: VReg::V7, .. })
        ));
    }
}
