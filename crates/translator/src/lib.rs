//! The Liquid SIMD post-retirement dynamic translator (paper §4).
//!
//! The translator watches the *retired instruction stream* of an outlined
//! scalar function and regenerates width-`W` SIMD microcode from it, using
//! exactly the machinery the paper describes (Figure 5):
//!
//! * a **partial decoder** (here: pattern matching on [`ScalarInst`]) that
//!   recognises translatable opcodes and aborts on anything else;
//! * per-register **register state** ([`state`]) recording whether each
//!   register currently represents the induction variable, a scalar, or a
//!   vector; the element size assigned to it; and previously loaded values
//!   (used to spot permutation offset arrays and constant arrays);
//! * **legality checks** ([`AbortReason`]) that abort translation on
//!   unsupported shapes — runtime-indexed permutes (`VTBL`-like), oversized
//!   loops, non-multiple trip counts, CAM misses, external interrupts;
//! * **opcode generation logic** implementing the rules of paper Table 3,
//!   including idiom recognition ([`idiom`]) for saturating arithmetic and a
//!   permutation **CAM** (backed by
//!   [`PermKind::match_offsets`](liquid_simd_isa::PermKind::match_offsets));
//! * a **microcode buffer** ([`buffer`]) with the paper's
//!   instruction-collapsing "alignment network" (offset-array loads are
//!   removed once the permutation they encode is materialised).
//!
//! Two hardware-fidelity extras round out the model:
//!
//! * [`hw`] packs the register state into the paper's 56-bit-per-register
//!   image (Table 2 discussion) and enforces the limited previous-value
//!   width ("numbers that are too big to represent simply abort");
//! * [`area`] is a parametric area/delay model calibrated against the
//!   paper's 90 nm synthesis results, standing in for HDL synthesis.
//!
//! # Example
//!
//! ```
//! use liquid_simd_isa::{asm, Inst, ScalarInst};
//! use liquid_simd_translator::{Retired, Progress, Translator, TranslatorConfig};
//!
//! // The scalar representation of `A[i] += 1` over 8 elements.
//! let p = asm::assemble(r"
//! .data
//! .i32 A: 1, 2, 3, 4, 5, 6, 7, 8
//! .text
//! kernel:
//!     mov r0, #0
//! top:
//!     ldw r1, [A + r0]
//!     add r1, r1, #1
//!     stw [A + r0], r1
//!     add r0, r0, #1
//!     cmp r0, #8
//!     blt top
//!     ret
//! ").unwrap();
//!
//! // Feed the translator the retired-instruction stream of one call.
//! let mut t = Translator::new(TranslatorConfig { lanes: 4, ..TranslatorConfig::default() });
//! t.begin(0);
//! let mut translation = None;
//! let mut pc = 0u32;
//! let mut r = [0i64; 16];
//! loop {
//!     let Inst::S(inst) = p.code[pc as usize] else { unreachable!() };
//!     // (a tiny interpreter good enough for this straight loop)
//!     let (next, value, taken) = match inst {
//!         ScalarInst::MovImm { rd, imm, .. } => { r[rd.index() as usize] = imm as i64; (pc + 1, Some(imm as i64), false) }
//!         ScalarInst::Alu { rd, rn, op2, .. } => {
//!             let b = match op2 { liquid_simd_isa::Operand2::Imm(i) => i as i64, liquid_simd_isa::Operand2::Reg(rr) => r[rr.index() as usize] };
//!             r[rd.index() as usize] = r[rn.index() as usize] + b;
//!             (pc + 1, Some(r[rd.index() as usize]), false)
//!         }
//!         ScalarInst::LdInt { rd, .. } => { (pc + 1, Some(0), false) }
//!         ScalarInst::StInt { .. } => (pc + 1, None, false),
//!         ScalarInst::Cmp { .. } => (pc + 1, None, false),
//!         ScalarInst::B { target, .. } => {
//!             if r[0] < 8 { (target, None, true) } else { (pc + 1, None, false) }
//!         }
//!         ScalarInst::Ret => (u32::MAX, None, false),
//!         _ => unreachable!(),
//!     };
//!     let retired = Retired { pc, inst, executed: true, value, taken };
//!     match t.observe(&retired) {
//!         Progress::Finished(tr) => { translation = Some(tr); break; }
//!         Progress::Aborted(r) => panic!("aborted: {r}"),
//!         Progress::Ongoing => {}
//!     }
//!     if next == u32::MAX { break; }
//!     pc = next;
//! }
//! let translation = translation.expect("translated");
//! // The microcode is a 4-wide vector loop.
//! assert!(translation.code.iter().any(|i| i.is_vector()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod automaton;
mod buffer;
mod event;
pub mod hw;
mod idiom;
mod state;
mod stats;

pub use automaton::{Progress, Translation, Translator, TranslatorConfig};
pub use event::Retired;
pub use state::{AbortReason, RegClass, ABORT_TAGS};
pub use stats::{AbortRecord, TrackerSnapshot, TranslatorStats, MAX_ABORT_RECORDS};
