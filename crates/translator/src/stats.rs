//! Translator statistics.

use std::collections::BTreeMap;
use std::fmt;

/// Counters accumulated across a translator's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslatorStats {
    /// Translation attempts started.
    pub attempts: u64,
    /// Attempts that produced microcode.
    pub successes: u64,
    /// Total microcode instructions produced.
    pub uops_emitted: u64,
    /// Total dynamic scalar instructions observed while translating.
    pub instrs_observed: u64,
    /// Abort counts bucketed by [`AbortReason::tag`](crate::AbortReason::tag).
    pub aborts: BTreeMap<&'static str, u64>,
}

impl TranslatorStats {
    /// Total aborted attempts.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Records an abort bucket.
    pub fn record_abort(&mut self, tag: &'static str) {
        *self.aborts.entry(tag).or_insert(0) += 1;
    }
}

impl fmt::Display for TranslatorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts, {} translated, {} aborted",
            self.attempts,
            self.successes,
            self.aborted()
        )?;
        if !self.aborts.is_empty() {
            write!(f, " (")?;
            let parts: Vec<String> = self
                .aborts
                .iter()
                .map(|(tag, n)| format!("{tag}: {n}"))
                .collect();
            write!(f, "{})", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_bucketing() {
        let mut s = TranslatorStats::default();
        s.record_abort("cam-miss");
        s.record_abort("cam-miss");
        s.record_abort("no-loop");
        assert_eq!(s.aborted(), 3);
        let text = s.to_string();
        assert!(text.contains("cam-miss: 2"));
        assert!(text.contains("no-loop: 1"));
    }
}
