//! Translator statistics and abort provenance.
//!
//! An abort is not a failure — the scalar loop remains correct — but it
//! *is* lost performance, and diagnosing one needs more than a reason tag.
//! [`AbortRecord`] captures the full automaton state at the moment a
//! legality check fired: the retired instruction (PC and rendered opcode),
//! how many dynamic instructions into the region translation died, the
//! register-class map, and the value-tracker (idiom/CAM) state. Records
//! accumulate in [`TranslatorStats`] next to the per-reason tallies and a
//! per-region breakdown.

use std::collections::BTreeMap;
use std::fmt;

use crate::state::{AbortReason, RegClass};

/// Cap on retained [`AbortRecord`]s — tallies keep counting past it, the
/// detailed records just stop growing (a pathological run can abort on
/// every call).
pub const MAX_ABORT_RECORDS: usize = 256;

/// Plain-data snapshot of one value tracker at abort time (the "previous
/// values" slice of the paper's register state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// Values observed so far (up to one pattern of `lanes`).
    pub values: Vec<i64>,
    /// Whether a full pattern had been collected.
    pub complete: bool,
    /// Whether observations still repeated with the expected period.
    pub consistent: bool,
    /// Whether any value exceeded the hardware value-field width.
    pub wide: bool,
    /// Whether the tracker was used as a permutation address pattern.
    pub address_use: bool,
}

/// Everything known about one translation abort: where it fired, what the
/// automaton had concluded up to that point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbortRecord {
    /// Entry PC of the region whose translation aborted.
    pub func_pc: u32,
    /// The legality check that fired.
    pub reason: AbortReason,
    /// Code index of the retired instruction that triggered the abort
    /// (the last observed instruction, for external aborts).
    pub pc: u32,
    /// Rendered opcode of that instruction (`-` if none was observed).
    pub opcode: String,
    /// Dynamic instructions into the region when the abort fired
    /// (1-based: the aborting instruction itself counts).
    pub instr_index: u64,
    /// Automaton phase at the abort: `collect` or `loop`.
    pub phase: &'static str,
    /// Non-default integer register classes, `(register index, class)`.
    pub regs: Vec<(u8, RegClass)>,
    /// Non-default floating-point register classes.
    pub fregs: Vec<(u8, RegClass)>,
    /// Value-tracker (idiom / permutation-CAM candidate) state.
    pub trackers: Vec<TrackerSnapshot>,
    /// Loops already vectorised in this region before the abort.
    pub loops_done: usize,
}

impl fmt::Display for AbortRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region @{}: {} at pc={} instr #{} ({}, {} phase)",
            self.func_pc, self.reason, self.pc, self.instr_index, self.opcode, self.phase
        )
    }
}

/// Counters accumulated across a translator's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslatorStats {
    /// Translation attempts started.
    pub attempts: u64,
    /// Attempts that produced microcode.
    pub successes: u64,
    /// Total microcode instructions produced.
    pub uops_emitted: u64,
    /// Total dynamic scalar instructions observed while translating.
    pub instrs_observed: u64,
    /// Abort counts bucketed by [`AbortReason::tag`](crate::AbortReason::tag).
    pub aborts: BTreeMap<&'static str, u64>,
    /// Abort counts per region entry PC, bucketed by reason tag.
    pub aborts_by_region: BTreeMap<u32, BTreeMap<&'static str, u64>>,
    /// Detailed provenance, capped at [`MAX_ABORT_RECORDS`].
    pub abort_records: Vec<AbortRecord>,
    /// Records discarded once the cap was reached (tallies still count).
    pub abort_records_dropped: u64,
    /// Dynamic instructions observed while the automaton sat in the
    /// collect phase (first loop iteration: classification + buffering).
    pub collect_observed: u64,
    /// Dynamic instructions observed while the automaton sat in the loop
    /// phase (verification iterations).
    pub loop_observed: u64,
    /// Deepest microcode-buffer occupancy (in slots) ever reached across
    /// all attempts — how close translations come to the 64-uop limit.
    pub buffer_high_water: u64,
}

impl TranslatorStats {
    /// Total aborted attempts.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Records an abort bucket (tag-only; no provenance).
    pub fn record_abort(&mut self, tag: &'static str) {
        *self.aborts.entry(tag).or_insert(0) += 1;
    }

    /// Records an abort with full provenance: updates the per-reason and
    /// per-region tallies and retains the record (up to the cap).
    pub fn record_abort_with(&mut self, record: AbortRecord) {
        let tag = record.reason.tag();
        self.record_abort(tag);
        *self
            .aborts_by_region
            .entry(record.func_pc)
            .or_default()
            .entry(tag)
            .or_insert(0) += 1;
        if self.abort_records.len() < MAX_ABORT_RECORDS {
            self.abort_records.push(record);
        } else {
            self.abort_records_dropped += 1;
        }
    }

    /// The retained abort records for one region, in order of occurrence.
    pub fn region_aborts(&self, func_pc: u32) -> impl Iterator<Item = &AbortRecord> {
        self.abort_records
            .iter()
            .filter(move |r| r.func_pc == func_pc)
    }
}

impl fmt::Display for TranslatorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts, {} translated, {} aborted",
            self.attempts,
            self.successes,
            self.aborted()
        )?;
        if !self.aborts.is_empty() {
            write!(f, " (")?;
            let parts: Vec<String> = self
                .aborts
                .iter()
                .map(|(tag, n)| format!("{tag}: {n}"))
                .collect();
            write!(f, "{})", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_bucketing() {
        let mut s = TranslatorStats::default();
        s.record_abort("cam-miss");
        s.record_abort("cam-miss");
        s.record_abort("no-loop");
        assert_eq!(s.aborted(), 3);
        let text = s.to_string();
        assert!(text.contains("cam-miss: 2"));
        assert!(text.contains("no-loop: 1"));
    }

    fn sample_record(func_pc: u32, reason: AbortReason) -> AbortRecord {
        AbortRecord {
            func_pc,
            reason,
            pc: 12,
            opcode: "ld.w r1, [a + r0]".to_string(),
            instr_index: 7,
            phase: "loop",
            regs: vec![(0, RegClass::Induction)],
            fregs: Vec::new(),
            trackers: Vec::new(),
            loops_done: 0,
        }
    }

    #[test]
    fn provenance_feeds_region_breakdown() {
        let mut s = TranslatorStats::default();
        s.record_abort_with(sample_record(4, AbortReason::CamMiss));
        s.record_abort_with(sample_record(4, AbortReason::CamMiss));
        s.record_abort_with(sample_record(9, AbortReason::NoLoop));
        assert_eq!(s.aborted(), 3);
        assert_eq!(s.aborts_by_region[&4]["cam-miss"], 2);
        assert_eq!(s.aborts_by_region[&9]["no-loop"], 1);
        assert_eq!(s.region_aborts(4).count(), 2);
        let shown = s.abort_records[0].to_string();
        assert!(shown.contains("region @4"));
        assert!(shown.contains("instr #7"));
    }

    #[test]
    fn records_are_capped_but_tallies_keep_counting() {
        let mut s = TranslatorStats::default();
        for _ in 0..(MAX_ABORT_RECORDS + 10) {
            s.record_abort_with(sample_record(1, AbortReason::NoLoop));
        }
        assert_eq!(s.abort_records.len(), MAX_ABORT_RECORDS);
        assert_eq!(s.abort_records_dropped, 10);
        assert_eq!(s.aborted(), (MAX_ABORT_RECORDS + 10) as u64);
    }
}
