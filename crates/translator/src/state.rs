//! Register state and abort reasons — the translator's "Register State"
//! block and "Legality Checks" block (paper Figure 5).

use std::error::Error;
use std::fmt;

use liquid_simd_isa::ElemType;

/// Why a translation attempt was abandoned. The scalar loop remains the
/// correct fallback in every case — aborting only costs performance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// An opcode the partial decoder does not recognise as translatable.
    UnsupportedOpcode {
        /// Code index of the offending instruction.
        pc: u32,
    },
    /// A call inside the outlined region.
    NestedCall,
    /// The outlined function contained no loop — nothing to vectorise
    /// (this is how false-positive outlined functions are rejected, §3.5).
    NoLoop,
    /// The generated microcode would exceed the microcode buffer
    /// (64 instructions in the paper's design).
    TooManyUops {
        /// The buffer capacity that was exceeded.
        limit: usize,
    },
    /// The loop's trip count is not a multiple of the accelerator width.
    TripNotMultiple {
        /// Observed trip count.
        trip: u64,
        /// Target lane count.
        lanes: usize,
    },
    /// The loop bound from `cmp` disagrees with the observed trip count
    /// (data-dependent exit).
    BoundMismatch,
    /// A later iteration executed a different instruction sequence than the
    /// first (data-dependent control flow).
    IterationMismatch {
        /// Code index where the divergence was seen.
        pc: u32,
    },
    /// An offset pattern missed in the permutation CAM — either an unknown
    /// shuffle or one whose block exceeds the accelerator width (paper §4.1:
    /// "a shuffle not supported in the SIMD accelerator").
    CamMiss,
    /// A recorded value exceeded the hardware register-state width (paper
    /// §4.1: "numbers that are too big to represent simply abort").
    ValueTooWide {
        /// The offending value.
        value: i64,
    },
    /// A memory index whose offsets are runtime data — the `VTBL` class the
    /// scalar representation cannot express (paper §3.3).
    RuntimeIndexedPermute,
    /// A store of a scalar value inside the loop body.
    ScalarStore,
    /// The translated code needs more vector registers than exist.
    RegisterPressure,
    /// A structurally unsupported shape.
    UnsupportedShape {
        /// Explanation.
        what: &'static str,
    },
    /// An external abort — interrupt or context switch (the pipeline's
    /// `Abort` input in Figure 5).
    External {
        /// Cause description.
        what: &'static str,
    },
}

/// Every stable abort tag [`AbortReason::tag`] can produce, in
/// declaration order. Coverage tooling (conform's `abort_coverage`
/// section, `liquid-simd gen --check`) diffs observed tags against this
/// list to find abort paths no test exercises.
pub const ABORT_TAGS: [&str; 14] = [
    "unsupported-opcode",
    "nested-call",
    "no-loop",
    "too-many-uops",
    "trip-not-multiple",
    "bound-mismatch",
    "iteration-mismatch",
    "cam-miss",
    "value-too-wide",
    "runtime-indexed-permute",
    "scalar-store",
    "register-pressure",
    "unsupported-shape",
    "external",
];

impl AbortReason {
    /// A short stable tag for statistics bucketing.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AbortReason::UnsupportedOpcode { .. } => "unsupported-opcode",
            AbortReason::NestedCall => "nested-call",
            AbortReason::NoLoop => "no-loop",
            AbortReason::TooManyUops { .. } => "too-many-uops",
            AbortReason::TripNotMultiple { .. } => "trip-not-multiple",
            AbortReason::BoundMismatch => "bound-mismatch",
            AbortReason::IterationMismatch { .. } => "iteration-mismatch",
            AbortReason::CamMiss => "cam-miss",
            AbortReason::ValueTooWide { .. } => "value-too-wide",
            AbortReason::RuntimeIndexedPermute => "runtime-indexed-permute",
            AbortReason::ScalarStore => "scalar-store",
            AbortReason::RegisterPressure => "register-pressure",
            AbortReason::UnsupportedShape { .. } => "unsupported-shape",
            AbortReason::External { .. } => "external",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::UnsupportedOpcode { pc } => {
                write!(f, "untranslatable opcode at @{pc}")
            }
            AbortReason::NestedCall => write!(f, "nested call inside outlined region"),
            AbortReason::NoLoop => write!(f, "outlined region contains no loop"),
            AbortReason::TooManyUops { limit } => {
                write!(f, "microcode exceeds buffer capacity of {limit}")
            }
            AbortReason::TripNotMultiple { trip, lanes } => {
                write!(f, "trip count {trip} is not a multiple of {lanes} lanes")
            }
            AbortReason::BoundMismatch => write!(f, "loop bound disagrees with observed trip"),
            AbortReason::IterationMismatch { pc } => {
                write!(f, "iteration diverged from first at @{pc}")
            }
            AbortReason::CamMiss => write!(f, "offset pattern missed in permutation CAM"),
            AbortReason::ValueTooWide { value } => {
                write!(f, "value {value} too wide for hardware register state")
            }
            AbortReason::RuntimeIndexedPermute => {
                write!(f, "runtime-indexed permutation (VTBL-like)")
            }
            AbortReason::ScalarStore => write!(f, "scalar store inside loop body"),
            AbortReason::RegisterPressure => write!(f, "out of vector registers"),
            AbortReason::UnsupportedShape { what } => write!(f, "unsupported shape: {what}"),
            AbortReason::External { what } => write!(f, "external abort: {what}"),
        }
    }
}

impl Error for AbortReason {}

/// What a register currently represents, per paper Table 3's "register
/// state" column.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RegClass {
    /// Nothing known yet (live-in values are treated as scalars on use).
    #[default]
    Unknown,
    /// Holds a compile-time constant (`mov rd, #imm`); candidate induction
    /// variable per Table 3 rule 1.
    Const(i64),
    /// The loop induction variable.
    Induction,
    /// An ordinary scalar (including reduction accumulators).
    Scalar,
    /// Represents one element of a vector per iteration; in translated code
    /// it becomes a vector register.
    Vector {
        /// Element type inferred from the load that defined it.
        elem: ElemType,
        /// Whether narrow loads sign-extend.
        signed: bool,
        /// Index of the value tracker if the register was loaded from a
        /// data-segment symbol (potential offset/constant array).
        tracker: Option<usize>,
    },
    /// Induction variable plus loaded offsets (Table 3 rule 8) — using this
    /// as a memory index signals a permutation.
    AddrVector {
        /// The tracker holding the offset values.
        tracker: usize,
    },
}

impl RegClass {
    /// Whether this register would be treated as a plain scalar operand.
    #[must_use]
    pub fn is_scalarish(self) -> bool {
        matches!(
            self,
            RegClass::Unknown | RegClass::Const(_) | RegClass::Scalar
        )
    }

    /// Whether this register maps to a vector register in translated code.
    #[must_use]
    pub fn is_vector(self) -> bool {
        matches!(self, RegClass::Vector { .. })
    }
}

/// Records the values loaded from one data-segment symbol across loop
/// iterations — the "previous values" slice of the paper's register state.
#[derive(Clone, Debug)]
pub struct Tracker {
    /// First `lanes` observed values.
    pub values: Vec<i64>,
    /// Whether all observations so far repeat with period `lanes`
    /// (`values[i mod lanes]`).
    pub consistent: bool,
    /// Whether any value exceeded the hardware value-field width. Wide
    /// trackers cannot back permutations (abort) and disable the splat
    /// optimisation for constants.
    pub wide: bool,
    /// Target lane count (pattern length to collect).
    pub lanes: usize,
    /// How the tracker ended up being used.
    pub address_use: bool,
    /// Total values observed (for periodicity verification).
    pub observed: u64,
}

impl Tracker {
    /// Creates an empty tracker collecting `lanes` values.
    #[must_use]
    pub fn new(lanes: usize) -> Tracker {
        Tracker {
            values: Vec::with_capacity(lanes),
            consistent: true,
            wide: false,
            lanes,
            address_use: false,
            observed: 0,
        }
    }

    /// Records one observed value. `value_limit` is the half-range of the
    /// hardware value field (`None` disables the width check, as a software
    /// JIT translator would).
    pub fn record(&mut self, value: i64, value_limit: Option<i64>) {
        if let Some(limit) = value_limit {
            if value < -limit || value >= limit {
                self.wide = true;
            }
        }
        let idx = (self.observed % self.lanes as u64) as usize;
        if self.values.len() < self.lanes {
            debug_assert_eq!(idx, self.values.len());
            self.values.push(value);
        } else if self.values[idx] != value {
            self.consistent = false;
        }
        self.observed += 1;
    }

    /// Whether a full pattern (`lanes` values) has been observed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.values.len() == self.lanes
    }

    /// Whether every recorded value is identical (splat candidate).
    #[must_use]
    pub fn is_splat(&self) -> Option<i64> {
        let first = *self.values.first()?;
        self.complete()
            .then_some(())
            .filter(|()| self.values.iter().all(|&v| v == first))
            .map(|()| first)
    }

    /// The observed values as `i32` offsets for CAM matching.
    #[must_use]
    pub fn offsets_i32(&self) -> Vec<i32> {
        self.values
            .iter()
            .map(|&v| i32::try_from(v).unwrap_or(i32::MAX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_collects_then_verifies_periodicity() {
        let mut t = Tracker::new(4);
        for v in [1, 2, 3, 4, 1, 2, 3, 4] {
            t.record(v, Some(32));
        }
        assert!(t.complete());
        assert!(t.consistent);
        assert_eq!(t.values, vec![1, 2, 3, 4]);
        t.record(9, Some(32)); // position 0 should be 1
        assert!(!t.consistent);
    }

    #[test]
    fn tracker_flags_wide_values() {
        let mut t = Tracker::new(2);
        t.record(31, Some(32));
        assert!(!t.wide);
        t.record(32, Some(32));
        assert!(t.wide);
        let mut jit = Tracker::new(2);
        jit.record(1_000_000, None);
        assert!(!jit.wide);
    }

    #[test]
    fn splat_detection() {
        let mut t = Tracker::new(3);
        t.record(7, None);
        assert_eq!(t.is_splat(), None); // incomplete
        t.record(7, None);
        t.record(7, None);
        assert_eq!(t.is_splat(), Some(7));
        t.record(8, None);
        assert!(!t.consistent);
    }

    #[test]
    fn abort_reasons_have_stable_tags_and_messages() {
        let r = AbortReason::TripNotMultiple { trip: 10, lanes: 4 };
        assert_eq!(r.tag(), "trip-not-multiple");
        assert!(r.to_string().contains("10"));
        assert_ne!(AbortReason::CamMiss.to_string(), "");
    }
}
