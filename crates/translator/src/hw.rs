//! Hardware register-state image.
//!
//! The paper's synthesized translator keeps **56 bits of state per
//! register** (§4.1): the classification kind, the element size assigned to
//! the register, and the previously loaded values (narrow fields — "storing
//! the entire 32 bits of previous values is unnecessary ... numbers that are
//! too big to represent simply abort").
//!
//! This module packs the software model's [`RegClass`] + tracked values into
//! that exact layout, proving the software automaton's state fits the
//! hardware budget, and feeding the [`area`](crate::area) model:
//!
//! ```text
//!  bits   field
//!  ─────  ──────────────────────────────────────────────
//!  3      kind (unknown/const/induction/scalar/vector/addr-vector)
//!  2      element type
//!  1      signedness of loads
//!  1      has-tracked-values flag
//!  1      wide flag (values overflowed their fields)
//!  W x B  previous values, two's complement, B bits each
//! ```
//!
//! At the paper's design point (`W = 8` lanes, `B = 6` bits) this is
//! `8 + 48 = 56` bits per register — exactly the figure in §4.1.

use crate::state::RegClass;

/// Per-register state bits, excluding the value fields.
pub const KIND_BITS: u32 = 3;
/// Element-type field width.
pub const ELEM_BITS: u32 = 2;
/// Flag bits (signedness, has-values, wide).
pub const FLAG_BITS: u32 = 3;
/// Fixed (non-value) bits per register.
pub const FIXED_BITS: u32 = KIND_BITS + ELEM_BITS + FLAG_BITS;

/// Total register-state bits per register for a translator with `lanes`
/// recorded values of `value_bits` each.
#[must_use]
pub fn bits_per_register(lanes: usize, value_bits: u32) -> u32 {
    FIXED_BITS + lanes as u32 * value_bits
}

/// A packed register-state image (up to 128 bits to accommodate 16-lane
/// configurations; the paper's 8-lane design fits in 56 bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedRegState {
    /// The raw bits, LSB-first field order as documented on the module.
    pub bits: u128,
    /// Number of meaningful bits.
    pub width: u32,
}

fn kind_code(class: RegClass) -> u128 {
    match class {
        RegClass::Unknown => 0,
        RegClass::Const(_) => 1,
        RegClass::Induction => 2,
        RegClass::Scalar => 3,
        RegClass::Vector { .. } => 4,
        RegClass::AddrVector { .. } => 5,
    }
}

fn elem_code(class: RegClass) -> u128 {
    match class {
        RegClass::Vector { elem, .. } => u128::from(elem.bits()),
        _ => 0,
    }
}

/// Packs a register's class and its tracked values.
///
/// Returns `None` when a value does not fit in `value_bits` — the hardware
/// condition that forces a translation abort (`ValueTooWide`).
#[must_use]
pub fn pack(
    class: RegClass,
    values: &[i64],
    lanes: usize,
    value_bits: u32,
) -> Option<PackedRegState> {
    let width = bits_per_register(lanes, value_bits);
    let mut bits: u128 = kind_code(class);
    bits |= elem_code(class) << KIND_BITS;
    let signed = matches!(class, RegClass::Vector { signed: true, .. });
    let has_values = !values.is_empty();
    bits |= u128::from(signed) << (KIND_BITS + ELEM_BITS);
    bits |= u128::from(has_values) << (KIND_BITS + ELEM_BITS + 1);
    // wide flag stays 0 in a successful pack.
    let min = -(1i64 << (value_bits - 1));
    let max = (1i64 << (value_bits - 1)) - 1;
    for (i, &v) in values.iter().take(lanes).enumerate() {
        if v < min || v > max {
            return None;
        }
        let field = (v as u128) & ((1u128 << value_bits) - 1);
        bits |= field << (FIXED_BITS + i as u32 * value_bits);
    }
    Some(PackedRegState { bits, width })
}

/// Unpacks the value fields (sign-extended); used in tests to show the
/// packing is lossless for in-range values.
#[must_use]
pub fn unpack_values(packed: &PackedRegState, lanes: usize, value_bits: u32) -> Vec<i64> {
    (0..lanes)
        .map(|i| {
            let shift = FIXED_BITS + i as u32 * value_bits;
            let raw = ((packed.bits >> shift) & ((1u128 << value_bits) - 1)) as u64;
            let sign_bit = 1u64 << (value_bits - 1);
            if raw & sign_bit != 0 {
                (raw as i64) - (1i64 << value_bits)
            } else {
                raw as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::ElemType;

    #[test]
    fn paper_design_point_is_56_bits() {
        assert_eq!(bits_per_register(8, 6), 56);
    }

    #[test]
    fn pack_roundtrips_values() {
        let class = RegClass::Vector {
            elem: ElemType::I16,
            signed: true,
            tracker: Some(0),
        };
        let values = [4, 4, -4, -4, 0, 31, -32, 1];
        let p = pack(class, &values, 8, 6).expect("fits");
        assert_eq!(p.width, 56);
        assert_eq!(unpack_values(&p, 8, 6), values);
    }

    #[test]
    fn out_of_range_value_fails_to_pack() {
        let class = RegClass::Vector {
            elem: ElemType::I32,
            signed: false,
            tracker: Some(0),
        };
        assert!(pack(class, &[32], 8, 6).is_none()); // 32 > 31
        assert!(pack(class, &[-33], 8, 6).is_none());
        assert!(pack(class, &[31, -32], 8, 6).is_some());
    }

    #[test]
    fn kinds_pack_distinctly() {
        let classes = [
            RegClass::Unknown,
            RegClass::Const(0),
            RegClass::Induction,
            RegClass::Scalar,
            RegClass::Vector {
                elem: ElemType::I8,
                signed: false,
                tracker: None,
            },
            RegClass::AddrVector { tracker: 0 },
        ];
        let mut seen = Vec::new();
        for c in classes {
            let p = pack(c, &[], 8, 6).unwrap();
            assert!(!seen.contains(&(p.bits & 0x7)), "kind collision for {c:?}");
            seen.push(p.bits & 0x7);
        }
    }

    #[test]
    fn butterfly_offsets_fit_the_paper_budget() {
        // The widest offsets a 16-lane machine ever tracks are +/-8
        // (block-16 butterfly); they must fit the 6-bit fields.
        use liquid_simd_isa::PermKind;
        let offs: Vec<i64> = PermKind::Bfly { block: 16 }
            .offsets(16)
            .into_iter()
            .map(i64::from)
            .collect();
        let class = RegClass::Vector {
            elem: ElemType::I32,
            signed: false,
            tracker: Some(0),
        };
        assert!(pack(class, &offs, 16, 6).is_some());
    }
}
