//! Idiom recognition: collapsing multi-instruction scalar sequences back
//! into single SIMD operations (paper §3.2: "a dynamic translator can
//! recognize that these sequences of scalar instructions represent one SIMD
//! instruction, and no efficiency is lost").
//!
//! Saturating arithmetic is expressed as a five-instruction *full-clamp*
//! idiom — wrapping arithmetic followed by clamps against both bounds:
//!
//! ```text
//! add rd, rn, x          (or sub)
//! cmp rd, #HI
//! movgt rd, #HI
//! cmp rd, #LO
//! movlt rd, #LO
//! ```
//!
//! The `(HI, LO)` pair identifies the operation and element width:
//!
//! | bounds | op |
//! |---|---|
//! | `(255, 0)` | `vqaddu.i8` / `vqsubu.i8` |
//! | `(65535, 0)` | `vqaddu.i16` / `vqsubu.i16` |
//! | `(127, -128)` | `vqadds.i8` / `vqsubs.i8` |
//! | `(32767, -32768)` | `vqadds.i16` / `vqsubs.i16` |
//!
//! The clamp order (high first, then low) is immaterial to the result —
//! only one bound can fire — but the recogniser matches the canonical
//! order the compiler emits. This is the paper's Table 1 idiom,
//! generalised with the low clamp so that saturating semantics hold for
//! *every* input (the paper's three-instruction `add; cmp; movgt` example
//! assumes non-negative operands).

use liquid_simd_isa::{AluOp, Cond, ElemType, Operand2, Reg, ScalarInst, VAluOp};

/// One unit of loop-body work after idiom collapsing: either a raw scalar
/// instruction or a recognised saturating macro-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BodyOp {
    /// Index of the first underlying instruction within the body sequence
    /// (used to map observed load values back to trackers).
    pub pos: usize,
    /// The operation.
    pub kind: BodyOpKind,
}

/// The kind of a [`BodyOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyOpKind {
    /// An untouched scalar instruction.
    Plain(ScalarInst),
    /// A saturating-arithmetic idiom collapsed to one vector op.
    Sat {
        /// The saturating vector operation.
        op: VAluOp,
        /// Element type implied by the clamp bounds.
        elem: Option<ElemType>,
        /// Destination register.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        op2: Operand2,
    },
}

/// The recognised `(hi, lo)` clamp pairs with their op flavour and width.
const CLAMP_TABLE: [(i32, i32, bool, ElemType); 4] = [
    (255, 0, false, ElemType::I8),
    (65535, 0, false, ElemType::I16),
    (127, -128, true, ElemType::I8),
    (32767, -32768, true, ElemType::I16),
];

/// Collapses idioms in a loop-body instruction sequence.
///
/// Instructions that participate in no idiom pass through unchanged, in
/// order, carrying their original positions.
#[must_use]
pub fn collapse(body: &[ScalarInst]) -> Vec<BodyOp> {
    let mut out = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if let Some((op, consumed)) = match_sat(&body[i..]) {
            out.push(BodyOp { pos: i, kind: op });
            i += consumed;
        } else {
            out.push(BodyOp {
                pos: i,
                kind: BodyOpKind::Plain(body[i]),
            });
            i += 1;
        }
    }
    out
}

fn base_alu(inst: &ScalarInst) -> Option<(AluOp, Reg, Reg, Operand2)> {
    match *inst {
        ScalarInst::Alu {
            cond: Cond::Al,
            op,
            rd,
            rn,
            op2,
        } if matches!(op, AluOp::Add | AluOp::Sub) => Some((op, rd, rn, op2)),
        _ => None,
    }
}

fn is_cmp_imm(inst: &ScalarInst, rn: Reg, imm: i32) -> bool {
    matches!(*inst, ScalarInst::Cmp { rn: r, op2: Operand2::Imm(i) } if r == rn && i == imm)
}

fn is_mov_imm(inst: &ScalarInst, cond: Cond, rd: Reg, imm: i32) -> bool {
    matches!(
        *inst,
        ScalarInst::MovImm { cond: c, rd: r, imm: i } if c == cond && r == rd && i == imm
    )
}

/// `add/sub; cmp #HI; movgt #HI; cmp #LO; movlt #LO` (5 instructions).
fn match_sat(window: &[ScalarInst]) -> Option<(BodyOpKind, usize)> {
    if window.len() < 5 {
        return None;
    }
    let (alu, rd, rn, op2) = base_alu(&window[0])?;
    for &(hi, lo, signed, elem) in &CLAMP_TABLE {
        if is_cmp_imm(&window[1], rd, hi)
            && is_mov_imm(&window[2], Cond::Gt, rd, hi)
            && is_cmp_imm(&window[3], rd, lo)
            && is_mov_imm(&window[4], Cond::Lt, rd, lo)
        {
            let op = match (alu, signed) {
                (AluOp::Add, false) => VAluOp::SatAdd,
                (AluOp::Sub, false) => VAluOp::SatSub,
                (AluOp::Add, true) => VAluOp::SSatAdd,
                (AluOp::Sub, true) => VAluOp::SSatSub,
                _ => unreachable!("base_alu filters"),
            };
            return Some((
                BodyOpKind::Sat {
                    op,
                    elem: Some(elem),
                    rd,
                    rn,
                    op2,
                },
                5,
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(rd: u8, rn: u8, rm: u8) -> ScalarInst {
        ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Add,
            rd: Reg::of(rd),
            rn: Reg::of(rn),
            op2: Operand2::Reg(Reg::of(rm)),
        }
    }

    fn sub_imm(rd: u8, rn: u8, imm: i32) -> ScalarInst {
        ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Sub,
            rd: Reg::of(rd),
            rn: Reg::of(rn),
            op2: Operand2::Imm(imm),
        }
    }

    fn cmp(rn: u8, imm: i32) -> ScalarInst {
        ScalarInst::Cmp {
            rn: Reg::of(rn),
            op2: Operand2::Imm(imm),
        }
    }

    fn mov_cond(cond: Cond, rd: u8, imm: i32) -> ScalarInst {
        ScalarInst::MovImm {
            cond,
            rd: Reg::of(rd),
            imm,
        }
    }

    fn clamp_pair(rd: u8, hi: i32, lo: i32) -> [ScalarInst; 4] {
        [
            cmp(rd, hi),
            mov_cond(Cond::Gt, rd, hi),
            cmp(rd, lo),
            mov_cond(Cond::Lt, rd, lo),
        ]
    }

    #[test]
    fn collapses_unsigned_saturating_add() {
        let mut body = vec![add(1, 2, 3)];
        body.extend(clamp_pair(1, 255, 0));
        let ops = collapse(&body);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].pos, 0);
        assert!(matches!(
            ops[0].kind,
            BodyOpKind::Sat {
                op: VAluOp::SatAdd,
                elem: Some(ElemType::I8),
                ..
            }
        ));
    }

    #[test]
    fn collapses_unsigned_saturating_sub_with_immediate() {
        let mut body = vec![sub_imm(4, 4, 30)];
        body.extend(clamp_pair(4, 65535, 0));
        let ops = collapse(&body);
        assert_eq!(ops.len(), 1);
        match ops[0].kind {
            BodyOpKind::Sat { op, elem, op2, .. } => {
                assert_eq!(op, VAluOp::SatSub);
                assert_eq!(elem, Some(ElemType::I16));
                assert_eq!(op2, Operand2::Imm(30));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collapses_signed_saturating_i16() {
        let mut body = vec![add(4, 5, 6)];
        body.extend(clamp_pair(4, 32767, -32768));
        let ops = collapse(&body);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            ops[0].kind,
            BodyOpKind::Sat {
                op: VAluOp::SSatAdd,
                elem: Some(ElemType::I16),
                ..
            }
        ));
    }

    #[test]
    fn partial_clamp_is_not_an_idiom() {
        // Only the high clamp: not saturation (it would change semantics
        // for negative sums), must pass through untouched.
        let body = vec![add(1, 2, 3), cmp(1, 255), mov_cond(Cond::Gt, 1, 255)];
        let ops = collapse(&body);
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|o| matches!(o.kind, BodyOpKind::Plain(_))));
    }

    #[test]
    fn near_miss_wrong_register_passes_through() {
        let mut body = vec![add(1, 2, 3)];
        body.extend(clamp_pair(7, 255, 0)); // clamps a different register
        let ops = collapse(&body);
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[4].pos, 4);
    }

    #[test]
    fn mismatched_bounds_pass_through() {
        // 255 high with -128 low is no recognised saturation width.
        let mut body = vec![add(1, 2, 3)];
        body.extend([
            cmp(1, 255),
            mov_cond(Cond::Gt, 1, 255),
            cmp(1, -128),
            mov_cond(Cond::Lt, 1, -128),
        ]);
        let ops = collapse(&body);
        assert_eq!(ops.len(), 5);
    }

    #[test]
    fn surrounding_instructions_keep_positions() {
        let mut body = vec![cmp(0, 9), add(1, 2, 3)];
        body.extend(clamp_pair(1, 255, 0));
        body.push(add(5, 5, 5));
        let ops = collapse(&body);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].pos, 0);
        assert_eq!(ops[1].pos, 1);
        assert_eq!(ops[2].pos, 6);
    }
}
