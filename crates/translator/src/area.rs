//! Parametric area/delay model for the hardware translator.
//!
//! **Substitution note (see DESIGN.md):** the paper implemented the
//! translator in HDL and synthesized it with a 90 nm IBM standard-cell
//! process (Table 2: 16-gate critical path, 1.51 ns, 174 117 cells,
//! < 0.2 mm²). We cannot synthesize silicon here, so this module provides a
//! *structural* model: it derives cell counts from the actual sizes of our
//! translator's state (register-state bits from [`crate::hw`], microcode
//! buffer bits, CAM entries, decoder classes), with per-component constants
//! calibrated so the 8-wide design point reproduces the paper's totals. The
//! model then scales with lane count the way the paper says it should
//! ("this structure will increase in area linearly with the vector lengths
//! of the targeted accelerator").

use liquid_simd_isa::PermKind;

use crate::hw::bits_per_register;

/// Number of architectural integer + fp registers tracked (the ARM ISA's 16
/// integer registers in the paper; we track fp state in the same table).
pub const TRACKED_REGISTERS: u32 = 16;

/// Cells per register-state bit (storage + the MUX network the paper calls
/// out as dominating this block). Calibrated to Table 2.
pub const REG_CELLS_PER_BIT: f64 = 91.89;
/// Cells per microcode-buffer memory bit.
pub const BUF_CELLS_PER_BIT: f64 = 18.8;
/// Cells of the buffer's alignment (collapse) network.
pub const BUF_ALIGN_CELLS: f64 = 38_500.0;
/// Cells of the partial decoder ("a few thousand cells", §4.1).
pub const DECODER_CELLS: f64 = 2_500.0;
/// Cells of the legality checker ("a few hundred cells", §4.1).
pub const LEGALITY_CELLS: f64 = 400.0;
/// Cells of the opcode generation logic ("approximately 9000 cells", §4.1).
pub const OPGEN_CELLS: f64 = 9_000.0;
/// Cells per CAM entry bit (match line + storage).
pub const CAM_CELLS_PER_BIT: f64 = 4.0;
/// Die area per cell in µm², calibrated so 174 117 cells is just under the
/// paper's 0.2 mm².
pub const UM2_PER_CELL: f64 = 1.12;
/// Gate delay implied by Table 2: 1.51 ns over a 16-gate critical path.
pub const NS_PER_GATE: f64 = 1.51 / 16.0;

/// Structural parameters of a translator instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslatorGeometry {
    /// Accelerator lanes.
    pub lanes: usize,
    /// Bits per recorded previous value.
    pub value_bits: u32,
    /// Microcode buffer capacity (instructions).
    pub buffer_entries: usize,
    /// Bits per microcode instruction (our fixed encoding: 32).
    pub uop_bits: u32,
}

impl TranslatorGeometry {
    /// The paper's 8-wide design point.
    #[must_use]
    pub fn paper_8wide() -> TranslatorGeometry {
        TranslatorGeometry {
            lanes: 8,
            value_bits: 6,
            buffer_entries: 64,
            uop_bits: 32,
        }
    }

    /// Same structure at a different lane count.
    #[must_use]
    pub fn with_lanes(lanes: usize) -> TranslatorGeometry {
        TranslatorGeometry {
            lanes,
            ..TranslatorGeometry::paper_8wide()
        }
    }
}

/// Modelled synthesis results (the stand-in for paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthesisEstimate {
    /// Standard cells of the register-state block.
    pub regstate_cells: f64,
    /// Standard cells of the microcode buffer (memory + alignment network).
    pub buffer_cells: f64,
    /// Standard cells of the permutation CAM.
    pub cam_cells: f64,
    /// Standard cells of decoder + legality + opcode generation.
    pub logic_cells: f64,
    /// Critical path length in gates.
    pub critical_path_gates: u32,
}

impl SynthesisEstimate {
    /// Total standard cells.
    #[must_use]
    pub fn total_cells(&self) -> f64 {
        self.regstate_cells + self.buffer_cells + self.cam_cells + self.logic_cells
    }

    /// Die area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.total_cells() * UM2_PER_CELL / 1e6
    }

    /// Critical-path delay in nanoseconds.
    #[must_use]
    pub fn delay_ns(&self) -> f64 {
        f64::from(self.critical_path_gates) * NS_PER_GATE
    }

    /// Maximum clock frequency in MHz.
    #[must_use]
    pub fn fmax_mhz(&self) -> f64 {
        1e3 / self.delay_ns()
    }
}

/// Estimates synthesis results for a translator geometry.
#[must_use]
pub fn estimate(geom: &TranslatorGeometry) -> SynthesisEstimate {
    let reg_bits =
        f64::from(bits_per_register(geom.lanes, geom.value_bits)) * f64::from(TRACKED_REGISTERS);
    let regstate_cells = reg_bits * REG_CELLS_PER_BIT;

    let buf_bits = geom.buffer_entries as f64 * f64::from(geom.uop_bits);
    // The alignment network's width scales with buffer entries relative to
    // the 64-entry design point.
    let buffer_cells =
        buf_bits * BUF_CELLS_PER_BIT + BUF_ALIGN_CELLS * (geom.buffer_entries as f64 / 64.0);

    // One CAM entry per recognisable permutation pattern; each entry stores
    // `lanes` offsets of `value_bits` bits.
    let entries = PermKind::cam_entries(geom.lanes).len() as f64;
    let cam_cells = entries * geom.lanes as f64 * f64::from(geom.value_bits) * CAM_CELLS_PER_BIT;

    let logic_cells = DECODER_CELLS + LEGALITY_CELLS + OPGEN_CELLS;

    // 5 decode gates + 11 register-state gates at the 8-lane design point
    // (paper §4.1); the value-copy MUX tree deepens by one gate per lane
    // doubling beyond 8 and shrinks below it.
    let base: i32 = 16;
    let extra = (geom.lanes as f64 / 8.0).log2().round() as i32;
    let critical_path_gates = (base + extra).max(8) as u32;

    SynthesisEstimate {
        regstate_cells,
        buffer_cells,
        cam_cells,
        logic_cells,
        critical_path_gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_wide_matches_paper_table2() {
        let e = estimate(&TranslatorGeometry::paper_8wide());
        // Paper: 174,117 cells, 16 gates, 1.51 ns, < 0.2 mm^2, > 650 MHz.
        let total = e.total_cells();
        assert!(
            (total - 174_117.0).abs() / 174_117.0 < 0.02,
            "total cells {total} should be within 2% of the paper's 174,117"
        );
        assert_eq!(e.critical_path_gates, 16);
        assert!((e.delay_ns() - 1.51).abs() < 1e-9);
        assert!(e.area_mm2() < 0.2);
        assert!(e.fmax_mhz() > 650.0);
    }

    #[test]
    fn register_state_dominates_area() {
        // Paper: "this structure [register state] comprise[s] 55% of the
        // control generator die area". Our composition puts it near half;
        // assert it is the largest single block.
        let e = estimate(&TranslatorGeometry::paper_8wide());
        assert!(e.regstate_cells > e.buffer_cells);
        assert!(e.regstate_cells > e.logic_cells + e.cam_cells);
        let share = e.regstate_cells / e.total_cells();
        assert!((0.40..0.60).contains(&share), "share {share}");
    }

    #[test]
    fn area_scales_roughly_linearly_with_lanes() {
        let w8 = estimate(&TranslatorGeometry::with_lanes(8));
        let w16 = estimate(&TranslatorGeometry::with_lanes(16));
        // Register state should roughly double per lane doubling.
        let ratio = w16.regstate_cells / w8.regstate_cells;
        assert!((1.5..2.2).contains(&ratio), "ratio {ratio}");
        // Total grows but stays the same order of magnitude.
        assert!(w16.total_cells() > w8.total_cells());
        assert!(w16.total_cells() < 3.0 * w8.total_cells());
    }

    #[test]
    fn critical_path_grows_slowly() {
        assert_eq!(
            estimate(&TranslatorGeometry::with_lanes(16)).critical_path_gates,
            17
        );
        assert_eq!(
            estimate(&TranslatorGeometry::with_lanes(4)).critical_path_gates,
            15
        );
        assert_eq!(
            estimate(&TranslatorGeometry::with_lanes(2)).critical_path_gates,
            14
        );
    }
}
