//! Translator-level tests driven by hand-fed retirement streams — the
//! automaton is exercised without a simulator, checking each Table 3 rule
//! and the new vector-by-scalar broadcast refinements.

use liquid_simd_isa::{
    AluOp, Base, Cond, ElemType, FReg, FpOp, Inst, MemWidth, Operand2, Reg, ScalarInst, ScalarSrc,
    SymId, VAluOp, VectorInst,
};
use liquid_simd_translator::{Progress, Retired, Translator, TranslatorConfig};

/// A tiny scalar interpreter sufficient for straight loops: executes the
/// instruction stream and feeds retirement events until `ret`.
struct MiniMachine {
    r: [i64; 16],
    flags: (i64, i64),                 // last cmp operands
    mem: Box<dyn Fn(u32, i64) -> i64>, // (symbol id, element index) -> value
}

impl MiniMachine {
    fn feed(&mut self, code: &[ScalarInst], translator: &mut Translator) -> Progress {
        let mut pc = 0u32;
        loop {
            let inst = code[pc as usize];
            let mut value = None;
            let mut taken = false;
            let mut executed = true;
            let mut next = pc + 1;
            match inst {
                ScalarInst::MovImm { cond, rd, imm } => {
                    executed = self.cond(cond);
                    if executed {
                        self.r[rd.index() as usize] = i64::from(imm);
                    }
                    value = Some(i64::from(imm));
                }
                ScalarInst::Alu {
                    cond,
                    op,
                    rd,
                    rn,
                    op2,
                } => {
                    executed = self.cond(cond);
                    let b = match op2 {
                        Operand2::Imm(i) => i64::from(i),
                        Operand2::Reg(r) => self.r[r.index() as usize],
                    };
                    if executed {
                        let a = self.r[rn.index() as usize];
                        let v = i64::from(op.eval(a as i32, b as i32));
                        self.r[rd.index() as usize] = v;
                        value = Some(v);
                    }
                }
                ScalarInst::Cmp { rn, op2 } => {
                    let b = match op2 {
                        Operand2::Imm(i) => i64::from(i),
                        Operand2::Reg(r) => self.r[r.index() as usize],
                    };
                    self.flags = (self.r[rn.index() as usize], b);
                }
                ScalarInst::LdInt {
                    rd, base, index, ..
                } => {
                    let sym = match base {
                        Base::Sym(s) => s.index() as u32,
                        Base::Reg(_) => 999,
                    };
                    let v = (self.mem)(sym, self.r[index.index() as usize]);
                    self.r[rd.index() as usize] = v;
                    value = Some(v);
                }
                ScalarInst::LdF { .. } | ScalarInst::StF { .. } | ScalarInst::FAlu { .. } => {
                    // fp values are irrelevant to the automaton's decisions
                    // here beyond classification.
                }
                ScalarInst::StInt { .. } => {}
                ScalarInst::B { cond, target } => {
                    taken = self.cond(cond);
                    if taken {
                        next = target;
                    }
                }
                ScalarInst::Ret => {
                    return translator.observe(&Retired {
                        pc,
                        inst,
                        executed: true,
                        value: None,
                        taken: true,
                    });
                }
                _ => {}
            }
            match translator.observe(&Retired {
                pc,
                inst,
                executed,
                value,
                taken,
            }) {
                Progress::Ongoing => {}
                done => return done,
            }
            pc = next;
        }
    }

    fn cond(&self, c: Cond) -> bool {
        let (a, b) = self.flags;
        match c {
            Cond::Al => true,
            Cond::Gt => a > b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            // Unsigned predicates, modelled exhaustively so this helper can
            // never panic: a predicate the *automaton* cannot vectorise
            // surfaces as a translation abort, which tests can then assert
            // on, instead of dying inside the interpreter.
            Cond::Lo => (a as u64) < (b as u64),
            Cond::Ls => (a as u64) <= (b as u64),
            Cond::Hi => (a as u64) > (b as u64),
            Cond::Hs => (a as u64) >= (b as u64),
        }
    }
}

fn machine(mem: impl Fn(u32, i64) -> i64 + 'static) -> MiniMachine {
    MiniMachine {
        r: [0; 16],
        flags: (0, 0),
        mem: Box::new(mem),
    }
}

fn alu(op: AluOp, rd: u8, rn: u8, op2: Operand2) -> ScalarInst {
    ScalarInst::Alu {
        cond: Cond::Al,
        op,
        rd: Reg::of(rd),
        rn: Reg::of(rn),
        op2,
    }
}

fn ld(rd: u8, sym: u16, index: u8) -> ScalarInst {
    ScalarInst::LdInt {
        width: MemWidth::W,
        signed: false,
        rd: Reg::of(rd),
        base: Base::Sym(SymId::new(sym)),
        index: Reg::of(index),
    }
}

fn st(rs: u8, sym: u16, index: u8) -> ScalarInst {
    ScalarInst::StInt {
        width: MemWidth::W,
        rs: Reg::of(rs),
        base: Base::Sym(SymId::new(sym)),
        index: Reg::of(index),
    }
}

fn loop_tail(bound: i32, top: u32) -> [ScalarInst; 3] {
    [
        alu(AluOp::Add, 0, 0, Operand2::Imm(1)),
        ScalarInst::Cmp {
            rn: Reg::R0,
            op2: Operand2::Imm(bound),
        },
        ScalarInst::B {
            cond: Cond::Lt,
            target: top,
        },
    ]
}

#[test]
fn vector_scalar_broadcast_from_hoisted_constant() {
    // mov r5, #5000 (outside imm range of VAluImm) then `mul vec, r5`
    // must become a vector-by-scalar op, not an abort.
    let mut code = vec![
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R5,
            imm: 5000,
        },
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        // top:
        ld(1, 0, 0),
        alu(AluOp::Mul, 1, 1, Operand2::Reg(Reg::R5)),
        st(1, 1, 0),
    ];
    code.extend(loop_tail(16, 2));
    code.push(ScalarInst::Ret);

    let mut t = Translator::new(TranslatorConfig {
        lanes: 8,
        ..TranslatorConfig::default()
    });
    t.begin(0);
    let progress = machine(|_, i| i).feed(&code, &mut t);
    let Progress::Finished(tr) = progress else {
        panic!("expected translation, got {progress:?}");
    };
    assert!(
        tr.code.iter().any(|i| matches!(
            i,
            Inst::V(VectorInst::VAluScalar {
                op: VAluOp::Mul,
                src: ScalarSrc::R(r),
                ..
            }) if *r == Reg::R5
        )),
        "microcode: {:?}",
        tr.code
    );
}

#[test]
fn small_constant_register_becomes_immediate_form() {
    let mut code = vec![
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R5,
            imm: 7,
        },
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        ld(1, 0, 0),
        alu(AluOp::Add, 1, 1, Operand2::Reg(Reg::R5)),
        st(1, 1, 0),
    ];
    code.extend(loop_tail(16, 2));
    code.push(ScalarInst::Ret);

    let mut t = Translator::new(TranslatorConfig::default());
    t.begin(0);
    let Progress::Finished(tr) = machine(|_, i| i).feed(&code, &mut t) else {
        panic!("expected translation");
    };
    assert!(tr.code.iter().any(|i| matches!(
        i,
        Inst::V(VectorInst::VAluImm {
            op: VAluOp::Add,
            imm: 7,
            ..
        })
    )));
}

#[test]
fn fp_broadcast_via_scalar_fp_register() {
    // ldf f5 in the prologue (scalar), then `fmul f1, f1, f5` in the body
    // where f1 is a vector: vector-by-scalar fp broadcast.
    let ldf5 = ScalarInst::LdF {
        fd: FReg::of(5),
        base: Base::Sym(SymId::new(2)),
        index: Reg::of(12),
    };
    let ldf1 = ScalarInst::LdF {
        fd: FReg::of(1),
        base: Base::Sym(SymId::new(0)),
        index: Reg::R0,
    };
    let fmul = ScalarInst::FAlu {
        op: FpOp::Mul,
        fd: FReg::of(1),
        fn_: FReg::of(1),
        fm: FReg::of(5),
    };
    let stf = ScalarInst::StF {
        fs: FReg::of(1),
        base: Base::Sym(SymId::new(1)),
        index: Reg::R0,
    };
    let mut code = vec![
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::of(12),
            imm: 0,
        },
        ldf5,
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        ldf1,
        fmul,
        stf,
    ];
    code.extend(loop_tail(16, 3));
    code.push(ScalarInst::Ret);

    let mut t = Translator::new(TranslatorConfig::default());
    t.begin(0);
    let Progress::Finished(tr) = machine(|_, i| i).feed(&code, &mut t) else {
        panic!("expected translation");
    };
    assert!(
        tr.code.iter().any(|i| matches!(
            i,
            Inst::V(VectorInst::VAluScalar {
                op: VAluOp::Mul,
                elem: ElemType::F32,
                src: ScalarSrc::F(f),
                ..
            }) if *f == FReg::of(5)
        )),
        "microcode: {:?}",
        tr.code
    );
}

#[test]
fn saturating_idiom_with_scalar_register_operand() {
    // sat-add against a hoisted wide constant: add rd, rn, r5; clamp pair.
    let mut code = vec![
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R5,
            imm: 400, // beyond the 9-bit vector immediate
        },
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        ld(1, 0, 0),
        alu(AluOp::Add, 1, 1, Operand2::Reg(Reg::R5)),
        ScalarInst::Cmp {
            rn: Reg::R1,
            op2: Operand2::Imm(65535),
        },
        ScalarInst::MovImm {
            cond: Cond::Gt,
            rd: Reg::R1,
            imm: 65535,
        },
        ScalarInst::Cmp {
            rn: Reg::R1,
            op2: Operand2::Imm(0),
        },
        ScalarInst::MovImm {
            cond: Cond::Lt,
            rd: Reg::R1,
            imm: 0,
        },
        st(1, 1, 0),
    ];
    code.extend(loop_tail(16, 2));
    code.push(ScalarInst::Ret);

    let mut t = Translator::new(TranslatorConfig::default());
    t.begin(0);
    let Progress::Finished(tr) = machine(|_, i| i % 50).feed(&code, &mut t) else {
        panic!("expected translation");
    };
    assert!(
        tr.code.iter().any(|i| matches!(
            i,
            Inst::V(VectorInst::VAluScalar {
                op: VAluOp::SatAdd,
                ..
            })
        )),
        "microcode: {:?}",
        tr.code
    );
}

#[test]
fn external_abort_mid_translation() {
    let mut code = vec![
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        ld(1, 0, 0),
        alu(AluOp::Add, 1, 1, Operand2::Imm(1)),
        st(1, 1, 0),
    ];
    code.extend(loop_tail(16, 1));
    code.push(ScalarInst::Ret);

    let mut t = Translator::new(TranslatorConfig::default());
    t.begin(0);
    // Feed a few instructions, then raise the pipeline abort signal.
    for pc in 0..3u32 {
        let progress = t.observe(&Retired::plain(pc, code[pc as usize], Some(0)));
        assert_eq!(progress, Progress::Ongoing);
    }
    t.abort_external("context switch");
    assert!(!t.is_active());
    assert_eq!(t.stats().aborts.get("external"), Some(&1));
}

#[test]
fn translator_requires_explicit_begin() {
    let mut t = Translator::new(TranslatorConfig::default());
    let r = Retired::plain(
        0,
        ScalarInst::MovImm {
            cond: Cond::Al,
            rd: Reg::R0,
            imm: 0,
        },
        Some(0),
    );
    assert_eq!(t.observe(&r), Progress::Ongoing);
    assert_eq!(t.stats().attempts, 0);
}
