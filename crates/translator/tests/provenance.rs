//! Abort provenance: every [`AbortReason`] variant, driven by a hand-fed
//! retirement stream, must leave an [`AbortRecord`] whose PC and dynamic
//! instruction index point at the injected illegal input.
//!
//! The recorded `pc` is always the *last retired* instruction at the
//! moment the legality check fired — for checks that fire during deferred
//! classification (at the loop back-edge or the region's `ret`) that is
//! the back-edge / `ret` itself, with the offending PC carried inside the
//! reason (e.g. [`AbortReason::UnsupportedOpcode`]).

use liquid_simd_isa::{AluOp, Base, Cond, FReg, MemWidth, Operand2, Reg, ScalarInst, SymId};
use liquid_simd_translator::{
    AbortReason, AbortRecord, Progress, Retired, Translator, TranslatorConfig,
};

fn mov(rd: u8, imm: i32) -> ScalarInst {
    ScalarInst::MovImm {
        cond: Cond::Al,
        rd: Reg::of(rd),
        imm,
    }
}

fn alu(op: AluOp, rd: u8, rn: u8, op2: Operand2) -> ScalarInst {
    ScalarInst::Alu {
        cond: Cond::Al,
        op,
        rd: Reg::of(rd),
        rn: Reg::of(rn),
        op2,
    }
}

fn ld(rd: u8, sym: u16, index: u8) -> ScalarInst {
    ScalarInst::LdInt {
        width: MemWidth::W,
        signed: false,
        rd: Reg::of(rd),
        base: Base::Sym(SymId::new(sym)),
        index: Reg::of(index),
    }
}

fn ldf(fd: u8, sym: u16, index: u8) -> ScalarInst {
    ScalarInst::LdF {
        fd: FReg::of(fd),
        base: Base::Sym(SymId::new(sym)),
        index: Reg::of(index),
    }
}

fn st(rs: u8, sym: u16, index: u8) -> ScalarInst {
    ScalarInst::StInt {
        width: MemWidth::W,
        rs: Reg::of(rs),
        base: Base::Sym(SymId::new(sym)),
        index: Reg::of(index),
    }
}

fn cmp(rn: u8, imm: i32) -> ScalarInst {
    ScalarInst::Cmp {
        rn: Reg::of(rn),
        op2: Operand2::Imm(imm),
    }
}

fn blt(target: u32) -> ScalarInst {
    ScalarInst::B {
        cond: Cond::Lt,
        target,
    }
}

/// Feeds a translator while tracking exactly what was retired, so tests
/// can assert the recorded provenance against ground truth.
struct Drive {
    t: Translator,
    fed: u64,
    last_pc: u32,
}

impl Drive {
    fn new(config: TranslatorConfig) -> Drive {
        let mut t = Translator::new(config);
        t.begin(0);
        Drive {
            t,
            fed: 0,
            last_pc: 0,
        }
    }

    fn lanes(lanes: usize) -> Drive {
        Drive::new(TranslatorConfig {
            lanes,
            ..TranslatorConfig::default()
        })
    }

    fn feed(&mut self, pc: u32, inst: ScalarInst, value: Option<i64>, taken: bool) -> Progress {
        self.fed += 1;
        self.last_pc = pc;
        self.t.observe(&Retired {
            pc,
            inst,
            executed: true,
            value,
            taken,
        })
    }

    /// Runs `iters` iterations of the canonical add-one body at `pcs`
    /// 1..=6 (`ld, add, st, add, cmp, blt`) over a `bound`-element compare,
    /// returning early if the translator finishes or aborts.
    fn add_one_iters(&mut self, iters: u64, bound: i32) -> Progress {
        for i in 0..iters {
            let i = i as i64;
            let body = [
                (1, ld(1, 0, 0), Some(i)),
                (2, alu(AluOp::Add, 1, 1, Operand2::Imm(1)), Some(i + 1)),
                (3, st(1, 0, 0), None),
                (4, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(i + 1)),
                (5, cmp(0, bound), None),
            ];
            for (pc, inst, value) in body {
                match self.feed(pc, inst, value, false) {
                    Progress::Ongoing => {}
                    done => return done,
                }
            }
            let taken = (i + 1) < iters as i64;
            match self.feed(6, blt(1), None, taken) {
                Progress::Ongoing => {}
                done => return done,
            }
        }
        Progress::Ongoing
    }

    /// The single retained abort record, checked against the drive's
    /// ground truth: region 0, the last retired PC, the exact dynamic
    /// instruction count.
    fn assert_abort(&self, tag: &str) -> &AbortRecord {
        let records = &self.t.stats().abort_records;
        assert_eq!(records.len(), 1, "records: {records:?}");
        let r = &records[0];
        assert_eq!(r.reason.tag(), tag);
        assert_eq!(r.func_pc, 0);
        assert_eq!(r.pc, self.last_pc, "recorded pc vs last retired");
        assert_eq!(
            r.instr_index, self.fed,
            "recorded index vs instructions fed"
        );
        assert_eq!(self.t.stats().aborts_by_region[&0][tag], 1);
        r
    }
}

#[test]
fn unsupported_opcode_names_the_offending_pc() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    d.feed(1, ld(1, 0, 0), Some(0), false);
    let p = d.feed(2, ScalarInst::Halt, None, false);
    assert!(matches!(p, Progress::Aborted(_)), "got {p:?}");
    let r = d.assert_abort("unsupported-opcode");
    assert_eq!(r.reason, AbortReason::UnsupportedOpcode { pc: 2 });
    assert_eq!(r.opcode, "halt");
    assert_eq!(r.phase, "collect");
}

#[test]
fn nested_call_records_the_call_site() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    let call = ScalarInst::Bl {
        target: 40,
        vectorizable: false,
    };
    let p = d.feed(1, call, None, true);
    assert!(matches!(p, Progress::Aborted(AbortReason::NestedCall)));
    let r = d.assert_abort("nested-call");
    assert_eq!((r.pc, r.instr_index), (1, 2));
}

#[test]
fn no_loop_records_the_return() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    d.feed(1, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(1), false);
    let p = d.feed(2, ScalarInst::Ret, None, true);
    assert!(matches!(p, Progress::Aborted(AbortReason::NoLoop)));
    let r = d.assert_abort("no-loop");
    assert_eq!((r.pc, r.instr_index), (2, 3));
}

#[test]
fn too_many_uops_fires_at_materialization() {
    let mut d = Drive::new(TranslatorConfig {
        lanes: 2,
        max_uops: 3,
        ..TranslatorConfig::default()
    });
    d.feed(0, mov(0, 0), Some(0), false);
    assert_eq!(d.add_one_iters(2, 2), Progress::Ongoing);
    let p = d.feed(7, ScalarInst::Ret, None, true);
    assert!(matches!(
        p,
        Progress::Aborted(AbortReason::TooManyUops { limit: 3 })
    ));
    let r = d.assert_abort("too-many-uops");
    assert_eq!(r.pc, 7, "abort surfaces at the region's ret");
}

#[test]
fn trip_not_multiple_records_the_exiting_branch() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    let p = d.add_one_iters(2, 2); // trip 2 at 4 lanes
    assert!(matches!(
        p,
        Progress::Aborted(AbortReason::TripNotMultiple { trip: 2, lanes: 4 })
    ));
    let r = d.assert_abort("trip-not-multiple");
    assert_eq!(r.pc, 6, "the untaken back-edge");
    assert_eq!(r.phase, "loop");
}

#[test]
fn bound_mismatch_when_compare_disagrees_with_trip() {
    let mut d = Drive::lanes(2);
    d.feed(0, mov(0, 0), Some(0), false);
    // The compare claims 16 iterations; the loop exits after 2.
    let p = d.add_one_iters(2, 16);
    assert!(matches!(p, Progress::Aborted(AbortReason::BoundMismatch)));
    let r = d.assert_abort("bound-mismatch");
    assert_eq!(r.pc, 6);
}

#[test]
fn iteration_mismatch_names_the_diverging_pc() {
    let mut d = Drive::lanes(2);
    d.feed(0, mov(0, 0), Some(0), false);
    // One clean iteration (back-edge taken)...
    let body = [
        (1, ld(1, 0, 0), Some(0)),
        (2, alu(AluOp::Add, 1, 1, Operand2::Imm(1)), Some(1)),
        (3, st(1, 0, 0), None),
        (4, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(1)),
        (5, cmp(0, 4), None),
    ];
    for (pc, inst, value) in body {
        assert_eq!(d.feed(pc, inst, value, false), Progress::Ongoing);
    }
    assert_eq!(d.feed(6, blt(1), None, true), Progress::Ongoing);
    // ...then iteration 2 re-enters at the wrong pc.
    let p = d.feed(2, alu(AluOp::Add, 1, 1, Operand2::Imm(1)), Some(2), false);
    assert!(matches!(
        p,
        Progress::Aborted(AbortReason::IterationMismatch { pc: 2 })
    ));
    let r = d.assert_abort("iteration-mismatch");
    assert_eq!((r.pc, r.phase), (2, "loop"));
}

/// Permutation loop skeleton, the paper's CAM idiom: an offset array load
/// (`r2 = OFF[i]`) combined with the induction variable (`r3 = r0 + r2`)
/// and used to index a second load. `offsets[i]` is the value retired by
/// the offset load on iteration `i`.
fn permute_loop(d: &mut Drive, offsets: &[i64]) -> Progress {
    let trip = offsets.len() as i64;
    d.feed(0, mov(0, 0), Some(0), false);
    for (i, &off) in offsets.iter().enumerate() {
        let i = i as i64;
        let body = [
            (1, ld(2, 1, 0), Some(off)),
            (
                2,
                alu(AluOp::Add, 3, 0, Operand2::Reg(Reg::of(2))),
                Some(i + off),
            ),
            (3, ld(1, 0, 3), Some(0)),
            (4, st(1, 2, 0), None),
            (5, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(i + 1)),
            (6, cmp(0, trip as i32), None),
        ];
        for (pc, inst, value) in body {
            match d.feed(pc, inst, value, false) {
                Progress::Ongoing => {}
                done => return done,
            }
        }
        let taken = (i + 1) < trip;
        match d.feed(7, blt(1), None, taken) {
            Progress::Ongoing => {}
            done => return done,
        }
    }
    d.feed(8, ScalarInst::Ret, None, true)
}

#[test]
fn cam_miss_surfaces_at_the_ret() {
    let mut d = Drive::lanes(4);
    // A gather pattern no blocked permutation produces (cf. the CAM's
    // own `cam_miss_on_unknown_pattern` test).
    let p = permute_loop(&mut d, &[0, 2, -1, 3]);
    assert!(
        matches!(p, Progress::Aborted(AbortReason::CamMiss)),
        "{p:?}"
    );
    let r = d.assert_abort("cam-miss");
    assert_eq!(r.pc, 8, "abort surfaces at materialization (ret)");
    assert!(
        r.trackers.iter().any(|t| t.values == vec![0, 2, -1, 3]),
        "tracker snapshot should hold the offending offsets: {:?}",
        r.trackers
    );
}

#[test]
fn value_too_wide_records_the_oversized_offset() {
    let mut d = Drive::lanes(4);
    let p = permute_loop(&mut d, &[0, 5000, 1, 2]);
    assert!(matches!(
        p,
        Progress::Aborted(AbortReason::ValueTooWide { value: 5000 })
    ));
    let r = d.assert_abort("value-too-wide");
    assert!(r.trackers.iter().any(|t| t.wide));
}

#[test]
fn runtime_indexed_permute_on_untracked_vector_index() {
    let mut d = Drive::lanes(2);
    d.feed(0, mov(0, 0), Some(0), false);
    // r2 = A[i] + 1: a vector with no offset tracker — using it as an
    // index is a VTBL-like runtime permutation.
    let body = [
        (1, ld(2, 1, 0), Some(0)),
        (2, alu(AluOp::Add, 2, 2, Operand2::Imm(1)), Some(1)),
        (3, ld(1, 0, 2), Some(0)),
        (4, st(1, 2, 0), None),
        (5, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(1)),
        (6, cmp(0, 2), None),
    ];
    for (pc, inst, value) in body {
        assert_eq!(d.feed(pc, inst, value, false), Progress::Ongoing);
    }
    let p = d.feed(7, blt(1), None, true);
    assert!(
        matches!(p, Progress::Aborted(AbortReason::RuntimeIndexedPermute)),
        "{p:?}"
    );
    let r = d.assert_abort("runtime-indexed-permute");
    assert_eq!(r.pc, 7, "abort surfaces at first-iteration classification");
}

#[test]
fn scalar_store_inside_the_loop_body() {
    let mut d = Drive::lanes(2);
    d.feed(0, mov(7, 3), Some(3), false);
    d.feed(1, mov(0, 0), Some(0), false);
    // st B[i] = r7 with r7 a loop-invariant scalar: the stored value is
    // not a vector, so the store cannot be widened.
    let body = [
        (2, ld(1, 0, 0), Some(0)),
        (3, alu(AluOp::Add, 1, 1, Operand2::Imm(1)), Some(1)),
        (4, st(7, 1, 0), None),
        (5, alu(AluOp::Add, 0, 0, Operand2::Imm(1)), Some(1)),
        (6, cmp(0, 2), None),
    ];
    for (pc, inst, value) in body {
        assert_eq!(d.feed(pc, inst, value, false), Progress::Ongoing);
    }
    let p = d.feed(7, blt(2), None, true);
    assert!(
        matches!(p, Progress::Aborted(AbortReason::ScalarStore)),
        "{p:?}"
    );
    let r = d.assert_abort("scalar-store");
    assert_eq!(r.instr_index, d.fed);
    assert!(
        r.regs
            .contains(&(7, liquid_simd_translator::RegClass::Const(3))),
        "register snapshot should show r7's class: {:?}",
        r.regs
    );
}

#[test]
fn register_pressure_when_vector_registers_run_out() {
    let mut d = Drive::lanes(2);
    d.feed(0, mov(0, 0), Some(0), false);
    // 15 integer loads + 2 fp loads want 17 vector registers; the file
    // has 16.
    let mut pc = 1u32;
    for k in 0..15u8 {
        assert_eq!(
            d.feed(pc, ld(k + 1, u16::from(k), 0), Some(0), false),
            Progress::Ongoing
        );
        pc += 1;
    }
    for k in 0..2u8 {
        assert_eq!(
            d.feed(pc, ldf(k, u16::from(15 + k), 0), None, false),
            Progress::Ongoing
        );
        pc += 1;
    }
    for inst in [
        st(1, 0, 0),
        alu(AluOp::Add, 0, 0, Operand2::Imm(1)),
        cmp(0, 2),
    ] {
        assert_eq!(d.feed(pc, inst, None, false), Progress::Ongoing);
        pc += 1;
    }
    let p = d.feed(pc, blt(1), None, true);
    assert!(
        matches!(p, Progress::Aborted(AbortReason::RegisterPressure)),
        "{p:?}"
    );
    d.assert_abort("register-pressure");
}

#[test]
fn unsupported_shape_on_forward_control_flow() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    let p = d.feed(1, blt(5), None, true); // forward-taken branch
    assert!(
        matches!(p, Progress::Aborted(AbortReason::UnsupportedShape { .. })),
        "{p:?}"
    );
    let r = d.assert_abort("unsupported-shape");
    assert_eq!((r.pc, r.instr_index), (1, 2));
}

#[test]
fn external_abort_keeps_last_observed_instruction() {
    let mut d = Drive::lanes(4);
    d.feed(0, mov(0, 0), Some(0), false);
    d.feed(1, ld(1, 0, 0), Some(0), false);
    d.t.abort_external("interrupt");
    let r = d.assert_abort("external");
    assert_eq!(r.reason, AbortReason::External { what: "interrupt" });
    assert_eq!((r.pc, r.instr_index), (1, 2));
    assert!(r.opcode.starts_with("ldw"), "opcode: {}", r.opcode);
}
