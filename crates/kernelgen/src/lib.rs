//! # kernelgen — declarative kernel-family generation
//!
//! The paper evaluates Liquid SIMD on 15 hand-written kernels. This
//! crate grows the suite into *hundreds* of parameterized variants:
//! a small declarative DSL (the `kernel-v1` text format) describes a
//! kernel *family* — element type, op chain, reduction, permute or
//! stencil pattern, or a deliberately untranslatable memory idiom —
//! and a seeded expander instantiates it over a `trips × unrolls`
//! grid. Translatable families lower through [`KernelBuilder`] to the
//! same triple `crates/workloads` provides (vector IR → scalarized
//! loop → gold-native reference); untranslatable families lower to
//! scalar assembly pinned to the exact [`AbortReason`] tag the
//! translator must report.
//!
//! Everything is deterministic: same spec text ⇒ byte-identical
//! family set, at any `--jobs`, on any host.
//!
//! The seeded corpus under `bench/families/` is compiled in via
//! [`CORPUS`], so `workloads::generated()`, `liquid-simd gen`, and
//! tier-1 tests replay it without touching the filesystem.
//!
//! [`KernelBuilder`]: liquid_simd_compiler::KernelBuilder
//! [`AbortReason`]: crate::spec::Idiom::expected_abort

pub mod emit;
pub mod expand;
pub mod format;
mod rng;
pub mod spec;

pub use emit::Payload;
pub use expand::{expand, expand_all, variant_name, Variant};
pub use format::{parse, print, MAGIC};
pub use spec::{FamilySpec, Idiom};

/// The seeded spec corpus checked in under `bench/families/`,
/// compiled into the binary as `(file_name, text)` pairs.
pub const CORPUS: &[(&str, &str)] = &[
    (
        "stencil3_f32.kernel",
        include_str!("../../../bench/families/stencil3_f32.kernel"),
    ),
    (
        "stencil5_i16.kernel",
        include_str!("../../../bench/families/stencil5_i16.kernel"),
    ),
    (
        "codec_sat_i8.kernel",
        include_str!("../../../bench/families/codec_sat_i8.kernel"),
    ),
    (
        "dot_i32.kernel",
        include_str!("../../../bench/families/dot_i32.kernel"),
    ),
    (
        "dot_f32.kernel",
        include_str!("../../../bench/families/dot_f32.kernel"),
    ),
    (
        "mix_shift_i32.kernel",
        include_str!("../../../bench/families/mix_shift_i32.kernel"),
    ),
    (
        "bfly_f32.kernel",
        include_str!("../../../bench/families/bfly_f32.kernel"),
    ),
    (
        "histogram_i32.kernel",
        include_str!("../../../bench/families/histogram_i32.kernel"),
    ),
    (
        "scatter_splat.kernel",
        include_str!("../../../bench/families/scatter_splat.kernel"),
    ),
    (
        "strided2.kernel",
        include_str!("../../../bench/families/strided2.kernel"),
    ),
    (
        "gather_cam.kernel",
        include_str!("../../../bench/families/gather_cam.kernel"),
    ),
    (
        "cond_alu.kernel",
        include_str!("../../../bench/families/cond_alu.kernel"),
    ),
    (
        "nested_call.kernel",
        include_str!("../../../bench/families/nested_call.kernel"),
    ),
    (
        "no_loop.kernel",
        include_str!("../../../bench/families/no_loop.kernel"),
    ),
    (
        "oversized.kernel",
        include_str!("../../../bench/families/oversized.kernel"),
    ),
    (
        "trip_skew.kernel",
        include_str!("../../../bench/families/trip_skew.kernel"),
    ),
    (
        "bound_drift.kernel",
        include_str!("../../../bench/families/bound_drift.kernel"),
    ),
    (
        "wide_offset.kernel",
        include_str!("../../../bench/families/wide_offset.kernel"),
    ),
    (
        "many_live.kernel",
        include_str!("../../../bench/families/many_live.kernel"),
    ),
];

/// Parse every corpus spec (corpus file order).
pub fn corpus_specs() -> Result<Vec<FamilySpec>, String> {
    CORPUS
        .iter()
        .map(|&(name, text)| format::parse(name, text))
        .collect()
}

/// Expand the whole embedded corpus into its variant set.
pub fn expand_corpus() -> Result<Vec<Variant>, String> {
    expand_all(&corpus_specs()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::{PermKind, SUPPORTED_WIDTHS};

    #[test]
    fn corpus_parses_and_round_trips() {
        for &(name, text) in CORPUS {
            let spec = format::parse(name, text).unwrap();
            let printed = format::print(&spec);
            let back = format::parse(name, &printed).unwrap();
            assert_eq!(back, spec, "{name}: parse→print→parse identity");
        }
    }

    #[test]
    fn corpus_expands_to_at_least_100_variants() {
        let variants = expand_corpus().unwrap();
        assert!(
            variants.len() >= 100,
            "corpus yields {} variants, want >= 100",
            variants.len()
        );
        // Names are unique across the whole set.
        let names: std::collections::BTreeSet<&str> =
            variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names.len(), variants.len());
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = expand_corpus().unwrap();
        let b = expand_corpus().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.data_seed, y.data_seed);
            match (&x.payload, &y.payload) {
                (Payload::Asm { src: s1, .. }, Payload::Asm { src: s2, .. }) => {
                    assert_eq!(s1, s2);
                }
                (Payload::Kernel(w1), Payload::Kernel(w2)) => {
                    assert_eq!(w1.name, w2.name);
                    assert_eq!(w1.reps, w2.reps);
                }
                _ => panic!("payload kind mismatch for {}", x.name),
            }
        }
    }

    #[test]
    fn kernel_variants_validate_and_asm_variants_carry_tags() {
        let variants = expand_corpus().unwrap();
        let mut kernels = 0usize;
        let mut asms = 0usize;
        for v in &variants {
            match &v.payload {
                Payload::Kernel(w) => {
                    w.validate().unwrap();
                    kernels += 1;
                }
                Payload::Asm { expected_tag, src } => {
                    assert!(!expected_tag.is_empty());
                    assert!(src.contains("bl.v"), "{}: outlined via bl.v", v.name);
                    asms += 1;
                }
            }
        }
        assert!(kernels >= 90, "legal variants: {kernels}");
        assert!(asms >= 8, "untranslatable variants: {asms}");
    }

    #[test]
    fn gather_tile_misses_the_cam_at_every_width() {
        // The gather idiom relies on this tile matching no PermKind at
        // any supported width (the translator tracks the first `lanes`
        // offsets).
        let tile: Vec<i32> = (0..16).map(|i| emit::GATHER_TILE[i % 4]).collect();
        for &w in &SUPPORTED_WIDTHS {
            assert!(
                PermKind::match_offsets(&tile[..w], w).is_none(),
                "tile unexpectedly matches a permute at width {w}"
            );
        }
    }
}
