//! Emitters: instantiate one `(spec, trip, unroll, data_seed)` point
//! into either a [`Workload`] (translatable idioms — vector IR from
//! which the driver derives the full triple: liquid scalarized loop,
//! native vector build, gold reference) or a scalar assembly source
//! plus the abort tag the translator must hit (untranslatable idioms).

use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, ReduceInit, Workload};
use liquid_simd_isa::{ElemType, VAluOp};

use crate::rng::XorShift64;
use crate::spec::{FamilySpec, Idiom};

/// What a variant lowers to.
#[derive(Clone)]
pub enum Payload {
    /// Translatable idiom: a full vector-IR workload.
    Kernel(Box<Workload>),
    /// Untranslatable idiom: scalarized assembly the translator must
    /// abort on with exactly `expected_tag`.
    Asm {
        /// Assembly source (`.data` + `.text`, `bl.v`-outlined loop).
        src: String,
        /// Stable abort tag this shape pins.
        expected_tag: &'static str,
    },
}

fn int_hi(elem: ElemType) -> i64 {
    match elem {
        ElemType::I8 => 100,
        ElemType::I16 => 1000,
        ElemType::I32 => 100_000,
        ElemType::F32 => 0,
    }
}

fn ivalues(rng: &mut XorShift64, elem: ElemType, len: usize) -> Vec<i64> {
    let hi = int_hi(elem);
    (0..len).map(|_| rng.range_i64(-hi, hi)).collect()
}

fn fvalues(rng: &mut XorShift64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.range_f32(-8.0, 8.0)).collect()
}

/// Immediate for a constant-operand op, in a range that keeps the op
/// meaningful (shift counts small, multipliers gentle) and inside the
/// VALU immediate field.
fn imm_for(op: VAluOp, rng: &mut XorShift64) -> i32 {
    let v = match op {
        VAluOp::Mul => rng.range_i64(2, 5),
        VAluOp::And | VAluOp::Orr | VAluOp::Eor => rng.range_i64(0, 255),
        VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub => {
            rng.range_i64(1, 100)
        }
        VAluOp::Lsl | VAluOp::Lsr | VAluOp::Asr => rng.range_i64(1, 4),
        _ => rng.range_i64(-100, 100),
    };
    v as i32
}

fn fconst_for(op: VAluOp, rng: &mut XorShift64) -> f32 {
    match op {
        VAluOp::Mul => rng.range_f32(0.5, 1.5),
        _ => rng.range_f32(-4.0, 4.0),
    }
}

type Node = liquid_simd_compiler::NodeId;

/// Apply one constant-operand op to `v`.
fn const_op(
    k: &mut KernelBuilder,
    elem: ElemType,
    op: VAluOp,
    v: Node,
    rng: &mut XorShift64,
) -> Node {
    if elem == ElemType::F32 {
        let c = k.constf(vec![fconst_for(op, rng)]);
        k.bin(op, v, c)
    } else {
        k.bin_imm(op, v, imm_for(op, rng))
    }
}

/// Apply the post-chain: `ops` repeated `unroll` times, fresh
/// constants each repetition (so unroll factors change the dataflow,
/// not just duplicate it).
fn chain(
    k: &mut KernelBuilder,
    elem: ElemType,
    ops: &[VAluOp],
    unroll: u32,
    v: Node,
    rng: &mut XorShift64,
) -> Node {
    let mut v = v;
    for _ in 0..unroll {
        for &op in ops {
            v = const_op(k, elem, op, v, rng);
        }
    }
    v
}

fn reduce_init(elem: ElemType) -> ReduceInit {
    if elem == ElemType::F32 {
        ReduceInit::F32(0.0)
    } else {
        ReduceInit::Int(0)
    }
}

/// Shifting by a data value is undefined-ish; combine with `Add`
/// instead and let the shift run in the constant chain.
fn combine_op(op: VAluOp) -> VAluOp {
    match op {
        VAluOp::Lsl | VAluOp::Lsr | VAluOp::Asr => VAluOp::Add,
        other => other,
    }
}

fn finish(k: &mut KernelBuilder, spec: &FamilySpec, v: Node) {
    k.store("out", v);
    if let Some(r) = spec.reduce {
        k.reduce(r, v, "racc", reduce_init(spec.elem));
    }
}

fn build_data(
    spec: &FamilySpec,
    rng: &mut XorShift64,
    inputs: &[(&str, usize)],
    trip: u32,
) -> liquid_simd_compiler::DataEnv {
    let mut b = ArrayBuilder::new();
    for &(name, len) in inputs {
        if spec.elem == ElemType::F32 {
            b = b.f32(name, fvalues(rng, len));
        } else {
            b = b.int(name, spec.elem, ivalues(rng, spec.elem, len));
        }
    }
    b = b.zeroed("out", spec.elem, trip as usize);
    if spec.reduce.is_some() {
        let racc_elem = if spec.elem == ElemType::F32 {
            ElemType::F32
        } else {
            ElemType::I32
        };
        b = b.zeroed("racc", racc_elem, 1);
    }
    b.build()
}

fn emit_kernel(
    spec: &FamilySpec,
    name: &str,
    trip: u32,
    unroll: u32,
    rng: &mut XorShift64,
) -> Result<Workload, String> {
    let elem = spec.elem;
    let mut k = KernelBuilder::new(name, trip);
    let (v, inputs): (Node, Vec<(&str, usize)>) = match spec.idiom {
        Idiom::Map => {
            let a = k.load("in0", elem);
            let b = k.load("in1", elem);
            let v = k.bin(combine_op(spec.ops[0]), a, b);
            let v = chain(&mut k, elem, &spec.ops[1..], unroll, v, rng);
            // A leading shift op still participates, as a constant op.
            let v = if combine_op(spec.ops[0]) != spec.ops[0] {
                const_op(&mut k, elem, spec.ops[0], v, rng)
            } else {
                v
            };
            (v, vec![("in0", trip as usize), ("in1", trip as usize)])
        }
        Idiom::Stencil { taps } => {
            let mut acc: Option<Node> = None;
            for t in 0..taps {
                let x = k.load_at("in0", elem, t);
                let p = const_op(&mut k, elem, VAluOp::Mul, x, rng);
                acc = Some(match acc {
                    None => p,
                    Some(a) => k.bin(VAluOp::Add, a, p),
                });
            }
            let v = chain(
                &mut k,
                elem,
                &spec.ops,
                unroll,
                acc.expect("taps >= 2"),
                rng,
            );
            (v, vec![("in0", (trip + taps - 1) as usize)])
        }
        Idiom::Dot => {
            let a = k.load("in0", elem);
            let b = k.load("in1", elem);
            let v = k.bin(VAluOp::Mul, a, b);
            let v = chain(&mut k, elem, &spec.ops, unroll, v, rng);
            (v, vec![("in0", trip as usize), ("in1", trip as usize)])
        }
        Idiom::Permute { kind } => {
            let a = k.load_perm("in0", elem, kind);
            let b = k.load("in1", elem);
            let v = k.bin(combine_op(spec.ops[0]), a, b);
            let v = chain(&mut k, elem, &spec.ops[1..], unroll, v, rng);
            (v, vec![("in0", trip as usize), ("in1", trip as usize)])
        }
        _ => unreachable!("emit_kernel is only called for translatable idioms"),
    };
    finish(&mut k, spec, v);
    let kernel = k.build().map_err(|e| format!("{name}: {e:?}"))?;
    let data = build_data(spec, rng, &inputs, trip);
    let w = Workload::new(name, vec![kernel], data, spec.reps);
    w.validate().map_err(|e| format!("{name}: {e:?}"))?;
    Ok(w)
}

fn data_line(name: &str, values: &[i64]) -> String {
    let vals: Vec<String> = values.iter().map(i64::to_string).collect();
    format!(".i32 {name}: {}", vals.join(", "))
}

/// The offset tile used by the `gather` idiom: tiled to any multiple
/// of 4 it matches no hardware permute pattern at any supported width,
/// so the translator's CAM lookup must miss.
pub const GATHER_TILE: [i32; 4] = [0, 2, -1, -1];

fn gather_offsets(trip: u32) -> Vec<i64> {
    (0..trip as usize)
        .map(|i| i64::from(GATHER_TILE[i % 4]))
        .collect()
}

fn emit_asm(spec: &FamilySpec, trip: u32, rng: &mut XorShift64) -> (String, &'static str) {
    let tag = spec
        .idiom
        .expected_abort()
        .expect("emit_asm is only called for untranslatable idioms");
    let t = trip as usize;
    let (data, body) = match spec.idiom {
        Idiom::Strided { stride } => {
            let n = t * stride as usize;
            let data = format!(
                "{}\n{}",
                data_line("A", &ivalues(rng, ElemType::I32, n)),
                data_line("B", &vec![0; n]),
            );
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #3\n\
                 \x20   stw [B + r0], r1\n\
                 \x20   add r0, r0, #{stride}\n\
                 \x20   cmp r0, #{bound}\n\
                 \x20   blt top\n\
                 \x20   ret\n",
                bound = n
            );
            (data, body)
        }
        Idiom::Histogram => {
            // Bucket index is idx[i]+1 (the +1 launders the load's
            // value tracker, forcing the runtime-indexed classification
            // rather than a CAM lookup).
            let idx: Vec<i64> = (0..t).map(|_| rng.range_i64(-1, 14)).collect();
            let data = format!("{}\n{}", data_line("idx", &idx), data_line("H", &[0; 16]),);
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [idx + r0]\n\
                 \x20   add r1, r1, #1\n\
                 \x20   ldw r2, [H + r1]\n\
                 \x20   add r2, r2, #1\n\
                 \x20   stw [H + r1], r2\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::Scatter => {
            let splat = rng.range_i64(1, 100);
            let data = format!(
                "{}\n{}",
                data_line("A", &ivalues(rng, ElemType::I32, t)),
                data_line("B", &vec![0; t]),
            );
            let body = format!(
                "    mov r0, #0\n\
                 \x20   mov r2, #{splat}\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #1\n\
                 \x20   stw [B + r0], r2\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::Gather => {
            let data = format!(
                "{}\n{}\n{}",
                data_line("off", &gather_offsets(trip)),
                data_line("A", &ivalues(rng, ElemType::I32, t)),
                data_line("B", &vec![0; t]),
            );
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [off + r0]\n\
                 \x20   add r1, r0, r1\n\
                 \x20   ldw r2, [A + r1]\n\
                 \x20   stw [B + r0], r2\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::CondAlu => {
            // `addge` adds zero either way; it is there purely because
            // the partial decoder only accepts unconditional data
            // processing inside the body.
            let data = format!(
                "{}\n{}",
                data_line("A", &ivalues(rng, ElemType::I32, t)),
                data_line("B", &vec![0; t]),
            );
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #3\n\
                 \x20   addge r1, r1, #0\n\
                 \x20   stw [B + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::NestedCall => {
            let data = data_line("A", &ivalues(rng, ElemType::I32, t));
            let body = format!(
                "    mov r13, r14\n\
                 \x20   mov r0, #0\n\
                 top:\n\
                 \x20   bl helper\n\
                 \x20   stw [A + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   mov r14, r13\n\
                 \x20   ret\n\
                 helper:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #1\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::NoLoop => {
            let data = data_line("A", &ivalues(rng, ElemType::I32, t));
            let splat = rng.range_i64(1, 100);
            let body = format!(
                "    mov r1, #{splat}\n\
                 \x20   add r1, r1, #7\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::Oversized => {
            // 80 single-uop adds: past the microcode-buffer budget on
            // its own, before the loads/stores even count.
            let data = data_line("A", &ivalues(rng, ElemType::I32, t));
            let mut adds = String::new();
            for _ in 0..80 {
                adds.push_str("    add r1, r1, #1\n");
            }
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 {adds}\
                 \x20   stw [A + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::TripSkew => {
            // The loop runs trip+1 iterations; trip is a multiple of
            // 16, so trip+1 is odd and divides no SIMD width.
            let bound = t + 1;
            let data = data_line("A", &ivalues(rng, ElemType::I32, bound));
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #1\n\
                 \x20   stw [A + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{bound}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::BoundDrift => {
            // The induction compare claims 2*trip iterations; the r2
            // counter exits after trip. The bound the translator
            // records disagrees with the trip it observes.
            let data = format!(
                "{}\n{}",
                data_line("A", &ivalues(rng, ElemType::I32, t)),
                data_line("B", &vec![0; t]),
            );
            let body = format!(
                "    mov r2, #0\n\
                 \x20   mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [A + r0]\n\
                 \x20   add r1, r1, #1\n\
                 \x20   stw [B + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{claim}\n\
                 \x20   add r2, r2, #1\n\
                 \x20   cmp r2, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n",
                claim = 2 * t
            );
            (data, body)
        }
        Idiom::WideOffset => {
            // One offset beyond the 12-bit value-tracker range; the
            // gather target is sized so the scalar reference stays in
            // bounds.
            let wide = WIDE_OFFSET as usize;
            let off: Vec<i64> = (0..t)
                .map(|i| if i == 1 { WIDE_OFFSET as i64 } else { 0 })
                .collect();
            let data = format!(
                "{}\n{}\n{}",
                data_line("off", &off),
                data_line("A", &ivalues(rng, ElemType::I32, t + wide + 4)),
                data_line("B", &vec![0; t]),
            );
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 \x20   ldw r1, [off + r0]\n\
                 \x20   add r1, r0, r1\n\
                 \x20   ldw r2, [A + r1]\n\
                 \x20   stw [B + r0], r2\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        Idiom::ManyLive => {
            // 13 int + 4 fp loads = 17 live vector values, one more
            // than the hardware register file (r14/r15 stay clear for
            // the link register).
            let mut data = String::new();
            for i in 0..13 {
                data.push_str(&data_line(
                    &format!("A{i}"),
                    &ivalues(rng, ElemType::I32, t),
                ));
                data.push('\n');
            }
            for i in 0..4 {
                let v: Vec<String> = (0..t)
                    .map(|_| format!("{:?}", (rng.range_i64(-400, 400) as f32) / 100.0))
                    .collect();
                data.push_str(&format!(".f32 F{i}: {}\n", v.join(", ")));
            }
            data.push_str(&data_line("B", &vec![0; t]));
            let mut loads = String::new();
            for i in 0..13 {
                loads.push_str(&format!("    ldw r{}, [A{i} + r0]\n", i + 1));
            }
            for i in 0..4 {
                loads.push_str(&format!("    ldf f{i}, [F{i} + r0]\n"));
            }
            let body = format!(
                "    mov r0, #0\n\
                 top:\n\
                 {loads}\
                 \x20   stw [B + r0], r1\n\
                 \x20   add r0, r0, #1\n\
                 \x20   cmp r0, #{trip}\n\
                 \x20   blt top\n\
                 \x20   ret\n"
            );
            (data, body)
        }
        _ => unreachable!(),
    };
    let src = format!(".data\n{data}\n.text\nmain:\n    bl.v body\n    halt\nbody:\n{body}");
    (src, tag)
}

/// The single out-of-range offset used by the `wide-offset` idiom —
/// past the translator's value-tracker range (2048) with margin.
pub const WIDE_OFFSET: i32 = 2500;

/// Instantiate one grid point of a family.
pub fn emit(
    spec: &FamilySpec,
    name: &str,
    trip: u32,
    unroll: u32,
    data_seed: u64,
) -> Result<Payload, String> {
    let mut rng = XorShift64::new(data_seed);
    if spec.idiom.is_translatable() {
        Ok(Payload::Kernel(Box::new(emit_kernel(
            spec, name, trip, unroll, &mut rng,
        )?)))
    } else {
        let (src, expected_tag) = emit_asm(spec, trip, &mut rng);
        Ok(Payload::Asm { src, expected_tag })
    }
}
