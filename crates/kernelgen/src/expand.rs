//! Seeded expansion: instantiate a [`FamilySpec`] over its
//! `trips × unrolls` grid. Expansion is a pure function of the spec —
//! byte-identical at any job count, any host, any time.

use crate::emit::{self, Payload};
use crate::rng::mix;
use crate::spec::FamilySpec;

/// One instantiated grid point of a family.
#[derive(Clone)]
pub struct Variant {
    /// Variant name: `gen.<family>.t<trip>.u<unroll>`.
    pub name: String,
    /// Owning family.
    pub family: String,
    /// Trip count.
    pub trip: u32,
    /// Chain-repetition factor.
    pub unroll: u32,
    /// Decorrelated per-variant data seed.
    pub data_seed: u64,
    /// Grid index within the family (row-major over trips × unrolls).
    pub index: u64,
    /// The instantiated kernel or assembly.
    pub payload: Payload,
}

impl Variant {
    /// True for variants that lower to vector IR.
    #[must_use]
    pub fn is_kernel(&self) -> bool {
        matches!(self.payload, Payload::Kernel(_))
    }
}

/// Variant naming scheme (also documented in DESIGN.md §15).
#[must_use]
pub fn variant_name(family: &str, trip: u32, unroll: u32) -> String {
    format!("gen.{family}.t{trip}.u{unroll}")
}

/// Expand one spec into its full family, in grid order (trips outer,
/// unrolls inner).
pub fn expand(spec: &FamilySpec) -> Result<Vec<Variant>, String> {
    spec.validate()?;
    let mut out = Vec::with_capacity(spec.variant_count());
    let mut index = 0u64;
    for &trip in &spec.trips {
        for &unroll in &spec.unrolls {
            let data_seed = mix(spec.seed, index);
            let name = variant_name(&spec.family, trip, unroll);
            let payload = emit::emit(spec, &name, trip, unroll, data_seed)?;
            out.push(Variant {
                name,
                family: spec.family.clone(),
                trip,
                unroll,
                data_seed,
                index,
                payload,
            });
            index += 1;
        }
    }
    Ok(out)
}

/// Expand many specs, rejecting duplicate family names and duplicate
/// variant names across the whole set.
pub fn expand_all(specs: &[FamilySpec]) -> Result<Vec<Variant>, String> {
    let mut seen = std::collections::BTreeSet::new();
    for s in specs {
        if !seen.insert(s.family.clone()) {
            return Err(format!("duplicate family name {:?}", s.family));
        }
    }
    let mut out = Vec::new();
    for s in specs {
        out.extend(expand(s)?);
    }
    Ok(out)
}
