//! The `kernel-v1` text format: a line-oriented serialization of
//! [`FamilySpec`], in the same `key value` style as `conform-case-v1`.
//! `parse(print(spec)) == spec` is test-pinned.
//!
//! ```text
//! # kernel-v1
//! family dot_i32
//! idiom dot
//! elem i32
//! trips 32 64 128 256 512
//! unrolls 1 2 3 4
//! reps 2
//! seed 0xd071
//! ops mul add
//! reduce sum
//! ```

use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp};

use crate::spec::{FamilySpec, Idiom};

/// First line of every `kernel-v1` file.
pub const MAGIC: &str = "# kernel-v1";

fn op_name(op: VAluOp) -> &'static str {
    match op {
        VAluOp::Add => "add",
        VAluOp::Sub => "sub",
        VAluOp::Mul => "mul",
        VAluOp::Div => "div",
        VAluOp::And => "and",
        VAluOp::Orr => "orr",
        VAluOp::Eor => "eor",
        VAluOp::Min => "min",
        VAluOp::Max => "max",
        VAluOp::SatAdd => "sat-add",
        VAluOp::SatSub => "sat-sub",
        VAluOp::SSatAdd => "ssat-add",
        VAluOp::SSatSub => "ssat-sub",
        VAluOp::Lsl => "lsl",
        VAluOp::Lsr => "lsr",
        VAluOp::Asr => "asr",
    }
}

fn op_value(name: &str) -> Option<VAluOp> {
    VAluOp::ALL.iter().copied().find(|&op| op_name(op) == name)
}

fn elem_name(e: ElemType) -> &'static str {
    match e {
        ElemType::I8 => "i8",
        ElemType::I16 => "i16",
        ElemType::I32 => "i32",
        ElemType::F32 => "f32",
    }
}

fn elem_value(name: &str) -> Option<ElemType> {
    match name {
        "i8" => Some(ElemType::I8),
        "i16" => Some(ElemType::I16),
        "i32" => Some(ElemType::I32),
        "f32" => Some(ElemType::F32),
        _ => None,
    }
}

fn red_name(r: RedOp) -> &'static str {
    match r {
        RedOp::Min => "min",
        RedOp::Max => "max",
        RedOp::Sum => "sum",
    }
}

fn red_value(name: &str) -> Option<RedOp> {
    match name {
        "min" => Some(RedOp::Min),
        "max" => Some(RedOp::Max),
        "sum" => Some(RedOp::Sum),
        _ => None,
    }
}

fn idiom_line(idiom: Idiom) -> String {
    match idiom {
        Idiom::Map => "map".into(),
        Idiom::Stencil { taps } => format!("stencil {taps}"),
        Idiom::Dot => "dot".into(),
        Idiom::Permute { kind } => match kind {
            PermKind::Bfly { block } => format!("permute bfly {block}"),
            PermKind::Rev { block } => format!("permute rev {block}"),
            PermKind::Rot { block, amt } => format!("permute rot {block} {amt}"),
        },
        Idiom::Strided { stride } => format!("strided {stride}"),
        Idiom::Histogram => "histogram".into(),
        Idiom::Scatter => "scatter".into(),
        Idiom::Gather => "gather".into(),
        Idiom::CondAlu => "cond-alu".into(),
        Idiom::NestedCall => "nested-call".into(),
        Idiom::NoLoop => "no-loop".into(),
        Idiom::Oversized => "oversized".into(),
        Idiom::TripSkew => "trip-skew".into(),
        Idiom::BoundDrift => "bound-drift".into(),
        Idiom::WideOffset => "wide-offset".into(),
        Idiom::ManyLive => "many-live".into(),
    }
}

fn parse_idiom(rest: &[&str]) -> Result<Idiom, String> {
    let arg = |i: usize| -> Result<u32, String> {
        rest.get(i)
            .ok_or_else(|| format!("idiom {} needs an argument", rest[0]))?
            .parse::<u32>()
            .map_err(|_| format!("bad idiom argument in {rest:?}"))
    };
    match rest.first().copied() {
        Some("map") => Ok(Idiom::Map),
        Some("stencil") => Ok(Idiom::Stencil { taps: arg(1)? }),
        Some("dot") => Ok(Idiom::Dot),
        Some("permute") => {
            let block =
                u8::try_from(arg(2)?).map_err(|_| "permute block out of range".to_string())?;
            match rest.get(1).copied() {
                Some("bfly") => Ok(Idiom::Permute {
                    kind: PermKind::Bfly { block },
                }),
                Some("rev") => Ok(Idiom::Permute {
                    kind: PermKind::Rev { block },
                }),
                Some("rot") => Ok(Idiom::Permute {
                    kind: PermKind::Rot {
                        block,
                        amt: u8::try_from(arg(3)?)
                            .map_err(|_| "permute amt out of range".to_string())?,
                    },
                }),
                other => Err(format!("unknown permute kind {other:?}")),
            }
        }
        Some("strided") => Ok(Idiom::Strided { stride: arg(1)? }),
        Some("histogram") => Ok(Idiom::Histogram),
        Some("scatter") => Ok(Idiom::Scatter),
        Some("gather") => Ok(Idiom::Gather),
        Some("cond-alu") => Ok(Idiom::CondAlu),
        Some("nested-call") => Ok(Idiom::NestedCall),
        Some("no-loop") => Ok(Idiom::NoLoop),
        Some("oversized") => Ok(Idiom::Oversized),
        Some("trip-skew") => Ok(Idiom::TripSkew),
        Some("bound-drift") => Ok(Idiom::BoundDrift),
        Some("wide-offset") => Ok(Idiom::WideOffset),
        Some("many-live") => Ok(Idiom::ManyLive),
        other => Err(format!("unknown idiom {other:?}")),
    }
}

/// Serialize a spec to canonical `kernel-v1` text (keys in fixed
/// order, seed in lowercase hex, one trailing newline).
#[must_use]
pub fn print(spec: &FamilySpec) -> String {
    let mut s = String::new();
    s.push_str(MAGIC);
    s.push('\n');
    s.push_str(&format!("family {}\n", spec.family));
    s.push_str(&format!("idiom {}\n", idiom_line(spec.idiom)));
    s.push_str(&format!("elem {}\n", elem_name(spec.elem)));
    let join = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
    s.push_str(&format!("trips {}\n", join(&spec.trips)));
    s.push_str(&format!("unrolls {}\n", join(&spec.unrolls)));
    s.push_str(&format!("reps {}\n", spec.reps));
    s.push_str(&format!("seed {:#x}\n", spec.seed));
    if !spec.ops.is_empty() {
        let ops: Vec<&str> = spec.ops.iter().map(|&o| op_name(o)).collect();
        s.push_str(&format!("ops {}\n", ops.join(" ")));
    }
    if let Some(r) = spec.reduce {
        s.push_str(&format!("reduce {}\n", red_name(r)));
    }
    s
}

/// Parse `kernel-v1` text. `what` names the source (file name) for
/// error messages. The result is validated before being returned.
pub fn parse(what: &str, text: &str) -> Result<FamilySpec, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err(format!("{what}: missing `{MAGIC}` header"));
    }
    let mut family: Option<String> = None;
    let mut idiom: Option<Idiom> = None;
    let mut elem: Option<ElemType> = None;
    let mut trips: Option<Vec<u32>> = None;
    let mut unrolls: Option<Vec<u32>> = None;
    let mut reps: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut ops: Vec<VAluOp> = Vec::new();
    let mut reduce: Option<RedOp> = None;

    for (ln, raw) in lines.enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ctx = |msg: String| format!("{what}:{}: {msg}", ln + 2);
        let toks: Vec<&str> = line.split_whitespace().collect();
        let numbers = |toks: &[&str]| -> Result<Vec<u32>, String> {
            toks.iter()
                .map(|t| t.parse::<u32>().map_err(|_| format!("bad number {t:?}")))
                .collect()
        };
        match toks[0] {
            "family" if toks.len() == 2 => family = Some(toks[1].to_string()),
            "idiom" => idiom = Some(parse_idiom(&toks[1..]).map_err(ctx)?),
            "elem" if toks.len() == 2 => {
                elem = Some(
                    elem_value(toks[1])
                        .ok_or_else(|| ctx(format!("unknown elem {:?}", toks[1])))?,
                );
            }
            "trips" => trips = Some(numbers(&toks[1..]).map_err(ctx)?),
            "unrolls" => unrolls = Some(numbers(&toks[1..]).map_err(ctx)?),
            "reps" if toks.len() == 2 => {
                reps = Some(
                    toks[1]
                        .parse()
                        .map_err(|_| ctx(format!("bad reps {:?}", toks[1])))?,
                );
            }
            "seed" if toks.len() == 2 => {
                let t = toks[1];
                let v = if let Some(hex) = t.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    t.parse()
                };
                seed = Some(v.map_err(|_| ctx(format!("bad seed {t:?}")))?);
            }
            "ops" => {
                ops = toks[1..]
                    .iter()
                    .map(|t| op_value(t).ok_or_else(|| ctx(format!("unknown op {t:?}"))))
                    .collect::<Result<_, _>>()?;
            }
            "reduce" if toks.len() == 2 => {
                reduce = Some(
                    red_value(toks[1])
                        .ok_or_else(|| ctx(format!("unknown reduce {:?}", toks[1])))?,
                );
            }
            key => return Err(ctx(format!("unknown or malformed key {key:?}"))),
        }
    }

    let need = |name: &str| format!("{what}: missing `{name}` line");
    let spec = FamilySpec {
        family: family.ok_or_else(|| need("family"))?,
        idiom: idiom.ok_or_else(|| need("idiom"))?,
        elem: elem.ok_or_else(|| need("elem"))?,
        trips: trips.ok_or_else(|| need("trips"))?,
        unrolls: unrolls.ok_or_else(|| need("unrolls"))?,
        reps: reps.ok_or_else(|| need("reps"))?,
        seed: seed.ok_or_else(|| need("seed"))?,
        ops,
        reduce,
    };
    spec.validate().map_err(|e| format!("{what}: {e}"))?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FamilySpec {
        FamilySpec {
            family: "dot_i32".into(),
            idiom: Idiom::Dot,
            elem: ElemType::I32,
            trips: vec![32, 64],
            unrolls: vec![1, 2],
            reps: 2,
            seed: 0xD071,
            ops: vec![VAluOp::Add],
            reduce: Some(RedOp::Sum),
        }
    }

    #[test]
    fn print_parse_round_trip() {
        let spec = sample();
        let text = print(&spec);
        let back = parse("sample", &text).unwrap();
        assert_eq!(back, spec);
        // Canonical form is a fixed point.
        assert_eq!(print(&back), text);
    }

    #[test]
    fn every_op_and_idiom_round_trips() {
        for &op in &VAluOp::ALL {
            assert_eq!(op_value(op_name(op)), Some(op));
        }
        let idioms = [
            Idiom::Map,
            Idiom::Stencil { taps: 3 },
            Idiom::Dot,
            Idiom::Permute {
                kind: PermKind::Bfly { block: 4 },
            },
            Idiom::Permute {
                kind: PermKind::Rot { block: 4, amt: 1 },
            },
            Idiom::Strided { stride: 2 },
            Idiom::Histogram,
            Idiom::Scatter,
            Idiom::Gather,
            Idiom::CondAlu,
            Idiom::NestedCall,
            Idiom::NoLoop,
            Idiom::Oversized,
            Idiom::TripSkew,
            Idiom::BoundDrift,
            Idiom::WideOffset,
            Idiom::ManyLive,
        ];
        for idiom in idioms {
            let line = idiom_line(idiom);
            let toks: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(parse_idiom(&toks).unwrap(), idiom, "{line}");
        }
    }

    #[test]
    fn rejects_missing_header_and_bad_keys() {
        assert!(parse("x", "family a\n").is_err());
        let mut text = print(&sample());
        text.push_str("bogus 1\n");
        assert!(parse("x", &text).unwrap_err().contains("bogus"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut text = String::from("# kernel-v1\n\n# a comment\n");
        text.push_str(print(&sample()).strip_prefix("# kernel-v1\n").unwrap());
        assert_eq!(parse("x", &text).unwrap(), sample());
    }
}
