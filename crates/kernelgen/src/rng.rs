//! Minimal xorshift64* PRNG, private to the generator so `kernelgen`
//! depends only on `isa` + `compiler` (it cannot reuse
//! `workloads::util` without creating a dependency cycle: `workloads`
//! depends on this crate for `generated()`).

/// Deterministic 64-bit PRNG (xorshift64*), seed 0 remapped.
pub struct XorShift64(u64);

impl XorShift64 {
    pub fn new(seed: u64) -> XorShift64 {
        // State must be non-zero; remap 0 to an arbitrary odd constant.
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit as f32
    }
}

/// Per-variant seed decorrelation: the same mixer the conformance
/// generator uses, so nearby variant indices get unrelated streams.
pub fn mix(seed: u64, index: u64) -> u64 {
    (seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0xA5A5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(0x9E37_79B9_7F4A_7C15);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            let f = r.range_f32(0.5, 1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }
}
