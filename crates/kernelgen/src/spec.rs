//! Family specifications: the in-memory form of a `kernel-v1` spec
//! file. One spec describes a *family* of kernels; the expander
//! instantiates it over its `trips × unrolls` grid.

use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp, SUPPORTED_WIDTHS};

/// The compute/memory idiom a family instantiates.
///
/// The first four idioms are translatable: they lower to vector IR
/// through `KernelBuilder` and exercise the full triple (vector IR,
/// scalarized loop, gold-native). The remaining twelve are
/// *deliberately* untranslatable shapes — each emits a scalar assembly
/// loop the translator must abort on (never mistranslate), and each one
/// pins a specific [`AbortReason`] tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Idiom {
    /// Element-wise op chain over two input arrays.
    Map,
    /// `taps`-point weighted stencil over one input array.
    Stencil {
        /// Number of taps (window width), `2..=8`.
        taps: u32,
    },
    /// Element-wise product feeding a reduction accumulator.
    Dot,
    /// A permuted load (declared [`PermKind`]) combined with a straight
    /// load — the butterfly/reverse/rotate family.
    Permute {
        /// The permutation applied to the first input.
        kind: PermKind,
    },
    /// Non-unit induction step — aborts `unsupported-shape`.
    Strided {
        /// Induction increment per iteration, `2..=8`.
        stride: u32,
    },
    /// Data-dependent read-modify-write of a bucket array — aborts
    /// `runtime-indexed-permute`.
    Histogram,
    /// Splat of a loop-invariant scalar into the output — aborts
    /// `scalar-store`.
    Scatter,
    /// Gather through an offset table that matches no hardware permute
    /// — aborts `cam-miss`.
    Gather,
    /// A predicated ALU op in the loop body; the partial decoder only
    /// accepts unconditional data processing — aborts
    /// `unsupported-opcode`.
    CondAlu,
    /// A `bl` inside the outlined region — aborts `nested-call`.
    NestedCall,
    /// A straight-line region with no backward branch — aborts
    /// `no-loop`.
    NoLoop,
    /// A loop body too large for the microcode buffer — aborts
    /// `too-many-uops`.
    Oversized,
    /// Loop bound one past the trip grid (`trip + 1` iterations), so
    /// the observed trip divides no SIMD width — aborts
    /// `trip-not-multiple`.
    TripSkew,
    /// The recorded induction bound disagrees with the trip a second
    /// counter actually enforces — aborts `bound-mismatch`.
    BoundDrift,
    /// One gather offset beyond the value tracker's range — aborts
    /// `value-too-wide`.
    WideOffset,
    /// More live vector values than the hardware register file — aborts
    /// `register-pressure`.
    ManyLive,
}

impl Idiom {
    /// True if this idiom lowers to vector IR (translatable).
    #[must_use]
    pub fn is_translatable(self) -> bool {
        matches!(
            self,
            Idiom::Map | Idiom::Stencil { .. } | Idiom::Dot | Idiom::Permute { .. }
        )
    }

    /// The abort tag an untranslatable idiom must hit (None for
    /// translatable idioms).
    #[must_use]
    pub fn expected_abort(self) -> Option<&'static str> {
        match self {
            Idiom::Strided { .. } => Some("unsupported-shape"),
            Idiom::Histogram => Some("runtime-indexed-permute"),
            Idiom::Scatter => Some("scalar-store"),
            Idiom::Gather => Some("cam-miss"),
            Idiom::CondAlu => Some("unsupported-opcode"),
            Idiom::NestedCall => Some("nested-call"),
            Idiom::NoLoop => Some("no-loop"),
            Idiom::Oversized => Some("too-many-uops"),
            Idiom::TripSkew => Some("trip-not-multiple"),
            Idiom::BoundDrift => Some("bound-mismatch"),
            Idiom::WideOffset => Some("value-too-wide"),
            Idiom::ManyLive => Some("register-pressure"),
            _ => None,
        }
    }
}

/// One parsed `kernel-v1` family specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// Family name (`[a-z0-9_]+`), unique across the corpus.
    pub family: String,
    /// The idiom instantiated by every variant of the family.
    pub idiom: Idiom,
    /// Element type of the data arrays.
    pub elem: ElemType,
    /// Trip counts to instantiate (each a positive multiple of 16).
    pub trips: Vec<u32>,
    /// Chain-repetition factors to instantiate (`1..=8`).
    pub unrolls: Vec<u32>,
    /// Outer repetitions of the whole kernel per run.
    pub reps: u32,
    /// Family seed; each variant derives a decorrelated data seed.
    pub seed: u64,
    /// Op chain. For `map`/`permute` the first op combines the two
    /// inputs; the rest apply constants. For `stencil`/`dot` all ops
    /// are a post-chain after the MAC/product.
    pub ops: Vec<VAluOp>,
    /// Optional reduction of the final value into `racc`.
    pub reduce: Option<RedOp>,
}

/// Largest trip the expander accepts (keeps bench wall time bounded).
pub const MAX_TRIP: u32 = 4096;

fn float_ok(op: VAluOp) -> bool {
    matches!(
        op,
        VAluOp::Add | VAluOp::Sub | VAluOp::Mul | VAluOp::Min | VAluOp::Max
    )
}

fn sat_op(op: VAluOp) -> bool {
    matches!(
        op,
        VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub
    )
}

impl FamilySpec {
    /// Structural validation; every parsed or hand-built spec goes
    /// through here before expansion.
    pub fn validate(&self) -> Result<(), String> {
        let f = &self.family;
        if f.is_empty()
            || !f
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(format!("family name {f:?} must be non-empty [a-z0-9_]"));
        }
        if self.trips.is_empty() {
            return Err(format!("{f}: trips must be non-empty"));
        }
        for &t in &self.trips {
            if t == 0 || t % 16 != 0 || t > MAX_TRIP {
                return Err(format!(
                    "{f}: trip {t} must be a positive multiple of 16 and <= {MAX_TRIP}"
                ));
            }
        }
        if self.unrolls.is_empty() || self.unrolls.iter().any(|&u| !(1..=8).contains(&u)) {
            return Err(format!("{f}: unrolls must be non-empty, each in 1..=8"));
        }
        if !(1..=100).contains(&self.reps) {
            return Err(format!("{f}: reps {} must be in 1..=100", self.reps));
        }
        match self.idiom {
            Idiom::Map | Idiom::Permute { .. } if self.ops.is_empty() => {
                return Err(format!("{f}: map/permute idioms need at least one op"));
            }
            Idiom::Stencil { taps } if !(2..=8).contains(&taps) => {
                return Err(format!("{f}: stencil taps {taps} must be in 2..=8"));
            }
            Idiom::Dot if self.reduce.is_none() => {
                return Err(format!("{f}: dot idiom requires a reduce"));
            }
            Idiom::Permute { kind } => {
                let block = match kind {
                    PermKind::Bfly { block } | PermKind::Rev { block } => block,
                    PermKind::Rot { block, .. } => block,
                };
                let b = u32::from(block);
                if !b.is_power_of_two() || !(2..=16).contains(&b) {
                    return Err(format!(
                        "{f}: permute block {b} must be a power of two in 2..=16"
                    ));
                }
            }
            Idiom::Strided { stride } if !(2..=8).contains(&stride) => {
                return Err(format!("{f}: stride {stride} must be in 2..=8"));
            }
            _ => {}
        }
        if self.idiom.is_translatable() {
            for &op in &self.ops {
                if self.elem == ElemType::F32 && !float_ok(op) {
                    return Err(format!("{f}: op {op:?} is not f32-capable"));
                }
                if sat_op(op) && !matches!(self.elem, ElemType::I8 | ElemType::I16) {
                    return Err(format!("{f}: saturating op {op:?} needs i8/i16"));
                }
            }
        } else {
            if self.elem != ElemType::I32 {
                return Err(format!("{f}: untranslatable idioms are i32-only"));
            }
            if self.unrolls != [1] {
                return Err(format!("{f}: untranslatable idioms take unrolls = [1]"));
            }
            if self.reps != 1 {
                return Err(format!("{f}: untranslatable idioms take reps = 1"));
            }
            if !self.ops.is_empty() || self.reduce.is_some() {
                return Err(format!("{f}: untranslatable idioms take no ops/reduce"));
            }
            if let Idiom::Strided { stride } = self.idiom {
                // The scalar loop's bound compare carries trip*stride.
                let max = liquid_simd_isa::encode::CMP_IMM_MAX as u32;
                for &t in &self.trips {
                    if t.checked_mul(stride).is_none_or(|b| b > max) {
                        return Err(format!("{f}: trip {t} x stride {stride} overflows"));
                    }
                }
            }
            if self.idiom == Idiom::Gather {
                // The miss-everything offset tile has period 4.
                for &t in &self.trips {
                    if t % 4 != 0 {
                        return Err(format!("{f}: gather trips must be multiples of 4"));
                    }
                }
            }
        }
        // Narrowest supported width must divide every trip (guaranteed
        // by the multiple-of-16 rule, but keep the invariant explicit).
        debug_assert!(self
            .trips
            .iter()
            .all(|t| SUPPORTED_WIDTHS.iter().all(|w| t % *w as u32 == 0)));
        Ok(())
    }

    /// Number of variants this spec expands to.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        self.trips.len() * self.unrolls.len()
    }
}
