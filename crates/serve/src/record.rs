//! `perfhist-serve-v1` record construction: one record per completed
//! serve batch, appended to the same append-only history file the bench
//! records live in (the store's single-write append makes concurrent
//! writers safe).
//!
//! Wall-clock telemetry (throughput, latency percentiles) legitimately
//! varies run to run; the `determinism` object does not. Its hashes are
//! **order-independent multiset hashes** — each served request adds
//! (wrapping) one FNV-1a hash of its canonical key (and of key+response)
//! into an accumulator — so two runs that served the same multiset of
//! requests compare equal no matter how shards interleaved them, and a
//! request repeated N times contributes N times (a XOR would cancel at
//! even multiplicities). That is the property the sentinel gates: same
//! requests ⇒ same `responses_hash` and `sim_cycles_total`, at any shard
//! count, on any host.

use std::collections::BTreeMap;

use liquid_simd_perfhist::{record, Json, SERVE_SCHEMA};

/// Aggregated telemetry of one serve batch, ready to serialize.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Requests answered in this batch (errors included).
    pub requests: u64,
    /// `serve-err-v1` responses in this batch.
    pub errors: u64,
    /// Requests per op name in this batch.
    pub by_op: BTreeMap<String, u64>,
    /// Per-request service latencies, microseconds (arrival to response
    /// enqueue).
    pub latencies_us: Vec<u64>,
    /// Batch wall-clock seconds (first arrival to flush).
    pub wall_s: f64,
}

/// Cumulative-since-startup identity of the served request stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct Determinism {
    /// Wrapping sum of FNV-1a over every deterministic request's
    /// canonical key.
    pub requests_hash: u64,
    /// Wrapping sum of FNV-1a over every canonical key + response body.
    pub responses_hash: u64,
    /// Sum of simulated cycles attributed to every request (cache hits
    /// contribute their entry's cycles, so the total is schedule- and
    /// cache-independent).
    pub sim_cycles_total: u64,
}

/// Cumulative cache counters at flush time.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Translation-cache hits.
    pub hits: u64,
    /// Translation-cache misses.
    pub misses: u64,
    /// Live entries.
    pub entries: u64,
}

/// The nearest-rank percentile of a sorted latency list (0 for empty).
#[must_use]
pub fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds one `perfhist-serve-v1` record.
#[must_use]
pub fn build(shards: usize, batch: &BatchStats, cache: &CacheStats, det: &Determinism) -> Json {
    let mut lat = batch.latencies_us.clone();
    lat.sort_unstable();
    let hit_rate = if cache.hits + cache.misses == 0 {
        0.0
    } else {
        cache.hits as f64 / (cache.hits + cache.misses) as f64
    };
    let throughput = if batch.wall_s > 0.0 {
        batch.requests as f64 / batch.wall_s
    } else {
        0.0
    };
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SERVE_SCHEMA.to_string())),
        (
            "commit".to_string(),
            Json::Str(record::git_commit(std::path::Path::new("."))),
        ),
        ("timestamp".to_string(), Json::u64(record::unix_now())),
        ("host".to_string(), Json::Str(record::host_fingerprint())),
        ("shards".to_string(), Json::u64(shards as u64)),
        (
            "batch".to_string(),
            Json::Obj(vec![
                ("requests".to_string(), Json::u64(batch.requests)),
                ("errors".to_string(), Json::u64(batch.errors)),
                (
                    "by_op".to_string(),
                    Json::Obj(
                        batch
                            .by_op
                            .iter()
                            .map(|(k, &v)| (k.clone(), Json::u64(v)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::u64(cache.hits)),
                ("misses".to_string(), Json::u64(cache.misses)),
                ("entries".to_string(), Json::u64(cache.entries)),
                ("hit_rate".to_string(), Json::f64(hit_rate)),
            ]),
        ),
        (
            "determinism".to_string(),
            Json::Obj(vec![
                (
                    "requests_hash".to_string(),
                    Json::Str(format!("{:016x}", det.requests_hash)),
                ),
                (
                    "responses_hash".to_string(),
                    Json::Str(format!("{:016x}", det.responses_hash)),
                ),
                (
                    "sim_cycles_total".to_string(),
                    Json::u64(det.sim_cycles_total),
                ),
            ]),
        ),
        (
            "latency".to_string(),
            Json::Obj(vec![
                ("p50_us".to_string(), Json::u64(percentile_us(&lat, 50.0))),
                ("p95_us".to_string(), Json::u64(percentile_us(&lat, 95.0))),
                ("p99_us".to_string(), Json::u64(percentile_us(&lat, 99.0))),
                (
                    "max_us".to_string(),
                    Json::u64(lat.last().copied().unwrap_or(0)),
                ),
            ]),
        ),
        ("throughput_rps".to_string(), Json::f64(throughput)),
        ("wall_s".to_string(), Json::f64(batch.wall_s)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&lat, 50.0), 50);
        assert_eq!(percentile_us(&lat, 95.0), 95);
        assert_eq!(percentile_us(&lat, 99.0), 99);
        assert_eq!(percentile_us(&lat, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 99.0), 7);
    }

    #[test]
    fn record_round_trips_and_carries_the_gated_fields() {
        let mut batch = BatchStats {
            requests: 10,
            errors: 1,
            latencies_us: vec![100, 200, 300],
            wall_s: 2.0,
            ..BatchStats::default()
        };
        batch.by_op.insert("run".to_string(), 9);
        let det = Determinism {
            requests_hash: 0xabc,
            responses_hash: 0xdef,
            sim_cycles_total: 12345,
        };
        let cache = CacheStats {
            hits: 9,
            misses: 1,
            entries: 1,
        };
        let rec = build(4, &batch, &cache, &det);
        let text = rec.write();
        assert!(text.starts_with("{\"schema\":\"perfhist-serve-v1\""));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.write(), text);
        let d = back.get("determinism").unwrap();
        assert_eq!(
            d.get("requests_hash").and_then(Json::as_str),
            Some("0000000000000abc")
        );
        assert_eq!(
            d.get("sim_cycles_total").and_then(Json::as_u64),
            Some(12345)
        );
        let c = back.get("cache").unwrap();
        assert_eq!(c.get("hit_rate").and_then(Json::as_f64), Some(0.9));
        assert_eq!(back.get("throughput_rps").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            back.get("latency")
                .and_then(|l| l.get("p50_us"))
                .and_then(Json::as_u64),
            Some(200)
        );
    }
}
