//! `liquid-simd serve` — a batched, sharded simulation service.
//!
//! The paper's pitch is that one Liquid binary serves many SIMD targets
//! because translation is cheap and cacheable; this crate serves that
//! translation over the wire. A long-lived daemon accepts line-delimited
//! JSON requests (`translate` / `run` / `explain` / `conform`, the
//! `serve-v1` protocol in [`proto`]) on a plain [`std::net::TcpListener`]
//! and streams back one response line per request — `std` only, no new
//! dependencies, no `unsafe`.
//!
//! The moving parts:
//!
//! * [`ops`] — executes one request and renders its output **byte-identical
//!   to the one-shot CLI** (the CLI calls the same renderers), so a serve
//!   response can be diffed against `liquid-simd run`/`translate`/`explain`
//!   output directly.
//! * [`cache`] — the cross-request build cache (workload name → compiled
//!   Liquid program) and the global microcode/translation cache keyed by
//!   `(program hash, width, MachineConfig hash, request params)`: a repeat
//!   translation costs a map lookup, the service-level analogue of the
//!   paper's microcode cache making repeat region entries free.
//! * [`server`] — sharded dispatch. N worker shards each own a request
//!   queue; a request is assigned to shard `program_hash % shards`, so the
//!   response stream is byte-identical regardless of shard count. Requests
//!   carry per-request cycle/abort budgets; exceeding one yields a graceful
//!   `serve-err-v1` response, never a worker death (worker panics are
//!   caught and answered the same way).
//! * [`record`] — per-batch `perfhist-serve-v1` telemetry records
//!   (throughput, latency percentiles, cache hit rate, and the
//!   order-independent determinism hashes the sentinel gates on), appended
//!   to the same history file the bench records live in.
//! * [`inspect`] — the `metrics-v1` live-introspection snapshot behind the
//!   `inspect` op (unified counters, power-of-two histograms, cache and
//!   flight-recorder state) and the scrubber that makes snapshots
//!   byte-comparable across shard counts.
//! * [`loadgen`] — the `bench --serve` load generator: N clients × M
//!   requests from a seeded template mix, run once at `--shards 1` and once
//!   at the requested shard count, hard-failing on any cross-shard
//!   nondeterminism or a cache hit rate below the floor — plus a
//!   recorder-off pass that measures the flight recorder's overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod inspect;
pub mod loadgen;
pub mod ops;
pub mod proto;
pub mod record;
pub mod server;

pub use server::{spawn, ServeOptions, ServeSummary, ServerHandle};

/// FNV-1a over a byte string — the same hash family
/// [`MachineConfig::fingerprint`](liquid_simd::MachineConfig::fingerprint)
/// uses, applied to program bytes, canonical request keys, and response
/// bodies. Deterministic across hosts and runs, which is what the serve
/// determinism hashes require.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"liquid"), fnv1a(b"liquid"));
        assert_ne!(fnv1a(b"liquid"), fnv1a(b"liquie"));
    }
}
