//! The serving caches: compiled programs and finished translations,
//! shared across every request the daemon will ever see.
//!
//! Two layers, by analogy with the paper's hardware:
//!
//! * [`BuildCache`] is the *front end* — workload name (or inline-source
//!   hash) → compiled Liquid program plus its content hash. Compiling a
//!   workload is the expensive per-program step, done once per daemon
//!   lifetime.
//! * [`TranslationCache`] is the service-level *microcode cache* — the
//!   canonical request key (program hash, width, `MachineConfig` hash,
//!   request params; see [`crate::proto::canonical_key`]) → the finished
//!   response body and, for `translate` requests, the translated microcode
//!   itself. A repeat translation costs one map lookup, the way a repeat
//!   region entry costs one CAM hit in hardware.
//!
//! Correctness under concurrency is free because entries are *derived
//! deterministically from their key*: two workers that race on the same
//! miss compute byte-identical entries, so whichever insert wins is
//! indistinguishable. Only the hit/miss counters are schedule-dependent,
//! and they are advisory telemetry, never part of a response.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use liquid_simd_isa::{object, Inst, Program};

use crate::fnv1a;
use crate::ops::OpOutput;

/// A compiled program plus its identity hash (FNV-1a over the object-file
/// bytes for workloads, over the source text for inline programs).
#[derive(Debug)]
pub struct ProgramEntry {
    /// The compiled program.
    pub program: Program,
    /// Content hash — the shard-assignment and cache-key ingredient.
    pub hash: u64,
    /// Canonical display name (workload name as defined by the suite).
    pub name: String,
}

/// Cross-request compiled-program cache.
#[derive(Default)]
pub struct BuildCache {
    entries: Mutex<HashMap<String, Arc<ProgramEntry>>>,
}

impl BuildCache {
    /// Returns the cached build of `workload` (case-insensitive name),
    /// compiling it on first use. Racing callers may both compile; the
    /// first insert wins and the builds are identical.
    ///
    /// # Errors
    ///
    /// Returns the resolver/compiler message for unknown names or broken
    /// builds.
    pub fn workload(&self, name: &str) -> Result<Arc<ProgramEntry>, String> {
        let key = format!("workload:{}", name.to_ascii_lowercase());
        if let Some(hit) = self.entries.lock().expect("build cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let w = crate::ops::resolve_workload(name)?;
        let canonical = w.name.clone();
        let b = liquid_simd::build_liquid(&w).map_err(|e| format!("{canonical}: {e}"))?;
        let bytes = object::write(&b.program).map_err(|e| e.to_string())?;
        let entry = Arc::new(ProgramEntry {
            program: b.program,
            hash: fnv1a(&bytes),
            name: canonical,
        });
        let mut map = self.entries.lock().expect("build cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(entry)))
    }

    /// Returns the cached assembly of inline `source`, assembling on first
    /// use. The identity hash is over the source text, so repeat inline
    /// submissions of the same program hit without re-assembling.
    ///
    /// # Errors
    ///
    /// Returns the assembler's message.
    pub fn inline(&self, source: &str, name: Option<&str>) -> Result<Arc<ProgramEntry>, String> {
        let hash = fnv1a(source.as_bytes());
        let key = format!("inline:{hash:016x}");
        if let Some(hit) = self.entries.lock().expect("build cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let program = crate::ops::assemble_inline(source)?;
        let entry = Arc::new(ProgramEntry {
            program,
            hash,
            name: name.unwrap_or("<inline>").to_string(),
        });
        let mut map = self.entries.lock().expect("build cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(entry)))
    }

    /// Number of cached builds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("build cache poisoned").len()
    }

    /// Whether no builds are cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One finished translation/response, keyed by its canonical request key.
#[derive(Debug)]
pub struct CacheEntry {
    /// The id-less response body (see [`crate::proto::with_id`]).
    pub output: OpOutput,
    /// For `translate` requests: the translated microcode blocks, exactly
    /// as [`Machine::microcode_snapshot`](liquid_simd::Machine) returned
    /// them — the cached microcode a future execution layer could preload.
    pub microcode: Vec<(u32, Vec<Inst>)>,
}

/// The global cross-request translation cache with hit/miss telemetry.
#[derive(Default)]
pub struct TranslationCache {
    entries: Mutex<HashMap<String, Arc<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationCache {
    /// Looks up `key`, computing and inserting the entry on a miss.
    /// `compute` runs outside the map lock (a translation can take a
    /// while; lookups must not stall behind it).
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> CacheEntry,
    ) -> Arc<CacheEntry> {
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let entry = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.entries.lock().expect("cache poisoned");
        Arc::clone(map.entry(key.to_string()).or_insert(entry))
    }

    /// `(hits, misses, entries)` counters. Hit/miss tallies are advisory:
    /// two workers racing the same miss may both count a miss, but the
    /// cached bytes (and thus every response) are unaffected.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        let entries = self.entries.lock().expect("cache poisoned").len() as u64;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries,
        )
    }

    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (h, m, _) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cache_hits_by_name_case_insensitively() {
        let cache = BuildCache::default();
        let a = cache.workload("fir").unwrap();
        let b = cache.workload("FIR").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one compile, shared entry");
        assert_eq!(cache.len(), 1);
        assert!(cache.workload("no-such-workload").is_err());
    }

    #[test]
    fn inline_cache_keys_by_source_hash() {
        let cache = BuildCache::default();
        let src = ".text\nmain:\n    halt\n";
        let a = cache.inline(src, None).unwrap();
        let b = cache.inline(src, None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name, "<inline>");
        assert_eq!(a.hash, crate::fnv1a(src.as_bytes()));
    }

    #[test]
    fn translation_cache_counts_hits_and_shares_entries() {
        let cache = TranslationCache::default();
        let make = || CacheEntry {
            output: OpOutput {
                body: "{}".to_string(),
                ok: true,
                cycles: 5,
            },
            microcode: Vec::new(),
        };
        let a = cache.get_or_compute("k", make);
        let b = cache.get_or_compute("k", || panic!("hit must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1, 1));
        cache.get_or_compute("k2", make);
        assert_eq!(cache.stats(), (1, 2, 2));
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
