//! The serving caches: compiled programs and finished translations,
//! shared across every request the daemon will ever see.
//!
//! Two layers, by analogy with the paper's hardware:
//!
//! * [`BuildCache`] is the *front end* — workload name (or inline-source
//!   hash) → compiled Liquid program plus its content hash. Compiling a
//!   workload is the expensive per-program step, done once per daemon
//!   lifetime.
//! * [`TranslationCache`] is the service-level *microcode cache* — the
//!   canonical request key (program hash, width, `MachineConfig` hash,
//!   request params; see [`crate::proto::canonical_key`]) → the finished
//!   response body and, for `translate` requests, the translated microcode
//!   itself. A repeat translation costs one map lookup, the way a repeat
//!   region entry costs one CAM hit in hardware.
//!
//! Correctness under concurrency is free because entries are *derived
//! deterministically from their key*: two workers that race on the same
//! miss compute byte-identical entries, so whichever insert wins is
//! indistinguishable. Only the hit/miss counters are schedule-dependent,
//! and they are advisory telemetry, never part of a response.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use liquid_simd_isa::{object, Inst, Program};

use crate::fnv1a;
use crate::ops::OpOutput;

/// A compiled program plus its identity hash (FNV-1a over the object-file
/// bytes for workloads, over the source text for inline programs).
#[derive(Debug)]
pub struct ProgramEntry {
    /// The compiled program.
    pub program: Program,
    /// Content hash — the shard-assignment and cache-key ingredient.
    pub hash: u64,
    /// Canonical display name (workload name as defined by the suite).
    pub name: String,
}

/// Cross-request compiled-program cache.
#[derive(Default)]
pub struct BuildCache {
    entries: Mutex<HashMap<String, Arc<ProgramEntry>>>,
}

impl BuildCache {
    /// Returns the cached build of `workload` (case-insensitive name),
    /// compiling it on first use. Racing callers may both compile; the
    /// first insert wins and the builds are identical.
    ///
    /// # Errors
    ///
    /// Returns the resolver/compiler message for unknown names or broken
    /// builds.
    pub fn workload(&self, name: &str) -> Result<Arc<ProgramEntry>, String> {
        let key = format!("workload:{}", name.to_ascii_lowercase());
        if let Some(hit) = self.entries.lock().expect("build cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let w = crate::ops::resolve_workload(name)?;
        let canonical = w.name.clone();
        let b = liquid_simd::build_liquid(&w).map_err(|e| format!("{canonical}: {e}"))?;
        let bytes = object::write(&b.program).map_err(|e| e.to_string())?;
        let entry = Arc::new(ProgramEntry {
            program: b.program,
            hash: fnv1a(&bytes),
            name: canonical,
        });
        let mut map = self.entries.lock().expect("build cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(entry)))
    }

    /// Returns the cached assembly of inline `source`, assembling on first
    /// use. The identity hash is over the source text, so repeat inline
    /// submissions of the same program hit without re-assembling.
    ///
    /// # Errors
    ///
    /// Returns the assembler's message.
    pub fn inline(&self, source: &str, name: Option<&str>) -> Result<Arc<ProgramEntry>, String> {
        let hash = fnv1a(source.as_bytes());
        let key = format!("inline:{hash:016x}");
        if let Some(hit) = self.entries.lock().expect("build cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let program = crate::ops::assemble_inline(source)?;
        let entry = Arc::new(ProgramEntry {
            program,
            hash,
            name: name.unwrap_or("<inline>").to_string(),
        });
        let mut map = self.entries.lock().expect("build cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(entry)))
    }

    /// Number of cached builds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("build cache poisoned").len()
    }

    /// Whether no builds are cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One finished translation/response, keyed by its canonical request key.
#[derive(Debug)]
pub struct CacheEntry {
    /// The id-less response body (see [`crate::proto::with_id`]).
    pub output: OpOutput,
    /// For `translate` requests: the translated microcode blocks, exactly
    /// as [`Machine::microcode_snapshot`](liquid_simd::Machine) returned
    /// them — the cached microcode a future execution layer could preload.
    pub microcode: Vec<(u32, Vec<Inst>)>,
}

/// The map plus its FIFO insertion order — one lock covers both so an
/// eviction can never orphan an order entry.
#[derive(Default)]
struct TranslationInner {
    map: HashMap<String, Arc<CacheEntry>>,
    order: VecDeque<String>,
}

/// The global cross-request translation cache with hit/miss/eviction
/// telemetry and a monotonic generation stamp (insert count) — the
/// service-level analogue of the simulator's mcache generation, used by
/// the flight recorder to tie each event to the cache state it saw.
#[derive(Default)]
pub struct TranslationCache {
    entries: Mutex<TranslationInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    generation: AtomicU64,
    capacity: AtomicU64,
}

impl TranslationCache {
    /// Creates a cache bounded to `capacity` entries (`0` = unbounded).
    /// When full, an insert evicts the oldest-inserted entry (FIFO) —
    /// responses stay byte-identical because an evicted entry simply
    /// recomputes to the same bytes on its next miss.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TranslationCache {
        let cache = TranslationCache::default();
        cache.capacity.store(capacity as u64, Ordering::Relaxed);
        cache
    }

    /// The configured entry bound (`0` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Monotonic insert count — every insert bumps it, so an event
    /// stamped with a generation happened-after exactly that many
    /// inserts.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Looks up `key` without computing, counting a hit or miss.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let inner = self.entries.lock().expect("cache poisoned");
        match inner.map.get(key) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(hit))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a computed entry (first insert wins under a race),
    /// evicting FIFO when over capacity. Returns the entry that is now
    /// cached, whether *this* call's entry won the insert, and how many
    /// entries this call evicted.
    pub fn insert(&self, key: &str, entry: CacheEntry) -> (Arc<CacheEntry>, bool, u64) {
        let capacity = self.capacity();
        let mut inner = self.entries.lock().expect("cache poisoned");
        if let Some(existing) = inner.map.get(key) {
            return (Arc::clone(existing), false, 0);
        }
        let mut evicted = 0u64;
        if capacity > 0 {
            while inner.map.len() as u64 >= capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                if inner.map.remove(&oldest).is_some() {
                    evicted += 1;
                }
            }
        }
        let arc = Arc::new(entry);
        inner.map.insert(key.to_string(), Arc::clone(&arc));
        inner.order.push_back(key.to_string());
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        (arc, true, evicted)
    }

    /// Looks up `key`, computing and inserting the entry on a miss.
    /// `compute` runs outside the map lock (a translation can take a
    /// while; lookups must not stall behind it).
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> CacheEntry,
    ) -> Arc<CacheEntry> {
        if let Some(hit) = self.lookup(key) {
            return hit;
        }
        let (arc, _, _) = self.insert(key, compute());
        arc
    }

    /// `(hits, misses, entries)` counters. Hit/miss tallies are advisory:
    /// two workers racing the same miss may both count a miss, but the
    /// cached bytes (and thus every response) are unaffected.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        let entries = self.entries.lock().expect("cache poisoned").map.len() as u64;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries,
        )
    }

    /// Entries evicted over the cache's lifetime (0 while unbounded).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (h, m, _) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cache_hits_by_name_case_insensitively() {
        let cache = BuildCache::default();
        let a = cache.workload("fir").unwrap();
        let b = cache.workload("FIR").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one compile, shared entry");
        assert_eq!(cache.len(), 1);
        assert!(cache.workload("no-such-workload").is_err());
    }

    #[test]
    fn inline_cache_keys_by_source_hash() {
        let cache = BuildCache::default();
        let src = ".text\nmain:\n    halt\n";
        let a = cache.inline(src, None).unwrap();
        let b = cache.inline(src, None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name, "<inline>");
        assert_eq!(a.hash, crate::fnv1a(src.as_bytes()));
    }

    #[test]
    fn translation_cache_counts_hits_and_shares_entries() {
        let cache = TranslationCache::default();
        let make = || CacheEntry {
            output: OpOutput {
                body: "{}".to_string(),
                ok: true,
                cycles: 5,
                kind: String::new(),
                counters: std::collections::BTreeMap::new(),
            },
            microcode: Vec::new(),
        };
        let a = cache.get_or_compute("k", make);
        let b = cache.get_or_compute("k", || panic!("hit must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1, 1));
        cache.get_or_compute("k2", make);
        assert_eq!(cache.stats(), (1, 2, 2));
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.generation(), 2, "one bump per insert");
        assert_eq!(cache.evictions(), 0, "unbounded cache never evicts");
    }

    #[test]
    fn bounded_cache_evicts_fifo_and_counts() {
        let cache = TranslationCache::with_capacity(2);
        let make = || CacheEntry {
            output: OpOutput {
                body: "{}".to_string(),
                ok: true,
                cycles: 0,
                kind: String::new(),
                counters: std::collections::BTreeMap::new(),
            },
            microcode: Vec::new(),
        };
        for k in ["a", "b", "c"] {
            cache.get_or_compute(k, make);
        }
        let (_, _, entries) = cache.stats();
        assert_eq!(entries, 2, "capacity bound holds");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.generation(), 3);
        // "a" was inserted first, so it was the FIFO victim.
        assert!(cache.lookup("a").is_none());
        assert!(cache.lookup("c").is_some());
    }
}
