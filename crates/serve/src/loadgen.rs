//! The `bench --serve` load generator: N concurrent clients × M pipelined
//! requests, run twice — once on a single shard, once sharded — with a
//! byte-for-byte diff of every response across the two passes.
//!
//! The generator is the service's determinism oracle. Pass 1 (`--shards 1`)
//! is trivially schedule-free; pass 2 runs the *same request multiset*
//! over many shards. If sharding leaked into any response — a shard id, a
//! cache flag, an ordering artifact — the per-id diff catches it and the
//! bench hard-fails. The request mix deliberately repeats a small template
//! pool so the cross-request translation cache is exercised: with the
//! default sizing, ≥ 90 % of requests must be cache hits or the bench
//! fails its hit-rate gate too.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use liquid_simd_perfhist::Json;

use crate::fnv1a;
use crate::server::{spawn, ServeOptions, ServeSummary};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Use the three-workload smoke suite instead of the full suite.
    pub smoke: bool,
    /// Concurrent client connections per pass.
    pub clients: usize,
    /// Requests per client (`0` = auto-size so the expected cache hit
    /// rate clears 95 %).
    pub requests_per_client: usize,
    /// Shard count of the sharded pass (pass 1 always uses one shard).
    pub shards: usize,
    /// Minimum acceptable translation-cache hit rate (both passes).
    pub min_hit_rate: f64,
    /// History file receiving one `perfhist-serve-v1` record per pass.
    pub history: Option<PathBuf>,
    /// Template-selection seed (same seed ⇒ same request mix).
    pub seed: u64,
    /// Execution backend the daemon under test simulates with.
    pub backend: liquid_simd::BackendKind,
    /// Also run a recorder-off pass and measure the flight recorder's
    /// wall-clock overhead (adds one more sharded pass).
    pub measure_recorder: bool,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            smoke: false,
            clients: 4,
            requests_per_client: 0,
            shards: 8,
            min_hit_rate: 0.9,
            history: None,
            seed: 0xC0FFEE,
            backend: liquid_simd::BackendKind::Interp,
            measure_recorder: false,
        }
    }
}

/// What the load generator measured and verified.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Client requests diffed across the two passes.
    pub requests: u64,
    /// Error responses observed (identical in both passes).
    pub errors: u64,
    /// Worst translation-cache hit rate of the two passes.
    pub hit_rate: f64,
    /// Shard count of the sharded pass.
    pub shards: usize,
    /// Daemon summary of the single-shard pass.
    pub single: ServeSummary,
    /// Daemon summary of the sharded pass.
    pub sharded: ServeSummary,
    /// Recorder-overhead measurement: `(wall seconds with the flight
    /// recorder on, wall seconds with it off)` for an identical sharded
    /// load. `None` unless [`LoadOptions::measure_recorder`] was set.
    pub recorder_walls_s: Option<(f64, f64)>,
}

impl LoadReport {
    /// Flight-recorder overhead as a fraction of recorder-off wall time
    /// (negative = on-pass was faster, i.e. the delta is below noise).
    #[must_use]
    pub fn recorder_overhead_frac(&self) -> Option<f64> {
        self.recorder_walls_s
            .map(|(on, off)| if off <= 0.0 { 0.0 } else { (on - off) / off })
    }
}

/// The request-template pool: five request shapes per workload, all
/// cache-keyed differently, all byte-stable.
fn templates(smoke: bool) -> Vec<String> {
    let suite = if smoke {
        liquid_simd_workloads::smoke()
    } else {
        liquid_simd_workloads::all()
    };
    let mut out = Vec::with_capacity(suite.len() * 5);
    for w in suite {
        let n = &w.name;
        out.push(format!(
            r#"{{"op":"translate","workload":"{n}","width":8}}"#
        ));
        out.push(format!(r#"{{"op":"run","workload":"{n}","width":8}}"#));
        out.push(format!(
            r#"{{"op":"run","workload":"{n}","width":8,"report":true}}"#
        ));
        out.push(format!(
            r#"{{"op":"explain","workload":"{n}","widths":[2,8]}}"#
        ));
        out.push(format!(r#"{{"op":"run","workload":"{n}","width":0}}"#));
    }
    out
}

/// Splices a string id into a template line (same trick as
/// [`crate::proto::with_id`], client side).
fn with_string_id(template: &str, id: &str) -> String {
    format!("{},\"id\":\"{id}\"}}", &template[..template.len() - 1])
}

/// Builds every client's request lines up front so both passes send the
/// exact same multiset. Template choice is a pure function of
/// (client, request, seed).
fn build_batches(opts: &LoadOptions, pool: &[String], per_client: usize) -> Vec<Vec<String>> {
    (0..opts.clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let pick = fnv1a(format!("{c}|{i}|{}", opts.seed).as_bytes());
                    let template = &pool[(pick % pool.len() as u64) as usize];
                    with_string_id(template, &format!("c{c}-r{i}"))
                })
                .collect()
        })
        .collect()
}

/// One client session: pipeline every line, then read one response per
/// line, returning `id → response line`.
fn client_session(addr: SocketAddr, lines: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| e.to_string())?;
    for line in lines {
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
    }
    stream.flush().map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream);
    let mut out = BTreeMap::new();
    for resp in reader.lines().take(lines.len()) {
        let resp = resp.map_err(|e| format!("recv: {e}"))?;
        let id = Json::parse(&resp)
            .map_err(|e| format!("unparseable response: {e}: {resp}"))?
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("response without string id: {resp}"))?;
        if out.insert(id.clone(), resp).is_some() {
            return Err(format!("duplicate response id {id}"));
        }
    }
    if out.len() != lines.len() {
        return Err(format!(
            "connection closed after {} of {} responses",
            out.len(),
            lines.len()
        ));
    }
    Ok(out)
}

/// Runs one pass: spawn a daemon, fire every client concurrently, stop the
/// daemon over a final stats+shutdown connection, and collect everything.
fn one_pass(
    opts: &LoadOptions,
    shards: usize,
    flight_capacity: usize,
    batches: &[Vec<String>],
) -> Result<(BTreeMap<String, String>, ServeSummary, f64), String> {
    let started = Instant::now();
    let handle = spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        shards,
        history: opts.history.clone(),
        history_every: 0,
        backend: opts.backend,
        flight_capacity,
        ..ServeOptions::default()
    })?;
    let addr = handle.addr;
    let sessions = liquid_simd::run_tasks(opts.clients, opts.clients, |c| {
        client_session(addr, &batches[c])
    });
    // Always stop the daemon, even when a client failed, so join() returns.
    let control = TcpStream::connect(addr)
        .and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_secs(60)))?;
            s.write_all(b"{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n")?;
            s.flush()?;
            let mut lines = BufReader::new(s).lines();
            let _ = lines.next();
            let _ = lines.next();
            Ok(())
        })
        .map_err(|e| format!("control connection: {e}"));
    if control.is_err() {
        handle.shutdown();
    }
    let summary = handle.join()?;
    let mut merged = BTreeMap::new();
    for session in sessions? {
        for (id, resp) in session {
            if merged.insert(id.clone(), resp).is_some() {
                return Err(format!("id {id} answered on two connections"));
            }
        }
    }
    control?;
    Ok((merged, summary, started.elapsed().as_secs_f64()))
}

fn hit_rate(s: &ServeSummary) -> f64 {
    let total = s.cache_hits + s.cache_misses;
    if total == 0 {
        0.0
    } else {
        s.cache_hits as f64 / total as f64
    }
}

/// Runs the full two-pass load generation and verification.
///
/// # Errors
///
/// Fails on any transport error, on **any** byte difference between the
/// single-shard and sharded responses (including the daemons' cumulative
/// determinism hashes), and on a translation-cache hit rate below
/// `min_hit_rate` in either pass.
pub fn run(opts: &LoadOptions) -> Result<LoadReport, String> {
    let opts = LoadOptions {
        clients: opts.clients.max(1),
        shards: opts.shards.max(2),
        ..opts.clone()
    };
    let pool = templates(opts.smoke);
    let per_client = if opts.requests_per_client > 0 {
        opts.requests_per_client
    } else {
        // ~20 requests per template across all clients ⇒ an expected hit
        // rate of ~95 %, comfortably above the 90 % gate.
        (pool.len() * 20).div_ceil(opts.clients)
    };
    let batches = build_batches(&opts, &pool, per_client);
    let on_capacity = liquid_simd_trace::DEFAULT_FLIGHT_CAPACITY;
    let (single_map, single, _) = one_pass(&opts, 1, on_capacity, &batches)?;
    let (sharded_map, sharded, wall_on) = one_pass(&opts, opts.shards, on_capacity, &batches)?;
    if single_map.len() != sharded_map.len() {
        return Err(format!(
            "response count diverged: {} single-shard vs {} sharded",
            single_map.len(),
            sharded_map.len()
        ));
    }
    for (id, a) in &single_map {
        match sharded_map.get(id) {
            Some(b) if a == b => {}
            Some(b) => {
                return Err(format!(
                    "NONDETERMINISM: response {id} differs across shard counts\n  \
                     shards=1: {a}\n  shards={}: {b}",
                    opts.shards
                ))
            }
            None => return Err(format!("response {id} missing from sharded pass")),
        }
    }
    if single.determinism != sharded.determinism {
        return Err(format!(
            "NONDETERMINISM: daemon hashes diverged: {:?} single-shard vs {:?} at {} shards",
            single.determinism, sharded.determinism, opts.shards
        ));
    }
    let worst = hit_rate(&single).min(hit_rate(&sharded));
    if worst < opts.min_hit_rate {
        return Err(format!(
            "translation-cache hit rate {:.1}% below the {:.1}% gate",
            worst * 100.0,
            opts.min_hit_rate * 100.0
        ));
    }
    // Satellite measurement: re-run the identical sharded load with the
    // flight recorder disabled and compare wall clocks. Responses must
    // still match byte-for-byte — recording is telemetry-only.
    let recorder_walls_s = if opts.measure_recorder {
        let (off_map, off_summary, wall_off) = one_pass(&opts, opts.shards, 0, &batches)?;
        if off_map != sharded_map {
            return Err(
                "NONDETERMINISM: responses changed with the flight recorder off".to_string(),
            );
        }
        if off_summary.determinism != sharded.determinism {
            return Err("NONDETERMINISM: daemon hashes changed with the recorder off".to_string());
        }
        Some((wall_on, wall_off))
    } else {
        None
    };
    let errors = single_map
        .values()
        .filter(|r| r.contains("\"ok\":false"))
        .count() as u64;
    Ok(LoadReport {
        requests: single_map.len() as u64,
        errors,
        hit_rate: worst,
        shards: opts.shards,
        single,
        sharded,
        recorder_walls_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_pool_covers_five_shapes_per_workload() {
        let pool = templates(true);
        assert_eq!(pool.len(), liquid_simd_workloads::smoke().len() * 5);
        for t in &pool {
            crate::proto::parse_request(t).expect("every template parses");
        }
        assert!(pool.iter().any(|t| t.contains(r#""op":"translate""#)));
        assert!(pool.iter().any(|t| t.contains(r#""report":true"#)));
        assert!(pool.iter().any(|t| t.contains(r#""width":0"#)));
    }

    #[test]
    fn batches_are_reproducible_and_id_unique() {
        let opts = LoadOptions {
            smoke: true,
            clients: 3,
            requests_per_client: 7,
            ..LoadOptions::default()
        };
        let pool = templates(true);
        let a = build_batches(&opts, &pool, 7);
        let b = build_batches(&opts, &pool, 7);
        assert_eq!(a, b, "same seed, same mix");
        assert_eq!(a.len(), 3);
        let ids: std::collections::BTreeSet<String> = a
            .iter()
            .flatten()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ids.len(), 21, "every id unique");
    }

    #[test]
    fn small_load_passes_determinism_and_drives_the_cache() {
        let report = run(&LoadOptions {
            smoke: true,
            clients: 2,
            requests_per_client: 12,
            shards: 4,
            min_hit_rate: 0.0,
            ..LoadOptions::default()
        })
        .expect("load generation succeeds");
        assert_eq!(report.requests, 24);
        assert_eq!(report.single.determinism, report.sharded.determinism);
        assert!(report.sharded.cache_hits > 0, "repeats hit the cache");
    }
}
