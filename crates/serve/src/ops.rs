//! Request execution and output rendering — the single source of truth
//! shared by the serve workers and the one-shot CLI.
//!
//! Byte-identity is the serving contract: a `serve-v1` response's `output`
//! field must equal what `liquid-simd run`/`translate`/`explain` prints
//! for the same program and parameters. Instead of testing two renderers
//! against each other, there is one — the CLI calls [`report_text`],
//! [`run_summary`], and [`translate_text`] to produce its stdout, and the
//! serve workers call [`execute`], which calls the same functions. The
//! identity holds by construction.

use liquid_simd::{BackendKind, Machine, MachineConfig, RunReport, SimError};
use liquid_simd_isa::{asm, Program};
use liquid_simd_perfhist::Json;

use crate::proto::{self, Mode, Op, Request};

/// Builds the [`MachineConfig`] for a mode/width/jit triple exactly as the
/// CLI's flag parsing does (`--lanes 0` → scalar-only, `--native`,
/// `--jit`).
#[must_use]
pub fn machine_config(mode: Mode, lanes: usize, jit: bool) -> MachineConfig {
    let mut cfg = match mode {
        Mode::Scalar => MachineConfig::scalar_only(),
        Mode::Native => MachineConfig::native(lanes),
        Mode::Liquid => MachineConfig::liquid(lanes),
    };
    if jit {
        cfg.translation.jit = true;
        cfg.translation.hw_value_limit = false;
    }
    cfg
}

/// Resolves a benchmark workload by case-insensitive name, returning the
/// canonical [`Workload`](liquid_simd::Workload).
///
/// # Errors
///
/// Names the available workloads when `input` matches none of them.
pub fn resolve_workload(input: &str) -> Result<liquid_simd::Workload, String> {
    let wanted = input.to_ascii_lowercase();
    for w in liquid_simd_workloads::all() {
        if w.name.to_ascii_lowercase() == wanted {
            return Ok(w);
        }
    }
    let names: Vec<String> = liquid_simd_workloads::all()
        .into_iter()
        .map(|w| w.name)
        .collect();
    Err(format!(
        "`{input}` is not a workload (workloads: {})",
        names.join(", ")
    ))
}

/// The CLI `run --report` statistics block, one line per subsystem.
#[must_use]
pub fn report_text(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("cycles            {}\n", report.cycles));
    out.push_str(&format!(
        "instructions      {} ({} scalar, {} vector)\n",
        report.retired, report.scalar_retired, report.vector_retired
    ));
    out.push_str(&format!("icache            {}\n", report.icache));
    out.push_str(&format!("dcache            {}\n", report.dcache));
    out.push_str(&format!("translator        {}\n", report.translator));
    out.push_str(&format!(
        "microcode cache   {} lookups, {} hits, {} pending, {} inserts, {} evictions, \
         {} conflicts\n",
        report.mcache.lookups,
        report.mcache.hits,
        report.mcache.pending,
        report.mcache.inserts,
        report.mcache.evictions,
        report.mcache.conflicts
    ));
    for (pc, len) in &report.translations {
        out.push_str(&format!(
            "translated        @{pc}: {len} microcode instructions\n"
        ));
    }
    out
}

/// The CLI `run` one-line summary.
#[must_use]
pub fn run_summary(report: &RunReport) -> String {
    format!(
        "halted after {} cycles ({} instructions)\n",
        report.cycles, report.retired
    )
}

/// Runs `program` once on a liquid machine and renders every translated
/// microcode block — the CLI `translate` output. Returns the rendered text
/// and the run's report.
///
/// # Errors
///
/// Propagates the simulation fault, if any.
pub fn translate_text(program: &Program, lanes: usize) -> Result<(String, RunReport), SimError> {
    translate_text_with(program, lanes, BackendKind::Interp)
}

/// [`translate_text`] on a chosen execution backend (identical output by
/// the backend contract; only throughput differs).
///
/// # Errors
///
/// Propagates the simulation fault, if any.
pub fn translate_text_with(
    program: &Program,
    lanes: usize,
    backend: BackendKind,
) -> Result<(String, RunReport), SimError> {
    // Ledger on: the per-run cost is one branch per retire, and the
    // category totals surface in the shard's merged `sim.ledger.*`
    // counters (scrub-stable at any shard count, since counters sum).
    let mut machine = Machine::new(
        program,
        MachineConfig::liquid(lanes)
            .with_backend(backend)
            .with_ledger(true),
    );
    let report = machine.run()?;
    let micro = machine.microcode_snapshot();
    let mut out = String::new();
    if micro.is_empty() {
        out.push_str(&format!("no loops translated ({})\n", report.translator));
        return Ok((out, report));
    }
    for (pc, code) in micro {
        let name = program
            .label_at(pc)
            .map_or_else(|| format!("@{pc}"), str::to_string);
        out.push_str(&format!(
            "── {name} → {} microcode instructions at {lanes} lanes ──\n",
            code.len()
        ));
        out.push_str(&asm::disassemble_microcode(&code, program));
    }
    if report.translator.aborted() > 0 {
        out.push_str(&format!("aborts: {:?}\n", report.translator.aborts));
    }
    Ok((out, report))
}

/// The result of executing one request: the id-less response body (the
/// cacheable artifact), whether it was a success, and the simulated cycles
/// the operation cost (0 for errors and non-simulating ops).
#[derive(Clone, Debug)]
pub struct OpOutput {
    /// Full response JSON **without** the request id (see
    /// [`proto::with_id`]).
    pub body: String,
    /// Whether this is a `serve-v1` (vs `serve-err-v1`) body.
    pub ok: bool,
    /// Simulated cycles attributable to the request.
    pub cycles: u64,
    /// The `serve-err-v1` kind for errors (empty for successes) — the
    /// flight recorder and burst detector read it without re-parsing the
    /// body.
    pub kind: String,
    /// The run's canonical counter snapshot (`cycles`, `translator.*`,
    /// `mcache.*`, `blocks.*`, …) — a pure function of the request, so
    /// shard workers can merge it into per-shard registries without
    /// breaking cross-shard determinism. Empty for errors and for ops
    /// that aggregate many runs (`explain`, `conform`).
    pub counters: std::collections::BTreeMap<String, u64>,
}

impl OpOutput {
    fn from_report(body: String, report: &RunReport) -> OpOutput {
        OpOutput {
            body,
            ok: true,
            cycles: report.cycles,
            kind: String::new(),
            counters: liquid_simd_perfhist::counters::snapshot(report),
        }
    }

    fn ok_plain(body: String) -> OpOutput {
        OpOutput {
            body,
            ok: true,
            cycles: 0,
            kind: String::new(),
            counters: std::collections::BTreeMap::new(),
        }
    }

    fn err(op: Op, kind: &str, msg: &str) -> OpOutput {
        OpOutput {
            body: proto::err_body(Some(op), kind, msg),
            ok: false,
            cycles: 0,
            kind: kind.to_string(),
            counters: std::collections::BTreeMap::new(),
        }
    }
}

/// Maps a simulation error to a `serve-err-v1` body, distinguishing a
/// cycle-budget rejection (the request asked for a ceiling and hit it)
/// from an organic fault.
fn sim_error_output(op: Op, budget: Option<u64>, e: &SimError) -> OpOutput {
    if let (Some(b), SimError::Fault { what, .. }) = (budget, e) {
        if what.starts_with("cycle limit") {
            return OpOutput::err(op, "budget-exceeded", &format!("cycle budget {b} exceeded"));
        }
    }
    OpOutput::err(op, "sim-error", &e.to_string())
}

/// Executes one deterministic request against an already-resolved program.
/// Never panics outward on bad input: every failure mode renders as a
/// `serve-err-v1` body. `display_name` is the name the output text uses
/// (the canonical workload name, or the inline program's `name` field).
#[must_use]
pub fn execute(req: &Request, program: &Program, display_name: &str) -> OpOutput {
    execute_with_backend(req, program, display_name, BackendKind::Interp)
}

/// [`execute`] on a chosen execution backend — the daemon-wide setting
/// (`serve --backend`). Simulation results are identical across backends
/// (the backend contract), so `run`/`translate` responses are
/// byte-identical too; `explain --json` responses name the backend and
/// carry its block-cache telemetry, so they are identical only between
/// daemons running the same backend.
#[must_use]
pub fn execute_with_backend(
    req: &Request,
    program: &Program,
    display_name: &str,
    backend: BackendKind,
) -> OpOutput {
    if req.inject_panic {
        // Test-only fault injection (`serve --inject-faults`): die inside
        // the worker exactly as an organic bug would, so the panic
        // containment + flight-dump path is exercised end to end.
        panic!("injected worker panic (inject:\"panic\")");
    }
    match req.op {
        Op::Translate => match translate_text_with(program, req.lanes, backend) {
            Ok((text, report)) => OpOutput::from_report(
                proto::ok_body(
                    Op::Translate,
                    vec![
                        ("name".to_string(), Json::Str(display_name.to_string())),
                        ("output".to_string(), Json::Str(text)),
                        ("cycles".to_string(), Json::u64(report.cycles)),
                        (
                            "regions".to_string(),
                            Json::u64(report.translations.len() as u64),
                        ),
                        (
                            "aborted".to_string(),
                            Json::u64(report.translator.aborted()),
                        ),
                    ],
                ),
                &report,
            ),
            Err(e) => sim_error_output(Op::Translate, req.budget_cycles, &e),
        },
        Op::Run => {
            let mut cfg = machine_config(req.mode, req.lanes, req.jit)
                .with_backend(backend)
                .with_ledger(true);
            if let Some(b) = req.budget_cycles {
                cfg.max_cycles = cfg.max_cycles.min(b);
            }
            match liquid_simd::run(program, cfg) {
                Ok(out) => {
                    let report = out.report;
                    if let Some(b) = req.budget_aborts {
                        if report.translator.aborted() > b {
                            return OpOutput::err(
                                Op::Run,
                                "abort-budget-exceeded",
                                &format!(
                                    "abort budget {b} exceeded ({} aborts)",
                                    report.translator.aborted()
                                ),
                            );
                        }
                    }
                    let text = if req.report {
                        report_text(&report)
                    } else {
                        run_summary(&report)
                    };
                    OpOutput::from_report(
                        proto::ok_body(
                            Op::Run,
                            vec![
                                ("name".to_string(), Json::Str(display_name.to_string())),
                                ("output".to_string(), Json::Str(text)),
                                ("cycles".to_string(), Json::u64(report.cycles)),
                                ("retired".to_string(), Json::u64(report.retired)),
                            ],
                        ),
                        &report,
                    )
                }
                Err(e) => sim_error_output(Op::Run, req.budget_cycles, &e),
            }
        }
        Op::Explain => {
            let opts = liquid_simd::ExplainOptions {
                widths: req.widths.clone(),
                interrupt_every: 0,
                all_calls: false,
                backend,
            };
            match liquid_simd::explain(program, display_name, &opts) {
                Ok(report) => {
                    let text = if req.json {
                        liquid_simd::diagnose::explain_json(&report)
                    } else {
                        liquid_simd::diagnose::render_explain(&report)
                    };
                    OpOutput::ok_plain(proto::ok_body(
                        Op::Explain,
                        vec![
                            ("name".to_string(), Json::Str(display_name.to_string())),
                            ("output".to_string(), Json::Str(text)),
                        ],
                    ))
                }
                Err(e) => OpOutput::err(Op::Explain, "sim-error", &e.to_string()),
            }
        }
        Op::Conform => {
            let opts = liquid_simd_conform::ConformOptions {
                seed: req.seed,
                cases: req.cases,
                jobs: 1,
                shrink: true,
            };
            let report = liquid_simd_conform::run_conform(&opts);
            let (passed, failed) = report.tally();
            OpOutput {
                body: proto::ok_body(
                    Op::Conform,
                    vec![
                        (
                            "output".to_string(),
                            Json::Str(liquid_simd_conform::report_to_json(&report)),
                        ),
                        ("cases".to_string(), Json::u64(report.cases.len() as u64)),
                        ("passed".to_string(), Json::u64(passed)),
                        ("failed".to_string(), Json::u64(failed)),
                    ],
                ),
                ok: report.passed(),
                cycles: 0,
                kind: String::new(),
                counters: std::collections::BTreeMap::new(),
            }
        }
        // Stats, inspect, dump, and shutdown are answered by the server
        // front-end, never dispatched to a shard.
        Op::Stats | Op::Inspect | Op::Dump | Op::Shutdown => {
            OpOutput::err(req.op, "bad-request", "not a shard op")
        }
    }
}

/// Assembles an inline program from request text.
///
/// # Errors
///
/// Returns the assembler's message for the caller to wrap as
/// `bad-request`.
pub fn assemble_inline(source: &str) -> Result<Program, String> {
    asm::assemble(source).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    fn fir_program() -> (Program, String) {
        let w = resolve_workload("fir").expect("fir workload exists");
        let name = w.name.clone();
        let b = liquid_simd::build_liquid(&w).expect("fir builds");
        (b.program, name)
    }

    #[test]
    fn machine_config_matches_cli_triage() {
        assert_eq!(machine_config(Mode::Scalar, 0, false).lanes, 0);
        assert!(!machine_config(Mode::Native, 8, false).translation.enabled);
        let jit = machine_config(Mode::Liquid, 8, true);
        assert!(jit.translation.jit && !jit.translation.hw_value_limit);
        assert_eq!(
            machine_config(Mode::Liquid, 8, false).fingerprint(),
            MachineConfig::liquid(8).fingerprint()
        );
    }

    #[test]
    fn run_and_translate_render_like_the_cli() {
        let (program, name) = fir_program();
        let req = parse_request(r#"{"op":"run","workload":"fir"}"#).unwrap();
        let out = execute(&req, &program, &name);
        assert!(out.ok);
        let doc = Json::parse(&out.body).unwrap();
        let text = doc.get("output").and_then(Json::as_str).unwrap();
        assert!(text.starts_with("halted after ") && text.ends_with(" instructions)\n"));
        assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some(out.cycles));

        let req = parse_request(r#"{"op":"translate","workload":"fir","width":8}"#).unwrap();
        let out = execute(&req, &program, &name);
        assert!(out.ok);
        let doc = Json::parse(&out.body).unwrap();
        let text = doc.get("output").and_then(Json::as_str).unwrap();
        let (direct, _) = translate_text(&program, 8).unwrap();
        assert_eq!(text, direct, "serve output == renderer output");
        assert!(text.contains("microcode instructions at 8 lanes"));
    }

    #[test]
    fn report_text_lists_every_subsystem() {
        let (program, name) = fir_program();
        let req = parse_request(r#"{"op":"run","workload":"fir","report":true}"#).unwrap();
        let out = execute(&req, &program, &name);
        let doc = Json::parse(&out.body).unwrap();
        let text = doc.get("output").and_then(Json::as_str).unwrap();
        for needle in [
            "cycles",
            "icache",
            "dcache",
            "translator",
            "microcode cache",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn cycle_budget_rejects_gracefully() {
        let (program, name) = fir_program();
        let req = parse_request(r#"{"op":"run","workload":"fir","budget_cycles":10}"#).unwrap();
        let out = execute(&req, &program, &name);
        assert!(!out.ok);
        let doc = Json::parse(&out.body).unwrap();
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("budget-exceeded")
        );
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("serve-err-v1")
        );

        let req =
            parse_request(r#"{"op":"run","workload":"fir","budget_aborts":0,"width":2}"#).unwrap();
        let out = execute(&req, &program, &name);
        let doc = Json::parse(&out.body).unwrap();
        // fir at width 2 may or may not abort; either a clean pass or the
        // abort-budget rejection is acceptable, never a panic.
        if !out.ok {
            assert_eq!(
                doc.get("kind").and_then(Json::as_str),
                Some("abort-budget-exceeded")
            );
        }
    }

    #[test]
    fn explain_json_matches_direct_call() {
        let (program, name) = fir_program();
        let req = parse_request(r#"{"op":"explain","workload":"fir","widths":[2,8]}"#).unwrap();
        let out = execute(&req, &program, &name);
        assert!(out.ok);
        let doc = Json::parse(&out.body).unwrap();
        let text = doc.get("output").and_then(Json::as_str).unwrap();
        let opts = liquid_simd::ExplainOptions {
            widths: vec![2, 8],
            interrupt_every: 0,
            all_calls: false,
            backend: Default::default(),
        };
        let direct = liquid_simd::diagnose::explain_json(
            &liquid_simd::explain(&program, &name, &opts).unwrap(),
        );
        assert_eq!(text, direct);
    }

    #[test]
    fn inline_program_assembles_or_reports() {
        assert!(assemble_inline("definitely not asm ???").is_err());
    }
}
